//! Integration tests for the batched EVD subsystem: determinism across
//! the scheduler, arena behaviour, and observability of the arena
//! counters through the `--profile` exporter.

use tridiag_gpu::prelude::*;

fn problems(count: usize, n: usize) -> Vec<Mat> {
    (0..count)
        .map(|i| gen::random_symmetric(n, 7_000 + i as u64))
        .collect()
}

/// The ISSUE acceptance assertion: every batched result bitwise-identical
/// to the single-problem `syevd`, for vectors and values alike, across
/// worker counts.
#[test]
fn batched_results_bitwise_identical_to_syevd() {
    let n = 28;
    let probs = problems(8, n);
    let method = EvdMethod::proposed_default(n);
    let singles: Vec<Evd> = probs
        .iter()
        .map(|a| syevd(&mut a.clone(), &method, true).unwrap())
        .collect();
    for workers in [1usize, 2, 5] {
        let batch = BatchScheduler::new(workers)
            .syevd(&probs, &method, true)
            .unwrap();
        for (i, (got, want)) in batch.results.iter().zip(&singles).enumerate() {
            assert_eq!(
                got.eigenvalues, want.eigenvalues,
                "problem {i}, {workers} workers: eigenvalues"
            );
            assert_eq!(
                got.eigenvectors, want.eigenvectors,
                "problem {i}, {workers} workers: eigenvectors"
            );
        }
    }
}

/// The serial reference loop in tg-eigen and the scheduler agree with
/// each other too (both are held to the single-problem path).
#[test]
fn scheduler_matches_serial_reference() {
    let n = 20;
    let probs = problems(5, n);
    let method = EvdMethod::proposed_default(n);
    let serial = syevd_batched(&probs, &method, false).unwrap();
    let batch = BatchScheduler::new(3)
        .syevd(&probs, &method, false)
        .unwrap();
    for (a, b) in serial.iter().zip(&batch.results) {
        assert_eq!(a.eigenvalues, b.eigenvalues);
    }
}

/// Arena hit rate on a uniform-shape batch exceeds 90% and is visible —
/// with the same numbers — in the `--profile` output.
#[test]
fn arena_hit_rate_visible_in_profile_and_above_90_percent() {
    let n = 32;
    let probs = problems(16, n);
    let method = EvdMethod::proposed_default(n);
    let session = tg_trace::TraceSession::begin();
    let batch = BatchScheduler::new(1)
        .syevd(&probs, &method, false)
        .unwrap();
    let trace = session.finish();

    let stats = batch.stats.arena;
    assert!(
        stats.hit_rate() > 0.9,
        "uniform batch hit rate {:.1}%",
        100.0 * stats.hit_rate()
    );
    assert_eq!(stats.hits, trace.total(tg_trace::Counter::ArenaHit));
    assert_eq!(stats.misses, trace.total(tg_trace::Counter::ArenaMiss));

    let table = trace.profile_table();
    assert!(table.contains("arena_hits"), "{table}");
    assert!(table.contains("arena hit rate"), "{table}");
    let line = table
        .lines()
        .find(|l| l.contains("arena hit rate"))
        .unwrap()
        .to_string();
    let pct: f64 = line
        .split_whitespace()
        .last()
        .unwrap()
        .trim_end_matches('%')
        .parse()
        .unwrap();
    assert!(
        (pct - 100.0 * stats.hit_rate()).abs() < 0.05 + 1e-9,
        "profile reports {pct}%, stats say {:.1}%",
        100.0 * stats.hit_rate()
    );
    // per-problem spans are "task"-category members of the batch region
    assert!(
        trace
            .events
            .iter()
            .filter(|e| e.name == "batch.problem" && e.cat == "task" && e.region.is_some())
            .count()
            == probs.len(),
        "one batch.problem task span per problem"
    );
}

/// Mixed-shape batches stay correct: the per-problem class switch drops
/// the cache instead of serving wrong-size (or stale) buffers.
#[test]
fn mixed_shape_batch_is_still_bitwise_correct() {
    let method = EvdMethod::proposed_default(24);
    let probs: Vec<Mat> = [16usize, 24, 16, 24, 32]
        .iter()
        .enumerate()
        .map(|(i, &n)| gen::random_symmetric(n, 50 + i as u64))
        .collect();
    let batch = BatchScheduler::new(2).syevd(&probs, &method, true).unwrap();
    for (a, got) in probs.iter().zip(&batch.results) {
        let single = syevd(&mut a.clone(), &method, true).unwrap();
        assert_eq!(got.eigenvalues, single.eigenvalues);
        assert_eq!(got.eigenvectors, single.eigenvectors);
    }
}

/// Batched tridiagonalization (not just full EVD) is deterministic too.
#[test]
fn batched_tridiagonalize_bitwise() {
    let n = 24;
    let probs = problems(4, n);
    let method = Method::paper_default(n);
    let batch = BatchScheduler::new(2).tridiagonalize(&probs, &method);
    for (a, got) in probs.iter().zip(&batch.results) {
        let single = tridiagonalize(&mut a.clone(), &method);
        assert_eq!(got.tri.d, single.tri.d);
        assert_eq!(got.tri.e, single.tri.e);
    }
}
