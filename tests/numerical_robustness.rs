//! Numerical robustness: scaling extremes, ill conditioning, degeneracy,
//! and invariance properties of the full pipeline.

use tridiag_gpu::prelude::*;

fn proposed(n: usize) -> EvdMethod {
    let b = (n / 8).clamp(2, 8);
    EvdMethod::Proposed {
        b,
        k: 2 * b,
        parallel_sweeps: 3,
        backtransform_k: 4 * b,
        lookahead: true,
    }
}

/// Hilbert-like matrix: condition number grows explosively, eigenvalues
/// span many orders of magnitude — residuals must stay backward-stable.
#[test]
fn hilbert_matrix() {
    let n = 24;
    let a = Mat::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64));
    let evd = syevd(&mut a.clone(), &proposed(n), true).unwrap();
    assert!(evd.residual(&a) < 1e-12);
    assert!(orthogonality_residual(evd.eigenvectors.as_ref().unwrap()) < 1e-12);
    // Hilbert is positive definite: all eigenvalues > 0 within roundoff
    assert!(evd.eigenvalues.iter().all(|&x| x > -1e-14));
    // largest eigenvalue of H_24 is ≈ 1.79 (bounded by π historically)
    assert!(evd.eigenvalues[n - 1] > 1.2 && evd.eigenvalues[n - 1] < 2.0);
}

/// Extreme uniform scaling must not change relative accuracy.
#[test]
fn scale_invariance() {
    let n = 28;
    let base = gen::random_symmetric(n, 5);
    let reference = syevd(&mut base.clone(), &proposed(n), false)
        .unwrap()
        .eigenvalues;
    for &scale in &[1e100f64, 1e-100, 1e8, 1e-8] {
        let mut scaled = base.clone();
        for v in scaled.as_mut_slice() {
            *v *= scale;
        }
        let eigs = syevd(&mut scaled.clone(), &proposed(n), false)
            .unwrap()
            .eigenvalues;
        for (e, r) in eigs.iter().zip(&reference) {
            let expect = r * scale;
            assert!(
                (e - expect).abs() <= 1e-16 * scale * n as f64 + 1e-10 * scale,
                "scale {scale:e}: {e} vs {expect}"
            );
        }
    }
}

/// Low-rank matrix: n − r eigenvalues collapse to 0, the rest are exact.
#[test]
fn low_rank_matrix() {
    let n = 30;
    let r = 3;
    let q = gen::random_orthogonal(n, 7);
    let mut a = Mat::zeros(n, n);
    for c in 0..r {
        let lam = (c + 1) as f64 * 2.0;
        let qc = q.col(c).to_vec();
        for j in 0..n {
            for i in 0..n {
                a[(i, j)] += lam * qc[i] * qc[j];
            }
        }
    }
    a.mirror_lower();
    let evd = syevd(&mut a.clone(), &proposed(n), false).unwrap();
    let zeros = evd.eigenvalues.iter().filter(|x| x.abs() < 1e-10).count();
    assert_eq!(zeros, n - r, "rank deficiency not detected");
    assert!((evd.eigenvalues[n - 1] - 6.0).abs() < 1e-10);
    assert!((evd.eigenvalues[n - 2] - 4.0).abs() < 1e-10);
    assert!((evd.eigenvalues[n - 3] - 2.0).abs() < 1e-10);
}

/// A matrix with one n-fold eigenvalue plus a rank-one bump: classic full
/// deflation stress for divide & conquer.
#[test]
fn repeated_eigenvalue_plus_rank_one() {
    let n = 36;
    let mut a = Mat::identity(n);
    let u: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sqrt()).collect();
    let unorm: f64 = u.iter().map(|x| x * x).sum();
    for j in 0..n {
        for i in 0..n {
            a[(i, j)] += u[i] * u[j] / unorm;
        }
    }
    let evd = syevd(&mut a.clone(), &proposed(n), true).unwrap();
    // spectrum: 1 with multiplicity n−1, and 2
    for k in 0..n - 1 {
        assert!((evd.eigenvalues[k] - 1.0).abs() < 1e-10, "λ_{k}");
    }
    assert!((evd.eigenvalues[n - 1] - 2.0).abs() < 1e-10);
    assert!(orthogonality_residual(evd.eigenvectors.as_ref().unwrap()) < 1e-11);
}

/// Zero and diagonal-constant matrices.
#[test]
fn trivial_spectra() {
    let n = 20;
    let evd = syevd(&mut Mat::zeros(n, n), &proposed(n), true).unwrap();
    assert!(evd.eigenvalues.iter().all(|&x| x.abs() < 1e-14));
    let mut c = Mat::identity(n);
    for v in c.as_mut_slice() {
        *v *= -7.5;
    }
    let evd = syevd(&mut c.clone(), &proposed(n), false).unwrap();
    assert!(evd.eigenvalues.iter().all(|&x| (x + 7.5).abs() < 1e-12));
}

/// Similarity invariance: a permutation similarity must not change the
/// spectrum at all (it is exact in floating point for the Sturm counts).
#[test]
fn permutation_similarity() {
    let n = 26;
    let a = gen::random_symmetric(n, 9);
    // reverse-permutation similarity
    let p = Mat::from_fn(n, n, |i, j| if i + j == n - 1 { 1.0 } else { 0.0 });
    let pa = tridiag_gpu::blas::gemm_into(
        1.0,
        &p.as_ref(),
        tridiag_gpu::blas::Op::NoTrans,
        &a.as_ref(),
        tridiag_gpu::blas::Op::NoTrans,
    );
    let b = tridiag_gpu::blas::gemm_into(
        1.0,
        &pa.as_ref(),
        tridiag_gpu::blas::Op::NoTrans,
        &p.as_ref(),
        tridiag_gpu::blas::Op::Trans,
    );
    let e1 = syevd(&mut a.clone(), &proposed(n), false)
        .unwrap()
        .eigenvalues;
    let e2 = syevd(&mut b.clone(), &proposed(n), false)
        .unwrap()
        .eigenvalues;
    for (x, y) in e1.iter().zip(&e2) {
        assert!((x - y).abs() < 1e-10);
    }
}

/// Four independent eigensolvers agree on the same tridiagonal matrix.
#[test]
fn four_solver_cross_check() {
    use tridiag_gpu::eigen::{bisect, jacobi_evd, stedc, steqr};
    let t = gen::random_tridiagonal(48, 21);
    let e_ql = steqr(&t).unwrap().0;
    let e_dc = stedc(&t).unwrap().0;
    let e_bi = bisect::eigenvalues(&t);
    let e_ja = jacobi_evd(&t.to_dense()).unwrap().0;
    for i in 0..48 {
        assert!((e_ql[i] - e_dc[i]).abs() < 1e-10, "QL vs DC at {i}");
        assert!((e_ql[i] - e_bi[i]).abs() < 1e-10, "QL vs bisect at {i}");
        assert!((e_ql[i] - e_ja[i]).abs() < 1e-10, "QL vs Jacobi at {i}");
    }
}

/// Negative-definite input: spectra mirror positive-definite behaviour.
#[test]
fn negative_definite() {
    let n = 22;
    let spd = gen::random_spd(n, 13);
    let mut neg = spd.clone();
    for v in neg.as_mut_slice() {
        *v = -*v;
    }
    let ep = syevd(&mut spd.clone(), &proposed(n), false)
        .unwrap()
        .eigenvalues;
    let en = syevd(&mut neg.clone(), &proposed(n), false)
        .unwrap()
        .eigenvalues;
    for i in 0..n {
        assert!((ep[i] + en[n - 1 - i]).abs() < 1e-9, "mirror at {i}");
    }
    assert!(en.iter().all(|&x| x < 0.0));
}

/// Band matrices of every bandwidth from 1 to n−1 reduce correctly.
#[test]
fn bandwidth_sweep() {
    let n = 18;
    for b in 1..n - 1 {
        let dense = gen::random_symmetric_band(n, b, b as u64);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        let q = res.form_q(n);
        assert!(
            similarity_residual(&dense, &q, &res.tri.to_dense()) < 1e-12,
            "bandwidth {b}"
        );
    }
}
