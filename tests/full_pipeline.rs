//! Cross-crate integration: the full reduction → eigensolve → back
//! transformation pipeline, on workloads with independently known answers.

use tridiag_gpu::prelude::*;

/// All three tridiagonalization pipelines applied to the same matrix must
/// produce orthogonally-similar tridiagonal matrices and reconstruct `A`.
#[test]
fn three_pipelines_same_matrix() {
    let n = 60;
    let a = gen::random_symmetric(n, 101);
    let methods = [
        Method::Direct { nb: 8 },
        Method::Sbr {
            b: 4,
            parallel_sweeps: 3,
        },
        Method::Dbbr {
            cfg: DbbrConfig::new(4, 16),
            parallel_sweeps: 4,
        },
    ];
    let mut spectra = Vec::new();
    for m in &methods {
        let mut w = a.clone();
        let red = tridiagonalize(&mut w, m);
        let q = red.form_q();
        assert!(orthogonality_residual(&q) < 1e-11, "{m:?}");
        assert!(
            similarity_residual(&a, &q, &red.tri.to_dense()) < 1e-11,
            "{m:?}"
        );
        spectra.push(sterf(&red.tri).unwrap());
    }
    for k in 1..spectra.len() {
        for (i, (s0, sk)) in spectra[0].iter().zip(spectra[k].iter()).enumerate() {
            assert!(
                (s0 - sk).abs() < 1e-9,
                "spectra diverge at eigenvalue {i} between pipelines 0 and {k}"
            );
        }
    }
}

/// EVD of a matrix with a planted spectrum, via every driver.
#[test]
fn planted_spectrum_recovered_by_all_drivers() {
    let n = 56;
    let eigs: Vec<f64> = (0..n).map(|i| ((i * i) as f64).sqrt() - 3.0).collect();
    let a = gen::with_spectrum(&eigs, 55);
    let drivers = [
        EvdMethod::CusolverLike { nb: 8 },
        EvdMethod::MagmaLike { b: 4 },
        EvdMethod::Proposed {
            b: 4,
            k: 16,
            parallel_sweeps: 4,
            backtransform_k: 32,
            lookahead: true,
        },
    ];
    let mut sorted = eigs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for d in &drivers {
        let evd = syevd(&mut a.clone(), d, true).unwrap();
        assert!(
            tridiag_gpu::matrix::norms::spectrum_error(&sorted, &evd.eigenvalues) < 1e-10,
            "{d:?}"
        );
        assert!(evd.residual(&a) < 1e-10, "{d:?}");
        assert!(
            orthogonality_residual(evd.eigenvectors.as_ref().unwrap()) < 1e-10,
            "{d:?}"
        );
    }
}

/// The two-stage pipeline must behave identically whether the bulge chasing
/// runs sequentially or with any number of parallel sweeps.
#[test]
fn parallel_sweeps_do_not_change_results() {
    let n = 48;
    let a = gen::random_symmetric(n, 77);
    let base = {
        let mut w = a.clone();
        tridiagonalize(
            &mut w,
            &Method::Sbr {
                b: 4,
                parallel_sweeps: 1,
            },
        )
        .tri
    };
    for sweeps in [2usize, 3, 8, 16] {
        let mut w = a.clone();
        let tri = tridiagonalize(
            &mut w,
            &Method::Sbr {
                b: 4,
                parallel_sweeps: sweeps,
            },
        )
        .tri;
        assert_eq!(tri.d, base.d, "sweeps = {sweeps}");
        assert_eq!(tri.e, base.e, "sweeps = {sweeps}");
    }
}

/// Band reduction composed with bulge chasing equals a direct reduction in
/// the spectral sense, on a banded input (no reduction work wasted).
#[test]
fn band_input_shortcut() {
    let n = 50;
    let b = 5;
    let dense = gen::random_symmetric_band(n, b, 31);
    let band = SymBand::from_dense_lower(&dense, b);
    let bc = bulge_chase_seq(&band);
    let direct = {
        let mut w = dense.clone();
        tridiagonalize(&mut w, &Method::Direct { nb: 8 }).tri
    };
    let e1 = sterf(&bc.tri).unwrap();
    let e2 = sterf(&direct).unwrap();
    for i in 0..n {
        assert!((e1[i] - e2[i]).abs() < 1e-10, "eigenvalue {i}");
    }
}

/// Eigenvalues-only and with-vectors paths agree; vectors diagonalize `A`.
#[test]
fn vector_and_value_paths_agree() {
    let n = 40;
    let a = gen::random_spd(n, 99);
    let m = EvdMethod::Proposed {
        b: 3,
        k: 9,
        parallel_sweeps: 2,
        backtransform_k: 18,
        lookahead: true,
    };
    let only_values = syevd(&mut a.clone(), &m, false).unwrap();
    let with_vectors = syevd(&mut a.clone(), &m, true).unwrap();
    for (x, y) in only_values
        .eigenvalues
        .iter()
        .zip(&with_vectors.eigenvalues)
    {
        assert!((x - y).abs() < 1e-8);
    }
    assert!(only_values.eigenvalues.iter().all(|&x| x > 0.0), "SPD");
}

/// Identity and diagonal matrices round-trip exactly-ish.
#[test]
fn trivial_matrices() {
    let n = 24;
    // identity
    let evd = syevd(&mut Mat::identity(n), &EvdMethod::MagmaLike { b: 2 }, true).unwrap();
    for &e in &evd.eigenvalues {
        assert!((e - 1.0).abs() < 1e-12);
    }
    // diagonal with distinct entries
    let mut d = Mat::zeros(n, n);
    for i in 0..n {
        d[(i, i)] = i as f64;
    }
    let evd = syevd(&mut d.clone(), &EvdMethod::CusolverLike { nb: 4 }, true).unwrap();
    for (i, &e) in evd.eigenvalues.iter().enumerate() {
        assert!((e - i as f64).abs() < 1e-10);
    }
}
