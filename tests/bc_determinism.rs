//! Determinism stress for pipelined bulge chasing.
//!
//! Algorithm 2's progress-gate protocol promises more than "numerically
//! close": because every reflector is computed from values that are fully
//! written before the gate opens, the result must be **bitwise identical**
//! across repeats and across every `parallel_sweeps` setting — the thread
//! interleaving may change, the arithmetic may not. These tests hammer
//! that promise on one band with `parallel_sweeps ∈ {1, 2, 4, 7}`
//! (including a deliberately odd, non-divisor count) and repeated runs.

use tridiag_gpu::prelude::*;

/// Bitwise comparison of two BcResults (the struct doesn't expose
/// `PartialEq`; compare every field explicitly so nothing is skipped).
fn assert_bc_bitwise(a: &tridiag_gpu::core::BcResult, b: &tridiag_gpu::core::BcResult, ctx: &str) {
    assert_eq!(a.tri.d, b.tri.d, "{ctx}: diagonal");
    assert_eq!(a.tri.e, b.tri.e, "{ctx}: off-diagonal");
    assert_eq!(a.reflectors.len(), b.reflectors.len(), "{ctx}: sweep count");
    for (s, (ra, rb)) in a.reflectors.iter().zip(&b.reflectors).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{ctx}: sweep {s} task count");
        for (t, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(x.col, y.col, "{ctx}: sweep {s} task {t} col");
            assert_eq!(x.row0, y.row0, "{ctx}: sweep {s} task {t} row0");
            assert!(
                x.tau.to_bits() == y.tau.to_bits(),
                "{ctx}: sweep {s} task {t} tau {} vs {}",
                x.tau,
                y.tau
            );
            assert_eq!(x.v.len(), y.v.len(), "{ctx}: sweep {s} task {t} v len");
            for (i, (va, vb)) in x.v.iter().zip(&y.v).enumerate() {
                assert!(
                    va.to_bits() == vb.to_bits(),
                    "{ctx}: sweep {s} task {t} v[{i}] {va} vs {vb}"
                );
            }
        }
    }
}

fn band(n: usize, b: usize, seed: u64) -> SymBand {
    let dense = gen::random_symmetric_band(n, b, seed);
    SymBand::from_dense_lower(&dense, b)
}

#[test]
fn pipelined_bitwise_stable_across_sweep_counts_and_repeats() {
    for &(n, b) in &[(40usize, 3usize), (64, 5)] {
        let band = band(n, b, 7);
        let reference = bulge_chase_seq(&band);
        for &s in &[1usize, 2, 4, 7] {
            let first = bulge_chase_pipelined(&band, s);
            assert_bc_bitwise(&reference, &first, &format!("n={n} b={b} S={s} vs seq"));
            // repeats: different thread interleavings, same bits
            for rep in 0..3 {
                let again = bulge_chase_pipelined(&band, s);
                assert_bc_bitwise(&first, &again, &format!("n={n} b={b} S={s} repeat {rep}"));
            }
        }
    }
}

#[test]
fn pipelined_bitwise_stable_on_graded_band() {
    // wildly graded magnitudes make any reordered accumulation visible
    let n = 48;
    let b = 4;
    let mut dense = gen::random_symmetric_band(n, b, 21);
    for i in 0..n {
        let s = 10f64.powf(-(9.0 * i as f64 / n as f64));
        for j in 0..n {
            let v = dense[(i, j)] * s;
            dense[(i, j)] = v;
            dense[(j, i)] = v;
        }
    }
    let band = SymBand::from_dense_lower(&dense, b);
    let reference = bulge_chase_pipelined(&band, 1);
    for &s in &[2usize, 4, 7] {
        let got = bulge_chase_pipelined(&band, s);
        assert_bc_bitwise(&reference, &got, &format!("graded S={s}"));
    }
}

#[test]
fn degenerate_bands_stay_deterministic() {
    // b = 1 (already tridiagonal) and tiny n must not diverge either
    for &(n, b) in &[(3usize, 1usize), (5, 1), (6, 4)] {
        let band = band(n, b, 3);
        let reference = bulge_chase_seq(&band);
        for &s in &[1usize, 2, 4, 7] {
            let got = bulge_chase_pipelined(&band, s);
            assert_bc_bitwise(&reference, &got, &format!("degenerate n={n} b={b} S={s}"));
        }
    }
}
