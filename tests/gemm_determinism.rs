//! Thread-count determinism for the parallel packed GEMM and the syr2k
//! super-block grid.
//!
//! The parallel packed kernel partitions work over `ic`/`jc` strips only —
//! never over the `pc` (k-block) loop — so every `C` element accumulates
//! its partial sums in the same fixed order at every thread count. That is
//! a **bitwise** promise, the same one `bc_determinism.rs` makes for the
//! bulge-chasing pipeline: the thread interleaving may change, the
//! arithmetic may not. These tests hammer it with thread counts
//! `{1, 2, 4, 7}` (including a deliberately odd count that divides nothing)
//! across random shapes and transpose combinations.

use proptest::prelude::*;
use std::sync::Mutex;
use tridiag_gpu::blas::{self, gemm_packed_with_threads, syr2k_square, Op};
use tridiag_gpu::matrix::{gen, Mat};

/// Serializes the env-driven tests: `TG_THREADS` is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const THREAD_SWEEP: [usize; 3] = [2, 4, 7];

fn assert_bitwise_eq(a: &Mat, b: &Mat, ctx: &str) {
    assert_eq!(a.nrows(), b.nrows(), "{ctx}: rows");
    assert_eq!(a.ncols(), b.ncols(), "{ctx}: cols");
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            assert!(
                a[(i, j)].to_bits() == b[(i, j)].to_bits(),
                "{ctx}: bit mismatch at ({i},{j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

fn op_from(sel: usize) -> (Op, Op) {
    match sel % 4 {
        0 => (Op::NoTrans, Op::NoTrans),
        1 => (Op::NoTrans, Op::Trans),
        2 => (Op::Trans, Op::NoTrans),
        _ => (Op::Trans, Op::Trans),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `gemm_packed` is bitwise-identical across thread counts for random
    /// shapes and every transpose combination. `m > 128` forces several
    /// row strips, so the parallel driver genuinely partitions.
    #[test]
    fn packed_gemm_bitwise_across_thread_counts(
        m in 129usize..200,
        n in 1usize..40,
        k in 1usize..96,
        sel in 0usize..4,
        seed in 0u64..1000,
    ) {
        let (op_a, op_b) = op_from(sel);
        let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
        let a = gen::random(ar, ac, seed);
        let b = gen::random(br, bc, seed + 1);
        let c0 = gen::random(m, n, seed + 2);

        let mut c_serial = c0.clone();
        gemm_packed_with_threads(
            1.25, &a.as_ref(), op_a, &b.as_ref(), op_b, -0.5,
            &mut c_serial.as_mut(), 1,
        );
        for t in THREAD_SWEEP {
            let mut c_par = c0.clone();
            gemm_packed_with_threads(
                1.25, &a.as_ref(), op_a, &b.as_ref(), op_b, -0.5,
                &mut c_par.as_mut(), t,
            );
            for j in 0..n {
                for i in 0..m {
                    prop_assert!(
                        c_serial[(i, j)].to_bits() == c_par[(i, j)].to_bits(),
                        "bit mismatch at ({i},{j}) with {t} threads, \
                         {m}x{n}x{k} ({op_a:?},{op_b:?})"
                    );
                }
            }
        }
    }
}

/// The public `gemm` dispatch — packed path, axpy path, and the TT route —
/// is bitwise-stable under `TG_THREADS`, which steers both the workspace
/// convention and the rayon shim's fan-out.
#[test]
fn gemm_dispatch_bitwise_across_tg_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    // (m, n, k, ops): packed compute-bound, skinny axpy, and Trans×Trans
    let shapes = [
        (160, 96, 64, Op::NoTrans, Op::NoTrans),
        (200, 200, 4, Op::NoTrans, Op::Trans), // k < 8 ⇒ column-axpy path
        (96, 80, 72, Op::Trans, Op::Trans),    // TT ⇒ packed via transposing pack
    ];
    for (m, n, k, op_a, op_b) in shapes {
        let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
        let a = gen::random(ar, ac, 7000 + m as u64);
        let b = gen::random(br, bc, 7001 + n as u64);
        let c0 = gen::random(m, n, 7002 + k as u64);

        let mut reference: Option<Mat> = None;
        for t in [1usize, 2, 4, 7] {
            std::env::set_var("TG_THREADS", t.to_string());
            let mut c = c0.clone();
            blas::gemm(
                1.1,
                &a.as_ref(),
                op_a,
                &b.as_ref(),
                op_b,
                0.4,
                &mut c.as_mut(),
            );
            match &reference {
                None => reference = Some(c),
                Some(r) => assert_bitwise_eq(
                    r,
                    &c,
                    &format!("gemm {m}x{n}x{k} ({op_a:?},{op_b:?}) TG_THREADS={t}"),
                ),
            }
        }
    }
    std::env::remove_var("TG_THREADS");
}

/// `syr2k_square`'s 2D super-block grid: element-disjoint tasks, so thread
/// count never changes a bit; and the whole grid agrees with the
/// triple-loop reference numerically.
#[test]
fn syr2k_square_bitwise_across_tg_threads_and_matches_ref() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (n, k, nb, g) = (150, 24, 16, 2);
    let a = gen::random(n, k, 8100);
    let b = gen::random(n, k, 8101);
    let c0 = gen::random_symmetric(n, 8102);

    let mut c_ref = c0.clone();
    blas::level3::syr2k_ref(-1.0, &a.as_ref(), &b.as_ref(), 0.75, &mut c_ref.as_mut());

    let mut reference: Option<Mat> = None;
    for t in [1usize, 2, 4, 7] {
        std::env::set_var("TG_THREADS", t.to_string());
        let mut c = c0.clone();
        syr2k_square(-1.0, &a.as_ref(), &b.as_ref(), 0.75, &mut c.as_mut(), nb, g);
        // numeric agreement with the reference (lower triangle)
        for j in 0..n {
            for i in j..n {
                assert!(
                    (c[(i, j)] - c_ref[(i, j)]).abs() < 1e-10,
                    "syr2k mismatch vs ref at ({i},{j}) with TG_THREADS={t}"
                );
            }
            // upper triangle untouched
            for i in 0..j {
                assert_eq!(c[(i, j)], c0[(i, j)], "upper triangle touched at ({i},{j})");
            }
        }
        match &reference {
            None => reference = Some(c),
            Some(r) => assert_bitwise_eq(r, &c, &format!("syr2k_square TG_THREADS={t}")),
        }
    }
    std::env::remove_var("TG_THREADS");
}

/// The batched-GEMM entry points run each member GEMM with the same serial
/// inner arithmetic at every thread count.
#[test]
fn gemm_batched_uniform_bitwise_across_tg_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    let count = 6;
    let (m, n, k) = (96, 48, 40);
    let a: Vec<Mat> = (0..count).map(|i| gen::random(m, k, 9000 + i)).collect();
    let b: Vec<Mat> = (0..count).map(|i| gen::random(k, n, 9100 + i)).collect();

    let mut reference: Option<Vec<Mat>> = None;
    for t in [1usize, 4] {
        std::env::set_var("TG_THREADS", t.to_string());
        let mut c: Vec<Mat> = (0..count).map(|_| Mat::zeros(m, n)).collect();
        blas::batched::gemm_batched_uniform(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
        match &reference {
            None => reference = Some(c),
            Some(r) => {
                for (i, (x, y)) in r.iter().zip(&c).enumerate() {
                    assert_bitwise_eq(x, y, &format!("batched job {i} TG_THREADS={t}"));
                }
            }
        }
    }
    std::env::remove_var("TG_THREADS");
}
