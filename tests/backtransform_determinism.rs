//! Determinism contract for the parallel blocked back transformation.
//!
//! The panel-parallel Figure-13 path promises more than "numerically
//! close": panel boundaries are fixed (`PANEL_COLS`), every panel applies
//! the same shared read-only block list in the same order, and workers
//! only *claim* panels — they never split or reorder the arithmetic
//! inside one. The result must therefore be **bitwise identical** across
//! every worker count and every pool implementation. These tests hammer
//! that promise for both two-stage pipelines (SBR and DBBR) with
//! `workers ∈ {1, 2, 4, 7}` (including a deliberately odd, non-divisor
//! count) and repeated runs, and pin the blocked path to the conventional
//! reflector-by-reflector apply within numerical tolerance.

use tridiag_gpu::core::{AllocPool, CachingPool, PanelPools};
use tridiag_gpu::prelude::*;

fn assert_mat_bitwise(a: &Mat, b: &Mat, ctx: &str) {
    assert_eq!(a.nrows(), b.nrows(), "{ctx}: nrows");
    assert_eq!(a.ncols(), b.ncols(), "{ctx}: ncols");
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            assert!(
                a[(i, j)].to_bits() == b[(i, j)].to_bits(),
                "{ctx}: ({i},{j}) {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

fn methods() -> Vec<(&'static str, Method)> {
    vec![
        (
            "sbr",
            Method::Sbr {
                b: 4,
                parallel_sweeps: 2,
            },
        ),
        (
            "dbbr",
            Method::Dbbr {
                cfg: DbbrConfig::new(4, 16),
                parallel_sweeps: 2,
            },
        ),
    ]
}

#[test]
fn blocked_parallel_bitwise_matches_serial_across_worker_counts() {
    let n = 56; // not a multiple of PANEL_COLS: exercises the ragged panel
    for (name, method) in methods() {
        let red = tridiagonalize(&mut gen::random_symmetric(n, 11), &method);
        let c0 = gen::random(n, n, 12);

        let mut serial = c0.clone();
        red.apply_q_blocked_ws_with(&mut serial, 16, &mut AllocPool, 1, &mut PanelPools::new());

        for &workers in &[2usize, 4, 7] {
            let mut pools = PanelPools::new();
            let mut par = c0.clone();
            red.apply_q_blocked_ws_with(&mut par, 16, &mut AllocPool, workers, &mut pools);
            assert_mat_bitwise(
                &serial,
                &par,
                &format!("{name} workers={workers} vs serial"),
            );
            // repeats: different thread interleavings and warm panel
            // pools, same bits
            for rep in 0..2 {
                let mut again = c0.clone();
                red.apply_q_blocked_ws_with(&mut again, 16, &mut AllocPool, workers, &mut pools);
                assert_mat_bitwise(
                    &serial,
                    &again,
                    &format!("{name} workers={workers} repeat {rep}"),
                );
            }
        }
    }
}

#[test]
fn caching_pool_is_bitwise_equal_to_alloc_pool() {
    // PR-4 workspace contract: pool-acquired buffers are zeroed on reuse,
    // so swapping the allocator never changes a single bit — even when
    // the caching pool and panel pools are reused across applies.
    let n = 48;
    for (name, method) in methods() {
        let red = tridiagonalize(&mut gen::random_symmetric(n, 21), &method);
        let c0 = gen::random(n, n, 22);

        let mut reference = c0.clone();
        red.apply_q_blocked_ws_with(
            &mut reference,
            16,
            &mut AllocPool,
            2,
            &mut PanelPools::new(),
        );

        let mut cache = CachingPool::new();
        let mut pools = PanelPools::new();
        for rep in 0..3 {
            let mut got = c0.clone();
            red.apply_q_blocked_ws_with(&mut got, 16, &mut cache, 2, &mut pools);
            assert_mat_bitwise(&reference, &got, &format!("{name} caching rep {rep}"));
        }
    }
}

#[test]
fn blocked_path_matches_conventional_apply_within_tolerance() {
    // The blocked path regroups the arithmetic (merged W blocks, panel
    // GEMMs), so it is not bitwise-equal to the reflector-by-reflector
    // apply — but both compute Q·C and must agree to rounding error.
    let n = 48;
    for (name, method) in methods() {
        let red = tridiagonalize(&mut gen::random_symmetric(n, 31), &method);
        let c0 = gen::random(n, n, 32);

        let mut conventional = c0.clone();
        red.apply_q(&mut conventional);

        let mut blocked = c0.clone();
        red.apply_q_blocked_ws_with(&mut blocked, 16, &mut AllocPool, 4, &mut PanelPools::new());

        let mut max_diff = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                max_diff = max_diff.max((conventional[(i, j)] - blocked[(i, j)]).abs());
            }
        }
        assert!(max_diff < 1e-11, "{name}: max |diff| = {max_diff:e}");
    }
}

#[test]
fn direct_method_falls_back_to_reflector_apply() {
    // The one-stage pipeline has no W factors to merge; the pooled entry
    // point must degrade to the ormqr-style apply, bitwise.
    let n = 40;
    let red = tridiagonalize(&mut gen::random_symmetric(n, 41), &Method::Direct { nb: 8 });
    let c0 = gen::random(n, n, 42);

    let mut conventional = c0.clone();
    red.apply_q(&mut conventional);

    let mut blocked = c0.clone();
    red.apply_q_blocked_ws_with(&mut blocked, 16, &mut AllocPool, 4, &mut PanelPools::new());
    assert_mat_bitwise(&conventional, &blocked, "direct fallback");
}
