//! Tier-1 determinism contract for the content-addressed result cache
//! (ISSUE 8): the PR 7 job set — submitted **twice**, so the second pass
//! repeats every problem — served with the cache off and on, under
//! `TG_THREADS ∈ {1, 2, 4, 7}` with the fixed `TG_FAULT_SEED` campaign
//! armed, must produce across all **eight** configurations:
//!
//! * bitwise-identical eigenvalue (and eigenvector) outputs for every
//!   job, identical to the direct `syevd` path — a result served from the
//!   cache or by coalescing is indistinguishable from a fresh solve;
//! * an identical final job-status table;
//! * with the cache on: exactly one worker solve and one cache insertion
//!   per distinct problem, the whole second pass served by the cache or
//!   coalescing, and — because the fault campaign forces retries — proof
//!   that a faulted attempt never reaches the cache (`verify_hits`
//!   re-solves every hit and asserts bitwise equality).
//!
//! One `#[test]`: the runs mutate process-global env (`TG_THREADS`,
//! `TG_FAULT_SEED`) and arm process-global check sessions.

use std::time::Duration;

use tg_check::{CheckConfig, CheckSession, FaultPlan};
use tg_eigen::{syevd, Evd, EvdMethod};
use tg_matrix::{gen, Mat};
use tg_serve::{render_status_table, JobService, JobSpec, JobStatus, Priority, ServeConfig};

const FAULT_SEED: u64 = 2025;
const N: usize = 20;
const JOBS: usize = 8;

/// The PR 7 job set (`tests/serve_determinism.rs`), verbatim.
fn job_set(method: &EvdMethod) -> Vec<JobSpec> {
    (0..JOBS)
        .map(|i| {
            JobSpec::new(
                gen::random_symmetric(N, 300 + i as u64),
                method.clone(),
                i % 2 == 0,
            )
            .with_priority(Priority::ALL[i % 3])
        })
        .collect()
}

struct RunOutput {
    threads: usize,
    cached: bool,
    results: Vec<(Vec<f64>, Option<Mat>)>,
    status_table: String,
    stats: tg_serve::ServiceStats,
}

fn run_config(threads: usize, cached: bool, method: &EvdMethod) -> RunOutput {
    std::env::set_var("TG_THREADS", threads.to_string());
    std::env::set_var("TG_FAULT_SEED", FAULT_SEED.to_string());
    let plan = FaultPlan::from_env().expect("TG_FAULT_SEED just set");
    let session = CheckSession::begin(CheckConfig::fast().with_faults(plan));

    let svc = JobService::start(ServeConfig {
        workers: 0, // resolve from TG_THREADS
        queue_cap: 2 * JOBS,
        default_deadline: Duration::from_secs(300),
        max_retries: 3,
        retry_backoff: Duration::from_micros(100),
        serial_fallback: true,
        cache_bytes: if cached { 8 * 1024 * 1024 } else { 0 },
        dedup: cached,
        // Every hit re-solves through the reference path and panics on a
        // bitwise mismatch — if a faulted attempt ever reached the cache,
        // this run would die here rather than return corrupt bytes.
        verify_hits: cached,
    })
    .expect("valid TG_THREADS must be accepted");
    assert_eq!(svc.workers(), threads, "TG_THREADS not honoured");

    // The job set twice: pass one populates, pass two repeats every
    // problem and (cache on) must be served without a second solve.
    let ids: Vec<_> = job_set(method)
        .into_iter()
        .chain(job_set(method))
        .map(|spec| svc.submit(spec).expect("cap == submission count"))
        .collect();
    let results = ids
        .into_iter()
        .map(|id| {
            let outcome = svc.wait(id);
            assert_eq!(
                outcome.status,
                JobStatus::Completed,
                "job {id} did not complete (TG_THREADS={threads}, cached={cached})"
            );
            let evd: Evd = outcome.result.expect("completed job has a result");
            (evd.eigenvalues, evd.eigenvectors)
        })
        .collect();
    let status_table = render_status_table(&svc.status_table());
    let stats = svc.shutdown();
    drop(session.finish());
    std::env::remove_var("TG_THREADS");
    std::env::remove_var("TG_FAULT_SEED");

    let l = stats.ledger;
    assert!(l.balanced());
    assert!(l.quiescent());
    assert_eq!(
        l.shed + l.completed + l.failed + l.cache_hits + l.coalesced,
        l.submitted,
        "extended conservation violated (TG_THREADS={threads}, cached={cached}): {l:?}"
    );
    RunOutput {
        threads,
        cached,
        results,
        status_table,
        stats,
    }
}

#[test]
fn cache_on_and_off_are_bitwise_identical_across_worker_counts() {
    let method = EvdMethod::proposed_default(N);

    // Uncorrupted serial references, outside any session or env override.
    std::env::remove_var("TG_THREADS");
    let references: Vec<(Vec<f64>, Option<Mat>)> = job_set(&method)
        .into_iter()
        .map(|spec| {
            let evd = syevd(&mut spec.matrix.clone(), &method, spec.want_vectors).unwrap();
            (evd.eigenvalues, evd.eigenvectors)
        })
        .collect();

    let mut runs: Vec<RunOutput> = Vec::new();
    for threads in [1usize, 2, 4, 7] {
        for cached in [false, true] {
            runs.push(run_config(threads, cached, &method));
        }
    }

    for run in &runs {
        let tag = format!("TG_THREADS={}, cached={}", run.threads, run.cached);
        assert_eq!(run.results.len(), 2 * JOBS);
        for (slot, (got, want)) in run
            .results
            .iter()
            .zip(references.iter().chain(references.iter()))
            .enumerate()
        {
            assert_eq!(
                got.0, want.0,
                "eigenvalues diverged from the direct path (job {slot}, {tag})"
            );
            assert_eq!(
                got.1, want.1,
                "eigenvectors diverged from the direct path (job {slot}, {tag})"
            );
        }
        let l = run.stats.ledger;
        if run.cached {
            // One worker solve and one insertion per distinct problem; the
            // whole second pass rode the cache or an in-flight leader.
            assert_eq!(
                l.completed, JOBS as u64,
                "cached run re-solved a repeated problem ({tag}): {l:?}"
            );
            assert_eq!(
                l.cache_hits + l.coalesced,
                JOBS as u64,
                "a repeated submission was served by neither cache nor \
                 coalescing ({tag}): {l:?}"
            );
            assert_eq!(
                run.stats.cache.insertions, JOBS as u64,
                "insertions != distinct problems ({tag})"
            );
        } else {
            assert_eq!(l.completed, 2 * JOBS as u64);
            assert_eq!(
                l.cache_hits + l.coalesced,
                0,
                "cache used while off ({tag})"
            );
            assert_eq!(run.stats.cache.insertions, 0);
        }
        // The armed campaign exercised the retry path — so the cached
        // runs really did retry faulted attempts, and (verify_hits) every
        // hit handed out afterwards was re-proved bitwise-clean: a
        // faulted attempt's bytes never entered the cache.
        assert!(
            run.stats.retries >= 1,
            "TG_FAULT_SEED campaign never fired ({tag})"
        );
    }

    // Identical final status tables across all eight configurations.
    let baseline = &runs[0];
    for run in &runs[1..] {
        assert_eq!(
            run.status_table, baseline.status_table,
            "status table diverged between (TG_THREADS={}, cached={}) and \
             (TG_THREADS={}, cached={})",
            baseline.threads, baseline.cached, run.threads, run.cached
        );
    }
}
