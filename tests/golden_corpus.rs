//! Tier-1 golden regression gate: recomputes every entry of the committed
//! corpus (`tests/golden/corpus.json`) with the proposed pipeline and
//! diffs spectra and residuals against the stored baselines.
//!
//! A mismatch means the pipeline's numerics moved. If the change is
//! intended, regenerate with `cargo run -p tg-bench --bin repro --
//! golden_regen` and commit the new corpus alongside the change that
//! caused it (see `docs/VERIFICATION.md`).

use tg_bench::golden;
use tg_check::golden::GoldenCorpus;

fn load_corpus() -> GoldenCorpus {
    let path = golden::default_corpus_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} unreadable ({e}); run `repro golden_regen`",
            path.display()
        )
    });
    GoldenCorpus::from_json(&text).expect("corpus parses")
}

#[test]
fn committed_corpus_covers_the_fixed_grid() {
    let corpus = load_corpus();
    assert_eq!(corpus.entries.len(), tg_check::golden::GOLDEN_GRID.len());
    for &(n, b, k, seed) in &tg_check::golden::GOLDEN_GRID {
        assert!(
            corpus
                .entries
                .iter()
                .any(|e| (e.n, e.b, e.k, e.seed) == (n, b, k, seed)),
            "corpus is missing grid entry (n={n}, b={b}, k={k}, seed={seed})"
        );
    }
}

#[test]
fn recomputed_entries_match_committed_baselines() {
    let corpus = load_corpus();
    let fresh: Vec<_> = corpus
        .entries
        .iter()
        .map(|e| golden::compute_entry(e.n, e.b, e.k, e.seed))
        .collect();
    let diffs = corpus.compare(&fresh);
    assert!(
        diffs.is_empty(),
        "golden corpus mismatch (regenerate with `repro golden_regen` if \
         the numerical change is intended):\n{}",
        diffs.join("\n")
    );
}
