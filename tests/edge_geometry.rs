//! Degenerate and boundary geometry through every public pipeline:
//! tiny matrices, extreme block parameters, and parameter/size mismatches.

use tridiag_gpu::prelude::*;

#[test]
fn tiny_matrices_all_pipelines() {
    for n in [1usize, 2, 3, 4] {
        let a = gen::random_symmetric(n, n as u64);
        for m in [
            Method::Direct { nb: 2 },
            Method::Sbr {
                b: 1,
                parallel_sweeps: 2,
            },
            Method::Dbbr {
                cfg: DbbrConfig::new(1, 2),
                parallel_sweeps: 2,
            },
        ] {
            let mut w = a.clone();
            let red = tridiagonalize(&mut w, &m);
            assert_eq!(red.tri.n(), n);
            if n > 1 {
                let q = red.form_q();
                assert!(
                    similarity_residual(&a, &q, &red.tri.to_dense()) < 1e-12,
                    "n={n} {m:?}"
                );
            }
        }
    }
}

#[test]
fn block_parameters_exceeding_size() {
    let n = 10;
    let a = gen::random_symmetric(n, 77);
    // nb ≫ n for direct; b close to n for two-stage; k ≫ n for DBBR
    for m in [
        Method::Direct { nb: 64 },
        Method::Sbr {
            b: n - 1,
            parallel_sweeps: 4,
        },
        Method::Sbr {
            b: n + 5,
            parallel_sweeps: 1,
        },
        Method::Dbbr {
            cfg: DbbrConfig::new(3, 300),
            parallel_sweeps: 64,
        },
    ] {
        let mut w = a.clone();
        let red = tridiagonalize(&mut w, &m);
        let q = red.form_q();
        assert!(
            similarity_residual(&a, &q, &red.tri.to_dense()) < 1e-11,
            "{m:?}"
        );
    }
}

#[test]
fn bc_bandwidth_one_and_huge() {
    // bandwidth 1: already tridiagonal, zero work
    let t = gen::random_tridiagonal(12, 3);
    let band = SymBand::from_dense_lower(&t.to_dense(), 1);
    let r = bulge_chase_pipelined(&band, 7);
    assert_eq!(r.reflector_count(), 0);
    assert_eq!(r.tri.d, t.d);
    // bandwidth n−1: fully dense in band form
    let n = 9;
    let dense = gen::random_symmetric(n, 5);
    let band = SymBand::from_dense_lower(&dense, n - 1);
    let r = bulge_chase_seq(&band);
    let q = r.form_q(n);
    assert!(similarity_residual(&dense, &q, &r.tri.to_dense()) < 1e-12);
}

#[test]
fn evd_of_1x1_and_2x2() {
    let mut a1 = Mat::from_rows(1, 1, &[3.5]);
    let e = syevd(&mut a1, &EvdMethod::CusolverLike { nb: 1 }, true).unwrap();
    assert_eq!(e.eigenvalues, vec![3.5]);

    let a2 = Mat::from_rows(2, 2, &[2.0, 1.0, 1.0, 2.0]);
    let e = syevd(&mut a2.clone(), &EvdMethod::MagmaLike { b: 1 }, true).unwrap();
    assert!((e.eigenvalues[0] - 1.0).abs() < 1e-14);
    assert!((e.eigenvalues[1] - 3.0).abs() < 1e-14);
    assert!(e.residual(&a2) < 1e-14);
}

#[test]
#[should_panic]
fn gemm_dimension_mismatch_panics() {
    use tridiag_gpu::blas::{gemm, Op};
    let a = gen::random(3, 4, 1);
    let b = gen::random(5, 2, 2); // inner dims 4 vs 5
    let mut c = Mat::zeros(3, 2);
    gemm(
        1.0,
        &a.as_ref(),
        Op::NoTrans,
        &b.as_ref(),
        Op::NoTrans,
        0.0,
        &mut c.as_mut(),
    );
}

#[test]
#[should_panic]
fn syr2k_non_square_c_panics() {
    use tridiag_gpu::blas::syr2k_blocked;
    let a = gen::random(4, 2, 1);
    let b = gen::random(4, 2, 2);
    let mut c = Mat::zeros(4, 5);
    syr2k_blocked(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut(), 2);
}

#[test]
#[should_panic]
fn band_storage_too_small_panics() {
    let _ = SymBand::with_storage(8, 3, 3); // ldab must exceed kd
}

#[test]
fn backtransform_width_one_factors() {
    // b = 1 band reduction: every WY factor has a single column
    let n = 14;
    let a = gen::random_symmetric(n, 31);
    let red = band_reduce(&mut a.clone(), 1, 8);
    assert!(red.factors.iter().all(|(_, f)| f.width() == 1));
    let c0 = gen::random(n, 3, 32);
    let mut c1 = c0.clone();
    tridiag_gpu::core::backtransform::apply_q1(&red.factors, &mut c1, false);
    let mut c2 = c0.clone();
    tridiag_gpu::core::backtransform::apply_q1_blocked(&red.factors, &mut c2, 4);
    assert!(tridiag_gpu::matrix::max_abs_diff(&c1, &c2) < 1e-12);
}

#[test]
fn sweeps_beyond_hardware() {
    // more parallel sweeps than sweeps exist, and exactly n−2
    let n = 16;
    let b = 2;
    let dense = gen::random_symmetric_band(n, b, 8);
    let band = SymBand::from_dense_lower(&dense, b);
    let reference = bulge_chase_seq(&band);
    for s in [n - 2, n, 1000] {
        let r = bulge_chase_pipelined(&band, s);
        assert_eq!(r.tri.d, reference.tri.d, "S={s}");
    }
}

#[test]
fn generators_accept_degenerate_sizes() {
    assert_eq!(gen::random_symmetric(0, 1).nrows(), 0);
    assert_eq!(gen::laplacian_1d(1).n(), 1);
    assert_eq!(gen::random_tridiagonal(0, 1).n(), 0);
    let t = gen::tight_binding_1d(1, 1.0, 0.5, 2);
    assert_eq!(t.e.len(), 0);
}
