//! Differential test harness over every reduction path.
//!
//! Every tridiagonalization method — direct blocked (`sytrd`), two-stage
//! with single-blocking SBR, double-blocking DBBR, and the sweep-grouped
//! DBBR schedule — is an orthogonal similarity, so all of them must
//! produce the *same spectrum*. These properties reduce random symmetric
//! matrices through every path, solve each tridiagonal form with the QL
//! iteration (`sterf`, the eigenvalue core of `steqr`), and require the
//! spectra to agree within an `n·ε`-scaled tolerance.
//!
//! The number of cases per property honours `PROPTEST_CASES` (the nightly
//! CI job raises it to 256; the default keeps `cargo test` fast).

use proptest::prelude::*;
use tridiag_gpu::prelude::*;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// Every reduction path at a given band geometry.
fn all_methods(b: usize, k: usize, sweeps: usize) -> Vec<(&'static str, Method)> {
    vec![
        ("direct", Method::Direct { nb: b.max(2) }),
        (
            "sbr",
            Method::Sbr {
                b,
                parallel_sweeps: sweeps,
            },
        ),
        (
            "dbbr",
            Method::Dbbr {
                cfg: DbbrConfig::new(b, k),
                parallel_sweeps: sweeps,
            },
        ),
        (
            "dbbr_grouped",
            Method::DbbrGrouped {
                cfg: DbbrConfig::new(b, k),
                workers: 2,
                group: 2,
            },
        ),
    ]
}

/// Reduce with `method`, then solve the tridiagonal form with QL.
fn spectrum_via(a: &Mat, method: &Method) -> Vec<f64> {
    let red = tridiagonalize(&mut a.clone(), method);
    sterf(&red.tri).expect("QL failed to converge")
}

/// Asserts two ascending spectra agree within `n·ε` scaled by the
/// spectral radius (LAPACK-style absolute eigenvalue error bound).
fn assert_spectra_match(n: usize, want: &[f64], got: &[f64], label: &str) {
    let scale = want.iter().chain(got).fold(1.0f64, |m, &x| m.max(x.abs()));
    // constant absorbs the accumulated reflector count of the deeper paths
    let tol = 64.0 * n as f64 * f64::EPSILON * scale;
    assert_eq!(want.len(), got.len(), "{label}: length");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert!(
            (w - g).abs() <= tol,
            "{label}: eigenvalue {i}: {w} vs {g} (|Δ| = {:.3e} > tol {:.3e})",
            (w - g).abs(),
            tol
        );
    }
}

fn check_all_paths(n: usize, a: &Mat, b: usize, k: usize, sweeps: usize) {
    let methods = all_methods(b, k, sweeps);
    let reference = spectrum_via(a, &methods[0].1);
    assert!(
        reference.windows(2).all(|w| w[0] <= w[1]),
        "reference spectrum not ascending"
    );
    for (label, m) in &methods[1..] {
        let got = spectrum_via(a, m);
        assert_spectra_match(n, &reference, &got, label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Uniform random symmetric matrices, arbitrary geometry.
    #[test]
    fn all_reductions_agree_random(
        n in 6usize..48,
        b in 2usize..6,
        km in 1usize..5,
        sweeps in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let a = gen::random_symmetric(n, seed);
        check_all_paths(n, &a, b, b * km, sweeps);
    }

    /// Graded spectra (geometrically decaying eigenvalues over ~12 decades)
    /// — stresses the small-eigenvalue end of the QL iteration.
    #[test]
    fn all_reductions_agree_graded(
        n in 6usize..36,
        b in 2usize..5,
        km in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let eigs: Vec<f64> = (0..n).map(|i| 10f64.powf(-(12.0 * i as f64 / n as f64))).collect();
        let a = gen::with_spectrum(&eigs, seed);
        check_all_paths(n, &a, b, b * km, 2);
    }

    /// Clustered spectra (three tight clusters split by ~1e-9) — stresses
    /// deflation-adjacent behaviour without relying on D&C.
    #[test]
    fn all_reductions_agree_clustered(
        n in 9usize..36,
        b in 2usize..5,
        km in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let eigs: Vec<f64> = (0..n)
            .map(|i| (i % 3) as f64 + 1e-9 * (i / 3) as f64)
            .collect();
        let a = gen::with_spectrum(&eigs, seed);
        check_all_paths(n, &a, b, b * km, 3);
    }

    /// The full `syevd` drivers agree with each other too (eigenvalues
    /// through D&C rather than plain QL), so the differential property
    /// covers the complete pipelines, not just the reductions.
    #[test]
    fn evd_drivers_agree(n in 6usize..32, seed in 0u64..10_000) {
        let a = gen::random_symmetric(n, seed);
        let b = (n / 6).clamp(2, 4);
        let reference = syevd(&mut a.clone(), &EvdMethod::CusolverLike { nb: b }, true)
            .unwrap()
            .eigenvalues;
        for m in [
            EvdMethod::MagmaLike { b },
            EvdMethod::Proposed { b, k: 2 * b, parallel_sweeps: 2, backtransform_k: 4 * b, lookahead: true },
        ] {
            let got = syevd(&mut a.clone(), &m, true).unwrap().eigenvalues;
            assert_spectra_match(n, &reference, &got, &format!("{m:?}"));
        }
    }
}
