//! Tier-1 determinism contract for the job service (ISSUE 7 satellite):
//! the *same* job set, served under `TG_THREADS ∈ {1, 2, 4, 7}` with a
//! fixed `TG_FAULT_SEED` campaign armed, must produce
//!
//! * bitwise-identical eigenvalue (and eigenvector) outputs for every
//!   job, identical to the direct `syevd` path, and
//! * an identical final job-status table,
//!
//! across all worker counts. Everything lives in one `#[test]` because
//! the runs mutate `TG_THREADS` (process-global) and arm process-global
//! check sessions — they must be strictly sequential.

use std::time::Duration;

use tg_check::{CheckConfig, CheckSession, FaultPlan};
use tg_eigen::{syevd, Evd, EvdMethod};
use tg_matrix::{gen, Mat};
use tg_serve::{render_status_table, JobService, JobSpec, JobStatus, Priority, ServeConfig};

const FAULT_SEED: u64 = 2025;
const N: usize = 20;
const JOBS: usize = 8;

fn job_set(method: &EvdMethod) -> Vec<JobSpec> {
    (0..JOBS)
        .map(|i| {
            JobSpec::new(
                gen::random_symmetric(N, 300 + i as u64),
                method.clone(),
                i % 2 == 0, // alternate vectors / values-only
            )
            .with_priority(Priority::ALL[i % 3])
        })
        .collect()
}

struct RunOutput {
    threads: usize,
    results: Vec<(Vec<f64>, Option<Mat>)>,
    status_table: String,
    completed: u64,
    retries: u64,
}

fn run_with_threads(threads: usize, method: &EvdMethod) -> RunOutput {
    std::env::set_var("TG_THREADS", threads.to_string());
    std::env::set_var("TG_FAULT_SEED", FAULT_SEED.to_string());
    let plan = FaultPlan::from_env().expect("TG_FAULT_SEED just set");
    let session = CheckSession::begin(CheckConfig::fast().with_faults(plan));

    let svc = JobService::start(ServeConfig {
        workers: 0, // resolve from TG_THREADS — the knob under test
        queue_cap: JOBS,
        default_deadline: Duration::from_secs(300),
        max_retries: 3,
        retry_backoff: Duration::from_micros(100),
        serial_fallback: true,
        ..ServeConfig::default()
    })
    .expect("valid TG_THREADS must be accepted");
    assert_eq!(svc.workers(), threads, "TG_THREADS not honoured");

    let ids: Vec<_> = job_set(method)
        .into_iter()
        .map(|spec| svc.submit(spec).expect("cap == job count: no shedding"))
        .collect();
    let results = ids
        .into_iter()
        .map(|id| {
            let outcome = svc.wait(id);
            assert_eq!(
                outcome.status,
                JobStatus::Completed,
                "job {id} did not complete under TG_THREADS={threads}"
            );
            let evd: Evd = outcome.result.expect("completed job has a result");
            (evd.eigenvalues, evd.eigenvectors)
        })
        .collect();
    let status_table = render_status_table(&svc.status_table());
    let stats = svc.shutdown();
    drop(session.finish());
    std::env::remove_var("TG_THREADS");
    std::env::remove_var("TG_FAULT_SEED");

    assert!(stats.ledger.balanced());
    RunOutput {
        threads,
        results,
        status_table,
        completed: stats.ledger.completed,
        retries: stats.retries,
    }
}

#[test]
fn identical_job_sets_are_bitwise_identical_across_worker_counts() {
    let method = EvdMethod::proposed_default(N);

    // Uncorrupted serial references, outside any session or env override.
    std::env::remove_var("TG_THREADS");
    let references: Vec<(Vec<f64>, Option<Mat>)> = job_set(&method)
        .into_iter()
        .map(|spec| {
            let evd = syevd(&mut spec.matrix.clone(), &method, spec.want_vectors).unwrap();
            (evd.eigenvalues, evd.eigenvectors)
        })
        .collect();

    let runs: Vec<RunOutput> = [1usize, 2, 4, 7]
        .into_iter()
        .map(|t| run_with_threads(t, &method))
        .collect();

    for run in &runs {
        assert_eq!(run.completed as usize, JOBS);
        for (job, (got, want)) in run.results.iter().zip(&references).enumerate() {
            assert_eq!(
                got.0, want.0,
                "eigenvalues diverged from the direct path \
                 (job {job}, TG_THREADS={})",
                run.threads
            );
            assert_eq!(
                got.1, want.1,
                "eigenvectors diverged from the direct path \
                 (job {job}, TG_THREADS={})",
                run.threads
            );
        }
    }
    // Identical final status tables across all worker counts.
    let baseline = &runs[0];
    for run in &runs[1..] {
        assert_eq!(
            run.status_table, baseline.status_table,
            "status table diverged between TG_THREADS={} and TG_THREADS={}",
            baseline.threads, run.threads
        );
    }
    // The armed campaign actually exercised the retry path in every run —
    // without this the test would silently degrade into a no-fault rerun.
    for run in &runs {
        assert!(
            run.retries >= 1,
            "TG_FAULT_SEED campaign never fired under TG_THREADS={}",
            run.threads
        );
    }
}
