//! Consistency between the GPU performance model and the real
//! implementations: the model's *structural* quantities (task counts, loop
//! trip counts, flop totals) must match what the Rust implementations
//! actually do — this is what makes the composed figures trustworthy.

use tridiag_gpu::gpu_sim::pipeline::tasks_in_sweep;
use tridiag_gpu::prelude::*;

/// The DES task count per sweep equals the number of reflectors the real
/// bulge-chasing sweep generates.
#[test]
fn pipeline_task_counts_match_real_sweeps() {
    for (n, b) in [(24usize, 3usize), (30, 4), (17, 2), (40, 5)] {
        let dense = gen::random_symmetric_band(n, b, 5);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        for (s, sweep) in res.reflectors.iter().enumerate() {
            assert_eq!(
                sweep.len(),
                tasks_in_sweep(n, b, s),
                "task count mismatch at sweep {s} (n={n}, b={b})"
            );
        }
    }
}

/// The model's SBR loop trip count equals the real factor count.
#[test]
fn sbr_factor_count_matches_model_loop() {
    for (n, b) in [(24usize, 4usize), (30, 3), (50, 7)] {
        let mut a = gen::random_symmetric(n, 9);
        let red = band_reduce(&mut a, b, 16);
        // the model iterates j = 0, b, 2b, … while j + b + 1 < n
        let mut expected = 0;
        let mut j = 0;
        while j + b + 1 < n {
            expected += 1;
            j += b;
        }
        assert_eq!(red.factors.len(), expected, "n={n} b={b}");
    }
}

/// DBBR's factor offsets equal SBR's (same elimination order), and the
/// number of deferred trailing updates equals ⌈panels·b/k⌉ outer blocks.
#[test]
fn dbbr_structure_matches_model() {
    let n = 40;
    let b = 4;
    let k = 12;
    let mut a1 = gen::random_symmetric(n, 10);
    let sbr = band_reduce(&mut a1, b, 16);
    let mut a2 = gen::random_symmetric(n, 10);
    let dbr = dbbr(&mut a2, &DbbrConfig::new(b, k));
    let offs_sbr: Vec<usize> = sbr.factors.iter().map(|f| f.0).collect();
    let offs_dbr: Vec<usize> = dbr.factors.iter().map(|f| f.0).collect();
    assert_eq!(offs_sbr, offs_dbr);
}

/// Total reflector count in BC ≈ n²/(2b) — the quantity the back
/// transformation cost model scales with.
#[test]
fn bc_reflector_count_scaling() {
    let b = 4;
    for n in [32usize, 64, 96] {
        let dense = gen::random_symmetric_band(n, b, 6);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        let count = res.reflector_count() as f64;
        let expected = (n * n) as f64 / (2.0 * b as f64);
        assert!(
            (count - expected).abs() / expected < 0.35,
            "n={n}: {count} reflectors vs ~{expected}"
        );
    }
}

/// Model flop counters agree with the paper's conventions.
#[test]
fn flop_conventions() {
    use tridiag_gpu::blas::flops;
    assert_eq!(flops::gemm(10, 20, 30), 2 * 10 * 20 * 30);
    assert_eq!(flops::syr2k(100, 8), 2 * 8 * 100 * 101);
    assert_eq!(flops::sytrd(300), 4 * 300u64.pow(3) / 3);
}
