//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use tridiag_gpu::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DBBR's contract holds for arbitrary (n, b, k-multiplier) geometry.
    #[test]
    fn dbbr_contract_random_geometry(
        n in 6usize..40,
        b in 1usize..6,
        km in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a0 = gen::random_symmetric(n, seed);
        let mut a = a0.clone();
        let cfg = DbbrConfig::new(b, b * km);
        let red = dbbr(&mut a, &cfg);
        prop_assert!(red.band.is_band_within(b, 1e-11));
        let q = red.form_q(n);
        prop_assert!(orthogonality_residual(&q) < 1e-11);
        prop_assert!(similarity_residual(&a0, &q, &red.band.to_dense()) < 1e-10);
    }

    /// Bulge chasing preserves trace and Frobenius norm (orthogonal
    /// similarity invariants) for arbitrary band geometry.
    #[test]
    fn bc_preserves_invariants(
        n in 4usize..36,
        b in 1usize..7,
        seed in 0u64..1000,
        sweeps in 1usize..6,
    ) {
        let b = b.min(n.saturating_sub(1)).max(1);
        let dense = gen::random_symmetric_band(n, b, seed);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_pipelined(&band, sweeps);
        let tr0: f64 = (0..n).map(|i| dense[(i, i)]).sum();
        prop_assert!((res.tri.trace() - tr0).abs() < 1e-9 * (1.0 + tr0.abs()));
        let f0 = tridiag_gpu::matrix::frob_norm(&dense);
        prop_assert!((res.tri.frob_sq().sqrt() - f0).abs() < 1e-9 * (1.0 + f0));
    }

    /// Eigen-decomposition residual is backward-stable for random inputs.
    #[test]
    fn syevd_residual_random(n in 3usize..32, seed in 0u64..500) {
        let a = gen::random_symmetric(n, seed);
        let b = (n / 6).clamp(1, 4);
        let m = EvdMethod::Proposed {
            b,
            k: b * 2,
            parallel_sweeps: 2,
            backtransform_k: b * 4,
            lookahead: true,
        };
        let evd = syevd(&mut a.clone(), &m, true).unwrap();
        prop_assert!(evd.residual(&a) < 1e-10);
        // eigenvalues ascending and within the Gershgorin disc union
        prop_assert!(evd.eigenvalues.windows(2).all(|w| w[0] <= w[1]));
        let bound: f64 = (0..n)
            .map(|i| (0..n).map(|j| a[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max);
        prop_assert!(evd.eigenvalues.iter().all(|&e| e.abs() <= bound + 1e-9));
    }

    /// Sturm counts of the reduced T match the computed spectrum exactly.
    #[test]
    fn sturm_counts_consistent(n in 4usize..28, seed in 0u64..500) {
        let a = gen::random_symmetric(n, seed);
        let mut w = a.clone();
        let tri = tridiagonalize(&mut w, &Method::Direct { nb: 4 }).tri;
        let eigs = sterf(&tri).unwrap();
        for (k, &lam) in eigs.iter().enumerate() {
            prop_assert!(tri.sturm_count(lam - 1e-7 * (1.0 + lam.abs())) <= k);
            prop_assert!(tri.sturm_count(lam + 1e-7 * (1.0 + lam.abs())) > k);
        }
    }

    /// The WY merge (Algorithm 3) is associative in effect: merging in any
    /// grouping yields the same orthogonal factor.
    #[test]
    fn wy_merge_grouping_invariant(n in 6usize..20, seed in 0u64..200) {
        use tridiag_gpu::householder::panel::panel_qr;
        use tridiag_gpu::householder::wblock::{compute_w_recursive, merge_pair, WyPair};
        let factor = |s: u64| {
            let mut p = gen::random(n, 2, s);
            let pq = {
                let mut v = p.as_mut();
                panel_qr(&mut v)
            };
            WyPair { w: pq.block.w(), y: pq.block.v.clone() }
        };
        let f: Vec<WyPair> = (0..4).map(|i| factor(seed * 10 + i)).collect();
        let left = merge_pair(&merge_pair(&f[0], &f[1]), &merge_pair(&f[2], &f[3]));
        let rec = compute_w_recursive(&f);
        let d1 = left.to_dense(n);
        let d2 = rec.to_dense(n);
        prop_assert!(tridiag_gpu::matrix::max_abs_diff(&d1, &d2) < 1e-10);
    }

    /// Band storage round-trips through dense for arbitrary geometry.
    #[test]
    fn band_round_trip(n in 1usize..40, kd in 0usize..8) {
        let kd = kd.min(n.saturating_sub(1));
        let dense = gen::random_symmetric_band(n.max(1), kd, 3);
        let band = SymBand::from_dense_lower(&dense, kd);
        prop_assert_eq!(band.to_dense(), dense);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The closed-form pipeline model upper-bounds parallel efficiency:
    /// more sweeps never hurt, and the serial case equals total work.
    #[test]
    fn pipeline_model_sanity(n in 64usize..512, b in 2usize..16) {
        use tridiag_gpu::gpu_sim::{bc_model, pipeline};
        let mut prev = f64::INFINITY;
        for s in [1usize, 2, 4, 8, 32] {
            let t = bc_model::total_cycles(n, b, s);
            prop_assert!(t <= prev + 1e-9);
            prev = t;
        }
        let des = pipeline::simulate(n, b, 1, 1.0);
        prop_assert_eq!(des.makespan_s, des.total_tasks as f64);
    }
}
