//! Integration tests over the GPU performance-model substrate as a whole:
//! figure generators, anchors, tuning and ablations must stay mutually
//! consistent (they all compose the same kernel primitives).

use tridiag_gpu::gpu_sim::{ablation, anchors, compose, figures, tune, Device};

#[test]
fn figures_serialize_to_json() {
    // the `repro json` dump must stay machine-readable
    let v = serde_json::json!({
        "table1": figures::table1(),
        "fig9": figures::fig9(),
        "fig11": figures::fig11(),
        "fig16": figures::fig16(),
        "anchors": anchors::anchor_report(),
    });
    let s = serde_json::to_string(&v).unwrap();
    assert!(s.len() > 1000);
    let back: serde_json::Value = serde_json::from_str(&s).unwrap();
    assert_eq!(back["table1"].as_array().unwrap().len(), 9);
    assert!(back["anchors"].as_array().unwrap().len() >= 25);
}

#[test]
fn fig15_and_fig16_share_tridiag_times() {
    // figure 16's EVD = figure 15's tridiag + D&C (+ back transforms):
    // the composition must be internally consistent
    let dev = Device::h100();
    let n = 32768;
    let f15 = figures::fig15(&dev, &[n]);
    let ours_tridiag = f15[0].ours_stage1_s + f15[0].ours_bc_s;
    let evd_novec = compose::evd_ours(&dev, n, false);
    let dc = compose::dc_time_magma(n);
    assert!(
        (evd_novec - (ours_tridiag + dc)).abs() < 1e-9,
        "{evd_novec} vs {ours_tridiag} + {dc}"
    );
}

#[test]
fn ablation_endpoints_match_figures() {
    // the ablation ladder's first and last rungs are exactly the MAGMA and
    // proposed configurations of figure 15
    let dev = Device::h100();
    let n = 49152;
    let ladder = ablation::ladder(&dev, n);
    let f15 = figures::fig15(&dev, &[n]);
    let magma = f15[0].magma_sbr_s + f15[0].magma_bc_s;
    let ours = f15[0].ours_stage1_s + f15[0].ours_bc_s;
    assert!((ladder[0].total_s - magma).abs() < 1e-9);
    assert!((ladder.last().unwrap().total_s - ours).abs() < 1e-9);
}

#[test]
fn tuned_config_no_worse_than_figure15_config() {
    let dev = Device::h100();
    for n in [16384usize, 49152] {
        let best = tune::best_config(&dev, n);
        let f15 = figures::fig15(&dev, &[n]);
        let paper = f15[0].ours_stage1_s + f15[0].ours_bc_s;
        assert!(best.total_s() <= paper * 1.0001, "n={n}");
    }
}

#[test]
fn speedup_headlines_all_in_paper_range() {
    // the three headline numbers of the abstract: 9.3× vs cuSOLVER,
    // 5.2× vs MAGMA (tridiagonalization), 19.6 TFLOP/s
    let dev = Device::h100();
    let mut best_cus = 0.0f64;
    for n in [16384usize, 32768, 49152] {
        let f = &figures::fig15(&dev, &[n])[0];
        let ours = f.ours_stage1_s + f.ours_bc_s;
        best_cus = best_cus.max(f.cusolver_s / ours);
    }
    assert!(
        (6.0..12.0).contains(&best_cus),
        "tridiag speedup vs cuSOLVER {best_cus:.1} (paper: up to 9.3×)"
    );
    // vs MAGMA at the anchor size (mid-size model ratios are inflated by
    // MAGMA's cuBLAS call floors — see EXPERIMENTS.md)
    let f = &figures::fig15(&dev, &[49152])[0];
    let at_49k = (f.magma_sbr_s + f.magma_bc_s) / (f.ours_stage1_s + f.ours_bc_s);
    assert!(
        (3.5..7.0).contains(&at_49k),
        "tridiag speedup vs MAGMA {at_49k:.1} (paper: up to 5.2×)"
    );
}

#[test]
fn four090_never_reaches_h100_rates() {
    let h = Device::h100();
    let r = Device::rtx4090();
    for n in [8192usize, 32768] {
        let fh = &figures::fig15(&h, &[n])[0];
        let fr = &figures::fig15(&r, &[n])[0];
        assert!(fr.ours_tflops < fh.ours_tflops / 2.5);
        // but the 4090 can exceed its own FP64 peak via INT8 DGEMM at scale
        if n >= 32768 {
            assert!(fr.ours_tflops > 0.8);
        }
    }
}

#[test]
fn bc_model_des_agreement_across_geometries() {
    use tridiag_gpu::gpu_sim::{bc_model, pipeline};
    for (n, b) in [(2048usize, 16usize), (4096, 32), (1024, 8)] {
        for s in [8usize, 32, 1000] {
            let closed = bc_model::total_cycles(n, b, s);
            let des = pipeline::simulate(n, b, s, 1.0).makespan_s;
            let rel = (closed - des).abs() / des;
            assert!(rel < 0.4, "n={n} b={b} S={s}: closed {closed} vs DES {des}");
        }
    }
}
