//! Property-based tests over the BLAS substrate: algebraic identities that
//! must hold for any shape and data.

use proptest::prelude::*;
use tridiag_gpu::blas::{self, gemm, gemm_into, gemm_packed, Op};
use tridiag_gpu::matrix::{gen, max_abs_diff, Mat};

fn naive_gemm(a: &Mat, op_a: Op, b: &Mat, op_b: Op) -> Mat {
    let m = if op_a == Op::NoTrans {
        a.nrows()
    } else {
        a.ncols()
    };
    let k = if op_a == Op::NoTrans {
        a.ncols()
    } else {
        a.nrows()
    };
    let n = if op_b == Op::NoTrans {
        b.ncols()
    } else {
        b.nrows()
    };
    Mat::from_fn(m, n, |i, j| {
        (0..k)
            .map(|l| {
                let x = if op_a == Op::NoTrans {
                    a[(i, l)]
                } else {
                    a[(l, i)]
                };
                let y = if op_b == Op::NoTrans {
                    b[(l, j)]
                } else {
                    b[(j, l)]
                };
                x * y
            })
            .sum()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both GEMM kernels match the naive triple loop for any shape/ops.
    #[test]
    fn gemm_kernels_match_naive(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        seed in 0u64..500,
    ) {
        let op_a = if ta { Op::Trans } else { Op::NoTrans };
        let op_b = if tb { Op::Trans } else { Op::NoTrans };
        let (ar, ac) = if ta { (k, m) } else { (m, k) };
        let (br, bc) = if tb { (n, k) } else { (k, n) };
        let a = gen::random(ar, ac, seed);
        let b = gen::random(br, bc, seed + 1);
        let expect = naive_gemm(&a, op_a, &b, op_b);
        let got = gemm_into(1.0, &a.as_ref(), op_a, &b.as_ref(), op_b);
        prop_assert!(max_abs_diff(&got, &expect) < 1e-10);
        let mut packed = Mat::zeros(m, n);
        gemm_packed(1.0, &a.as_ref(), op_a, &b.as_ref(), op_b, 0.0, &mut packed.as_mut());
        prop_assert!(max_abs_diff(&packed, &expect) < 1e-10);
    }

    /// GEMM is linear in α and distributes over matrix addition.
    #[test]
    fn gemm_linearity(m in 1usize..16, n in 1usize..16, k in 1usize..16, seed in 0u64..200) {
        let a = gen::random(m, k, seed);
        let b1 = gen::random(k, n, seed + 1);
        let b2 = gen::random(k, n, seed + 2);
        // A(B1 + B2) == AB1 + AB2
        let mut bsum = b1.clone();
        for (x, y) in bsum.as_mut_slice().iter_mut().zip(b2.as_slice()) {
            *x += y;
        }
        let lhs = gemm_into(1.0, &a.as_ref(), Op::NoTrans, &bsum.as_ref(), Op::NoTrans);
        let mut rhs = gemm_into(1.0, &a.as_ref(), Op::NoTrans, &b1.as_ref(), Op::NoTrans);
        gemm(1.0, &a.as_ref(), Op::NoTrans, &b2.as_ref(), Op::NoTrans, 1.0, &mut rhs.as_mut());
        prop_assert!(max_abs_diff(&lhs, &rhs) < 1e-10);
        // (2α)AB == 2(αAB)
        let two = gemm_into(2.0, &a.as_ref(), Op::NoTrans, &b1.as_ref(), Op::NoTrans);
        let one = gemm_into(1.0, &a.as_ref(), Op::NoTrans, &b1.as_ref(), Op::NoTrans);
        for j in 0..n {
            for i in 0..m {
                prop_assert!((two[(i, j)] - 2.0 * one[(i, j)]).abs() < 1e-11);
            }
        }
    }

    /// `(AB)ᵀ == BᵀAᵀ` through the transpose-op plumbing.
    #[test]
    fn gemm_transpose_identity(m in 1usize..20, n in 1usize..20, k in 1usize..20, seed in 0u64..200) {
        let a = gen::random(m, k, seed);
        let b = gen::random(k, n, seed + 3);
        let ab = gemm_into(1.0, &a.as_ref(), Op::NoTrans, &b.as_ref(), Op::NoTrans);
        let btat = gemm_into(1.0, &b.as_ref(), Op::Trans, &a.as_ref(), Op::Trans);
        prop_assert!(max_abs_diff(&ab.transpose(), &btat) < 1e-11);
    }

    /// All three syr2k blockings agree and preserve upper-triangle bytes.
    #[test]
    fn syr2k_variants_agree(
        n in 1usize..30,
        k in 1usize..10,
        nb in 1usize..12,
        seed in 0u64..200,
    ) {
        let a = gen::random(n, k, seed);
        let b = gen::random(n, k, seed + 1);
        let c0 = gen::random_symmetric(n, seed + 2);
        let mut c_ref = c0.clone();
        blas::level3::syr2k_ref(1.0, &a.as_ref(), &b.as_ref(), 0.5, &mut c_ref.as_mut());
        let mut c_blk = c0.clone();
        blas::syr2k_blocked(1.0, &a.as_ref(), &b.as_ref(), 0.5, &mut c_blk.as_mut(), nb);
        let mut c_sq = c0.clone();
        blas::syr2k_square(1.0, &a.as_ref(), &b.as_ref(), 0.5, &mut c_sq.as_mut(), nb, 2);
        for j in 0..n {
            for i in j..n {
                prop_assert!((c_blk[(i, j)] - c_ref[(i, j)]).abs() < 1e-10);
                prop_assert!((c_sq[(i, j)] - c_ref[(i, j)]).abs() < 1e-10);
            }
            for i in 0..j {
                prop_assert_eq!(c_blk[(i, j)], c0[(i, j)]);
                prop_assert_eq!(c_sq[(i, j)], c0[(i, j)]);
            }
        }
    }

    /// `symv` against the lower triangle equals dense `gemv` on the
    /// symmetrized matrix, and `nrm2` is scale-exact.
    #[test]
    fn level12_identities(n in 1usize..32, seed in 0u64..200) {
        let a = gen::random_symmetric(n, seed);
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
        let mut y1 = vec![0.0; n];
        blas::level2::symv_lower(1.0, &a.as_ref(), &x, 0.0, &mut y1);
        let mut y2 = vec![0.0; n];
        blas::level2::gemv_n(1.0, &a.as_ref(), &x, 0.0, &mut y2);
        for (p, q) in y1.iter().zip(&y2) {
            prop_assert!((p - q).abs() < 1e-11);
        }
        let nrm = blas::level1::nrm2(&x);
        let scaled: Vec<f64> = x.iter().map(|v| v * 1e150).collect();
        prop_assert!((blas::level1::nrm2(&scaled) / 1e150 - nrm).abs() < 1e-12 * (1.0 + nrm));
    }
}
