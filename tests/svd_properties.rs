//! Property tests for the SVD substrate (two-stage bidiagonal reduction).

use proptest::prelude::*;
use tridiag_gpu::matrix::gen;
use tridiag_gpu::svd::{gb2bd, ge2gb, singular_values, SvdMethod};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direct and two-stage singular values agree for random shapes and
    /// bandwidths, and are non-negative descending.
    #[test]
    fn methods_agree(n in 3usize..26, b in 1usize..6, seed in 0u64..300) {
        let a = gen::random(n, n, seed);
        let s1 = singular_values(&a, SvdMethod::Direct);
        let s2 = singular_values(&a, SvdMethod::TwoStage { b });
        prop_assert_eq!(s1.len(), n);
        prop_assert!(s1.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        prop_assert!(s1.iter().all(|&x| x >= 0.0));
        let scale = s1[0].max(1e-300);
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((x - y).abs() < 1e-9 * scale);
        }
    }

    /// Orthogonal matrices have all singular values equal to 1.
    #[test]
    fn orthogonal_has_unit_spectrum(n in 2usize..20, seed in 0u64..200) {
        let q = gen::random_orthogonal(n, seed);
        let sv = singular_values(&q, SvdMethod::TwoStage { b: 2 });
        for &s in &sv {
            prop_assert!((s - 1.0).abs() < 1e-10);
        }
    }

    /// Scaling the matrix scales every singular value.
    #[test]
    fn scaling_covariance(n in 3usize..16, seed in 0u64..200, scale in 1e-3f64..1e3) {
        let a = gen::random(n, n, seed);
        let mut b = a.clone();
        for v in b.as_mut_slice() {
            *v *= scale;
        }
        let sa = singular_values(&a, SvdMethod::Direct);
        let sb = singular_values(&b, SvdMethod::Direct);
        for (x, y) in sa.iter().zip(&sb) {
            prop_assert!((x * scale - y).abs() < 1e-9 * (1.0 + sb[0]));
        }
    }

    /// Frobenius identity: `‖A‖_F² = Σ σᵢ²`.
    #[test]
    fn frobenius_identity(n in 2usize..22, seed in 0u64..200) {
        let a = gen::random(n, n, seed);
        let sv = singular_values(&a, SvdMethod::TwoStage { b: 3 });
        let fro2: f64 = a.as_slice().iter().map(|x| x * x).sum();
        let sum2: f64 = sv.iter().map(|x| x * x).sum();
        prop_assert!((fro2 - sum2).abs() < 1e-9 * (1.0 + fro2));
    }

    /// Stage 1 output is always a clean upper band; stage 2 always a clean
    /// bidiagonal, whatever the geometry.
    #[test]
    fn structural_invariants(n in 4usize..20, b in 1usize..6, seed in 0u64..200) {
        let mut a = gen::random(n, n, seed);
        let _ = ge2gb(&mut a, b);
        for j in 0..n {
            for i in 0..n {
                if i > j || j > i + b {
                    prop_assert!(a[(i, j)].abs() < 1e-11, "band ({i},{j})");
                }
            }
        }
        let _ = gb2bd(&mut a, b);
        for j in 0..n {
            for i in 0..n {
                if i != j && j != i + 1 {
                    prop_assert!(a[(i, j)].abs() < 1e-10, "bidiag ({i},{j})");
                }
            }
        }
    }
}

/// The singular values of a symmetric matrix are the absolute eigenvalues —
/// ties the SVD substrate back to the eigensolver stack.
#[test]
fn symmetric_svd_is_abs_spectrum() {
    use tridiag_gpu::prelude::*;
    let n = 24;
    let a = gen::random_symmetric(n, 77);
    let evd = syevd(&mut a.clone(), &EvdMethod::CusolverLike { nb: 4 }, false).unwrap();
    let mut abs_eigs: Vec<f64> = evd.eigenvalues.iter().map(|x| x.abs()).collect();
    abs_eigs.sort_by(|x, y| y.partial_cmp(x).unwrap());
    let sv = singular_values(&a, SvdMethod::TwoStage { b: 4 });
    for (x, y) in sv.iter().zip(&abs_eigs) {
        assert!((x - y).abs() < 1e-9 * abs_eigs[0], "{x} vs {y}");
    }
}
