//! Larger-scale stress tests. The default suite keeps them `#[ignore]`d so
//! `cargo test` stays fast; run them explicitly with
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```

use tridiag_gpu::prelude::*;

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn evd_512_full_contract() {
    let n = 512;
    let a = gen::random_symmetric(n, 1);
    let evd = syevd(&mut a.clone(), &EvdMethod::proposed_default(n), true).unwrap();
    assert!(evd.residual(&a) < 1e-11);
    assert!(orthogonality_residual(evd.eigenvectors.as_ref().unwrap()) < 1e-11);
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn tridiag_768_all_methods_agree() {
    let n = 768;
    let a = gen::random_symmetric(n, 2);
    let methods = [
        Method::Direct { nb: 32 },
        Method::Sbr {
            b: 32,
            parallel_sweeps: 8,
        },
        Method::Dbbr {
            cfg: DbbrConfig::new(32, 128),
            parallel_sweeps: 8,
        },
    ];
    let tris: Vec<_> = methods
        .iter()
        .map(|m| tridiagonalize(&mut a.clone(), m).tri)
        .collect();
    for &x in &[-5.0, -1.0, 0.0, 1.0, 5.0] {
        let c = tris[0].sturm_count(x);
        assert_eq!(tris[1].sturm_count(x), c);
        assert_eq!(tris[2].sturm_count(x), c);
    }
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn bc_1024_wide_band_determinism() {
    let n = 1024;
    let b = 16;
    let dense = gen::random_symmetric_band(n, b, 3);
    let band = SymBand::from_dense_lower(&dense, b);
    let reference = bulge_chase_seq(&band);
    for s in [4usize, 32, 128] {
        let r = bulge_chase_pipelined(&band, s);
        assert_eq!(r.tri.d, reference.tri.d, "S={s}");
        assert_eq!(r.tri.e, reference.tri.e, "S={s}");
    }
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn dc_2048_laplacian_exact() {
    let t = gen::laplacian_1d(2048);
    let (eigs, v) = stedc(&t).unwrap();
    let exact = gen::laplacian_1d_eigs(2048);
    assert!(tridiag_gpu::matrix::norms::spectrum_error(&exact, &eigs) < 1e-11);
    assert!(orthogonality_residual(&v) < 1e-11);
}

#[test]
#[ignore = "large: run with --release -- --ignored"]
fn pipeline_des_paper_scale() {
    // the actual Figure-5 configuration, full size
    use tridiag_gpu::gpu_sim::{bc_model, pipeline};
    let n = 65536;
    let b = 32;
    for s in [32usize, 128] {
        let closed = bc_model::total_cycles(n, b, s);
        let des = pipeline::simulate(n, b, s, 1.0).makespan_s;
        assert!((closed - des).abs() / des < 0.05, "S={s}");
    }
}
