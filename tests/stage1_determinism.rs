//! Thread-count and schedule determinism for the stage-1 look-ahead.
//!
//! The depth-1 look-ahead (PR 10) reorders *scheduling* only: the deferred
//! rank-2k trailing update is split by columns so the next panel's columns
//! finish first, and the next panel factorization runs on a dedicated
//! worker concurrently with the remainder of the update. Because the split
//! lands on a super-block boundary and every kernel keeps its serial inner
//! arithmetic, the result is a **bitwise** match for the serial path — at
//! every `TG_THREADS`, warm or cold workspace pool, ragged or aligned
//! panel grids. These tests are the enforcement of that contract, in the
//! same spirit as `gemm_determinism.rs` and `bc_determinism.rs`.

use proptest::prelude::*;
use std::sync::Mutex;
use tridiag_gpu::core::{dbbr, dbbr_ws, AllocPool, CachingPool, DbbrConfig};
use tridiag_gpu::prelude::*;

/// Serializes the env-driven tests: `TG_THREADS` is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Bitwise comparison of two band reductions: the band matrix and every
/// accumulated WY factor pair.
fn assert_reduction_bitwise_eq(
    a: &tridiag_gpu::core::BandReduction,
    b: &tridiag_gpu::core::BandReduction,
    ctx: &str,
) {
    let (xs, ys) = (a.band.as_slice(), b.band.as_slice());
    assert_eq!(xs.len(), ys.len(), "{ctx}: band storage size");
    for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{ctx}: band bit mismatch at flat index {i}: {x} vs {y}"
        );
    }
    assert_eq!(a.factors.len(), b.factors.len(), "{ctx}: factor count");
    for (p, ((o1, f1), (o2, f2))) in a.factors.iter().zip(&b.factors).enumerate() {
        assert_eq!(o1, o2, "{ctx}: factor {p} offset");
        for (m1, m2, what) in [(&f1.w, &f2.w, "W"), (&f1.y, &f2.y, "Y")] {
            assert_eq!(m1.nrows(), m2.nrows(), "{ctx}: factor {p} {what} rows");
            assert_eq!(m1.ncols(), m2.ncols(), "{ctx}: factor {p} {what} cols");
            for j in 0..m1.ncols() {
                for i in 0..m1.nrows() {
                    assert!(
                        m1[(i, j)].to_bits() == m2[(i, j)].to_bits(),
                        "{ctx}: factor {p} {what} bit mismatch at ({i},{j})"
                    );
                }
            }
        }
    }
}

fn cfg_pair(b: usize, k: usize, square: bool) -> (DbbrConfig, DbbrConfig) {
    let mut serial = DbbrConfig::new(b, k);
    serial.square_syr2k = square;
    serial.nb_syr2k = 4; // small blocks so look-ahead engages at test sizes
    serial.lookahead = false;
    let mut la = serial.clone();
    la.lookahead = true;
    (serial, la)
}

/// Look-ahead is bitwise-identical to the serial deferred update at every
/// `TG_THREADS`, on aligned and ragged (`n % k ≠ 0`, `n % b ≠ 0`) panel
/// grids and under both trailing-update blockings. The serial reference is
/// computed once at one thread — so this also re-asserts that the serial
/// path itself is thread-count invariant.
#[test]
fn lookahead_bitwise_across_tg_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    for &(n, b, k, seed, square) in &[
        (64usize, 4usize, 8usize, 41u64, true),
        (64, 4, 8, 41, false),
        (57, 4, 12, 42, true), // ragged: 57 % 12 ≠ 0, last block short
        (50, 3, 6, 43, true),  // ragged: 50 % 6 ≠ 0 and 50 % 3 ≠ 0
    ] {
        let a0 = gen::random_symmetric(n, seed);
        let (serial_cfg, la_cfg) = cfg_pair(b, k, square);

        std::env::set_var("TG_THREADS", "1");
        let reference = dbbr(&mut a0.clone(), &serial_cfg);

        for t in [1usize, 2, 4, 7] {
            std::env::set_var("TG_THREADS", t.to_string());
            let la = dbbr(&mut a0.clone(), &la_cfg);
            assert_reduction_bitwise_eq(
                &reference,
                &la,
                &format!("lookahead n={n} b={b} k={k} square={square} TG_THREADS={t}"),
            );
            let serial = dbbr(&mut a0.clone(), &serial_cfg);
            assert_reduction_bitwise_eq(
                &reference,
                &serial,
                &format!("serial n={n} b={b} k={k} square={square} TG_THREADS={t}"),
            );
        }
    }
    std::env::remove_var("TG_THREADS");
}

/// A warm recycling pool serves the look-ahead's scratch from its free
/// lists without changing a bit: pass 2 (warm) matches pass 1 (cold) and
/// the alloc-pool reference exactly, and actually hits the pool.
#[test]
fn lookahead_warm_pool_bitwise_matches_cold() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("TG_THREADS", "4");
    let (n, b, k) = (60, 4, 8);
    let a0 = gen::random_symmetric(n, 44);
    let (_, la_cfg) = cfg_pair(b, k, true);

    let reference = dbbr_ws(&mut a0.clone(), &la_cfg, &mut AllocPool);
    let mut pool = CachingPool::new();
    let cold = dbbr_ws(&mut a0.clone(), &la_cfg, &mut pool);
    assert!(pool.misses() > 0, "cold pass must allocate");
    let warm = dbbr_ws(&mut a0.clone(), &la_cfg, &mut pool);
    assert!(pool.hits() > 0, "warm pass never hit the pool");
    assert_reduction_bitwise_eq(&reference, &cold, "cold pool vs alloc");
    assert_reduction_bitwise_eq(&reference, &warm, "warm pool vs alloc");
    std::env::remove_var("TG_THREADS");
}

/// The single-blocking SBR path has no look-ahead knob and must be left
/// untouched by the PR-10 machinery: bitwise thread-count invariance of
/// its full reduction, exactly as before.
#[test]
fn sbr_path_unaffected_across_tg_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    let (n, b) = (52, 4);
    let a0 = gen::random_symmetric(n, 45);
    let mut reference: Option<Vec<u64>> = None;
    for t in [1usize, 2, 4, 7] {
        std::env::set_var("TG_THREADS", t.to_string());
        let red = tridiagonalize(
            &mut a0.clone(),
            &Method::Sbr {
                b,
                parallel_sweeps: 1,
            },
        );
        let bits: Vec<u64> = red
            .tri
            .d
            .iter()
            .chain(red.tri.e.iter())
            .map(|x| x.to_bits())
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "SBR tridiagonal drifted at TG_THREADS={t}"),
        }
    }
    std::env::remove_var("TG_THREADS");
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Differential property with look-ahead **on**: the full two-stage
    /// pipeline through the look-ahead DBBR yields the same spectrum (via
    /// QL on the tridiagonal form) as the direct one-stage reduction.
    #[test]
    fn lookahead_spectrum_matches_direct_via_sterf(
        n in 24usize..72,
        bk in 0usize..3,
        seed in 0u64..1000,
    ) {
        let (b, k) = [(2usize, 4usize), (3, 6), (4, 8)][bk];
        let a = gen::random_symmetric(n, seed);

        let direct = {
            let red = tridiagonalize(&mut a.clone(), &Method::Direct { nb: 4 });
            sterf(&red.tri).expect("QL failed on direct path")
        };
        let (_, la_cfg) = cfg_pair(b, k, true);
        let lookahead = {
            let red = tridiagonalize(
                &mut a.clone(),
                &Method::Dbbr { cfg: la_cfg, parallel_sweeps: 2 },
            );
            sterf(&red.tri).expect("QL failed on look-ahead path")
        };

        let scale = direct.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        let tol = 64.0 * n as f64 * f64::EPSILON * scale;
        prop_assert_eq!(direct.len(), lookahead.len());
        for (i, (d, l)) in direct.iter().zip(&lookahead).enumerate() {
            prop_assert!(
                (d - l).abs() <= tol,
                "eigenvalue {} differs: {} vs {} (n={}, b={}, k={})",
                i, d, l, n, b, k
            );
        }
    }
}
