//! Fault-injection proof of the `tg-check` stage checkers: for every
//! checker there is a corruption that makes it (and only the expected
//! layer) fire, and a clean run on which it stays silent.
//!
//! Check sessions are process-global and mutually exclusive, so these
//! tests serialize on `CheckSession::begin` automatically.

use tg_batch::{ShapeClass, WorkspaceArena};
use tg_check::fault::{FaultKind, FaultPlan};
use tg_check::{CheckConfig, CheckReport, CheckSession};
use tg_eigen::{syevd, EvdMethod};
use tg_matrix::gen;
use tridiag_core::{tridiagonalize, DbbrConfig, Method, WorkspacePool};

fn reduce_method() -> Method {
    Method::Dbbr {
        cfg: DbbrConfig::new(4, 8),
        parallel_sweeps: 2,
    }
}

fn evd_method() -> EvdMethod {
    EvdMethod::Proposed {
        b: 4,
        k: 8,
        parallel_sweeps: 2,
        backtransform_k: 8,
        lookahead: true,
    }
}

fn run_reduce(plan: Option<FaultPlan>) -> CheckReport {
    let mut cfg = CheckConfig::strict();
    if let Some(p) = plan {
        cfg = cfg.with_faults(p);
    }
    let session = CheckSession::begin(cfg);
    let mut a = gen::random_symmetric(32, 7);
    let _ = tridiagonalize(&mut a, &reduce_method());
    session.finish()
}

fn run_evd(plan: Option<FaultPlan>, vectors: bool) -> CheckReport {
    let mut cfg = CheckConfig::strict();
    if let Some(p) = plan {
        cfg = cfg.with_faults(p);
    }
    let session = CheckSession::begin(cfg);
    let mut a = gen::random_symmetric(32, 7);
    let _ = syevd(&mut a, &evd_method(), vectors);
    session.finish()
}

fn failed_checkers(report: &CheckReport) -> Vec<&'static str> {
    report.failures().iter().map(|r| r.checker).collect()
}

fn assert_caught(report: &CheckReport, site: &str, checker: &str) {
    assert_eq!(
        report.faults_fired.len(),
        1,
        "fault at {site} never fired:\n{}",
        report.render()
    );
    assert_eq!(report.faults_fired[0].site, site);
    assert!(
        failed_checkers(report).contains(&checker),
        "{checker} stayed silent on corrupt {site}:\n{}",
        report.render()
    );
}

#[test]
fn band_structure_checker_fires_on_nan_in_band() {
    let plan = FaultPlan::single("stage1.band", FaultKind::Nan, 0);
    let report = run_reduce(Some(plan));
    assert_caught(&report, "stage1.band", "band_structure");
}

#[test]
fn similarity_checker_fires_on_in_band_perturbation() {
    // Index 0 is the (0,0) diagonal slot: structurally in-band, so the
    // band checker passes and only the deep similarity check can see the
    // corruption.
    let plan = FaultPlan::single("stage1.band", FaultKind::Perturb(1e-2), 0);
    let report = run_reduce(Some(plan));
    assert_caught(&report, "stage1.band", "similarity");
    assert!(
        !failed_checkers(&report).contains(&"band_structure"),
        "in-band perturbation must not trip the structural check:\n{}",
        report.render()
    );
}

#[test]
fn tridiagonal_form_checker_fires_on_nan_diagonal() {
    let plan = FaultPlan::single("bc.tri", FaultKind::Nan, 3);
    let report = run_reduce(Some(plan));
    assert_caught(&report, "bc.tri", "tridiagonal_form");
}

#[test]
fn spectrum_checker_fires_on_perturbed_eigenvalue() {
    let plan = FaultPlan::single("evd.values", FaultKind::Perturb(1e-2), 0);
    let report = run_evd(Some(plan), false);
    assert_caught(&report, "evd.values", "spectrum");
}

#[test]
fn orthogonality_checker_fires_on_corrupted_vectors() {
    let plan = FaultPlan::single("backtransform.q", FaultKind::SignFlip, 100);
    let report = run_evd(Some(plan), true);
    assert_caught(&report, "backtransform.q", "orthogonality");
}

#[test]
fn workspace_checker_fires_on_skipped_scrub() {
    let session = CheckSession::begin(CheckConfig::strict().with_faults(FaultPlan::single(
        "arena.acquire",
        FaultKind::SkipZero,
        0,
    )));
    let mut arena = WorkspaceArena::new();
    arena.begin_problem(ShapeClass { n: 16, b: 4, k: 8 });
    let mut m = arena.acquire(4, 4);
    m.fill(2.0);
    arena.release(m);
    let _dirty = arena.acquire(4, 4);
    let report = session.finish();
    assert_caught(&report, "arena.acquire", "workspace_zero");
}

#[test]
fn every_checker_is_silent_on_clean_runs() {
    for (report, expected) in [
        (
            run_reduce(None),
            &[
                "band_structure",
                "tridiagonal_form",
                "orthogonality",
                "similarity",
            ][..],
        ),
        (run_evd(None, false), &["spectrum"][..]),
        (run_evd(None, true), &["orthogonality"][..]),
    ] {
        assert!(report.passed(), "clean run failed:\n{}", report.render());
        assert!(report.faults_fired.is_empty());
        let ran: Vec<_> = report.records.iter().map(|r| r.checker).collect();
        for name in expected {
            assert!(
                ran.contains(name),
                "{name} never ran on the clean workload: {ran:?}"
            );
        }
    }
}
