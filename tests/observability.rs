//! Integration tests for the `tg-trace` observability layer: span nesting
//! across the real pipelines, counter attribution, disabled-path inertness,
//! Chrome-trace export validity, and the model-vs-measured acceptance
//! criterion.
//!
//! Trace sessions are global, so every test here serializes on a local
//! mutex — counters recorded by a concurrently running test would otherwise
//! leak into an open session.

use std::sync::{Mutex, MutexGuard, OnceLock};
use tg_eigen::{syevd, EvdMethod};
use tg_matrix::gen;
use tg_trace::{Counter, Trace, TraceSession};
use tridiag_core::{tridiagonalize, DbbrConfig, Method};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn traced_evd(n: usize) -> Trace {
    let mut a = gen::random_symmetric(n, 7);
    let session = TraceSession::begin();
    let evd = syevd(&mut a, &EvdMethod::proposed_default(n), true).unwrap();
    assert_eq!(evd.eigenvalues.len(), n);
    session.finish()
}

#[test]
fn evd_stage_spans_sum_to_root_span() {
    let _g = serial();
    let trace = traced_evd(64);
    let dur = |name: &str| -> f64 {
        trace
            .events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.dur_us)
            .sum()
    };
    let root = dur("evd");
    assert!(root > 0.0, "no evd root span");
    let stages = dur("evd.reduce") + dur("evd.solve") + dur("evd.backtransform");
    let rel = (root - stages).abs() / root;
    assert!(
        rel < 0.05,
        "stages {stages:.1}us vs root {root:.1}us ({:.1}% unaccounted)",
        rel * 100.0
    );
}

#[test]
fn evd_trace_counts_work_and_nests_spans() {
    let _g = serial();
    let trace = traced_evd(64);
    assert!(trace.total(Counter::Flops) > 0);
    assert!(trace.total(Counter::Sweeps) > 0);
    assert!(trace.total(Counter::BulgeTasks) > 0);
    // kernel spans from the reduction must appear alongside stage spans
    for name in [
        "evd",
        "evd.reduce",
        "reduce.dbbr",
        "bc.pipeline",
        "bc.sweep",
    ] {
        assert!(
            trace.events.iter().any(|e| e.name == name),
            "missing span {name}"
        );
    }
    // pipelined bulge chasing runs sweeps on several threads
    let mut tids: Vec<u64> = trace
        .events
        .iter()
        .filter(|e| e.name == "bc.sweep")
        .map(|e| e.tid)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() > 1, "bc.sweep spans all on one thread");
    // every bc.sweep lies within the evd root span's window
    let root = trace.events.iter().find(|e| e.name == "evd").unwrap();
    for e in trace.events.iter().filter(|e| e.name == "bc.sweep") {
        assert!(e.ts_us + 1e-9 >= root.ts_us);
        assert!(e.ts_us + e.dur_us <= root.ts_us + root.dur_us + 1e-9);
    }
}

#[test]
fn parallel_and_sequential_pipelines_count_identically() {
    let _g = serial();
    let a0 = gen::random_symmetric(40, 11);
    let run = |parallel_sweeps: usize| -> Trace {
        let mut a = a0.clone();
        let session = TraceSession::begin();
        let _ = tridiagonalize(
            &mut a,
            &Method::Dbbr {
                cfg: DbbrConfig::new(2, 4),
                parallel_sweeps,
            },
        );
        session.finish()
    };
    let seq = run(1);
    let par = run(4);
    // counters sum deterministically no matter how many threads recorded them
    for c in Counter::ALL {
        assert_eq!(seq.total(c), par.total(c), "{} differs", c.key());
    }
    assert!(seq.total(Counter::Sweeps) > 0);
}

#[test]
fn disabled_path_records_nothing() {
    let _g = serial();
    // work performed with no session open must leave no residue behind
    let mut a = gen::random_symmetric(32, 3);
    let _ = tridiagonalize(&mut a, &Method::paper_default(32));
    let session = TraceSession::begin();
    let trace = session.finish();
    assert!(trace.events.is_empty());
    for c in Counter::ALL {
        assert_eq!(trace.total(c), 0, "leaked {}", c.key());
    }
}

#[test]
fn chrome_json_roundtrips_with_valid_events() {
    let _g = serial();
    let trace = traced_evd(48);
    let json = trace.chrome_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("chrome trace must parse");
    let obj = v.as_object().expect("top level object");
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v.as_array().expect("traceEvents array"))
        .expect("traceEvents key");
    assert_eq!(events.len(), trace.events.len());
    for ev in events {
        let e = ev.as_object().expect("event object");
        let field = |k: &str| e.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(field("ph").and_then(|v| v.as_str()), Some("X"));
        let ts = field("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = field("dur").and_then(|v| v.as_f64()).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
        assert!(field("name").and_then(|v| v.as_str()).is_some());
        assert!(field("pid").and_then(|v| v.as_f64()).is_some());
        assert!(field("tid").and_then(|v| v.as_f64()).is_some());
    }
}

#[test]
fn profile_table_reports_stages_and_total() {
    let _g = serial();
    let trace = traced_evd(48);
    let table = trace.profile_table();
    for needle in ["evd.reduce", "evd.solve", "evd.backtransform", "TOTAL"] {
        assert!(table.contains(needle), "profile table missing {needle}");
    }
}

/// Acceptance criterion: traced counters match the analytic formulas the
/// GPU cost models use, within 1 %, on at least two `(n, b, k)` shapes.
#[test]
fn model_vs_measured_within_one_percent() {
    let _g = serial();
    let rows = tg_gpu_sim::model_check::model_vs_measured(&[(64, 8, 16), (128, 16, 32)]);
    assert!(rows.len() >= 8);
    for r in &rows {
        assert!(
            r.within_tolerance(),
            "{} {:?} {}: measured {} vs model {} ({:.2}%)",
            r.kernel,
            r.shape,
            r.quantity,
            r.measured,
            r.modeled,
            r.rel_err() * 100.0
        );
    }
    let report = tg_gpu_sim::model_check::report(&rows);
    assert!(!report.contains("MISMATCH"));
}
