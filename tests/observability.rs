//! Integration tests for the `tg-trace` observability layer: span nesting
//! across the real pipelines, counter attribution, disabled-path inertness,
//! Chrome-trace export validity, and the model-vs-measured acceptance
//! criterion.
//!
//! Trace sessions are global, so every test here serializes on a local
//! mutex — counters recorded by a concurrently running test would otherwise
//! leak into an open session.

use std::sync::{Mutex, MutexGuard, OnceLock};
use tg_eigen::{syevd, EvdMethod};
use tg_matrix::gen;
use tg_trace::{Counter, Trace, TraceSession};
use tridiag_core::{tridiagonalize, DbbrConfig, Method};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn traced_evd(n: usize) -> Trace {
    let mut a = gen::random_symmetric(n, 7);
    let session = TraceSession::begin();
    let evd = syevd(&mut a, &EvdMethod::proposed_default(n), true).unwrap();
    assert_eq!(evd.eigenvalues.len(), n);
    session.finish()
}

#[test]
fn evd_stage_spans_sum_to_root_span() {
    let _g = serial();
    let trace = traced_evd(64);
    let dur = |name: &str| -> f64 {
        trace
            .events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.dur_us)
            .sum()
    };
    let root = dur("evd");
    assert!(root > 0.0, "no evd root span");
    let stages = dur("evd.reduce") + dur("evd.solve") + dur("evd.backtransform");
    let rel = (root - stages).abs() / root;
    assert!(
        rel < 0.05,
        "stages {stages:.1}us vs root {root:.1}us ({:.1}% unaccounted)",
        rel * 100.0
    );
}

#[test]
fn evd_trace_counts_work_and_nests_spans() {
    let _g = serial();
    let trace = traced_evd(64);
    assert!(trace.total(Counter::Flops) > 0);
    assert!(trace.total(Counter::Sweeps) > 0);
    assert!(trace.total(Counter::BulgeTasks) > 0);
    // kernel spans from the reduction must appear alongside stage spans
    for name in [
        "evd",
        "evd.reduce",
        "reduce.dbbr",
        "bc.pipeline",
        "bc.sweep",
    ] {
        assert!(
            trace.events.iter().any(|e| e.name == name),
            "missing span {name}"
        );
    }
    // pipelined bulge chasing runs sweeps on several threads
    let mut tids: Vec<u64> = trace
        .events
        .iter()
        .filter(|e| e.name == "bc.sweep")
        .map(|e| e.tid)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() > 1, "bc.sweep spans all on one thread");
    // every bc.sweep lies within the evd root span's window
    let root = trace.events.iter().find(|e| e.name == "evd").unwrap();
    for e in trace.events.iter().filter(|e| e.name == "bc.sweep") {
        assert!(e.ts_us + 1e-9 >= root.ts_us);
        assert!(e.ts_us + e.dur_us <= root.ts_us + root.dur_us + 1e-9);
    }
}

#[test]
fn parallel_and_sequential_pipelines_count_identically() {
    let _g = serial();
    let a0 = gen::random_symmetric(40, 11);
    let run = |parallel_sweeps: usize| -> Trace {
        let mut a = a0.clone();
        let session = TraceSession::begin();
        let _ = tridiagonalize(
            &mut a,
            &Method::Dbbr {
                cfg: DbbrConfig::new(2, 4),
                parallel_sweeps,
            },
        );
        session.finish()
    };
    let seq = run(1);
    let par = run(4);
    // counters sum deterministically no matter how many threads recorded them
    for c in Counter::ALL {
        assert_eq!(seq.total(c), par.total(c), "{} differs", c.key());
    }
    assert!(seq.total(Counter::Sweeps) > 0);
}

#[test]
fn disabled_path_records_nothing() {
    let _g = serial();
    // work performed with no session open must leave no residue behind
    let mut a = gen::random_symmetric(32, 3);
    let _ = tridiagonalize(&mut a, &Method::paper_default(32));
    let session = TraceSession::begin();
    let trace = session.finish();
    assert!(trace.events.is_empty());
    for c in Counter::ALL {
        assert_eq!(trace.total(c), 0, "leaked {}", c.key());
    }
}

#[test]
fn chrome_json_roundtrips_with_valid_events() {
    let _g = serial();
    let trace = traced_evd(48);
    let json = trace.chrome_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("chrome trace must parse");
    let obj = v.as_object().expect("top level object");
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v.as_array().expect("traceEvents array"))
        .expect("traceEvents key");
    // The export carries "M" (metadata: process/thread names) events in
    // addition to one "X" event per recorded span.
    let mut x_count = 0usize;
    for ev in events {
        let e = ev.as_object().expect("event object");
        let field = |k: &str| e.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let ph = field("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(field("name").and_then(|v| v.as_str()).is_some());
        assert!(field("pid").and_then(|v| v.as_f64()).is_some());
        assert!(field("tid").and_then(|v| v.as_f64()).is_some());
        match ph {
            "M" => continue,
            "X" => x_count += 1,
            other => panic!("unexpected phase {other:?}"),
        }
        let ts = field("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = field("dur").and_then(|v| v.as_f64()).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
    }
    assert_eq!(x_count, trace.events.len());
}

#[test]
fn timeline_nesting_is_well_formed_per_thread() {
    let _g = serial();
    let trace = traced_evd(64);
    // Spans on each thread must form a proper forest: positive-or-zero
    // durations, no partially overlapping siblings.
    trace.validate_nesting().expect("well-formed timeline");
    assert!(!trace.lanes(false).is_empty());
}

#[test]
fn worker_ids_are_stable_within_a_region() {
    let _g = serial();
    let problems: Vec<_> = (0..6).map(|s| gen::random_symmetric(24, 40 + s)).collect();
    let method = EvdMethod::proposed_default(24);
    let session = TraceSession::begin();
    let batch = tg_batch::BatchScheduler::new(2)
        .syevd(&problems, &method, false)
        .unwrap();
    let trace = session.finish();
    assert_eq!(batch.results.len(), 6);
    // Every batch.problem task must run on the tid of one of the region's
    // batch.worker lane markers — worker ids never change mid-region.
    let workers: Vec<u64> = trace
        .events
        .iter()
        .filter(|e| e.name == "batch.worker")
        .map(|e| e.tid)
        .collect();
    assert_eq!(workers.len(), 2, "one lane marker per spawned worker");
    for e in trace.events.iter().filter(|e| e.name == "batch.problem") {
        assert!(
            workers.contains(&e.tid),
            "task on tid {} outside worker lanes {workers:?}",
            e.tid
        );
    }
    // All of them share the region id of the parallel.batch opener.
    let region = trace
        .events
        .iter()
        .find(|e| e.name == "parallel.batch")
        .expect("region opener span")
        .region;
    assert!(region.is_some());
    for e in trace
        .events
        .iter()
        .filter(|e| e.name == "batch.worker" || e.name == "batch.problem")
    {
        assert_eq!(e.region, region, "span {} left its region", e.name);
    }
    // And the utilization analysis sees exactly those two workers.
    let regions = trace.region_utilization();
    let batch_region = regions
        .iter()
        .find(|r| r.name == "parallel.batch")
        .expect("region row");
    assert_eq!(batch_region.workers, 2);
    assert_eq!(batch_region.tasks, 6);
    assert!(batch_region.imbalance >= 1.0);
}

#[test]
fn disabled_tracing_records_no_timeline_and_no_gauges() {
    let _g = serial();
    // A full batch run with tracing disabled must leave nothing behind:
    // no lanes, no regions, no arena high-water mark.
    let problems: Vec<_> = (0..3).map(|s| gen::random_symmetric(24, 50 + s)).collect();
    let method = EvdMethod::proposed_default(24);
    let _ = tg_batch::BatchScheduler::new(2)
        .syevd(&problems, &method, false)
        .unwrap();
    let session = TraceSession::begin();
    let trace = session.finish();
    assert!(trace.events.is_empty());
    assert!(trace.lanes(false).is_empty());
    assert!(trace.region_utilization().is_empty());
    assert_eq!(trace.total(Counter::ArenaLiveBytes), 0);
    assert!(trace.flamegraph().is_empty());
    assert_eq!(trace.critical_path().rows.len(), 0);
}

#[test]
fn arena_live_bytes_high_water_is_recorded() {
    let _g = serial();
    let session = TraceSession::begin();
    let mut a = gen::random_symmetric(48, 9);
    let _ = tridiagonalize(&mut a, &Method::paper_default(48));
    let trace = session.finish();
    let peak = trace.total(Counter::ArenaLiveBytes);
    assert!(peak > 0, "no workspace high-water mark recorded");
    // The reduction's scratch is a few n×k panels — sanity-bound the peak
    // to rule out leaks in the gauge accounting (gauge_sub not firing
    // would push the "peak" toward the sum of all acquisitions).
    let bound = 8 * 48 * 48 * 20;
    assert!(peak < bound as u64, "peak {peak} exceeds sanity bound");
}

#[test]
fn flamegraph_lines_are_collapsed_stacks() {
    let _g = serial();
    let trace = traced_evd(48);
    let fg = trace.flamegraph();
    assert!(!fg.is_empty());
    for line in fg.lines() {
        let (stack, us) = line.rsplit_once(' ').expect("`stack us` shape");
        assert!(stack.starts_with("worker-"), "bad stack root: {line}");
        us.parse::<u64>().expect("integer microseconds");
    }
    // Nested kernels appear below their stage on the critical stacks.
    assert!(
        fg.lines().any(|l| l.contains("evd.reduce;")),
        "no stack descends through evd.reduce:\n{fg}"
    );
}

#[test]
fn profile_table_reports_stages_and_total() {
    let _g = serial();
    let trace = traced_evd(48);
    let table = trace.profile_table();
    for needle in ["evd.reduce", "evd.solve", "evd.backtransform", "TOTAL"] {
        assert!(table.contains(needle), "profile table missing {needle}");
    }
}

/// Acceptance criterion: traced counters match the analytic formulas the
/// GPU cost models use, within 1 %, on at least two `(n, b, k)` shapes.
#[test]
fn model_vs_measured_within_one_percent() {
    let _g = serial();
    let rows = tg_gpu_sim::model_check::model_vs_measured(&[(64, 8, 16), (128, 16, 32)]);
    assert!(rows.len() >= 8);
    for r in &rows {
        assert!(
            r.within_tolerance(),
            "{} {:?} {}: measured {} vs model {} ({:.2}%)",
            r.kernel,
            r.shape,
            r.quantity,
            r.measured,
            r.modeled,
            r.rel_err() * 100.0
        );
    }
    let report = tg_gpu_sim::model_check::report(&rows);
    assert!(!report.contains("MISMATCH"));
}
