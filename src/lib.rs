//! # tridiag-gpu
//!
//! A Rust reproduction of *"Improving Tridiagonalization Performance on GPU
//! Architectures"* (PPoPP 2025): two-stage symmetric tridiagonalization
//! with **double-blocking band reduction** (DBBR) and **pipelined bulge
//! chasing**, plus full symmetric eigensolvers built on top, and a
//! calibrated GPU performance-model substrate that regenerates every table
//! and figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use tridiag_gpu::prelude::*;
//!
//! // a random symmetric matrix with a known-by-construction spectrum
//! let n = 64;
//! let a = gen::random_symmetric(n, 42);
//!
//! // tridiagonalize with the paper's pipeline (DBBR + pipelined BC)
//! let mut work = a.clone();
//! let method = Method::Dbbr {
//!     cfg: DbbrConfig::new(4, 16),
//!     parallel_sweeps: 4,
//! };
//! let reduced = tridiagonalize(&mut work, &method);
//!
//! // the similarity contract: A = Q T Qᵀ
//! let q = reduced.form_q();
//! assert!(orthogonality_residual(&q) < 1e-11);
//! assert!(similarity_residual(&a, &q, &reduced.tri.to_dense()) < 1e-11);
//!
//! // full eigendecomposition
//! let evd = syevd(&mut a.clone(), &EvdMethod::proposed_default(n), true).unwrap();
//! assert!(evd.residual(&a) < 1e-11);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`tg_matrix`](matrix) | dense/band storage, generators, residuals |
//! | [`tg_blas`](blas) | pure-Rust BLAS 1/2/3 incl. the Figure-7 `syr2k` |
//! | [`tg_householder`](householder) | reflectors, WY/ZY, Algorithm-3 `W` merging |
//! | [`tridiag_core`](core) | SBR, DBBR (Algorithm 1), bulge chasing (Algorithm 2), back transformation |
//! | [`tg_eigen`](eigen) | QL iteration, divide & conquer, `syevd` drivers |
//! | [`tg_gpu_sim`](gpu_sim) | device models, kernel cost models, pipeline + cache simulators, figure regenerators |
//! | [`tg_svd`](svd) | two-stage bidiagonal reduction + singular values (the Gates et al. SVD analogue) |
//! | [`tg_batch`](batch) | batched multi-problem EVD: worker-pool scheduler + cached workspace arenas |

pub use tg_batch as batch;
pub use tg_blas as blas;
pub use tg_eigen as eigen;
pub use tg_gpu_sim as gpu_sim;
pub use tg_householder as householder;
pub use tg_matrix as matrix;
pub use tg_svd as svd;
pub use tridiag_core as core;

/// Everything a downstream user typically needs.
pub mod prelude {
    pub use tg_batch::{BatchScheduler, WorkspaceArena};
    pub use tg_eigen::{
        bisect_evd, jacobi_evd, sbevd::sbevd, stedc, steqr, sterf, sterf_pwk, syevd, syevd_batched,
        Evd, EvdMethod,
    };
    pub use tg_matrix::{
        gen, orthogonality_residual, similarity_residual, Mat, SymBand, Tridiagonal,
    };
    pub use tridiag_core::{
        band_reduce, bulge_chase_pipelined, bulge_chase_seq, dbbr, givens_tridiagonalize,
        tridiagonalize, DbbrConfig, Method, TridiagResult,
    };
}
