//! Offline stand-in for `criterion`.
//!
//! Same bench-authoring API (`criterion_group!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`), but measurement is
//! plain wall-clock sampling: each benchmark runs `sample_size` samples
//! and prints min/median/mean per iteration, plus derived throughput when
//! one was declared. No statistical analysis, HTML reports, or baselines.

use std::time::Instant;

pub use std::hint::black_box;

/// Declared work per iteration, used to derive a rate from the median.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: Vec<f64>, // seconds per iteration
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // one warm-up iteration, then timed samples
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.into_bench_id(), &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.into_bench_id(), &b.samples);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&mut self, bench_name: &str, samples: &[f64]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.group_name, bench_name);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let mut line = format!(
            "{}/{}: min {} median {} mean {} ({} samples)",
            self.group_name,
            bench_name,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            sorted.len(),
        );
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!(", {:.3} Gelem/s", n as f64 / median / 1e9));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!(", {:.3} GB/s", n as f64 / median / 1e9));
            }
            None => {}
        }
        println!("{line}");
        self.criterion
            .results
            .push((format!("{}/{}", self.group_name, bench_name), median));
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.name
    }
}

/// Benchmark driver; collects `(name, median seconds)` pairs.
#[derive(Default)]
pub struct Criterion {
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut g = c.benchmark_group("square");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("loop", 100), &100u64, |bench, &n| {
            bench.iter(|| (0..n).map(|x| x * x).sum::<u64>())
        });
        g.bench_function("noop", |bench| bench.iter(|| ()));
        g.finish();
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        bench_square(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, median)| *median >= 0.0));
        assert!(c.results[0].0.contains("square/loop/100"));
    }
}
