//! Offline stand-in for `proptest`.
//!
//! Covers the subset this workspace uses: the `proptest!` macro with a
//! `proptest_config` header, range strategies over `usize`/`u64`/`f64`,
//! `proptest::bool::ANY`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test path and case index) instead of an
//! adaptive strategy tree, and failing cases are reported but not shrunk.
//! Every run therefore exercises the identical input set — good for CI
//! reproducibility, weaker at edge-case discovery.

/// Per-test deterministic random source (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's module path + name and the case index, so
    /// each test gets a distinct but reproducible input stream.
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random test inputs (simplified: a sampler, no shrink tree).
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty i64 range strategy");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as i64
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Strategy yielding a fixed value (`proptest::strategy::Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    /// `proptest::bool::ANY` — uniform over {false, true}.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: Any = Any;
}

/// Number of cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    pub use crate::{Just, Strategy};
}

pub mod prelude {
    pub use crate::bool as prop_bool;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            panic!("prop_assert_eq failed: {:?} != {:?}", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            panic!("prop_assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
        }
    }};
}

/// Generates one `#[test]` per property. Each case samples every argument
/// from its strategy with a deterministic RNG; a failing case reports the
/// sampled inputs before propagating the panic (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let rng = &mut $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&$strat, rng);)*
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_in_bounds(n in 3usize..17, s in 5u64..9, x in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((5..9).contains(&s));
            prop_assert!((0.25..0.75).contains(&x));
        }

        fn bool_any_is_bool(flag in crate::bool::ANY) {
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = TestRng::deterministic("mod::test", 3).next_u64();
        let b = TestRng::deterministic("mod::test", 3).next_u64();
        let c = TestRng::deterministic("mod::test", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
