//! Offline stand-in for the `rand` crate.
//!
//! Implements only the surface this workspace uses: a seedable
//! deterministic RNG (`rngs::StdRng`) and a uniform `f64` distribution.
//! The generator is xoshiro256++ seeded via splitmix64 — *not* the same
//! stream as the real `rand::StdRng`, but the workspace only relies on
//! per-seed determinism, never on specific values.

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of an RNG from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // avoid the all-zero state (splitmix64 never yields it for
            // four consecutive outputs, but belt and braces)
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Sampling interface, mirroring `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)` for `f64`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform {
        low: f64,
        high: f64,
    }

    impl Uniform {
        pub fn new(low: f64, high: f64) -> Uniform {
            assert!(low < high, "Uniform requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            self.low + (self.high - self.low) * rng.next_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_in_range() {
        let d = Uniform::new(-1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        // the sample should spread over most of the interval
        assert!(min < -0.9 && max > 0.9);
    }
}
