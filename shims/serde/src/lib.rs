//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! owned [`Value`] tree (the `serde_json::Value` data model). That is all
//! this workspace needs: derived structs/enums are converted to `Value`
//! and printed as JSON by the `serde_json` shim.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON-like data model shared by the `serde`/`serde_json` shims.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) if *x <= i64::MAX as u64 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

// ---- Serialize impls for primitives and containers ----

macro_rules! ser_int {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
    )*};
}
ser_int!(u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
         usize => U64 as u64, i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
         i64 => I64 as i64, isize => I64 as i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls ----

macro_rules! de_prim {
    ($t:ty, $get:ident, $what:literal) => {
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.$get()
                    .map(|x| x as $t)
                    .ok_or_else(|| format!("expected {}", $what))
            }
        }
    };
}
de_prim!(u64, as_u64, "unsigned integer");
de_prim!(u32, as_u64, "unsigned integer");
de_prim!(usize, as_u64, "unsigned integer");
de_prim!(i64, as_i64, "integer");
de_prim!(i32, as_i64, "integer");
de_prim!(isize, as_i64, "integer");
de_prim!(f64, as_f64, "number");

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| "expected bool".to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| "expected string".to_string())
    }
}

/// Borrowed strings cannot be reconstructed from an owned tree; this impl
/// exists so derives on structs holding `&'static str` *compile* (such
/// structs are serialized, never deserialized, in this workspace).
impl Deserialize for &'static str {
    fn from_value(_: &Value) -> Result<Self, String> {
        Err("cannot deserialize into a borrowed &'static str".to_string())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err("expected array".to_string()),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
