//! Offline stand-in for `serde_json`.
//!
//! Serialization walks the shared [`serde::Value`] tree; parsing is a
//! recursive-descent JSON reader. Supports the workspace surface:
//! [`json!`], [`to_string`], [`to_string_pretty`], [`from_str`], [`Value`].

pub use serde::Value;

// re-exported so `json!` works in crates that don't depend on serde directly
#[doc(hidden)]
pub use serde;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---- Serialization ----

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            '[',
            ']',
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            '{',
            '}',
            |out, (k, v), indent, depth| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = x.to_string();
        out.push_str(&s);
        // keep floats recognizable as floats on re-parse
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; serde_json emits null
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parsing ----

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::new)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input came from &str, so valid)
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(if x >= 0 {
                    Value::U64(x as u64)
                } else {
                    Value::I64(x)
                });
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

// ---- json! macro ----

/// Builds a [`Value`] from JSON-like syntax. Keys are string literals;
/// values are arbitrary `Serialize` expressions. Nest objects by nesting
/// `json!` calls (`"k": json!({ ... })`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::serde::Serialize::to_value(&$item) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::serde::Serialize::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::serde::Serialize::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_object() {
        let v = json!({
            "name": "trace",
            "count": 3usize,
            "pi": 3.5f64,
            "flag": true,
            "items": [1usize, 2usize, 3usize],
            "nested": json!({ "x": 1i64 }),
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back["name"].as_str(), Some("trace"));
        assert_eq!(back["count"].as_u64(), Some(3));
        assert_eq!(back["pi"].as_f64(), Some(3.5));
        assert_eq!(back["flag"].as_bool(), Some(true));
        assert_eq!(back["items"].as_array().unwrap().len(), 3);
        assert_eq!(back["nested"]["x"].as_i64(), Some(1));
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({ "a": [1u64, 2u64], "b": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_and_float_numbers() {
        let back: Value = from_str("[-3, 2.5, 1e3, 0]").unwrap();
        assert_eq!(back[0].as_i64(), Some(-3));
        assert_eq!(back[1].as_f64(), Some(2.5));
        assert_eq!(back[2].as_f64(), Some(1000.0));
        assert_eq!(back[3].as_u64(), Some(0));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("line\nquote\"tab\tback\\".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
