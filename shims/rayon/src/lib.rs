//! Offline stand-in for the `rayon` crate.
//!
//! Provides the subset this workspace uses — `into_par_iter()` /
//! `par_iter_mut()` with `enumerate` + `for_each`, `join`, and
//! `current_num_threads` — backed by `std::thread::scope` with a shared
//! work queue. Semantics match rayon for the supported surface: items are
//! processed exactly once, `for_each` returns after all items complete,
//! and panics in workers propagate.

use std::sync::Mutex;

/// Number of worker threads a parallel iterator will fan out to.
///
/// Resolution order mirrors how a real rayon global pool would be sized in
/// this workspace: `RAYON_NUM_THREADS` (rayon's own override), then
/// `TG_THREADS` (the workspace convention, see `tg_blas::threads`), then
/// the machine's `available_parallelism`. Re-read on every call so tests
/// can steer the fan-out per-case.
pub fn current_num_threads() -> usize {
    for var in ["RAYON_NUM_THREADS", "TG_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs both closures and returns their results. The real rayon may run
/// them on different threads; potential parallelism, not guaranteed — a
/// sequential execution is a conforming implementation.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() > 1 {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon::join closure panicked"))
        })
    } else {
        let ra = a();
        let rb = b();
        (ra, rb)
    }
}

/// A materialized "parallel" iterator: the items to distribute.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `enumerate()` adapter over [`ParIter`].
pub struct ParEnumerate<T> {
    items: Vec<T>,
}

fn drive<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: F) {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for it in items {
            f(it);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(s.spawn(|| loop {
                let next = queue.lock().unwrap().next();
                match next {
                    Some(it) => f(it),
                    None => break,
                }
            }));
        }
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
}

impl<T: Send> ParIter<T> {
    pub fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        drive(self.items, f);
    }

    pub fn enumerate(self) -> ParEnumerate<T> {
        ParEnumerate { items: self.items }
    }
}

impl<T: Send> ParEnumerate<T> {
    pub fn for_each<F: Fn((usize, T)) + Sync + Send>(self, f: F) {
        let numbered: Vec<(usize, T)> = self.items.into_iter().enumerate().collect();
        drive(numbered, f);
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter_mut()` over slices (`rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        (0..100usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|i| {
                hits.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut v = vec![0usize; 50];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
