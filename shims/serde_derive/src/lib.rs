//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline) that
//! supports the shapes this workspace derives on: **named-field structs**
//! and **unit-variant enums**, without generics. Anything else produces a
//! `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Enum of unit variants: variant identifiers.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => render(&item, mode)
            .parse()
            .expect("shim derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    // skip outer attributes and visibility
    let kw = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                return Err(format!("serde shim derive: unexpected token `{s}`"));
            }
            other => return Err(format!("serde shim derive: unexpected input {other:?}")),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, got {other:?}"
            ))
        }
    };
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde shim derive does not support generics (type `{name}`)"
            ))
        }
        other => {
            return Err(format!(
                "serde shim derive supports only braced structs/enums \
                 (type `{name}`, got {other:?})"
            ))
        }
    };
    let shape = if kw == "struct" {
        Shape::Struct(parse_fields(body, &name)?)
    } else {
        Shape::Enum(parse_variants(body, &name)?)
    };
    Ok(Item { name, shape })
}

/// Extracts field identifiers from a named-field struct body.
fn parse_fields(body: TokenStream, type_name: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // skip attributes and visibility before the field name
        let field = loop {
            match it.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!(
                        "serde shim derive: unexpected token {other:?} in fields of `{type_name}`"
                    ))
                }
            }
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{field}` of `{type_name}`, got {other:?}"
                ))
            }
        }
        fields.push(field);
        // consume the type: everything until a comma at angle-bracket depth 0
        let mut angle_depth = 0i32;
        loop {
            match it.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Extracts variant identifiers from an enum body; rejects data variants.
fn parse_variants(body: TokenStream, type_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        let variant = loop {
            match it.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!(
                        "serde shim derive: unexpected token {other:?} in enum `{type_name}`"
                    ))
                }
            }
        };
        match it.next() {
            None => {
                variants.push(variant);
                return Ok(variants);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive supports only unit enum variants (`{type_name}::{variant}` has data)"
                ))
            }
            Some(other) => {
                return Err(format!(
                    "serde shim derive: unexpected token {other:?} after `{type_name}::{variant}`"
                ))
            }
        }
    }
}

fn render(item: &Item, mode: Mode) -> String {
    let name = &item.name;
    match (&item.shape, mode) {
        (Shape::Struct(fields), Mode::Serialize) => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Struct(fields), Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__field(\"{f}\"))\
                             .map_err(|e| format!(\"{name}.{f}: {{}}\", e))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::std::string::String> {{\n\
                         let __m = match v {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             _ => return Err(\"{name}: expected object\".to_string()),\n\
                         }};\n\
                         let __field = |k: &str| -> &::serde::Value {{\n\
                             __m.iter().find(|p| p.0 == k).map(|p| &p.1).unwrap_or(&::serde::Value::Null)\n\
                         }};\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::std::string::String> {{\n\
                         match v.as_str() {{\n\
                             Some(s) => match s {{\n\
                                 {arms}\n\
                                 other => Err(format!(\"{name}: unknown variant {{}}\", other)),\n\
                             }},\n\
                             None => Err(\"{name}: expected string\".to_string()),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
