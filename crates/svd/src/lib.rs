//! # tg-svd
//!
//! Two-stage bidiagonal reduction — the SVD analogue of the paper's
//! pipeline, and the system Gates, Tomov & Dongarra \[10\] built. The
//! paper's §3.3 directly engages that work ("the bulge chasing process …
//! would not benefit significantly from an accelerator-based
//! implementation") and refutes it for the symmetric case; this crate
//! supplies the bidiagonal counterpart so the comparison is concrete:
//!
//! * [`gebrd`] — direct Golub–Kahan bidiagonalization (one-stage baseline),
//! * [`ge2gb`] — stage 1: general → upper **band** form via alternating
//!   QR (column panels) and LQ (row panels), all BLAS-3,
//! * [`gb2bd`] — stage 2: band → bidiagonal **bulge chasing** with
//!   reflector spans of length ≤ `b + 1` (the same chase structure the
//!   symmetric `sb2st` uses, alternating left/right),
//! * [`singular_values`] — σ via the Golub–Kahan–Lanczos tridiagonal
//!   (`TGK`) and the workspace's own tridiagonal eigensolver: the
//!   permuted Jordan–Wielandt matrix of a bidiagonal is tridiagonal with
//!   zero diagonal and interleaved `(d, e)` off-diagonals, and its
//!   eigenvalues are `±σ` at full accuracy.

use tg_householder::panel::panel_qr;
use tg_householder::reflector::{apply_left, apply_right, make_reflector};
use tg_householder::wblock::WyPair;
use tg_matrix::{Mat, Tridiagonal};

/// A bidiagonal matrix: diagonal `d` (length n) and superdiagonal `e`.
#[derive(Clone, Debug)]
pub struct Bidiagonal {
    pub d: Vec<f64>,
    pub e: Vec<f64>,
}

impl Bidiagonal {
    /// Expands to dense (upper bidiagonal).
    pub fn to_dense(&self) -> Mat {
        let n = self.d.len();
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = self.d[i];
        }
        for i in 0..n.saturating_sub(1) {
            m[(i, i + 1)] = self.e[i];
        }
        m
    }

    /// The Golub–Kahan–Lanczos tridiagonal whose eigenvalues are `±σ`:
    /// zero diagonal, off-diagonals `[d₀, e₀, d₁, e₁, …, d_{n−1}]`.
    pub fn tgk(&self) -> Tridiagonal {
        let n = self.d.len();
        let mut e = Vec::with_capacity(2 * n - 1);
        for i in 0..n {
            e.push(self.d[i]);
            if i + 1 < n {
                e.push(self.e[i]);
            }
        }
        Tridiagonal::new(vec![0.0; 2 * n], e)
    }

    /// Singular values, descending, via the TGK eigenvalues.
    pub fn singular_values(&self) -> Vec<f64> {
        if self.d.is_empty() {
            return Vec::new();
        }
        let eigs = tg_eigen::sterf(&self.tgk()).expect("TGK eigensolve failed");
        // eigenvalues are ±σ (ascending); the top n are the +σ branch
        let n = self.d.len();
        let mut s: Vec<f64> = eigs[n..].to_vec();
        s.reverse(); // descending
        s.iter_mut().for_each(|x| *x = x.max(0.0));
        s
    }
}

/// Result of a bidiagonal reduction `A = Q B Pᵀ` (reflector factors kept
/// for verification).
pub struct BidiagReduction {
    pub bidiag: Bidiagonal,
    /// Left factors: `Q = ∏ᵢ Fᵢ` where factor `i` acts on rows `off ..`.
    pub q_factors: Vec<(usize, WyPair)>,
    /// Right factors: `P = ∏ᵢ Gᵢ` acting on the column side.
    pub p_factors: Vec<(usize, WyPair)>,
}

impl BidiagReduction {
    /// Materializes `Q` (test helper).
    pub fn form_q(&self, n: usize) -> Mat {
        form(n, &self.q_factors)
    }

    /// Materializes `P` (test helper).
    pub fn form_p(&self, n: usize) -> Mat {
        form(n, &self.p_factors)
    }
}

fn form(n: usize, factors: &[(usize, WyPair)]) -> Mat {
    let mut q = Mat::identity(n);
    for (off, f) in factors.iter().rev() {
        let m = f.w.nrows();
        let mut sub = q.view_mut(*off, 0, m, n);
        f.apply_left(&mut sub);
    }
    q
}

/// Direct Golub–Kahan bidiagonalization of a square matrix (baseline,
/// `dgebrd`-flavoured but with explicit reflector storage).
pub fn gebrd(a: &mut Mat) -> BidiagReduction {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut q_factors = Vec::new();
    let mut p_factors = Vec::new();
    for j in 0..n {
        // left reflector: annihilate A[j+1.., j]
        if j + 1 < n {
            let (tau, tail) = {
                let col = a.col_mut(j);
                let r = make_reflector(&mut col[j..]);
                let tail = col[j + 1..].to_vec();
                col[j] = r.beta;
                (r.tau, tail)
            };
            if tau != 0.0 {
                let mut trail = a.view_mut(j, j + 1, n - j, n - j - 1);
                apply_left(tau, &tail, &mut trail);
            }
            for r in j + 1..n {
                a[(r, j)] = 0.0;
            }
            q_factors.push((j, single_factor(n - j, tau, &tail)));
        }
        // right reflector: annihilate A[j, j+2..]
        if j + 2 < n {
            let mut x: Vec<f64> = (j + 1..n).map(|c| a[(j, c)]).collect();
            let r = make_reflector(&mut x);
            let tail = x[1..].to_vec();
            a[(j, j + 1)] = r.beta;
            for c in j + 2..n {
                a[(j, c)] = 0.0;
            }
            if r.tau != 0.0 {
                let mut trail = a.view_mut(j + 1, j + 1, n - j - 1, n - j - 1);
                apply_right(r.tau, &tail, &mut trail);
            }
            p_factors.push((j + 1, single_factor(n - j - 1, r.tau, &tail)));
        }
    }
    BidiagReduction {
        bidiag: extract_bidiagonal(a),
        q_factors,
        p_factors,
    }
}

/// A one-reflector `(W, Y)` factor: `I − τ v vᵀ`.
fn single_factor(rows: usize, tau: f64, tail: &[f64]) -> WyPair {
    let mut y = Mat::zeros(rows, 1);
    y[(0, 0)] = 1.0;
    for (i, &t) in tail.iter().enumerate() {
        y[(i + 1, 0)] = t;
    }
    let mut w = y.clone();
    for v in w.as_mut_slice() {
        *v *= tau;
    }
    WyPair { w, y }
}

fn extract_bidiagonal(a: &Mat) -> Bidiagonal {
    let n = a.nrows();
    Bidiagonal {
        d: (0..n).map(|i| a[(i, i)]).collect(),
        e: (0..n.saturating_sub(1)).map(|i| a[(i, i + 1)]).collect(),
    }
}

/// Stage 1: reduces a square matrix to **upper band** form (bandwidth `b`
/// superdiagonals, zero below the diagonal) with alternating blocked QR /
/// LQ panels: `A = Q · Band · Pᵀ`.
pub fn ge2gb(a: &mut Mat, b: usize) -> BidiagReduction {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert!(b >= 1);
    let mut q_factors = Vec::new();
    let mut p_factors = Vec::new();

    let mut j = 0;
    while n - j > b + 1 {
        // ── QR panel: annihilate below the diagonal of columns j..j+b
        let w = b.min(n - j);
        let pq = {
            let mut panel = a.view_mut(j, j, n - j, w);
            panel_qr(&mut panel)
        };
        for c in 0..w {
            for r in (j + c + 1)..n {
                a[(r, j + c)] = 0.0;
            }
        }
        if j + w < n {
            let mut trail = a.view_mut(j, j + w, n - j, n - j - w);
            pq.block.apply_left(&mut trail, true);
        }
        q_factors.push((
            j,
            WyPair {
                w: pq.block.w(),
                y: pq.block.v.clone(),
            },
        ));

        // ── LQ panel: annihilate right of the band in rows j..j+b
        if j + b < n {
            // factorize the transposed row panel A[j..j+w, j+b..]ᵀ
            let rows = w;
            let cols = n - j - b;
            let mut t = Mat::zeros(cols, rows);
            for r in 0..rows {
                for c in 0..cols {
                    t[(c, r)] = a[(j + r, j + b + c)];
                }
            }
            let pq = {
                let mut v = t.as_mut();
                panel_qr(&mut v)
            };
            // row panel ← Rᵀ (lower trapezoid)
            let kr = pq.block.k();
            for r in 0..rows {
                for c in 0..cols {
                    a[(j + r, j + b + c)] = if c < kr && c <= r { pq.r[(c, r)] } else { 0.0 };
                }
            }
            // apply P to the remaining rows: A[j+w.., j+b..] ← A · (I − VTVᵀ)
            if j + w < n {
                let mut trail = a.view_mut(j + w, j + b, n - j - w, cols);
                pq.block.apply_right(&mut trail, false);
            }
            p_factors.push((
                j + b,
                WyPair {
                    w: pq.block.w(),
                    y: pq.block.v.clone(),
                },
            ));
        }
        j += b;
    }
    // final cleanup: QR the trailing block so everything below the diagonal
    // is gone (its width ≤ b+1, so the result is inside the band)
    if n - j >= 2 {
        let pq = {
            let mut panel = a.view_mut(j, j, n - j, n - j);
            panel_qr(&mut panel)
        };
        for c in 0..n - j {
            for r in (j + c + 1)..n {
                a[(r, j + c)] = 0.0;
            }
        }
        q_factors.push((
            j,
            WyPair {
                w: pq.block.w(),
                y: pq.block.v.clone(),
            },
        ));
    }

    BidiagReduction {
        bidiag: extract_bidiagonal(a), // only valid once b == 1; callers use `a`
        q_factors,
        p_factors,
    }
}

/// Stage 2: band → bidiagonal bulge chasing. `a` is upper-band with `b`
/// superdiagonals (zero below the diagonal); reflector spans are ≤ `b + 1`
/// long, exactly like the symmetric `sb2st` chase, alternating right
/// (column) and left (row) reflectors.
pub fn gb2bd(a: &mut Mat, b: usize) -> BidiagReduction {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert!(b >= 1);
    let mut q_factors = Vec::new();
    let mut p_factors = Vec::new();
    if b == 1 || n <= 2 {
        return BidiagReduction {
            bidiag: extract_bidiagonal(a),
            q_factors,
            p_factors,
        };
    }

    for s in 0..n - 1 {
        // task 0 (right): annihilate row s beyond its superdiagonal
        let e0 = (s + b).min(n - 1);
        if e0 >= s + 2 {
            p_factors.push((s + 1, right_annihilate(a, s, s + 1, e0)));
        } else {
            continue;
        }
        // chase
        let mut lc = s + 1;
        let mut span_end = e0;
        loop {
            // left: annihilate column lc below its diagonal
            let lr_end = span_end.min(n - 1);
            if lr_end > lc {
                q_factors.push((lc, left_annihilate(a, lc, lc, lr_end)));
            } else {
                break;
            }
            // right: annihilate row lc beyond the band edge lc + b
            let rc = lc + b;
            let rc_end = (lr_end + b).min(n - 1);
            if rc >= n - 1 || rc_end <= rc {
                break;
            }
            p_factors.push((rc, right_annihilate(a, lc, rc, rc_end)));
            lc = rc;
            span_end = rc_end;
        }
    }
    BidiagReduction {
        bidiag: extract_bidiagonal(a),
        q_factors,
        p_factors,
    }
}

/// Right reflector on columns `[c0, c1]` annihilating `A[row, c0+1..=c1]`
/// (keeping `A[row, c0]`), applied to all rows.
fn right_annihilate(a: &mut Mat, row: usize, c0: usize, c1: usize) -> WyPair {
    let n = a.nrows();
    let mut x: Vec<f64> = (c0..=c1).map(|c| a[(row, c)]).collect();
    let r = make_reflector(&mut x);
    let tail = x[1..].to_vec();
    if r.tau != 0.0 {
        let mut view = a.view_mut(0, c0, n, c1 - c0 + 1);
        apply_right(r.tau, &tail, &mut view);
    }
    a[(row, c0)] = r.beta;
    for c in c0 + 1..=c1 {
        a[(row, c)] = 0.0;
    }
    single_factor(c1 - c0 + 1, r.tau, &tail)
}

/// Left reflector on rows `[r0, r1]` annihilating `A[r0+1..=r1, col]`
/// (keeping `A[r0, col]`), applied to all columns.
fn left_annihilate(a: &mut Mat, col: usize, r0: usize, r1: usize) -> WyPair {
    let n = a.ncols();
    let mut x: Vec<f64> = (r0..=r1).map(|r| a[(r, col)]).collect();
    let r = make_reflector(&mut x);
    let tail = x[1..].to_vec();
    if r.tau != 0.0 {
        let mut view = a.view_mut(r0, 0, r1 - r0 + 1, n);
        apply_left(r.tau, &tail, &mut view);
    }
    a[(r0, col)] = r.beta;
    for rr in r0 + 1..=r1 {
        a[(rr, col)] = 0.0;
    }
    single_factor(r1 - r0 + 1, r.tau, &tail)
}

/// SVD method selector.
#[derive(Clone, Copy, Debug)]
pub enum SvdMethod {
    /// One-stage Golub–Kahan (the classic).
    Direct,
    /// Two-stage: band reduction + bulge chasing (Gates et al. structure),
    /// with the given bandwidth.
    TwoStage { b: usize },
}

/// Singular values of a square matrix, descending.
pub fn singular_values(a: &Mat, method: SvdMethod) -> Vec<f64> {
    let mut work = a.clone();
    let red = match method {
        SvdMethod::Direct => gebrd(&mut work),
        SvdMethod::TwoStage { b } => {
            let mut r1 = ge2gb(&mut work, b);
            let r2 = gb2bd(&mut work, b);
            r1.q_factors.extend(r2.q_factors);
            r1.p_factors.extend(r2.p_factors);
            BidiagReduction {
                bidiag: r2.bidiag,
                q_factors: r1.q_factors,
                p_factors: r1.p_factors,
            }
        }
    };
    red.bidiag.singular_values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_blas::{gemm, gemm_into, Op};
    use tg_matrix::{gen, max_abs_diff, orthogonality_residual};

    /// `‖A − Q M Pᵀ‖ / ‖A‖` for the reduction factors.
    fn reduction_residual(a0: &Mat, m: &Mat, red: &BidiagReduction) -> f64 {
        let n = a0.nrows();
        let q = red.form_q(n);
        let p = red.form_p(n);
        let qm = gemm_into(1.0, &q.as_ref(), Op::NoTrans, &m.as_ref(), Op::NoTrans);
        let mut qmpt = Mat::zeros(n, n);
        gemm(
            1.0,
            &qm.as_ref(),
            Op::NoTrans,
            &p.as_ref(),
            Op::Trans,
            0.0,
            &mut qmpt.as_mut(),
        );
        max_abs_diff(&qmpt, a0) / tg_matrix::frob_norm(a0)
    }

    #[test]
    fn gebrd_contract() {
        for (n, seed) in [(8usize, 1u64), (17, 2), (24, 3)] {
            let a0 = gen::random(n, n, seed);
            let mut a = a0.clone();
            let red = gebrd(&mut a);
            assert!(orthogonality_residual(&red.form_q(n)) < 1e-12);
            assert!(orthogonality_residual(&red.form_p(n)) < 1e-12);
            let r = reduction_residual(&a0, &red.bidiag.to_dense(), &red);
            assert!(r < 1e-13, "n={n}: {r}");
        }
    }

    #[test]
    fn ge2gb_band_structure_and_contract() {
        for (n, b, seed) in [(18usize, 3usize, 1u64), (25, 4, 2), (16, 2, 3)] {
            let a0 = gen::random(n, n, seed);
            let mut a = a0.clone();
            let red = ge2gb(&mut a, b);
            // structure: zero below the diagonal and beyond b superdiagonals
            for j in 0..n {
                for i in 0..n {
                    if i > j || j > i + b {
                        assert!(
                            a[(i, j)].abs() < 1e-12,
                            "({i},{j}) = {} outside the band (n={n},b={b})",
                            a[(i, j)]
                        );
                    }
                }
            }
            let r = reduction_residual(&a0, &a, &red);
            assert!(r < 1e-12, "n={n} b={b}: {r}");
        }
    }

    #[test]
    fn gb2bd_chases_band_to_bidiagonal() {
        for (n, b, seed) in [(14usize, 3usize, 5u64), (20, 4, 6), (17, 2, 7)] {
            // build a genuine upper-band matrix through stage 1
            let a0 = gen::random(n, n, seed);
            let mut band = a0.clone();
            let red1 = ge2gb(&mut band, b);
            let band0 = band.clone();
            let red2 = gb2bd(&mut band, b);
            // bidiagonal structure
            for j in 0..n {
                for i in 0..n {
                    if i != j && j != i + 1 {
                        assert!(
                            band[(i, j)].abs() < 1e-11,
                            "({i},{j}) = {} not bidiagonal (n={n},b={b})",
                            band[(i, j)]
                        );
                    }
                }
            }
            // stage-2 contract against the band input
            let r = reduction_residual(&band0, &red2.bidiag.to_dense(), &red2);
            assert!(r < 1e-12, "stage2 n={n} b={b}: {r}");
            let _ = red1;
        }
    }

    #[test]
    fn singular_values_match_eigs_of_gram_matrix() {
        let n = 20;
        let a = gen::random(n, n, 9);
        // reference: σ = sqrt(eig(AᵀA))
        let gram = gemm_into(1.0, &a.as_ref(), Op::Trans, &a.as_ref(), Op::NoTrans);
        let mut g = gram.clone();
        for j in 0..n {
            for i in 0..j {
                let v = 0.5 * (g[(i, j)] + g[(j, i)]);
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        let eigs = tg_eigen::syevd(&mut g, &tg_eigen::EvdMethod::CusolverLike { nb: 4 }, false)
            .unwrap()
            .eigenvalues;
        let mut reference: Vec<f64> = eigs.iter().rev().map(|&x| x.max(0.0).sqrt()).collect();
        reference.sort_by(|x, y| y.partial_cmp(x).unwrap());

        for method in [SvdMethod::Direct, SvdMethod::TwoStage { b: 3 }] {
            let sv = singular_values(&a, method);
            assert_eq!(sv.len(), n);
            assert!(sv.windows(2).all(|w| w[0] >= w[1] - 1e-12), "{method:?}");
            for (x, y) in sv.iter().zip(&reference) {
                assert!(
                    (x - y).abs() < 1e-8 * reference[0],
                    "{method:?}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn two_stage_matches_direct() {
        let n = 24;
        let a = gen::random(n, n, 11);
        let s1 = singular_values(&a, SvdMethod::Direct);
        let s2 = singular_values(&a, SvdMethod::TwoStage { b: 4 });
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-10 * s1[0].max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn known_singular_values() {
        // diag(5, 3, 1) rotated on both sides
        let n = 3;
        let u = gen::random_orthogonal(n, 20);
        let v = gen::random_orthogonal(n, 21);
        let mut a = Mat::zeros(n, n);
        for (k, &s) in [5.0, 3.0, 1.0].iter().enumerate() {
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] += s * u[(i, k)] * v[(j, k)];
                }
            }
        }
        let sv = singular_values(&a, SvdMethod::Direct);
        assert!((sv[0] - 5.0).abs() < 1e-10);
        assert!((sv[1] - 3.0).abs() < 1e-10);
        assert!((sv[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn tgk_structure() {
        let b = Bidiagonal {
            d: vec![2.0, 3.0],
            e: vec![0.5],
        };
        let t = b.tgk();
        assert_eq!(t.d, vec![0.0; 4]);
        assert_eq!(t.e, vec![2.0, 0.5, 3.0]);
    }

    #[test]
    fn rank_deficient_singular_values() {
        // rank-2 matrix: n−2 zero singular values
        let n = 10;
        let u = gen::random(n, 2, 30);
        let v = gen::random(n, 2, 31);
        let a = gemm_into(1.0, &u.as_ref(), Op::NoTrans, &v.as_ref(), Op::Trans);
        let sv = singular_values(&a, SvdMethod::TwoStage { b: 2 });
        let zeros = sv.iter().filter(|x| x.abs() < 1e-10 * sv[0]).count();
        assert_eq!(zeros, n - 2);
    }
}
