//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names *where* (a fault site — a stage boundary or
//! workspace the pipelines expose) and *what* (a [`FaultKind`]) to corrupt.
//! Sites fire at most once per session, are recorded as [`FiredFault`]s in
//! the [`crate::CheckReport`], and bump
//! [`tg_trace::Counter::FaultsInjected`], so a campaign can assert both
//! that the fault landed and that a checker caught it.
//!
//! Fault sites wired into the pipelines:
//!
//! | site              | where                                                 |
//! |-------------------|-------------------------------------------------------|
//! | `stage1.band`     | band storage right after DBBR / SBR (two_stage)       |
//! | `bc.tri`          | tridiagonal `d` right after bulge chasing (two_stage) |
//! | `evd.values`      | eigenvalues after the tridiagonal solve (syevd)       |
//! | `backtransform.q` | eigenvector matrix after the back-transform (syevd)   |
//! | `blas.syr2k`      | output tile of the blocked SYR2K update (tg-blas)     |
//! | `blas.panel_qr`   | panel `W` factor after the stage-1 panel QR (dbbr)    |
//! | `arena.acquire`   | skips the arena's zero-fill on a buffer reuse hit     |
//!
//! Everything is seed-deterministic: [`FaultPlan::campaign`] derives kinds
//! and indices from a splitmix64 stream, so `TG_FAULT_SEED=101` reproduces
//! the identical corruption on every run.

use std::sync::Mutex;
use std::sync::OnceLock;

use crate::lock_unpoisoned;
use tg_matrix::{Mat, SymBand};

/// What to write into the victim element(s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Overwrite with a quiet NaN.
    Nan,
    /// Overwrite with `+∞`.
    Inf,
    /// Negate the first element of significant magnitude at/after the index.
    SignFlip,
    /// Relative+absolute bump: `x += delta · (1 + |x|)`.
    Perturb(f64),
    /// Skip a zero-initialization the contract requires (only meaningful at
    /// workspace sites such as `arena.acquire`).
    SkipZero,
}

/// One planned corruption.
#[derive(Clone, Debug)]
pub struct Fault {
    /// Which instrumented site to corrupt (see module table).
    pub site: &'static str,
    /// What to write.
    pub kind: FaultKind,
    /// Flat element index into the site's buffer (wrapped to its length).
    pub index: usize,
}

/// A set of faults armed for one session.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
}

/// Every site the pipelines expose, in pipeline order.
pub const SITES: [&str; 7] = [
    "stage1.band",
    "bc.tri",
    "evd.values",
    "backtransform.q",
    "blas.syr2k",
    "blas.panel_qr",
    "arena.acquire",
];

impl FaultPlan {
    /// One specific fault.
    pub fn single(site: &'static str, kind: FaultKind, index: usize) -> FaultPlan {
        FaultPlan {
            faults: vec![Fault { site, kind, index }],
        }
    }

    /// Seed-derived campaign: one fault per known site, with kind and index
    /// drawn from a splitmix64 stream. The same seed always produces the
    /// same plan (`TG_FAULT_SEED` in CI).
    pub fn campaign(seed: u64) -> FaultPlan {
        let mut s = seed;
        let faults = SITES
            .iter()
            .map(|&site| {
                let kind = if site == "arena.acquire" {
                    FaultKind::SkipZero
                } else {
                    match splitmix64(&mut s) % 4 {
                        0 => FaultKind::Nan,
                        1 => FaultKind::Inf,
                        2 => FaultKind::SignFlip,
                        _ => FaultKind::Perturb(1e-2),
                    }
                };
                let index = (splitmix64(&mut s) % 4096) as usize;
                Fault { site, kind, index }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Campaign seeded from `TG_FAULT_SEED`, or `None` when unset/invalid.
    pub fn from_env() -> Option<FaultPlan> {
        let seed = std::env::var("TG_FAULT_SEED").ok()?.parse::<u64>().ok()?;
        Some(FaultPlan::campaign(seed))
    }

    /// The subset of the plan targeting one site.
    pub fn for_site(&self, site: &str) -> Vec<&Fault> {
        self.faults.iter().filter(|f| f.site == site).collect()
    }
}

/// A fault that actually landed.
#[derive(Clone, Debug)]
pub struct FiredFault {
    pub site: &'static str,
    pub kind: FaultKind,
    /// Resolved element index (after wrapping / scanning).
    pub index: usize,
}

thread_local! {
    /// Faults that landed *on this thread*, monotonically increasing for
    /// the process lifetime. Snapshot before and after a unit of work to
    /// learn whether that work absorbed an injected fault — `tg-serve`
    /// uses the delta to classify an attempt as transiently corrupted and
    /// retry it, which is what makes the retry path exercised by real
    /// injected failures rather than mocks.
    static FIRED_ON_THREAD: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Number of faults that have fired on the calling thread so far (never
/// reset; compare snapshots around a work item to attribute a fault to it).
pub fn fired_on_this_thread() -> u64 {
    FIRED_ON_THREAD.with(|c| c.get())
}

fn bump_fired_on_thread() {
    FIRED_ON_THREAD.with(|c| c.set(c.get() + 1));
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---- armed-plan global state ----

struct Armed {
    pending: Vec<Fault>,
    fired: Vec<FiredFault>,
}

fn armed() -> &'static Mutex<Option<Armed>> {
    static ARMED: OnceLock<Mutex<Option<Armed>>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(None))
}

pub(crate) fn arm(plan: FaultPlan) {
    *lock_unpoisoned(armed()) = Some(Armed {
        pending: plan.faults,
        fired: Vec::new(),
    });
}

pub(crate) fn disarm() -> Vec<FiredFault> {
    lock_unpoisoned(armed())
        .take()
        .map(|a| a.fired)
        .unwrap_or_default()
}

/// Claims the pending fault for `site`, if any (fire-once: the fault is
/// removed from the plan). Low-level entry point for call sites that
/// cannot hand over a whole buffer (e.g. strided BLAS tiles): apply the
/// kind yourself via [`apply`], then confirm with [`record_fired`].
pub fn claim(site: &'static str) -> Option<(usize, FaultKind)> {
    if !crate::enabled() {
        return None;
    }
    let mut guard = lock_unpoisoned(armed());
    let armed = guard.as_mut()?;
    let pos = armed.pending.iter().position(|f| f.site == site)?;
    let fault = armed.pending.remove(pos);
    Some((fault.index, fault.kind))
}

/// Records a claimed fault as landed (bumps the trace counter).
pub fn record_fired(site: &'static str, kind: FaultKind, index: usize) {
    tg_trace::add(tg_trace::Counter::FaultsInjected, 1);
    bump_fired_on_thread();
    if let Some(armed) = lock_unpoisoned(armed()).as_mut() {
        armed.fired.push(FiredFault { site, kind, index });
    }
}

/// Applies `kind` to one element. For [`FaultKind::SignFlip`] /
/// [`FaultKind::Perturb`] on a near-zero element the result could be
/// undetectably small, so callers should prefer [`inject`], which scans
/// for a significant victim; this single-element form sets `1.0` first
/// when the victim is tiny, guaranteeing a visible corruption.
pub fn apply(kind: FaultKind, x: &mut f64) {
    match kind {
        FaultKind::Nan => *x = f64::NAN,
        FaultKind::Inf => *x = f64::INFINITY,
        FaultKind::SignFlip => {
            if x.abs() < 1e-6 {
                *x = 1.0;
            }
            *x = -*x;
        }
        FaultKind::Perturb(delta) => *x += delta * (1.0 + x.abs()),
        FaultKind::SkipZero => {}
    }
}

/// Injects the pending fault for `site` into a flat buffer, if one is
/// armed. Returns the fired fault for convenience. The planned index is
/// wrapped to the buffer length; for magnitude-dependent kinds the victim
/// is the first element of significant magnitude at/after the index (so
/// the corruption cannot hide in structural zeros).
pub fn inject(site: &'static str, buf: &mut [f64]) -> Option<FiredFault> {
    let (index, kind) = claim(site)?;
    if buf.is_empty() {
        return None;
    }
    let start = index % buf.len();
    let victim = match kind {
        FaultKind::SignFlip | FaultKind::Perturb(_) => (start..buf.len())
            .chain(0..start)
            .find(|&i| buf[i].abs() > 1e-6)
            .unwrap_or(start),
        _ => start,
    };
    apply(kind, &mut buf[victim]);
    record_fired(site, kind, victim);
    Some(FiredFault {
        site,
        kind,
        index: victim,
    })
}

/// [`inject`] for symmetric band storage: the planned index is mapped to a
/// *valid* `(i, j)` slot (tail columns of the compact layout contain
/// out-of-matrix padding that no checker ever reads).
pub fn inject_band(site: &'static str, band: &mut SymBand) -> Option<FiredFault> {
    let (index, kind) = claim(site)?;
    let n = band.n();
    if n == 0 {
        return None;
    }
    let ldab = band.ldab();
    // enumerate valid slots: column j holds rows j..min(j+ldab, n)
    let mut valid = 0usize;
    for j in 0..n {
        valid += ldab.min(n - j);
    }
    let mut k = index % valid;
    let (mut vi, mut vj) = (0, 0);
    'outer: for j in 0..n {
        let len = ldab.min(n - j);
        if k < len {
            vi = j + k;
            vj = j;
            break 'outer;
        }
        k -= len;
    }
    let flat = vj * ldab + (vi - vj);
    let slot = &mut band.as_mut_slice()[flat];
    apply(kind, slot);
    record_fired(site, kind, flat);
    Some(FiredFault {
        site,
        kind,
        index: flat,
    })
}

/// [`inject`] for a dense matrix (flat column-major index).
pub fn inject_mat(site: &'static str, m: &mut Mat) -> Option<FiredFault> {
    inject(site, m.as_mut_slice())
}

/// True when the pending fault for `site` is [`FaultKind::SkipZero`]:
/// the call site should skip its zero-initialization. Fires the fault.
pub fn skip_zero(site: &'static str) -> bool {
    if !crate::enabled() {
        return false;
    }
    let should_skip = {
        let mut guard = lock_unpoisoned(armed());
        let Some(armed) = guard.as_mut() else {
            return false;
        };
        let pos = armed
            .pending
            .iter()
            .position(|f| f.site == site && f.kind == FaultKind::SkipZero);
        match pos {
            Some(p) => {
                let fault = armed.pending.remove(p);
                armed.fired.push(FiredFault {
                    site,
                    kind: fault.kind,
                    index: fault.index,
                });
                true
            }
            None => false,
        }
    };
    if should_skip {
        tg_trace::add(tg_trace::Counter::FaultsInjected, 1);
        bump_fired_on_thread();
    }
    should_skip
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckConfig, CheckSession};

    #[test]
    fn campaign_is_deterministic_and_covers_all_sites() {
        let a = FaultPlan::campaign(101);
        let b = FaultPlan::campaign(101);
        let c = FaultPlan::campaign(202);
        assert_eq!(a.faults.len(), SITES.len());
        for (x, y) in a.faults.iter().zip(&b.faults) {
            assert_eq!(x.site, y.site);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.index, y.index);
        }
        // different seed differs somewhere
        assert!(a
            .faults
            .iter()
            .zip(&c.faults)
            .any(|(x, y)| x.kind != y.kind || x.index != y.index));
        // arena site is always SkipZero
        assert_eq!(a.for_site("arena.acquire")[0].kind, FaultKind::SkipZero);
    }

    #[test]
    fn inject_fires_once_and_is_reported() {
        let cfg =
            CheckConfig::strict().with_faults(FaultPlan::single("stage1.band", FaultKind::Nan, 5));
        let session = CheckSession::begin(cfg);
        let mut buf = vec![1.0; 8];
        let fired = inject("stage1.band", &mut buf);
        assert!(fired.is_some());
        assert!(buf[5].is_nan());
        // fire-once: second call is a no-op
        assert!(inject("stage1.band", &mut buf).is_none());
        let report = session.finish();
        assert_eq!(report.faults_fired.len(), 1);
        assert_eq!(report.faults_fired[0].site, "stage1.band");
    }

    #[test]
    fn inject_without_session_is_inert() {
        let mut buf = vec![1.0; 4];
        assert!(inject("stage1.band", &mut buf).is_none());
        assert!(!skip_zero("arena.acquire"));
        assert_eq!(buf, vec![1.0; 4]);
    }

    #[test]
    fn sign_flip_scans_for_significant_victim() {
        let cfg =
            CheckConfig::strict().with_faults(FaultPlan::single("bc.tri", FaultKind::SignFlip, 0));
        let session = CheckSession::begin(cfg);
        let mut buf = vec![0.0, 0.0, 3.0, 0.0];
        let fired = inject("bc.tri", &mut buf).unwrap();
        assert_eq!(fired.index, 2);
        assert_eq!(buf[2], -3.0);
        let _ = session.finish();
    }

    #[test]
    fn band_injection_lands_in_valid_slot() {
        let cfg = CheckConfig::strict().with_faults(FaultPlan::single(
            "stage1.band",
            FaultKind::Inf,
            4093,
        ));
        let session = CheckSession::begin(cfg);
        // tail columns of a 6x6 kd=2 band have padding slots; index must wrap
        // into a real (i, j)
        let mut band = SymBand::zeros(6, 2);
        let fired = inject_band("stage1.band", &mut band).unwrap();
        let flat = fired.index;
        let (j, off) = (flat / band.ldab(), flat % band.ldab());
        assert!(j + off < band.n(), "landed in padding: col {j} off {off}");
        assert!(band.at(j + off, j).is_infinite());
        let _ = session.finish();
    }

    #[test]
    fn skip_zero_only_matches_skip_kind() {
        let cfg = CheckConfig::strict().with_faults(FaultPlan::single(
            "arena.acquire",
            FaultKind::Nan,
            0,
        ));
        let session = CheckSession::begin(cfg);
        assert!(!skip_zero("arena.acquire")); // kind is Nan, not SkipZero
        let _ = session.finish();

        let cfg = CheckConfig::strict().with_faults(FaultPlan::single(
            "arena.acquire",
            FaultKind::SkipZero,
            0,
        ));
        let session = CheckSession::begin(cfg);
        assert!(skip_zero("arena.acquire"));
        assert!(!skip_zero("arena.acquire")); // fire-once
        let report = session.finish();
        assert_eq!(report.faults_fired.len(), 1);
    }

    #[test]
    fn fired_count_is_per_thread_and_monotonic() {
        let cfg = CheckConfig::strict().with_faults(FaultPlan::single("bc.tri", FaultKind::Nan, 0));
        let session = CheckSession::begin(cfg);
        let before = fired_on_this_thread();
        // firing on another thread must not move this thread's count
        std::thread::spawn(|| {
            let mut buf = vec![1.0; 4];
            let _ = inject("bc.tri", &mut buf);
        })
        .join()
        .unwrap();
        assert_eq!(fired_on_this_thread(), before);
        let _ = session.finish();

        let cfg = CheckConfig::strict().with_faults(FaultPlan::single("bc.tri", FaultKind::Nan, 0));
        let session = CheckSession::begin(cfg);
        let before = fired_on_this_thread();
        let mut buf = vec![1.0; 4];
        assert!(inject("bc.tri", &mut buf).is_some());
        assert_eq!(fired_on_this_thread(), before + 1);
        let _ = session.finish();
    }

    #[test]
    fn from_env_parses_seed() {
        // avoid mutating process env in parallel tests: only sanity-check
        // the unset/garbage path plus direct campaign equivalence
        if std::env::var("TG_FAULT_SEED").is_err() {
            assert!(FaultPlan::from_env().is_none());
        }
        let plan = FaultPlan::campaign(7);
        assert_eq!(plan.faults.len(), SITES.len());
    }
}
