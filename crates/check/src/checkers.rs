//! The stage checkers: one [`StageChecker`] per invariant the two-stage
//! pipeline promises, each following LAPACK testing conventions
//! (`docs/VERIFICATION.md` documents tolerances and provenance).

use crate::CheckRecord;
use tg_matrix::{norms, Mat, SymBand, Tridiagonal};

/// Data available at one stage boundary. A checker inspects the variant it
/// understands and ignores the rest, so adding a stage never touches
/// existing checkers.
pub enum StageData<'a> {
    /// After stage 1 (DBBR / SBR band reduction).
    Band {
        band: &'a SymBand,
        expected_b: usize,
    },
    /// After stage 2 (bulge chasing) or the direct Householder reduction.
    Tridiag { tri: &'a Tridiagonal },
    /// Accumulated orthogonal factor (deep check).
    Orthogonality { q: &'a Mat },
    /// Original `A`, accumulated `Q`, reduced `B` (deep check).
    Similarity { a: &'a Mat, q: &'a Mat, b: &'a Mat },
    /// Computed spectrum vs. the `sterf` oracle, plus the Gershgorin
    /// enclosure `(lo, hi)` of the reduced tridiagonal.
    Spectrum {
        computed: &'a [f64],
        oracle: &'a [f64],
        gershgorin: (f64, f64),
    },
    /// A workspace buffer just handed out by a pool/arena.
    Workspace { buf: &'a [f64] },
}

/// One pluggable invariant check. `check` returns `None` when the stage
/// data is not the checker's concern, `Some(record)` otherwise.
pub trait StageChecker: Send {
    /// Stable identifier used in reports and golden baselines.
    fn name(&self) -> &'static str;
    /// Inspects one stage boundary.
    fn check(&self, data: &StageData<'_>) -> Option<CheckRecord>;
}

fn worst_nonfinite(xs: &[f64]) -> Option<usize> {
    xs.iter().position(|x| !x.is_finite())
}

/// Stage 1 contract: the reduced matrix is *exactly* banded with the target
/// bandwidth (DBBR stores explicit zeros outside the band — LAPACK `dsbtrd`
/// convention), and every stored entry is finite.
pub struct BandStructureChecker {
    /// Allowed magnitude outside the target band (0.0 = exact).
    pub tol: f64,
}

impl StageChecker for BandStructureChecker {
    fn name(&self) -> &'static str {
        "band_structure"
    }

    fn check(&self, data: &StageData<'_>) -> Option<CheckRecord> {
        let StageData::Band { band, expected_b } = *data else {
            return None;
        };
        if worst_nonfinite(band.as_slice()).is_some() {
            return Some(CheckRecord {
                checker: self.name(),
                value: f64::INFINITY,
                threshold: self.tol,
                pass: false,
                detail: format!("non-finite entry in band storage (n={})", band.n()),
            });
        }
        // worst out-of-band magnitude across the stored fill-in rows
        let mut worst = 0.0f64;
        for j in 0..band.n() {
            for i in (j + expected_b + 1)..(j + band.ldab()).min(band.n()) {
                worst = worst.max(band.at(i, j).abs());
            }
        }
        let pass = worst <= self.tol;
        Some(CheckRecord {
            checker: self.name(),
            value: worst,
            threshold: self.tol,
            pass,
            detail: format!("n={} b={} ldab={}", band.n(), expected_b, band.ldab()),
        })
    }
}

/// Stage 2 contract: the output is structurally tridiagonal — `d`/`e`
/// lengths consistent and every entry finite. Symmetry is inherent in the
/// `(d, e)` representation; what can go wrong is bulge residue surfacing as
/// NaN/Inf (the band-extraction tolerance test cannot flag non-finite
/// values since `NaN > tol` is false).
pub struct TridiagonalFormChecker;

impl StageChecker for TridiagonalFormChecker {
    fn name(&self) -> &'static str {
        "tridiagonal_form"
    }

    fn check(&self, data: &StageData<'_>) -> Option<CheckRecord> {
        let StageData::Tridiag { tri } = *data else {
            return None;
        };
        let structural_ok =
            tri.e.len() + 1 == tri.d.len() || (tri.d.is_empty() && tri.e.is_empty());
        let bad = worst_nonfinite(&tri.d)
            .map(|i| format!("d[{i}]"))
            .or_else(|| worst_nonfinite(&tri.e).map(|i| format!("e[{i}]")));
        let pass = structural_ok && bad.is_none();
        Some(CheckRecord {
            checker: self.name(),
            value: if pass { 0.0 } else { f64::INFINITY },
            threshold: 0.0,
            pass,
            detail: match (&bad, structural_ok) {
                (Some(loc), _) => format!("non-finite {loc} (n={})", tri.n()),
                (None, false) => format!("d/e length mismatch: {} vs {}", tri.d.len(), tri.e.len()),
                (None, true) => format!("n={}", tri.n()),
            },
        })
    }
}

/// Back-transform contract: `‖QᵀQ − I‖_F / √n ≤ tol` for the accumulated
/// orthogonal factor (LAPACK `dort01` convention).
pub struct OrthogonalityChecker {
    pub tol: f64,
}

impl StageChecker for OrthogonalityChecker {
    fn name(&self) -> &'static str {
        "orthogonality"
    }

    fn check(&self, data: &StageData<'_>) -> Option<CheckRecord> {
        let StageData::Orthogonality { q } = *data else {
            return None;
        };
        let value = norms::orthogonality_residual(q);
        let pass = value.is_finite() && value <= self.tol;
        Some(CheckRecord {
            checker: self.name(),
            value,
            threshold: self.tol,
            pass,
            detail: format!("{}x{}", q.nrows(), q.ncols()),
        })
    }
}

/// End-to-end contract: `‖A − Q B Qᵀ‖_F / ‖A‖_F ≤ tol` (LAPACK `dsyt21`
/// convention). Shape misuse is reported as a failed check, not a panic.
pub struct SimilarityChecker {
    pub tol: f64,
}

impl StageChecker for SimilarityChecker {
    fn name(&self) -> &'static str {
        "similarity"
    }

    fn check(&self, data: &StageData<'_>) -> Option<CheckRecord> {
        let StageData::Similarity { a, q, b } = *data else {
            return None;
        };
        match norms::try_similarity_residual(a, q, b) {
            Ok(value) => {
                let pass = value.is_finite() && value <= self.tol;
                Some(CheckRecord {
                    checker: self.name(),
                    value,
                    threshold: self.tol,
                    pass,
                    detail: format!("n={}", a.nrows()),
                })
            }
            Err(e) => Some(CheckRecord {
                checker: self.name(),
                value: f64::INFINITY,
                threshold: self.tol,
                pass: false,
                detail: format!("shape error: {e}"),
            }),
        }
    }
}

/// Eigenvalue contract against the `sterf` oracle:
///
/// * computed spectrum is finite and ascending (the solvers sort),
/// * every eigenvalue lies inside the Gershgorin enclosure of `T`
///   (slightly inflated — Weyl's inequality bounds the drift by the
///   perturbation norm, which is `O(n·ε·‖T‖)` for a stable solver),
/// * `max |λ̂ − λ| / max|λ| ≤ tol` against the oracle.
pub struct SpectrumChecker {
    pub tol: f64,
}

impl StageChecker for SpectrumChecker {
    fn name(&self) -> &'static str {
        "spectrum"
    }

    fn check(&self, data: &StageData<'_>) -> Option<CheckRecord> {
        let StageData::Spectrum {
            computed,
            oracle,
            gershgorin,
        } = *data
        else {
            return None;
        };
        let n = computed.len();
        if let Some(i) = worst_nonfinite(computed) {
            return Some(CheckRecord {
                checker: self.name(),
                value: f64::INFINITY,
                threshold: self.tol,
                pass: false,
                detail: format!("non-finite eigenvalue at index {i} (n={n})"),
            });
        }
        if let Some(i) = (1..n).find(|&i| computed[i] < computed[i - 1]) {
            return Some(CheckRecord {
                checker: self.name(),
                value: computed[i - 1] - computed[i],
                threshold: 0.0,
                pass: false,
                detail: format!("spectrum not ascending at index {i}"),
            });
        }
        let (lo, hi) = gershgorin;
        let spread = (hi - lo).abs().max(hi.abs()).max(lo.abs()).max(1.0);
        let slack = 1e3 * tg_matrix::EPS * spread;
        if n > 0 && (computed[0] < lo - slack || computed[n - 1] > hi + slack) {
            let overshoot = (lo - computed[0]).max(computed[n - 1] - hi);
            return Some(CheckRecord {
                checker: self.name(),
                value: overshoot,
                threshold: slack,
                pass: false,
                detail: format!("eigenvalue outside Gershgorin [{lo:.3e}, {hi:.3e}]"),
            });
        }
        if oracle.len() != n {
            return Some(CheckRecord {
                checker: self.name(),
                value: f64::INFINITY,
                threshold: self.tol,
                pass: false,
                detail: format!("oracle length {} != {}", oracle.len(), n),
            });
        }
        let value = norms::spectrum_error(oracle, computed);
        let pass = value <= self.tol;
        Some(CheckRecord {
            checker: self.name(),
            value,
            threshold: self.tol,
            pass,
            detail: format!("n={n} vs sterf oracle"),
        })
    }
}

/// Workspace-pool contract: an acquired buffer is bitwise zero. Catches
/// both stale reuse and leaked debug NaN-poison (see
/// `tg_batch::WorkspaceArena`).
pub struct WorkspaceZeroChecker;

impl StageChecker for WorkspaceZeroChecker {
    fn name(&self) -> &'static str {
        "workspace_zero"
    }

    fn check(&self, data: &StageData<'_>) -> Option<CheckRecord> {
        let StageData::Workspace { buf } = *data else {
            return None;
        };
        let dirty = buf
            .iter()
            .position(|&x| x.to_bits() != 0)
            .map(|i| (i, buf[i]));
        let pass = dirty.is_none();
        Some(CheckRecord {
            checker: self.name(),
            value: dirty.map_or(0.0, |(_, v)| {
                if v.is_finite() {
                    v.abs()
                } else {
                    f64::INFINITY
                }
            }),
            threshold: 0.0,
            pass,
            detail: match dirty {
                Some((i, v)) => format!("non-zero entry {v:e} at index {i} (len {})", buf.len()),
                None => format!("len {}", buf.len()),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    fn run(c: &dyn StageChecker, data: &StageData<'_>) -> CheckRecord {
        c.check(data).expect("checker should handle this stage")
    }

    #[test]
    fn band_checker_accepts_exact_band() {
        let dense = gen::random_symmetric_band(12, 3, 7);
        let band = SymBand::from_dense_lower(&dense, 3);
        let rec = run(
            &BandStructureChecker { tol: 0.0 },
            &StageData::Band {
                band: &band,
                expected_b: 3,
            },
        );
        assert!(rec.pass, "{}", rec.detail);
    }

    #[test]
    fn band_checker_flags_out_of_band_and_nan() {
        let mut band = SymBand::with_storage(10, 2, 6);
        *band.at_mut(7, 3) = 0.5; // i-j = 4 > expected_b = 2
        let rec = run(
            &BandStructureChecker { tol: 0.0 },
            &StageData::Band {
                band: &band,
                expected_b: 2,
            },
        );
        assert!(!rec.pass);
        assert_eq!(rec.value, 0.5);

        *band.at_mut(7, 3) = f64::NAN;
        let rec = run(
            &BandStructureChecker { tol: 0.0 },
            &StageData::Band {
                band: &band,
                expected_b: 2,
            },
        );
        assert!(!rec.pass);
        assert!(rec.value.is_infinite());
    }

    #[test]
    fn tridiag_checker_flags_nonfinite() {
        let ok = run(
            &TridiagonalFormChecker,
            &StageData::Tridiag {
                tri: &Tridiagonal::new(vec![1.0, 2.0, 3.0], vec![0.1, 0.2]),
            },
        );
        assert!(ok.pass);
        let bad = run(
            &TridiagonalFormChecker,
            &StageData::Tridiag {
                tri: &Tridiagonal::new(vec![1.0, 2.0, 3.0], vec![0.1, f64::NAN]),
            },
        );
        assert!(!bad.pass);
        assert!(bad.detail.contains("e[1]"));
    }

    #[test]
    fn orthogonality_checker_thresholds() {
        let q = gen::random_orthogonal(16, 3);
        let rec = run(
            &OrthogonalityChecker { tol: 1e-11 },
            &StageData::Orthogonality { q: &q },
        );
        assert!(rec.pass, "residual {}", rec.value);

        let mut bad = Mat::identity(8);
        bad[(0, 1)] = 0.25;
        let rec = run(
            &OrthogonalityChecker { tol: 1e-11 },
            &StageData::Orthogonality { q: &bad },
        );
        assert!(!rec.pass);
    }

    #[test]
    fn similarity_checker_reports_shape_misuse_as_failure() {
        let a = gen::random_symmetric(6, 1);
        let q = Mat::identity(6);
        let good = run(
            &SimilarityChecker { tol: 1e-11 },
            &StageData::Similarity {
                a: &a,
                q: &q,
                b: &a,
            },
        );
        assert!(good.pass, "residual {}", good.value);

        let wrong = Mat::zeros(4, 6); // non-square Q
        let bad = run(
            &SimilarityChecker { tol: 1e-11 },
            &StageData::Similarity {
                a: &a,
                q: &wrong,
                b: &a,
            },
        );
        assert!(!bad.pass);
        assert!(bad.detail.contains("shape error"));
    }

    #[test]
    fn spectrum_checker_catches_each_violation() {
        let oracle = [1.0, 2.0, 3.0];
        let gersh = (0.5, 3.5);
        let checker = SpectrumChecker { tol: 1e-11 };
        let ok = run(
            &checker,
            &StageData::Spectrum {
                computed: &[1.0, 2.0, 3.0],
                oracle: &oracle,
                gershgorin: gersh,
            },
        );
        assert!(ok.pass);
        // not ascending
        let rec = run(
            &checker,
            &StageData::Spectrum {
                computed: &[2.0, 1.0, 3.0],
                oracle: &oracle,
                gershgorin: gersh,
            },
        );
        assert!(!rec.pass && rec.detail.contains("ascending"));
        // outside Gershgorin
        let rec = run(
            &checker,
            &StageData::Spectrum {
                computed: &[1.0, 2.0, 9.0],
                oracle: &oracle,
                gershgorin: gersh,
            },
        );
        assert!(!rec.pass && rec.detail.contains("Gershgorin"));
        // off the oracle (but inside Gershgorin)
        let rec = run(
            &checker,
            &StageData::Spectrum {
                computed: &[1.0, 2.1, 3.0],
                oracle: &oracle,
                gershgorin: gersh,
            },
        );
        assert!(!rec.pass && rec.detail.contains("oracle"));
        // NaN
        let rec = run(
            &checker,
            &StageData::Spectrum {
                computed: &[1.0, f64::NAN, 3.0],
                oracle: &oracle,
                gershgorin: gersh,
            },
        );
        assert!(!rec.pass && rec.detail.contains("non-finite"));
    }

    #[test]
    fn workspace_checker_bitwise_zero() {
        let clean = vec![0.0; 64];
        let rec = run(&WorkspaceZeroChecker, &StageData::Workspace { buf: &clean });
        assert!(rec.pass);
        let mut dirty = clean.clone();
        dirty[17] = f64::NAN;
        let rec = run(&WorkspaceZeroChecker, &StageData::Workspace { buf: &dirty });
        assert!(!rec.pass);
        assert!(rec.detail.contains("index 17"));
        // negative zero has a non-zero bit pattern: the contract is bitwise
        let mut negzero = clean;
        negzero[0] = -0.0;
        let rec = run(
            &WorkspaceZeroChecker,
            &StageData::Workspace { buf: &negzero },
        );
        assert!(!rec.pass);
    }

    #[test]
    fn checkers_ignore_foreign_stages() {
        let tri = Tridiagonal::new(vec![1.0], vec![]);
        let data = StageData::Tridiag { tri: &tri };
        assert!(BandStructureChecker { tol: 0.0 }.check(&data).is_none());
        assert!(OrthogonalityChecker { tol: 0.0 }.check(&data).is_none());
        assert!(SimilarityChecker { tol: 0.0 }.check(&data).is_none());
        assert!(SpectrumChecker { tol: 0.0 }.check(&data).is_none());
        assert!(WorkspaceZeroChecker.check(&data).is_none());
    }
}
