//! # tg-check
//!
//! Runtime verification for the tridiagonalization pipelines.
//!
//! The paper's correctness story rests on structural invariants that hold
//! at every stage boundary: after band reduction the matrix is **exactly**
//! banded with bandwidth `b` (Algorithm 1), after bulge chasing it is
//! exactly tridiagonal (Algorithm 2), and the accumulated back-transform
//! `Q` stays orthogonal (Algorithm 3). This crate turns those invariants
//! into pluggable runtime checks:
//!
//! * [`StageChecker`] — one trait per invariant, with LAPACK-convention
//!   implementations in [`checkers`] (band exactness, tridiagonal form,
//!   `‖QᵀQ − I‖_F/√n`, `‖A − QTQᵀ‖_F/‖A‖_F`, eigenvalue bounds against a
//!   `sterf` oracle, workspace-zeroing contract),
//! * [`CheckSession`] / [`CheckConfig`] — process-global, zero-cost-when-
//!   disabled gating mirroring `tg-trace`: every hook entry point reads one
//!   relaxed atomic and bails when no session is live,
//! * [`fault`] — deterministic fault injection (NaN / Inf / sign flip /
//!   perturbation into named stage boundaries and workspaces) used to prove
//!   each checker actually fires,
//! * [`golden`] — the serialized regression corpus model backing
//!   `tests/golden/` and `repro verify`.
//!
//! Check executions and failures are mirrored into `tg-trace`
//! ([`tg_trace::Counter::ChecksRun`] / [`tg_trace::Counter::CheckFailures`]
//! / [`tg_trace::Counter::FaultsInjected`]), so `--profile` surfaces them
//! next to the FLOP counters.
//!
//! # Usage
//!
//! ```
//! use tg_check::{CheckConfig, CheckSession};
//! use tg_matrix::{SymBand, Tridiagonal};
//!
//! let session = CheckSession::begin(CheckConfig::strict());
//! tg_check::stage_band(&SymBand::zeros(8, 2), 2);
//! tg_check::stage_tridiag(&Tridiagonal::new(vec![1.0; 4], vec![0.5; 3]));
//! let report = session.finish();
//! assert!(report.passed());
//! assert_eq!(report.records.len(), 2);
//! ```
//!
//! Sessions are process-global and serialized, exactly like
//! `tg_trace::TraceSession`: `begin` blocks while another session is live,
//! which keeps concurrently-running instrumented tests from mixing records.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use tg_matrix::{Mat, SymBand, Tridiagonal};

pub mod checkers;
pub mod fault;
pub mod golden;

pub use checkers::{
    BandStructureChecker, OrthogonalityChecker, SimilarityChecker, SpectrumChecker, StageChecker,
    StageData, TridiagonalFormChecker, WorkspaceZeroChecker,
};
pub use fault::{Fault, FaultKind, FaultPlan, FiredFault};

/// Which checkers a session runs and with what tolerances.
///
/// Residual thresholds follow the LAPACK testing convention (`O(n·ε)`
/// scaled residuals; see `docs/VERIFICATION.md` for each checker's
/// provenance). `deep` additionally enables the `O(n³)` checks —
/// orthogonality of the materialized `Q` and the similarity residual —
/// which require the drivers to clone the input and form `Q` explicitly.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Band-structure exactness after stage 1: entries beyond the target
    /// bandwidth must satisfy `|a_ij| ≤ band_tol` (0.0 = exactly zero,
    /// which is what DBBR/SBR guarantee — they store explicit zeros).
    pub band_tol: f64,
    /// `‖QᵀQ − I‖_F / √n` threshold for accumulated orthogonal factors.
    pub orth_tol: f64,
    /// `‖A − QTQᵀ‖_F / ‖A‖_F` threshold for the end-to-end similarity.
    pub sim_tol: f64,
    /// Max scaled eigenvalue deviation against the `sterf` oracle.
    pub spectrum_tol: f64,
    /// Run the `O(n³)` checks (clone `A`, materialize `Q`). Off for
    /// production-shaped runs; on for the verification gauntlet.
    pub deep: bool,
    /// Panic at the violating call site instead of only recording. Useful
    /// in tests that want a backtrace at the first broken invariant.
    pub panic_on_violation: bool,
    /// Deterministic fault plan to arm for the session's duration.
    pub fault_plan: Option<FaultPlan>,
}

impl CheckConfig {
    /// Everything on, including the `O(n³)` deep checks.
    pub fn strict() -> CheckConfig {
        CheckConfig {
            band_tol: 0.0,
            orth_tol: 1e-11,
            sim_tol: 1e-11,
            spectrum_tol: 1e-11,
            deep: true,
            panic_on_violation: false,
            fault_plan: None,
        }
    }

    /// Structural checks only (band / tridiagonal / spectrum / workspace):
    /// everything that is at most `O(n²)` on top of the reduction itself.
    pub fn fast() -> CheckConfig {
        CheckConfig {
            deep: false,
            ..CheckConfig::strict()
        }
    }

    /// Arms `plan` for the session (builder-style).
    pub fn with_faults(mut self, plan: FaultPlan) -> CheckConfig {
        self.fault_plan = Some(plan);
        self
    }
}

/// Outcome of one checker execution.
#[derive(Clone, Debug)]
pub struct CheckRecord {
    /// Checker name (`band_structure`, `orthogonality`, …).
    pub checker: &'static str,
    /// Measured invariant value (residual, worst deviation, …).
    pub value: f64,
    /// Threshold the value was compared against.
    pub threshold: f64,
    /// Whether the invariant held.
    pub pass: bool,
    /// Human-readable context (stage, matrix order, what broke).
    pub detail: String,
}

/// Everything recorded between [`CheckSession::begin`] and
/// [`CheckSession::finish`].
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Every checker execution, in call order.
    pub records: Vec<CheckRecord>,
    /// Faults that actually fired from the armed [`FaultPlan`].
    pub faults_fired: Vec<FiredFault>,
}

impl CheckReport {
    /// True when every executed check passed.
    pub fn passed(&self) -> bool {
        self.records.iter().all(|r| r.pass)
    }

    /// The records that found a violation.
    pub fn failures(&self) -> Vec<&CheckRecord> {
        self.records.iter().filter(|r| !r.pass).collect()
    }

    /// Records produced by a named checker.
    pub fn by_checker(&self, name: &str) -> Vec<&CheckRecord> {
        self.records.iter().filter(|r| r.checker == name).collect()
    }

    /// Plain-text summary table (one row per record).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>10} {:>6}  detail",
            "checker", "value", "threshold", "status"
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{:<18} {:>12.3e} {:>10.0e} {:>6}  {}",
                r.checker,
                r.value,
                r.threshold,
                if r.pass { "PASS" } else { "FAIL" },
                r.detail
            );
        }
        if !self.faults_fired.is_empty() {
            let _ = writeln!(out, "faults fired:");
            for f in &self.faults_fired {
                let _ = writeln!(out, "  {} {:?} at index {}", f.site, f.kind, f.index);
            }
        }
        let failed = self.failures().len();
        let _ = writeln!(
            out,
            "{} checks, {} failed, {} faults fired",
            self.records.len(),
            failed,
            self.faults_fired.len()
        );
        out
    }
}

// ---- global state ----

static ENABLED: AtomicBool = AtomicBool::new(false);
static DEEP: AtomicBool = AtomicBool::new(false);

struct SessionState {
    checkers: Vec<Box<dyn StageChecker>>,
    records: Vec<CheckRecord>,
    panic_on_violation: bool,
}

fn state() -> &'static Mutex<Option<SessionState>> {
    static STATE: OnceLock<Mutex<Option<SessionState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn session_lock() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

/// Unpoisoned lock: a panicking checked test must not wedge verification
/// for the rest of the process.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a check session is currently live. One relaxed atomic load —
/// this is the entire cost of every hook when verification is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the live session (if any) wants the `O(n³)` deep checks.
/// Drivers consult this before cloning inputs or materializing `Q`.
#[inline]
pub fn deep_enabled() -> bool {
    enabled() && DEEP.load(Ordering::Relaxed)
}

/// RAII handle for one verification session. Only one can be live at a
/// time; `begin` blocks until the previous one finishes.
pub struct CheckSession {
    _exclusive: MutexGuard<'static, ()>,
}

impl CheckSession {
    pub fn begin(cfg: CheckConfig) -> CheckSession {
        let exclusive = lock_unpoisoned(session_lock());
        let checkers: Vec<Box<dyn StageChecker>> = vec![
            Box::new(BandStructureChecker { tol: cfg.band_tol }),
            Box::new(TridiagonalFormChecker),
            Box::new(OrthogonalityChecker { tol: cfg.orth_tol }),
            Box::new(SimilarityChecker { tol: cfg.sim_tol }),
            Box::new(SpectrumChecker {
                tol: cfg.spectrum_tol,
            }),
            Box::new(WorkspaceZeroChecker),
        ];
        *lock_unpoisoned(state()) = Some(SessionState {
            checkers,
            records: Vec::new(),
            panic_on_violation: cfg.panic_on_violation,
        });
        if let Some(plan) = cfg.fault_plan {
            fault::arm(plan);
        }
        DEEP.store(cfg.deep, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
        CheckSession {
            _exclusive: exclusive,
        }
    }

    /// Stops checking and returns everything recorded.
    pub fn finish(self) -> CheckReport {
        ENABLED.store(false, Ordering::SeqCst);
        DEEP.store(false, Ordering::SeqCst);
        let records = lock_unpoisoned(state())
            .take()
            .map(|s| s.records)
            .unwrap_or_default();
        let faults_fired = fault::disarm();
        CheckReport {
            records,
            faults_fired,
        }
    }
}

impl Drop for CheckSession {
    fn drop(&mut self) {
        // finish() consumed self normally; this handles early drops (e.g.
        // a panicking test) so the next session starts clean.
        ENABLED.store(false, Ordering::SeqCst);
        DEEP.store(false, Ordering::SeqCst);
        lock_unpoisoned(state()).take();
        let _ = fault::disarm();
    }
}

/// Runs every applicable checker of the live session over `data`.
/// No-op (one atomic load) when no session is live.
pub fn run_stage(data: &StageData<'_>) {
    if !enabled() {
        return;
    }
    let mut guard = lock_unpoisoned(state());
    let Some(session) = guard.as_mut() else {
        return;
    };
    let mut panic_msg: Option<String> = None;
    for checker in &session.checkers {
        if let Some(record) = checker.check(data) {
            tg_trace::add(tg_trace::Counter::ChecksRun, 1);
            if !record.pass {
                tg_trace::add(tg_trace::Counter::CheckFailures, 1);
                if session.panic_on_violation && panic_msg.is_none() {
                    panic_msg = Some(format!(
                        "tg-check violation: {} = {:.3e} > {:.0e} ({})",
                        record.checker, record.value, record.threshold, record.detail
                    ));
                }
            }
            session.records.push(record);
        }
    }
    drop(guard);
    if let Some(msg) = panic_msg {
        panic!("{msg}");
    }
}

// ---- stage hooks (called by the pipelines) ----

/// After stage 1 (DBBR / SBR): the reduced matrix must be exactly banded
/// with bandwidth `expected_b`, with finite entries.
#[inline]
pub fn stage_band(band: &SymBand, expected_b: usize) {
    if !enabled() {
        return;
    }
    run_stage(&StageData::Band { band, expected_b });
}

/// After stage 2 (bulge chasing) or the direct reduction: the output must
/// be structurally tridiagonal with finite entries (no bulge residue —
/// NaN/Inf here is exactly how corrupted band storage surfaces, since the
/// extraction tolerance test cannot flag non-finite values).
#[inline]
pub fn stage_tridiag(tri: &Tridiagonal) {
    if !enabled() {
        return;
    }
    run_stage(&StageData::Tridiag { tri });
}

/// Accumulated orthogonal factor (deep): `‖QᵀQ − I‖_F/√n` must be small.
#[inline]
pub fn stage_orthogonality(q: &Mat) {
    if !enabled() {
        return;
    }
    run_stage(&StageData::Orthogonality { q });
}

/// End-to-end similarity (deep): `‖A − Q B Qᵀ‖_F/‖A‖_F` must be small.
#[inline]
pub fn stage_similarity(a: &Mat, q: &Mat, b: &Mat) {
    if !enabled() {
        return;
    }
    run_stage(&StageData::Similarity { a, q, b });
}

/// Computed spectrum against the `sterf` oracle plus the Gershgorin
/// enclosure of the reduced `T`.
#[inline]
pub fn stage_spectrum(computed: &[f64], oracle: &[f64], gershgorin: (f64, f64)) {
    if !enabled() {
        return;
    }
    run_stage(&StageData::Spectrum {
        computed,
        oracle,
        gershgorin,
    });
}

/// Workspace-pool acquisition contract: the buffer handed out must be
/// bitwise zero (catches leaked debug NaN-poison and stale reuse).
#[inline]
pub fn workspace_clean(buf: &[f64]) {
    if !enabled() {
        return;
    }
    run_stage(&StageData::Workspace { buf });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_are_inert() {
        // no session: hooks must do nothing and record nothing
        assert!(!enabled());
        stage_tridiag(&Tridiagonal::new(vec![f64::NAN], vec![]));
        let session = CheckSession::begin(CheckConfig::strict());
        let report = session.finish();
        assert!(report.records.is_empty());
        assert!(report.passed());
    }

    #[test]
    fn session_records_pass_and_fail() {
        let session = CheckSession::begin(CheckConfig::strict());
        stage_tridiag(&Tridiagonal::new(vec![1.0, 2.0], vec![0.5]));
        stage_tridiag(&Tridiagonal::new(vec![1.0, f64::NAN], vec![0.5]));
        let report = session.finish();
        assert_eq!(report.records.len(), 2);
        assert!(report.records[0].pass);
        assert!(!report.records[1].pass);
        assert!(!report.passed());
        assert_eq!(report.failures().len(), 1);
        let text = report.render();
        assert!(text.contains("tridiagonal_form"));
        assert!(text.contains("FAIL"));
    }

    #[test]
    fn check_counters_mirror_into_trace() {
        let trace_session = tg_trace::TraceSession::begin();
        let session = CheckSession::begin(CheckConfig::strict());
        stage_tridiag(&Tridiagonal::new(vec![1.0], vec![]));
        stage_tridiag(&Tridiagonal::new(vec![f64::INFINITY], vec![]));
        let _ = session.finish();
        let trace = trace_session.finish();
        assert_eq!(trace.total(tg_trace::Counter::ChecksRun), 2);
        assert_eq!(trace.total(tg_trace::Counter::CheckFailures), 1);
    }

    #[test]
    fn panic_on_violation_panics_at_call_site() {
        let result = std::panic::catch_unwind(|| {
            let cfg = CheckConfig {
                panic_on_violation: true,
                ..CheckConfig::strict()
            };
            let session = CheckSession::begin(cfg);
            stage_tridiag(&Tridiagonal::new(vec![f64::NAN], vec![]));
            session.finish()
        });
        assert!(result.is_err());
        // a fresh session still works after the panic (drop cleaned up)
        let session = CheckSession::begin(CheckConfig::strict());
        stage_tridiag(&Tridiagonal::new(vec![1.0], vec![]));
        assert!(session.finish().passed());
    }

    #[test]
    fn deep_flag_tracks_session() {
        assert!(!deep_enabled());
        let s = CheckSession::begin(CheckConfig::fast());
        assert!(enabled());
        assert!(!deep_enabled());
        drop(s);
        let s = CheckSession::begin(CheckConfig::strict());
        assert!(deep_enabled());
        let _ = s.finish();
        assert!(!deep_enabled());
    }
}
