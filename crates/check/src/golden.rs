//! Golden regression corpus: serialized spectra and residual baselines for
//! a fixed seed grid of `(n, b, k)` shapes, stored under `tests/golden/`.
//!
//! The corpus pins *behavior*, not just pass/fail: a change that degrades
//! a residual by orders of magnitude while staying under the gauntlet
//! threshold still trips the baseline comparison. Recompute-and-diff runs
//! in the tier-1 test suite and in `repro verify`; `repro golden_regen`
//! rewrites the file after an intentional numerical change (see
//! `docs/VERIFICATION.md` for the regeneration policy).
//!
//! The *data model* lives here so both the test tree and `tg-bench` can
//! share it; the *computation* of fresh entries needs the full pipeline
//! stack and therefore lives in `tg_bench::golden`.

use serde_json::Value;

/// Baselines for one `(n, b, k, seed)` pipeline configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct GoldenEntry {
    /// Matrix order.
    pub n: usize,
    /// Stage-1 target bandwidth.
    pub b: usize,
    /// DBBR group/tile parameter.
    pub k: usize,
    /// Matrix generator seed.
    pub seed: u64,
    /// Full computed spectrum, ascending.
    pub spectrum: Vec<f64>,
    /// `‖QᵀQ − I‖_F/√n` of the accumulated eigenvector matrix.
    pub orth_residual: f64,
    /// `‖A − VΛVᵀ‖_F/‖A‖_F`.
    pub sim_residual: f64,
    /// Max scaled deviation of the pipeline spectrum from the `sterf`
    /// oracle run on the same reduced tridiagonal.
    pub spectrum_vs_sterf: f64,
}

/// The whole corpus plus its comparison policy.
#[derive(Clone, Debug, PartialEq)]
pub struct GoldenCorpus {
    /// Bumped when the entry schema changes.
    pub version: u32,
    /// Max allowed scaled spectrum deviation from the stored baseline.
    pub spectrum_tol: f64,
    /// A fresh residual may exceed its baseline by this factor (plus an
    /// absolute floor of `spectrum_tol`) before the diff fails — residuals
    /// jitter run-to-run with scheduling, baselines must not be brittle.
    pub residual_slack: f64,
    pub entries: Vec<GoldenEntry>,
}

/// Current schema version.
pub const GOLDEN_VERSION: u32 = 1;

/// Default comparison policy for regenerated corpora.
pub const DEFAULT_SPECTRUM_TOL: f64 = 1e-11;
pub const DEFAULT_RESIDUAL_SLACK: f64 = 4.0;

/// The fixed shape grid every corpus covers: `(n, b, k, seed)` where `k`
/// is the `syr2k` accumulation width (a multiple of `b`, per `DbbrConfig`).
/// Small enough for tier-1, large enough to span block-edge cases
/// (`n` divisible and not divisible by `b`, single- and multi-panel `k`).
pub const GOLDEN_GRID: [(usize, usize, usize, u64); 6] = [
    (32, 4, 8, 1),
    (48, 8, 32, 2),
    (64, 8, 16, 3),
    (96, 12, 48, 4),
    (100, 8, 32, 5),
    (128, 16, 128, 6),
];

impl GoldenCorpus {
    /// A corpus with the default policy and no entries yet.
    pub fn with_defaults() -> GoldenCorpus {
        GoldenCorpus {
            version: GOLDEN_VERSION,
            spectrum_tol: DEFAULT_SPECTRUM_TOL,
            residual_slack: DEFAULT_RESIDUAL_SLACK,
            entries: Vec::new(),
        }
    }

    /// Serializes to pretty JSON (the `tests/golden/corpus.json` format).
    pub fn to_json(&self) -> String {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|e| {
                serde_json::json!({
                    "n": e.n,
                    "b": e.b,
                    "k": e.k,
                    "seed": e.seed,
                    "orth_residual": e.orth_residual,
                    "sim_residual": e.sim_residual,
                    "spectrum_vs_sterf": e.spectrum_vs_sterf,
                    "spectrum": e.spectrum.clone(),
                })
            })
            .collect();
        let root = serde_json::json!({
            "version": self.version,
            "spectrum_tol": self.spectrum_tol,
            "residual_slack": self.residual_slack,
            "entries": entries,
        });
        serde_json::to_string_pretty(&root).expect("corpus serialization cannot fail")
    }

    /// Parses the `tests/golden/corpus.json` format.
    pub fn from_json(text: &str) -> Result<GoldenCorpus, String> {
        let root: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let version = root["version"].as_u64().ok_or("missing `version`")? as u32;
        if version != GOLDEN_VERSION {
            return Err(format!(
                "corpus version {version} != supported {GOLDEN_VERSION}; regenerate with `repro golden_regen`"
            ));
        }
        let spectrum_tol = root["spectrum_tol"]
            .as_f64()
            .ok_or("missing `spectrum_tol`")?;
        let residual_slack = root["residual_slack"]
            .as_f64()
            .ok_or("missing `residual_slack`")?;
        let raw_entries = root["entries"].as_array().ok_or("missing `entries`")?;
        let mut entries = Vec::with_capacity(raw_entries.len());
        for (i, e) in raw_entries.iter().enumerate() {
            let field_u = |k: &str| {
                e[k].as_u64()
                    .ok_or_else(|| format!("entry {i}: missing `{k}`"))
            };
            let field_f = |k: &str| {
                e[k].as_f64()
                    .ok_or_else(|| format!("entry {i}: missing `{k}`"))
            };
            let spectrum = e["spectrum"]
                .as_array()
                .ok_or_else(|| format!("entry {i}: missing `spectrum`"))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| format!("entry {i}: non-numeric eigenvalue"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            entries.push(GoldenEntry {
                n: field_u("n")? as usize,
                b: field_u("b")? as usize,
                k: field_u("k")? as usize,
                seed: field_u("seed")?,
                spectrum,
                orth_residual: field_f("orth_residual")?,
                sim_residual: field_f("sim_residual")?,
                spectrum_vs_sterf: field_f("spectrum_vs_sterf")?,
            });
        }
        Ok(GoldenCorpus {
            version,
            spectrum_tol,
            residual_slack,
            entries,
        })
    }

    /// Diffs freshly computed entries against the stored baselines.
    /// Returns human-readable mismatch descriptions; empty means the
    /// corpus verifies. Shapes present on only one side are mismatches.
    pub fn compare(&self, fresh: &[GoldenEntry]) -> Vec<String> {
        let mut problems = Vec::new();
        for base in &self.entries {
            let key = (base.n, base.b, base.k, base.seed);
            let Some(now) = fresh.iter().find(|e| (e.n, e.b, e.k, e.seed) == key) else {
                problems.push(format!("shape {key:?}: missing from fresh run"));
                continue;
            };
            if now.spectrum.len() != base.spectrum.len() {
                problems.push(format!(
                    "shape {key:?}: spectrum length {} != baseline {}",
                    now.spectrum.len(),
                    base.spectrum.len()
                ));
                continue;
            }
            let scale = base
                .spectrum
                .iter()
                .fold(0.0f64, |m, &x| m.max(x.abs()))
                .max(f64::MIN_POSITIVE);
            let dev = base
                .spectrum
                .iter()
                .zip(&now.spectrum)
                .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
                / scale;
            if exceeds(dev, self.spectrum_tol) {
                problems.push(format!(
                    "shape {key:?}: spectrum deviates {dev:.3e} > {:.0e}",
                    self.spectrum_tol
                ));
            }
            for (name, base_v, now_v) in [
                ("orth_residual", base.orth_residual, now.orth_residual),
                ("sim_residual", base.sim_residual, now.sim_residual),
                (
                    "spectrum_vs_sterf",
                    base.spectrum_vs_sterf,
                    now.spectrum_vs_sterf,
                ),
            ] {
                let budget = base_v * self.residual_slack + self.spectrum_tol;
                if exceeds(now_v, budget) {
                    problems.push(format!(
                        "shape {key:?}: {name} {now_v:.3e} exceeds baseline {base_v:.3e} (budget {budget:.3e})"
                    ));
                }
            }
        }
        for now in fresh {
            let key = (now.n, now.b, now.k, now.seed);
            if !self.entries.iter().any(|e| (e.n, e.b, e.k, e.seed) == key) {
                problems.push(format!("shape {key:?}: not in baseline corpus"));
            }
        }
        problems
    }
}

/// `value > budget`, with NaN counted as exceeding (a NaN residual must
/// fail the comparison, which plain `>` would not guarantee).
fn exceeds(value: f64, budget: f64) -> bool {
    !matches!(
        value.partial_cmp(&budget),
        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize, seed: u64) -> GoldenEntry {
        GoldenEntry {
            n,
            b: 4,
            k: 2,
            seed,
            spectrum: (0..n).map(|i| i as f64 * 0.5 - 1.0).collect(),
            orth_residual: 3e-15,
            sim_residual: 5e-15,
            spectrum_vs_sterf: 1e-15,
        }
    }

    fn corpus() -> GoldenCorpus {
        GoldenCorpus {
            entries: vec![entry(8, 1), entry(12, 2)],
            ..GoldenCorpus::with_defaults()
        }
    }

    #[test]
    fn json_round_trip() {
        let c = corpus();
        let text = c.to_json();
        let back = GoldenCorpus::from_json(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn version_mismatch_rejected() {
        let text = corpus()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        let err = GoldenCorpus::from_json(&text).unwrap_err();
        assert!(err.contains("golden_regen"), "{err}");
    }

    #[test]
    fn compare_passes_identical_and_jittered() {
        let c = corpus();
        assert!(c.compare(&c.entries).is_empty());
        // residual jitter within slack, spectrum within tol
        let mut jittered = c.entries.clone();
        jittered[0].orth_residual *= 2.0;
        jittered[1].spectrum[3] += 1e-13;
        assert!(c.compare(&jittered).is_empty());
    }

    #[test]
    fn compare_flags_each_regression() {
        let c = corpus();
        // spectrum drift beyond tol
        let mut bad = c.entries.clone();
        bad[0].spectrum[0] += 1.0;
        let p = c.compare(&bad);
        assert_eq!(p.len(), 1);
        assert!(p[0].contains("spectrum deviates"));
        // residual blow-up beyond slack
        let mut bad = c.entries.clone();
        bad[1].sim_residual = 1e-6;
        let p = c.compare(&bad);
        assert_eq!(p.len(), 1);
        assert!(p[0].contains("sim_residual"));
        // NaN residual must fail (negated comparison)
        let mut bad = c.entries.clone();
        bad[0].orth_residual = f64::NAN;
        assert_eq!(c.compare(&bad).len(), 1);
        // missing shape and extra shape
        let p = c.compare(&c.entries[..1]);
        assert_eq!(p.len(), 1);
        assert!(p[0].contains("missing from fresh run"));
        let mut extra = c.entries.clone();
        extra.push(entry(99, 9));
        let p = c.compare(&extra);
        assert_eq!(p.len(), 1);
        assert!(p[0].contains("not in baseline corpus"));
    }

    #[test]
    fn grid_shapes_are_distinct() {
        let mut keys: Vec<_> = GOLDEN_GRID.to_vec();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), GOLDEN_GRID.len());
    }
}
