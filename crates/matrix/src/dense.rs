//! Dense column-major matrices and borrowed views.
//!
//! [`Mat`] owns its storage; [`MatRef`] / [`MatMut`] are borrowed views with
//! an explicit leading dimension so that sub-matrices of a larger matrix can
//! be handed to kernels without copying — the same convention LAPACK uses.
//!
//! Hot kernels should obtain whole columns via [`MatRef::col`] /
//! [`MatMut::col_mut`] and iterate over the returned slices; that lets the
//! compiler elide bounds checks in inner loops.
//!
//! Views are backed by raw pointers rather than slices. A column-major
//! **row** block (`ld > rows`) owns a set of elements whose storage range
//! interleaves with its sibling's, so two disjoint row blocks cannot be
//! represented as two non-overlapping `&mut [f64]`. Pointer backing makes
//! [`MatMut::split_at_row`] expressible — the primitive the parallel packed
//! GEMM and the `syr2k` super-block grid are built on. Safety is preserved
//! by construction: every view originates from a uniquely borrowed slice,
//! splits produce element-disjoint children, and slices are only ever
//! materialized one column segment at a time (per-column segments of
//! disjoint views never overlap).

use std::fmt;
use std::marker::PhantomData;

/// An owning, column-major `rows × cols` matrix of `f64`.
///
/// The leading dimension of an owned matrix always equals `rows`.
///
/// ```
/// use tg_matrix::Mat;
///
/// let mut a = Mat::zeros(3, 3);
/// a[(0, 2)] = 5.0;
/// assert_eq!(a.transpose()[(2, 0)], 5.0);
/// // sub-matrix views share storage
/// let v = a.view(0, 1, 2, 2);
/// assert_eq!(v.at(0, 1), 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from column-major data. Panics if the length is wrong.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Mat { rows, cols, data }
    }

    /// Consumes the matrix and returns its column-major storage (the
    /// inverse of [`Mat::from_col_major`]) — lets buffer pools recycle the
    /// allocation.
    pub fn into_col_major(self) -> Vec<f64> {
        self.data
    }

    /// Builds a matrix from row-major data (convenient in tests).
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Mat::from_fn(rows, cols, |i, j| data[i * cols + j])
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow as an immutable view covering the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
            ptr: self.data.as_ptr(),
            _marker: PhantomData,
        }
    }

    /// Borrow as a mutable view covering the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
            ptr: self.data.as_mut_ptr(),
            _marker: PhantomData,
        }
    }

    /// Immutable sub-matrix view of shape `nr × nc` anchored at `(r0, c0)`.
    #[inline]
    pub fn view(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'_> {
        self.as_ref().submatrix(r0, c0, nr, nc)
    }

    /// Mutable sub-matrix view of shape `nr × nc` anchored at `(r0, c0)`.
    #[inline]
    pub fn view_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'_> {
        self.as_mut().submatrix_mut(r0, c0, nr, nc)
    }

    /// The underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying column-major storage, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable slice of length `rows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Returns the transposed matrix (copy).
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Fills the matrix with a constant.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copies `other` into `self`. Shapes must match.
    pub fn copy_from(&mut self, other: &MatRef<'_>) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.as_mut().copy_from(other);
    }

    /// Symmetrizes in place from the lower triangle: `A[i][j] = A[j][i]` for `i < j`.
    pub fn mirror_lower(&mut self) {
        assert_eq!(self.rows, self.cols);
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let rmax = self.rows.min(8);
        let cmax = self.cols.min(8);
        for i in 0..rmax {
            write!(f, "  ")?;
            for j in 0..cmax {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if cmax < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if rmax < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Immutable borrowed view of a column-major matrix with leading dimension `ld`.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    rows: usize,
    cols: usize,
    ld: usize,
    /// `*ptr.add(j*ld + i)` is element `(i, j)`; the view is valid for reads
    /// of every element it covers.
    ptr: *const f64,
    _marker: PhantomData<&'a [f64]>,
}

// A MatRef is a shared borrow of f64 data; f64 is Send + Sync.
unsafe impl Send for MatRef<'_> {}
unsafe impl Sync for MatRef<'_> {}

impl<'a> MatRef<'a> {
    /// Constructs a view from raw parts. Panics if the slice is too short.
    pub fn from_parts(rows: usize, cols: usize, ld: usize, data: &'a [f64]) -> Self {
        assert!(ld >= rows.max(1));
        if rows > 0 && cols > 0 {
            assert!(data.len() >= (cols - 1) * ld + rows, "slice too short");
        }
        MatRef {
            rows,
            cols,
            ld,
            ptr: data.as_ptr(),
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(j * self.ld + i) }
    }

    /// Column `j` as a slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        assert!(j < self.cols);
        // In-bounds: the column segment [j*ld, j*ld+rows) lies inside the
        // view for every j < cols. wrapping_add keeps rows == 0 sound.
        unsafe { std::slice::from_raw_parts(self.ptr.wrapping_add(j * self.ld), self.rows) }
    }

    /// Sub-matrix view anchored at `(r0, c0)` with shape `nr × nc`.
    #[inline]
    pub fn submatrix(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'a> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "view oob");
        // wrapping_add: an empty child view may anchor past the end of the
        // parent's storage; no element is ever read through it.
        MatRef {
            rows: nr,
            cols: nc,
            ld: self.ld,
            ptr: self.ptr.wrapping_add(c0 * self.ld + r0),
            _marker: PhantomData,
        }
    }

    /// Splits into two disjoint views of column blocks `[.., :j]` and `[.., j:]`.
    pub fn split_at_col(self, j: usize) -> (MatRef<'a>, MatRef<'a>) {
        assert!(j <= self.cols);
        (
            self.submatrix(0, 0, self.rows, j),
            self.submatrix(0, j, self.rows, self.cols - j),
        )
    }

    /// Splits into two disjoint views of row blocks `[:i, ..]` and `[i:, ..]`.
    pub fn split_at_row(self, i: usize) -> (MatRef<'a>, MatRef<'a>) {
        assert!(i <= self.rows);
        (
            self.submatrix(0, 0, i, self.cols),
            self.submatrix(i, 0, self.rows - i, self.cols),
        )
    }

    /// Copies this view into a fresh owned matrix.
    pub fn to_mat(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            m.col_mut(j).copy_from_slice(self.col(j));
        }
        m
    }
}

/// Mutable borrowed view of a column-major matrix with leading dimension `ld`.
pub struct MatMut<'a> {
    rows: usize,
    cols: usize,
    ld: usize,
    /// `*ptr.add(j*ld + i)` is element `(i, j)`; the view is valid for reads
    /// and writes of every element it covers, and no other live view covers
    /// any of those elements.
    ptr: *mut f64,
    _marker: PhantomData<&'a mut [f64]>,
}

// A MatMut is an exclusive borrow of f64 data; f64 is Send + Sync. Disjoint
// MatMut views (from split_at_row / split_at_col) never alias, so moving
// them to worker threads is as sound as sending &mut [f64] halves.
unsafe impl Send for MatMut<'_> {}
unsafe impl Sync for MatMut<'_> {}

impl<'a> MatMut<'a> {
    /// Constructs a view from raw parts. Panics if the slice is too short.
    pub fn from_parts(rows: usize, cols: usize, ld: usize, data: &'a mut [f64]) -> Self {
        assert!(ld >= rows.max(1));
        if rows > 0 && cols > 0 {
            assert!(data.len() >= (cols - 1) * ld + rows, "slice too short");
        }
        MatMut {
            rows,
            cols,
            ld,
            ptr: data.as_mut_ptr(),
            _marker: PhantomData,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols);
        unsafe { *self.ptr.add(j * self.ld + i) }
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        assert!(i < self.rows && j < self.cols);
        unsafe { &mut *self.ptr.add(j * self.ld + i) }
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols);
        unsafe { std::slice::from_raw_parts(self.ptr.wrapping_add(j * self.ld), self.rows) }
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols);
        // Exclusive: &mut self guarantees no other slice of this view is
        // live, and sibling views are element-disjoint by construction.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.wrapping_add(j * self.ld), self.rows) }
    }

    /// Reborrows: a shorter-lived mutable view of the same region.
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            ptr: self.ptr,
            _marker: PhantomData,
        }
    }

    /// Reborrows immutably.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        MatRef {
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            ptr: self.ptr,
            _marker: PhantomData,
        }
    }

    /// Mutable sub-matrix view anchored at `(r0, c0)` with shape `nr × nc`.
    #[inline]
    pub fn submatrix_mut(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'a> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "view oob");
        // wrapping_add: an empty child view may anchor past the end of the
        // parent's storage; no element is ever touched through it.
        MatMut {
            rows: nr,
            cols: nc,
            ld: self.ld,
            ptr: self.ptr.wrapping_add(c0 * self.ld + r0),
            _marker: PhantomData,
        }
    }

    /// Splits into two disjoint mutable column blocks: `[.., :j]` and `[.., j:]`.
    pub fn split_at_col(self, j: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(j <= self.cols);
        let rows = self.rows;
        let cols = self.cols;
        let ld = self.ld;
        let left = MatMut {
            rows,
            cols: j,
            ld,
            ptr: self.ptr,
            _marker: PhantomData,
        };
        let right = MatMut {
            rows,
            cols: cols - j,
            ld,
            ptr: self.ptr.wrapping_add(j * ld),
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Splits into two disjoint mutable row blocks: `[:i, ..]` and `[i:, ..]`.
    ///
    /// The two halves share the leading dimension, so their storage ranges
    /// interleave — this is exactly what pointer-backed views exist for: the
    /// halves are element-disjoint and can be mutated concurrently.
    pub fn split_at_row(self, i: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(i <= self.rows);
        let rows = self.rows;
        let cols = self.cols;
        let ld = self.ld;
        let top = MatMut {
            rows: i,
            cols,
            ld,
            ptr: self.ptr,
            _marker: PhantomData,
        };
        let bottom = MatMut {
            rows: rows - i,
            cols,
            ld,
            ptr: self.ptr.wrapping_add(i),
            _marker: PhantomData,
        };
        (top, bottom)
    }

    /// Copies `other` into this view. Shapes must match.
    pub fn copy_from(&mut self, other: &MatRef<'_>) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for j in 0..self.cols {
            let src = other.col(j);
            self.col_mut(j).copy_from_slice(src);
        }
    }

    /// Fills with a constant value.
    pub fn fill(&mut self, v: f64) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Copies this view into a fresh owned matrix.
    pub fn to_mat(&self) -> Mat {
        self.rb().to_mat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(3, 4);
        assert_eq!(z.nrows(), 3);
        assert_eq!(z.ncols(), 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Mat::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Mat::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
        // column-major storage
        assert_eq!(m.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(4, 3, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 4);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_view_indices() {
        let m = Mat::from_fn(5, 5, |i, j| (i + 10 * j) as f64);
        let v = m.view(1, 2, 3, 2);
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.ncols(), 2);
        assert_eq!(v.at(0, 0), m[(1, 2)]);
        assert_eq!(v.at(2, 1), m[(3, 3)]);
        // column slices of a view
        assert_eq!(v.col(1), &[m[(1, 3)], m[(2, 3)], m[(3, 3)]]);
    }

    #[test]
    fn view_mut_writes_through() {
        let mut m = Mat::zeros(4, 4);
        {
            let mut v = m.view_mut(1, 1, 2, 2);
            *v.at_mut(0, 0) = 7.0;
            *v.at_mut(1, 1) = 9.0;
        }
        assert_eq!(m[(1, 1)], 7.0);
        assert_eq!(m[(2, 2)], 9.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn split_at_col_disjoint() {
        let mut m = Mat::from_fn(3, 4, |i, j| (i + j) as f64);
        let (mut l, mut r) = m.as_mut().split_at_col(2);
        assert_eq!(l.ncols(), 2);
        assert_eq!(r.ncols(), 2);
        *l.at_mut(0, 0) = -1.0;
        *r.at_mut(0, 0) = -2.0;
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(0, 2)], -2.0);
    }

    #[test]
    fn split_at_row_disjoint() {
        let mut m = Mat::from_fn(5, 3, |i, j| (10 * i + j) as f64);
        {
            let (mut top, mut bot) = m.as_mut().split_at_row(2);
            assert_eq!(top.nrows(), 2);
            assert_eq!(bot.nrows(), 3);
            assert_eq!(top.ld(), 5);
            assert_eq!(bot.ld(), 5);
            assert_eq!(top.at(1, 2), 12.0);
            assert_eq!(bot.at(0, 0), 20.0);
            *top.at_mut(0, 1) = -1.0;
            *bot.at_mut(2, 1) = -2.0;
        }
        assert_eq!(m[(0, 1)], -1.0);
        assert_eq!(m[(4, 1)], -2.0);
        // degenerate splits
        let (t, b) = m.as_mut().split_at_row(0);
        assert_eq!(t.nrows(), 0);
        assert_eq!(b.nrows(), 5);
        let (t, b) = m.as_mut().split_at_row(5);
        assert_eq!(t.nrows(), 5);
        assert_eq!(b.nrows(), 0);
    }

    #[test]
    fn split_at_row_threads_write_concurrently() {
        // The point of pointer-backed views: interleaved row halves can be
        // mutated from different threads without aliasing slices.
        let mut m = Mat::zeros(64, 8);
        let (top, bot) = m.as_mut().split_at_row(32);
        std::thread::scope(|s| {
            for (mut half, tag) in [(top, 1.0), (bot, 2.0)] {
                s.spawn(move || {
                    for j in 0..half.ncols() {
                        for v in half.col_mut(j) {
                            *v = tag;
                        }
                    }
                });
            }
        });
        for j in 0..8 {
            for i in 0..64 {
                assert_eq!(m[(i, j)], if i < 32 { 1.0 } else { 2.0 });
            }
        }
    }

    #[test]
    fn split_ref_at_row_and_col() {
        let m = Mat::from_fn(4, 6, |i, j| (i * 6 + j) as f64);
        let (t, b) = m.as_ref().split_at_row(1);
        assert_eq!(t.nrows(), 1);
        assert_eq!(b.at(0, 0), m[(1, 0)]);
        let (l, r) = m.as_ref().split_at_col(4);
        assert_eq!(l.ncols(), 4);
        assert_eq!(r.at(3, 1), m[(3, 5)]);
    }

    #[test]
    fn nested_views() {
        let m = Mat::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let v1 = m.view(1, 1, 4, 4);
        let v2 = v1.submatrix(1, 1, 2, 2);
        assert_eq!(v2.at(0, 0), m[(2, 2)]);
        assert_eq!(v2.at(1, 1), m[(3, 3)]);
    }

    #[test]
    fn mirror_lower_symmetrizes() {
        let mut m = Mat::from_fn(4, 4, |i, j| {
            if i >= j {
                (i + 1) as f64 * (j + 1) as f64
            } else {
                -99.0
            }
        });
        m.mirror_lower();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
    }

    #[test]
    fn copy_from_view() {
        let src = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let mut dst = Mat::zeros(5, 5);
        dst.view_mut(1, 1, 3, 3).copy_from(&src.as_ref());
        assert_eq!(dst[(1, 1)], src[(0, 0)]);
        assert_eq!(dst[(3, 3)], src[(2, 2)]);
        assert_eq!(dst[(0, 0)], 0.0);
    }

    #[test]
    fn to_mat_from_view() {
        let m = Mat::from_fn(4, 4, |i, j| (i + 100 * j) as f64);
        let v = m.view(2, 1, 2, 3).to_mat();
        assert_eq!(v.nrows(), 2);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v[(0, 0)], m[(2, 1)]);
        assert_eq!(v[(1, 2)], m[(3, 3)]);
    }

    #[test]
    #[should_panic]
    fn view_out_of_bounds_panics() {
        let m = Mat::zeros(3, 3);
        let _ = m.view(1, 1, 3, 3);
    }
}
