//! Matrix generators for tests, examples and benchmarks.
//!
//! Several generators produce matrices with *known* spectra so eigensolvers
//! can be validated exactly; the random generators mirror the workloads the
//! paper benchmarks on (dense random symmetric FP64 matrices).

use crate::dense::Mat;
use crate::tridiagonal::Tridiagonal;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Dense random matrix with i.i.d. entries in `[-1, 1)`.
pub fn random(n: usize, m: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-1.0, 1.0);
    Mat::from_fn(n, m, |_, _| dist.sample(&mut rng))
}

/// Dense random symmetric matrix with entries in `[-1, 1)`.
pub fn random_symmetric(n: usize, seed: u64) -> Mat {
    let mut a = random(n, n, seed);
    for j in 0..n {
        for i in (j + 1)..n {
            let v = a[(i, j)];
            a[(j, i)] = v;
        }
    }
    a
}

/// Random symmetric positive-definite matrix `B Bᵀ + n·I`.
pub fn random_spd(n: usize, seed: u64) -> Mat {
    let b = random(n, n, seed);
    let mut a = Mat::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += b[(i, k)] * b[(j, k)];
            }
            a[(i, j)] = s;
        }
    }
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Random symmetric band matrix with bandwidth `kd` (dense representation).
pub fn random_symmetric_band(n: usize, kd: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-1.0, 1.0);
    let mut a = Mat::zeros(n, n);
    for j in 0..n {
        for i in j..(j + kd + 1).min(n) {
            let v = dist.sample(&mut rng);
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

/// Symmetric matrix with a prescribed spectrum: `A = Q diag(λ) Qᵀ` where `Q`
/// comes from Householder-orthogonalizing a random matrix. The construction
/// uses explicit Gram-Schmidt, so it is `O(n³)` — test-scale only.
pub fn with_spectrum(eigs: &[f64], seed: u64) -> Mat {
    let n = eigs.len();
    let q = random_orthogonal(n, seed);
    // A = Q Λ Qᵀ
    let mut a = Mat::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += q[(i, k)] * eigs[k] * q[(j, k)];
            }
            a[(i, j)] = s;
        }
    }
    // exact symmetry
    for j in 0..n {
        for i in (j + 1)..n {
            let v = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

/// Random orthogonal matrix via modified Gram-Schmidt on a random matrix.
pub fn random_orthogonal(n: usize, seed: u64) -> Mat {
    let mut q = random(n, n, seed);
    for j in 0..n {
        for k in 0..j {
            let mut dot = 0.0;
            for i in 0..n {
                dot += q[(i, k)] * q[(i, j)];
            }
            for i in 0..n {
                let t = q[(i, k)];
                q[(i, j)] -= dot * t;
            }
        }
        let mut nrm = 0.0;
        for i in 0..n {
            nrm += q[(i, j)] * q[(i, j)];
        }
        let nrm = nrm.sqrt();
        assert!(nrm > 1e-12, "random matrix was numerically singular");
        for i in 0..n {
            q[(i, j)] /= nrm;
        }
    }
    q
}

/// The `(2, −1)` Toeplitz tridiagonal matrix — the 1-D discrete Laplacian.
/// Exact eigenvalues: `2 − 2 cos(kπ/(n+1))`, `k = 1..n`.
pub fn laplacian_1d(n: usize) -> Tridiagonal {
    Tridiagonal::new(vec![2.0; n], vec![-1.0; n.saturating_sub(1)])
}

/// Exact (sorted ascending) eigenvalues of [`laplacian_1d`].
pub fn laplacian_1d_eigs(n: usize) -> Vec<f64> {
    (1..=n)
        .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
        .collect()
}

/// Wilkinson's `W_n⁺` matrix (odd `n`): tridiagonal with pairs of very close
/// eigenvalues — a classic stress test for tridiagonal eigensolvers.
pub fn wilkinson(n: usize) -> Tridiagonal {
    assert!(n % 2 == 1, "Wilkinson W+ is defined for odd n");
    let m = (n - 1) / 2;
    let d = (0..n).map(|i| (i as i64 - m as i64).abs() as f64).collect();
    Tridiagonal::new(d, vec![1.0; n - 1])
}

/// Tridiagonal matrix with random entries in `[-1, 1)`.
pub fn random_tridiagonal(n: usize, seed: u64) -> Tridiagonal {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-1.0f64, 1.0);
    Tridiagonal::new(
        (0..n).map(|_| dist.sample(&mut rng)).collect(),
        (0..n.saturating_sub(1))
            .map(|_| dist.sample(&mut rng))
            .collect(),
    )
}

/// "Glued" Wilkinson-style matrix: blocks of [`laplacian_1d`] joined by tiny
/// couplings `g`. Produces heavy deflation in divide & conquer.
pub fn glued(block: usize, nblocks: usize, g: f64) -> Tridiagonal {
    let n = block * nblocks;
    let mut d = vec![2.0; n];
    let mut e = vec![-1.0; n - 1];
    for b in 1..nblocks {
        e[b * block - 1] = g;
    }
    // slight diagonal perturbation per block so blocks are not identical
    for b in 0..nblocks {
        for i in 0..block {
            d[b * block + i] += 1e-3 * b as f64;
        }
    }
    Tridiagonal::new(d, e)
}

/// A 1-D nearest-neighbour tight-binding Hamiltonian with on-site disorder —
/// the condensed-matter workload class the paper's §7.2 motivates. Hopping
/// amplitude `t`, disorder strength `w` (uniform in `[-w/2, w/2]`).
pub fn tight_binding_1d(n: usize, t: f64, w: f64, seed: u64) -> Tridiagonal {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(-0.5, 0.5);
    Tridiagonal::new(
        (0..n).map(|_| w * dist.sample(&mut rng)).collect(),
        vec![-t; n.saturating_sub(1)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::{frob_norm, orthogonality_residual};

    #[test]
    fn random_symmetric_is_symmetric() {
        let a = random_symmetric(17, 3);
        for i in 0..17 {
            for j in 0..17 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(random(5, 5, 42), random(5, 5, 42));
        assert_ne!(random(5, 5, 42), random(5, 5, 43));
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let q = random_orthogonal(20, 7);
        assert!(orthogonality_residual(&q) < 1e-13);
    }

    #[test]
    fn with_spectrum_trace_matches() {
        let eigs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = with_spectrum(&eigs, 11);
        let tr: f64 = (0..5).map(|i| a[(i, i)]).sum();
        assert!((tr - 15.0).abs() < 1e-10);
        // Frobenius norm² = Σ λ²
        let f = frob_norm(&a);
        assert!((f * f - 55.0).abs() < 1e-9);
    }

    #[test]
    fn spd_is_positive_definite_by_sturm_on_diag_dominance() {
        let a = random_spd(10, 5);
        // diagonally dominant by construction => all leading minors positive
        for i in 0..10 {
            let off: f64 = (0..10).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)] > off - 1e-9, "row {i} not dominant");
        }
    }

    #[test]
    fn band_generator_respects_band() {
        let a = random_symmetric_band(12, 3, 9);
        for j in 0..12usize {
            for i in 0..12usize {
                if i.abs_diff(j) > 3 {
                    assert_eq!(a[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn laplacian_eigs_sorted_and_in_range() {
        let e = laplacian_1d_eigs(16);
        assert!(e.windows(2).all(|w| w[0] < w[1]));
        assert!(e[0] > 0.0 && e[15] < 4.0);
    }

    #[test]
    fn wilkinson_shape() {
        let w = wilkinson(7);
        assert_eq!(w.d, vec![3.0, 2.0, 1.0, 0.0, 1.0, 2.0, 3.0]);
        assert_eq!(w.e, vec![1.0; 6]);
    }

    #[test]
    fn glued_couplings() {
        let g = glued(4, 3, 1e-8);
        assert_eq!(g.n(), 12);
        assert_eq!(g.e[3], 1e-8);
        assert_eq!(g.e[7], 1e-8);
        assert_eq!(g.e[0], -1.0);
    }
}
