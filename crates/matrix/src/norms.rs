//! Norms and the residuals used throughout the test suite to state
//! factorization contracts:
//!
//! * orthogonality: `‖QᵀQ − I‖_F / √n`
//! * similarity:    `‖A − Q B Qᵀ‖_F / ‖A‖_F`
//!
//! These follow the LAPACK testing conventions (residual scaled so that a
//! backward-stable algorithm yields `O(n · ε)`).

use crate::dense::{Mat, MatRef};

/// Frobenius norm of a dense matrix.
pub fn frob_norm(a: &Mat) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Frobenius norm of a view.
pub fn frob_norm_ref(a: &MatRef<'_>) -> f64 {
    let mut s = 0.0;
    for j in 0..a.ncols() {
        for &x in a.col(j) {
            s += x * x;
        }
    }
    s.sqrt()
}

/// Largest absolute entry.
pub fn max_abs(a: &Mat) -> f64 {
    a.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Largest absolute difference between two same-shaped matrices.
pub fn max_abs_diff(a: &Mat, b: &Mat) -> f64 {
    assert_eq!((a.nrows(), a.ncols()), (b.nrows(), b.ncols()));
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
}

/// `‖QᵀQ − I‖_F / √n` for a square (or tall) `Q`.
pub fn orthogonality_residual(q: &Mat) -> f64 {
    let n = q.ncols();
    let mut s = 0.0;
    for j in 0..n {
        let cj = q.col(j);
        for i in 0..=j {
            let ci = q.col(i);
            let mut dot = 0.0;
            for (&x, &y) in ci.iter().zip(cj) {
                dot += x * y;
            }
            let target = if i == j { 1.0 } else { 0.0 };
            let d = dot - target;
            s += if i == j { d * d } else { 2.0 * d * d };
        }
    }
    (s.sqrt()) / (n as f64).sqrt()
}

/// `‖A − Q B Qᵀ‖_F / ‖A‖_F`: how well `Q B Qᵀ` reconstructs `A`.
///
/// `O(n³)` dense computation; test-scale only.
pub fn similarity_residual(a: &Mat, q: &Mat, b: &Mat) -> f64 {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(q.nrows(), n);
    assert_eq!(q.ncols(), n);
    assert_eq!(b.nrows(), n);
    assert_eq!(b.ncols(), n);
    // R = Q B
    let mut r = Mat::zeros(n, n);
    for j in 0..n {
        for k in 0..n {
            let bkj = b[(k, j)];
            if bkj != 0.0 {
                let qk = q.col(k);
                let rj = r.col_mut(j);
                for i in 0..n {
                    rj[i] += qk[i] * bkj;
                }
            }
        }
    }
    // S = R Qᵀ, accumulate ‖A − S‖²
    let mut err = 0.0;
    for j in 0..n {
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += r[(i, k)] * q[(j, k)];
            }
            let d = a[(i, j)] - s;
            err += d * d;
        }
    }
    err.sqrt() / frob_norm(a).max(f64::MIN_POSITIVE)
}

/// `‖A − Aᵀ‖_F / ‖A‖_F`: symmetry defect.
pub fn sym_residual(a: &Mat) -> f64 {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut s = 0.0;
    for j in 0..n {
        for i in (j + 1)..n {
            let d = a[(i, j)] - a[(j, i)];
            s += 2.0 * d * d;
        }
    }
    s.sqrt() / frob_norm(a).max(f64::MIN_POSITIVE)
}

/// Maximum relative eigenvalue error between two *sorted* spectra, scaled by
/// the spectral spread (LAPACK-style `|λ − λ̂| / (‖A‖)`).
pub fn spectrum_error(exact: &[f64], computed: &[f64]) -> f64 {
    assert_eq!(exact.len(), computed.len());
    let scale = exact
        .iter()
        .fold(0.0f64, |m, &x| m.max(x.abs()))
        .max(f64::MIN_POSITIVE);
    exact
        .iter()
        .zip(computed)
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
        / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn frob_of_identity() {
        let i = Mat::identity(9);
        assert!((frob_norm(&i) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn orthogonality_of_identity_and_rotation() {
        assert!(orthogonality_residual(&Mat::identity(5)) < 1e-16);
        let (c, s) = (0.6, 0.8);
        let g = Mat::from_rows(2, 2, &[c, -s, s, c]);
        assert!(orthogonality_residual(&g) < 1e-15);
    }

    #[test]
    fn orthogonality_detects_non_orthogonal() {
        let mut m = Mat::identity(4);
        m[(0, 1)] = 0.5;
        assert!(orthogonality_residual(&m) > 0.1);
    }

    #[test]
    fn similarity_identity_transform() {
        let a = gen::random_symmetric(12, 1);
        let q = Mat::identity(12);
        assert!(similarity_residual(&a, &q, &a) < 1e-15);
    }

    #[test]
    fn similarity_with_real_rotation() {
        // A = Q B Qᵀ with B = QᵀAQ must give ~0 residual
        let n = 10;
        let a = gen::random_symmetric(n, 2);
        let q = gen::random_orthogonal(n, 3);
        // B = Qᵀ A Q computed densely
        let mut aq = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[(i, k)] * q[(k, j)];
                }
                aq[(i, j)] = s;
            }
        }
        let mut b = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += q[(k, i)] * aq[(k, j)];
                }
                b[(i, j)] = s;
            }
        }
        assert!(similarity_residual(&a, &q, &b) < 1e-13);
    }

    #[test]
    fn sym_residual_zero_for_symmetric() {
        let a = gen::random_symmetric(8, 4);
        assert_eq!(sym_residual(&a), 0.0);
        let b = gen::random(8, 8, 5);
        assert!(sym_residual(&b) > 0.01);
    }

    #[test]
    fn spectrum_error_basics() {
        assert_eq!(spectrum_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((spectrum_error(&[1.0, 2.0], &[1.0, 2.1]) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_views() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_rows(2, 2, &[1.0, 2.5, 3.0, 4.0]);
        assert!((max_abs_diff(&a, &b) - 0.5).abs() < 1e-15);
    }
}
