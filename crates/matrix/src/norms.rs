//! Norms and the residuals used throughout the test suite to state
//! factorization contracts:
//!
//! * orthogonality: `‖QᵀQ − I‖_F / √n`
//! * similarity:    `‖A − Q B Qᵀ‖_F / ‖A‖_F`
//!
//! These follow the LAPACK testing conventions (residual scaled so that a
//! backward-stable algorithm yields `O(n · ε)`).

use crate::dense::{Mat, MatRef};

/// Shape mismatch reported by the fallible residual entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeError {
    /// Which argument was mis-shaped (`"a"`, `"q"`, `"b"`).
    pub arg: &'static str,
    /// The offending `(nrows, ncols)`.
    pub got: (usize, usize),
    /// The `(nrows, ncols)` that was required.
    pub expected: (usize, usize),
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "argument `{}` has shape {}x{}, expected {}x{}",
            self.arg, self.got.0, self.got.1, self.expected.0, self.expected.1
        )
    }
}

impl std::error::Error for ShapeError {}

/// Frobenius norm of a dense matrix.
pub fn frob_norm(a: &Mat) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Frobenius norm of a view.
pub fn frob_norm_ref(a: &MatRef<'_>) -> f64 {
    let mut s = 0.0;
    for j in 0..a.ncols() {
        for &x in a.col(j) {
            s += x * x;
        }
    }
    s.sqrt()
}

/// Largest absolute entry.
pub fn max_abs(a: &Mat) -> f64 {
    a.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Largest absolute difference between two same-shaped matrices.
pub fn max_abs_diff(a: &Mat, b: &Mat) -> f64 {
    assert_eq!((a.nrows(), a.ncols()), (b.nrows(), b.ncols()));
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
}

/// `‖QᵀQ − I‖_F / √n` for a square (or tall) `Q`.
pub fn orthogonality_residual(q: &Mat) -> f64 {
    let n = q.ncols();
    let mut s = 0.0;
    for j in 0..n {
        let cj = q.col(j);
        for i in 0..=j {
            let ci = q.col(i);
            let mut dot = 0.0;
            for (&x, &y) in ci.iter().zip(cj) {
                dot += x * y;
            }
            let target = if i == j { 1.0 } else { 0.0 };
            let d = dot - target;
            s += if i == j { d * d } else { 2.0 * d * d };
        }
    }
    (s.sqrt()) / (n as f64).sqrt()
}

/// `‖A − Q B Qᵀ‖_F / ‖A‖_F`: how well `Q B Qᵀ` reconstructs `A`.
///
/// `O(n³)` dense computation; test-scale only. Panics on mis-shaped
/// arguments; use [`try_similarity_residual`] for an error instead.
pub fn similarity_residual(a: &Mat, q: &Mat, b: &Mat) -> f64 {
    try_similarity_residual(a, q, b).unwrap_or_else(|e| panic!("similarity_residual: {e}"))
}

/// Fallible variant of [`similarity_residual`]: returns a [`ShapeError`]
/// when `a` is non-square or `q`/`b` do not match its order, instead of
/// panicking. Runtime checkers use this so a mis-wired hook reports a
/// failed check rather than aborting the pipeline.
pub fn try_similarity_residual(a: &Mat, q: &Mat, b: &Mat) -> Result<f64, ShapeError> {
    let n = a.nrows();
    for (arg, m) in [("a", a), ("q", q), ("b", b)] {
        if (m.nrows(), m.ncols()) != (n, n) {
            return Err(ShapeError {
                arg,
                got: (m.nrows(), m.ncols()),
                expected: (n, n),
            });
        }
    }
    // R = Q B
    let mut r = Mat::zeros(n, n);
    for j in 0..n {
        for k in 0..n {
            let bkj = b[(k, j)];
            if bkj != 0.0 {
                let qk = q.col(k);
                let rj = r.col_mut(j);
                for i in 0..n {
                    rj[i] += qk[i] * bkj;
                }
            }
        }
    }
    // S = R Qᵀ, accumulate ‖A − S‖²
    let mut err = 0.0;
    for j in 0..n {
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += r[(i, k)] * q[(j, k)];
            }
            let d = a[(i, j)] - s;
            err += d * d;
        }
    }
    Ok(err.sqrt() / frob_norm(a).max(f64::MIN_POSITIVE))
}

/// `‖A − Aᵀ‖_F / ‖A‖_F`: symmetry defect.
pub fn sym_residual(a: &Mat) -> f64 {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut s = 0.0;
    for j in 0..n {
        for i in (j + 1)..n {
            let d = a[(i, j)] - a[(j, i)];
            s += 2.0 * d * d;
        }
    }
    s.sqrt() / frob_norm(a).max(f64::MIN_POSITIVE)
}

/// Maximum relative eigenvalue error between two *sorted* spectra, scaled by
/// the spectral spread (LAPACK-style `|λ − λ̂| / (‖A‖)`).
pub fn spectrum_error(exact: &[f64], computed: &[f64]) -> f64 {
    assert_eq!(exact.len(), computed.len());
    let scale = exact
        .iter()
        .fold(0.0f64, |m, &x| m.max(x.abs()))
        .max(f64::MIN_POSITIVE);
    exact
        .iter()
        .zip(computed)
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
        / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn frob_of_identity() {
        let i = Mat::identity(9);
        assert!((frob_norm(&i) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn orthogonality_of_identity_and_rotation() {
        assert!(orthogonality_residual(&Mat::identity(5)) < 1e-16);
        let (c, s) = (0.6, 0.8);
        let g = Mat::from_rows(2, 2, &[c, -s, s, c]);
        assert!(orthogonality_residual(&g) < 1e-15);
    }

    #[test]
    fn orthogonality_detects_non_orthogonal() {
        let mut m = Mat::identity(4);
        m[(0, 1)] = 0.5;
        assert!(orthogonality_residual(&m) > 0.1);
    }

    #[test]
    fn similarity_identity_transform() {
        let a = gen::random_symmetric(12, 1);
        let q = Mat::identity(12);
        assert!(similarity_residual(&a, &q, &a) < 1e-15);
    }

    #[test]
    fn similarity_with_real_rotation() {
        // A = Q B Qᵀ with B = QᵀAQ must give ~0 residual
        let n = 10;
        let a = gen::random_symmetric(n, 2);
        let q = gen::random_orthogonal(n, 3);
        // B = Qᵀ A Q computed densely
        let mut aq = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[(i, k)] * q[(k, j)];
                }
                aq[(i, j)] = s;
            }
        }
        let mut b = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += q[(k, i)] * aq[(k, j)];
                }
                b[(i, j)] = s;
            }
        }
        assert!(similarity_residual(&a, &q, &b) < 1e-13);
    }

    #[test]
    fn sym_residual_zero_for_symmetric() {
        let a = gen::random_symmetric(8, 4);
        assert_eq!(sym_residual(&a), 0.0);
        let b = gen::random(8, 8, 5);
        assert!(sym_residual(&b) > 0.01);
    }

    #[test]
    fn spectrum_error_basics() {
        assert_eq!(spectrum_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((spectrum_error(&[1.0, 2.0], &[1.0, 2.1]) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_views() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_rows(2, 2, &[1.0, 2.5, 3.0, 4.0]);
        assert!((max_abs_diff(&a, &b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn residuals_on_one_by_one() {
        // n = 1: Q = [1] trivially orthogonal, A = QAQᵀ exactly.
        let a = Mat::from_rows(1, 1, &[3.5]);
        let q = Mat::identity(1);
        assert_eq!(orthogonality_residual(&q), 0.0);
        assert_eq!(similarity_residual(&a, &q, &a), 0.0);
        assert_eq!(spectrum_error(&[3.5], &[3.5]), 0.0);
    }

    #[test]
    fn residuals_on_two_by_two_rotation() {
        // n = 2 with a genuine rotation: the smallest case where the
        // off-diagonal terms of QᵀQ − I and A − QBQᵀ are exercised.
        let (c, s) = (0.6, 0.8);
        let q = Mat::from_rows(2, 2, &[c, -s, s, c]);
        assert!(orthogonality_residual(&q) < 1e-15);
        // B = Qᵀ A Q for a diagonal A; similarity must close the loop.
        let a = Mat::from_rows(2, 2, &[2.0, 0.0, 0.0, -1.0]);
        let mut b = Mat::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for p in 0..2 {
                    acc += q[(p, i)] * a[(p, p)] * q[(p, j)];
                }
                b[(i, j)] = acc;
            }
        }
        assert!(similarity_residual(&a, &q, &b) < 1e-15);
    }

    #[test]
    fn residuals_on_all_zero_matrix_are_finite() {
        // ‖A‖ = 0 must not divide by zero: the guards clamp the
        // denominator, so the residual is 0 (exact) rather than NaN.
        let z = Mat::zeros(4, 4);
        let q = Mat::identity(4);
        let r = similarity_residual(&z, &q, &z);
        assert!(r.is_finite() && r == 0.0, "{r}");
        let r = sym_residual(&z);
        assert!(r.is_finite() && r == 0.0, "{r}");
        // All-zero Q is maximally non-orthogonal but still finite.
        assert!((orthogonality_residual(&Mat::zeros(4, 4)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn try_similarity_residual_rejects_non_square_shapes() {
        let a = Mat::zeros(4, 4);
        let q_bad = Mat::zeros(4, 3);
        let b = Mat::zeros(4, 4);
        let err = try_similarity_residual(&a, &q_bad, &b).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('q') && msg.contains("4x3"), "{msg}");

        let b_bad = Mat::zeros(3, 3);
        assert!(try_similarity_residual(&a, &Mat::identity(4), &b_bad).is_err());
        assert!(try_similarity_residual(&a, &Mat::identity(4), &b).is_ok());
    }

    #[test]
    #[should_panic(expected = "similarity_residual")]
    fn similarity_residual_panics_with_context_on_misuse() {
        let _ = similarity_residual(&Mat::zeros(3, 3), &Mat::zeros(3, 2), &Mat::zeros(3, 3));
    }
}
