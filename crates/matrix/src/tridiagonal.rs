//! Symmetric tridiagonal matrices — the output of tridiagonalization and the
//! input of the tridiagonal eigensolvers.

use crate::dense::Mat;

/// A symmetric tridiagonal matrix stored as diagonal `d` (length `n`) and
/// off-diagonal `e` (length `n − 1`).
#[derive(Clone, Debug, PartialEq)]
pub struct Tridiagonal {
    /// Diagonal entries `T[i][i]`.
    pub d: Vec<f64>,
    /// Off-diagonal entries `T[i+1][i] == T[i][i+1]`.
    pub e: Vec<f64>,
}

impl Tridiagonal {
    /// Creates a tridiagonal matrix from its diagonals.
    pub fn new(d: Vec<f64>, e: Vec<f64>) -> Self {
        assert!(
            d.len() == e.len() + 1 || (d.is_empty() && e.is_empty()),
            "e must be one shorter than d"
        );
        Tridiagonal { d, e }
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Expands to a dense symmetric matrix.
    pub fn to_dense(&self) -> Mat {
        let n = self.n();
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = self.d[i];
        }
        for i in 0..n.saturating_sub(1) {
            a[(i + 1, i)] = self.e[i];
            a[(i, i + 1)] = self.e[i];
        }
        a
    }

    /// Trace — invariant under orthogonal similarity, handy in tests.
    pub fn trace(&self) -> f64 {
        self.d.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f64 {
        let dd: f64 = self.d.iter().map(|x| x * x).sum();
        let ee: f64 = self.e.iter().map(|x| x * x).sum();
        dd + 2.0 * ee
    }

    /// Makes every off-diagonal entry non-negative by a diagonal sign
    /// similarity (does not change eigenvalues). Useful for comparing `T`s
    /// produced by different algorithms, which are unique only up to signs.
    pub fn with_positive_offdiag(&self) -> Tridiagonal {
        Tridiagonal {
            d: self.d.clone(),
            e: self.e.iter().map(|x| x.abs()).collect(),
        }
    }

    /// Applies Gershgorin's theorem: an interval containing all eigenvalues.
    pub fn gershgorin(&self) -> (f64, f64) {
        let n = self.n();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let r = if i > 0 { self.e[i - 1].abs() } else { 0.0 }
                + if i + 1 < n { self.e[i].abs() } else { 0.0 };
            lo = lo.min(self.d[i] - r);
            hi = hi.max(self.d[i] + r);
        }
        if n == 0 {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Counts eigenvalues strictly less than `x` by a Sturm sequence
    /// (LAPACK `dlaneg`-style negcount). Robust to zero pivots.
    pub fn sturm_count(&self, x: f64) -> usize {
        let n = self.n();
        let mut count = 0;
        let mut q = 1.0f64;
        for i in 0..n {
            let e2 = if i > 0 {
                self.e[i - 1] * self.e[i - 1]
            } else {
                0.0
            };
            q = if q != 0.0 {
                self.d[i] - x - e2 / q
            } else {
                // standard perturbation when the previous pivot vanished
                self.d[i] - x - e2 / (crate::EPS * (1.0 + x.abs()))
            };
            if q < 0.0 {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toeplitz(n: usize) -> Tridiagonal {
        // d = 2, e = -1: eigenvalues 2 - 2 cos(kπ/(n+1)), all in (0, 4)
        Tridiagonal::new(vec![2.0; n], vec![-1.0; n - 1])
    }

    #[test]
    fn dense_round_trip() {
        let t = Tridiagonal::new(vec![1.0, 2.0, 3.0], vec![4.0, 5.0]);
        let a = t.to_dense();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a[(0, 1)], 4.0);
        assert_eq!(a[(2, 1)], 5.0);
        assert_eq!(a[(2, 0)], 0.0);
    }

    #[test]
    fn trace_and_frob() {
        let t = Tridiagonal::new(vec![1.0, 2.0], vec![3.0]);
        assert_eq!(t.trace(), 3.0);
        assert_eq!(t.frob_sq(), 1.0 + 4.0 + 2.0 * 9.0);
    }

    #[test]
    fn gershgorin_contains_toeplitz_spectrum() {
        let t = toeplitz(10);
        let (lo, hi) = t.gershgorin();
        assert!(lo <= 0.1 && hi >= 3.9);
    }

    #[test]
    fn sturm_counts_toeplitz() {
        let n = 8;
        let t = toeplitz(n);
        // exact eigenvalues: 2 - 2 cos(kπ/(n+1)), k = 1..n
        let eigs: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        assert_eq!(t.sturm_count(eigs[0] - 1e-9), 0);
        assert_eq!(t.sturm_count(eigs[0] + 1e-9), 1);
        assert_eq!(t.sturm_count(eigs[4] + 1e-9), 5);
        assert_eq!(t.sturm_count(4.1), n);
    }

    #[test]
    fn positive_offdiag_same_spectrum_via_sturm() {
        let t = Tridiagonal::new(vec![1.0, -2.0, 0.5, 3.0], vec![-1.0, 2.0, -0.5]);
        let p = t.with_positive_offdiag();
        for &x in &[-3.0, -1.0, 0.0, 0.7, 2.0, 4.0] {
            assert_eq!(t.sturm_count(x), p.sturm_count(x));
        }
    }

    #[test]
    fn empty_and_single() {
        let t0 = Tridiagonal::new(vec![], vec![]);
        assert_eq!(t0.n(), 0);
        let t1 = Tridiagonal::new(vec![5.0], vec![]);
        assert_eq!(t1.n(), 1);
        assert_eq!(t1.sturm_count(6.0), 1);
        assert_eq!(t1.sturm_count(4.0), 0);
    }
}
