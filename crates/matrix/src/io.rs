//! Matrix Market I/O (a pragmatic subset).
//!
//! Supports the formats a symmetric-eigensolver user actually exchanges:
//!
//! * `matrix coordinate real symmetric` — sparse lower-triangle entries,
//! * `matrix coordinate real general` — sparse general entries,
//! * `matrix array real general` / `symmetric` — dense column-major.
//!
//! Reading returns a dense [`Mat`] (this workspace's algorithms are dense /
//! banded); writing emits the coordinate-symmetric form for symmetric
//! matrices and array-general otherwise.

use crate::dense::Mat;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    Io(std::io::Error),
    /// Structural problem with the file, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "Matrix Market parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a Matrix Market file into a dense matrix.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Mat, MmError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(f))
}

/// Reads Matrix Market data from any reader.
pub fn read_matrix_market_from(r: impl Read) -> Result<Mat, MmError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();

    // header: %%MatrixMarket matrix <format> <field> <symmetry>
    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].starts_with("%%matrixmarket") || toks[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    let format = toks[2];
    let field = toks[3];
    let symmetry = toks[4];
    if field != "real" && field != "integer" {
        return Err(parse_err(format!("unsupported field: {field}")));
    }
    let symmetric = match symmetry {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };

    // skip comments, find the size line
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|x| x.parse().map_err(|_| parse_err(format!("bad size: {x}"))))
        .collect::<Result<_, _>>()?;

    match format {
        "coordinate" => {
            if dims.len() != 3 {
                return Err(parse_err("coordinate size line needs rows cols nnz"));
            }
            let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
            let mut m = Mat::zeros(rows, cols);
            let mut seen = 0usize;
            for line in lines {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                let mut it = t.split_whitespace();
                let i: usize = it
                    .next()
                    .ok_or_else(|| parse_err("short entry"))?
                    .parse()
                    .map_err(|_| parse_err("bad row index"))?;
                let j: usize = it
                    .next()
                    .ok_or_else(|| parse_err("short entry"))?
                    .parse()
                    .map_err(|_| parse_err("bad col index"))?;
                let v: f64 = it
                    .next()
                    .ok_or_else(|| parse_err("missing value"))?
                    .parse()
                    .map_err(|_| parse_err("bad value"))?;
                if i == 0 || j == 0 || i > rows || j > cols {
                    return Err(parse_err(format!("index out of range: {i} {j}")));
                }
                m[(i - 1, j - 1)] = v;
                if symmetric {
                    m[(j - 1, i - 1)] = v;
                }
                seen += 1;
            }
            if seen != nnz {
                return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
            }
            Ok(m)
        }
        "array" => {
            if dims.len() != 2 {
                return Err(parse_err("array size line needs rows cols"));
            }
            let (rows, cols) = (dims[0], dims[1]);
            let mut vals = Vec::with_capacity(rows * cols);
            for line in lines {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                for tok in t.split_whitespace() {
                    vals.push(
                        tok.parse::<f64>()
                            .map_err(|_| parse_err(format!("bad value: {tok}")))?,
                    );
                }
            }
            let mut m = Mat::zeros(rows, cols);
            if symmetric {
                // column-major lower triangle
                let expect = rows * (rows + 1) / 2;
                if vals.len() != expect || rows != cols {
                    return Err(parse_err("bad symmetric array payload"));
                }
                let mut idx = 0;
                for j in 0..cols {
                    for i in j..rows {
                        m[(i, j)] = vals[idx];
                        m[(j, i)] = vals[idx];
                        idx += 1;
                    }
                }
            } else {
                if vals.len() != rows * cols {
                    return Err(parse_err(format!(
                        "expected {} values, found {}",
                        rows * cols,
                        vals.len()
                    )));
                }
                let mut idx = 0;
                for j in 0..cols {
                    for i in 0..rows {
                        m[(i, j)] = vals[idx];
                        idx += 1;
                    }
                }
            }
            Ok(m)
        }
        other => Err(parse_err(format!("unsupported format: {other}"))),
    }
}

/// Writes a matrix in Matrix Market form: `coordinate real symmetric`
/// (lower triangle, nonzeros) when `symmetric` is set, else
/// `array real general`.
pub fn write_matrix_market(
    path: impl AsRef<Path>,
    m: &Mat,
    symmetric: bool,
) -> Result<(), MmError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market_to(BufWriter::new(f), m, symmetric)
}

/// Writes Matrix Market data to any writer.
pub fn write_matrix_market_to(mut w: impl Write, m: &Mat, symmetric: bool) -> Result<(), MmError> {
    let (rows, cols) = (m.nrows(), m.ncols());
    if symmetric {
        assert_eq!(rows, cols, "symmetric output needs a square matrix");
        let mut entries = Vec::new();
        for j in 0..cols {
            for i in j..rows {
                if m[(i, j)] != 0.0 {
                    entries.push((i + 1, j + 1, m[(i, j)]));
                }
            }
        }
        writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
        writeln!(w, "% written by tridiag-gpu")?;
        writeln!(w, "{rows} {cols} {}", entries.len())?;
        for (i, j, v) in entries {
            writeln!(w, "{i} {j} {v:.17e}")?;
        }
    } else {
        writeln!(w, "%%MatrixMarket matrix array real general")?;
        writeln!(w, "% written by tridiag-gpu")?;
        writeln!(w, "{rows} {cols}")?;
        for j in 0..cols {
            for i in 0..rows {
                writeln!(w, "{:.17e}", m[(i, j)])?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn coordinate_symmetric_round_trip() {
        let a = gen::random_symmetric_band(9, 2, 1);
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &a, true).unwrap();
        let back = read_matrix_market_from(&buf[..]).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn array_general_round_trip() {
        let a = gen::random(5, 7, 2);
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &a, false).unwrap();
        let back = read_matrix_market_from(&buf[..]).unwrap();
        for j in 0..7 {
            for i in 0..5 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn parses_reference_text() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 1 -1.0\n\
                    2 2 2.0\n\
                    3 3 1.5\n";
        let m = read_matrix_market_from(text.as_bytes()).unwrap();
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 1)], -1.0); // mirrored
        assert_eq!(m[(1, 0)], -1.0);
        assert_eq!(m[(2, 2)], 1.5);
        assert_eq!(m[(2, 0)], 0.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_matrix_market_from("not a header\n1 1 1\n".as_bytes()).is_err());
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 2 3\n".as_bytes()
        )
        .is_err());
        // nnz mismatch
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n".as_bytes()
        )
        .is_err());
        // out-of-range index
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tg_matrix_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.mtx");
        let a = gen::random_symmetric(6, 3);
        write_matrix_market(&path, &a, true).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert_eq!(back, a);
        std::fs::remove_file(&path).ok();
    }
}
