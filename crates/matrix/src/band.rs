//! Symmetric band storage.
//!
//! A symmetric matrix with bandwidth `kd` (`A[i][j] == 0` whenever
//! `|i − j| > kd`) is stored compactly: column `j` of the band holds the
//! entries `A[j..=min(j+ldab-1, n-1)][j]` contiguously. This is the LAPACK
//! lower symmetric band layout and at the same time the "consecutive memory"
//! layout of **Figure 10** in the paper: walking down a band column walks
//! consecutive addresses, whereas the same walk inside a full `n × n` matrix
//! strides by `n`.
//!
//! Bulge chasing transiently fills in up to `2·kd − 1` subdiagonals, so the
//! storage bandwidth `ldab − 1` may exceed the logical bandwidth `kd`; see
//! [`SymBand::with_storage`].

use crate::dense::Mat;

/// Storage layout descriptor used by the L2 cache simulator to translate a
/// band element coordinate into a byte address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandLayout {
    /// Band embedded in a full column-major `n × n` dense matrix
    /// (the "nonconsecutive" layout on the left of Figure 10).
    Dense { n: usize },
    /// Compact band storage with `ldab` rows per column
    /// (the "consecutive" layout on the right of Figure 10).
    Compact { ldab: usize },
}

impl BandLayout {
    /// Byte address of symmetric band element `(i, j)` with `i ≥ j`,
    /// assuming 8-byte elements starting at address 0.
    #[inline]
    pub fn address(&self, i: usize, j: usize) -> u64 {
        debug_assert!(i >= j);
        match *self {
            BandLayout::Dense { n } => {
                debug_assert!(i < n);
                ((j * n + i) * 8) as u64
            }
            BandLayout::Compact { ldab } => {
                debug_assert!(i - j < ldab);
                ((j * ldab + (i - j)) * 8) as u64
            }
        }
    }
}

/// Symmetric band matrix, lower-triangle compact storage.
///
/// ```
/// use tg_matrix::{gen, SymBand};
///
/// let dense = gen::random_symmetric_band(10, 2, 1);
/// let band = SymBand::from_dense_lower(&dense, 2);
/// assert_eq!(band.get(5, 3), dense[(5, 3)]);
/// assert_eq!(band.get(9, 0), 0.0); // outside the band
/// assert_eq!(band.to_dense(), dense);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SymBand {
    n: usize,
    /// Logical bandwidth: number of nonzero subdiagonals.
    kd: usize,
    /// Storage rows per column (`≥ kd + 1`); extra rows hold bulge fill-in.
    ldab: usize,
    /// `data[j * ldab + (i - j)]` is `A[i][j]` for `j ≤ i < j + ldab`.
    data: Vec<f64>,
}

impl SymBand {
    /// Creates a zero band matrix of order `n` and bandwidth `kd`.
    pub fn zeros(n: usize, kd: usize) -> Self {
        Self::with_storage(n, kd, kd + 1)
    }

    /// Creates a zero band matrix with `ldab ≥ kd + 1` storage rows, leaving
    /// headroom for bulge-chasing fill-in.
    pub fn with_storage(n: usize, kd: usize, ldab: usize) -> Self {
        assert!(ldab > kd, "ldab must be at least kd + 1");
        SymBand {
            n,
            kd,
            ldab,
            data: vec![0.0; ldab * n],
        }
    }

    /// Extracts the lower band of a dense symmetric matrix.
    ///
    /// Only the lower triangle of `a` is read. Entries beyond bandwidth `kd`
    /// are ignored (callers should verify bandedness separately if needed).
    pub fn from_dense_lower(a: &Mat, kd: usize) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        let n = a.nrows();
        let mut b = SymBand::zeros(n, kd);
        for j in 0..n {
            for i in j..(j + kd + 1).min(n) {
                *b.at_mut(i, j) = a[(i, j)];
            }
        }
        b
    }

    /// Matrix order.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Logical bandwidth (number of subdiagonals).
    #[inline]
    pub fn kd(&self) -> usize {
        self.kd
    }

    /// Storage rows per column.
    #[inline]
    pub fn ldab(&self) -> usize {
        self.ldab
    }

    /// Raw storage (column-major band columns).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw storage, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element `(i, j)` with `i ≥ j`, which must be inside the storage band.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i >= j && i - j < self.ldab && i < self.n);
        self.data[j * self.ldab + (i - j)]
    }

    /// Mutable element `(i, j)` with `i ≥ j` inside the storage band.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i >= j && i - j < self.ldab && i < self.n);
        &mut self.data[j * self.ldab + (i - j)]
    }

    /// Element `(i, j)` for arbitrary `i, j` (uses symmetry; 0 outside band).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (i, j) = if i >= j { (i, j) } else { (j, i) };
        if i - j < self.ldab && i < self.n {
            self.data[j * self.ldab + (i - j)]
        } else {
            0.0
        }
    }

    /// Stored column `j` as a slice: entries `A[j..j+len][j]` where
    /// `len = min(ldab, n - j)`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        let len = self.ldab.min(self.n - j);
        &self.data[j * self.ldab..j * self.ldab + len]
    }

    /// Stored column `j`, mutable.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        let len = self.ldab.min(self.n - j);
        &mut self.data[j * self.ldab..j * self.ldab + len]
    }

    /// Expands to a dense symmetric matrix.
    pub fn to_dense(&self) -> Mat {
        let mut a = Mat::zeros(self.n, self.n);
        for j in 0..self.n {
            for i in j..(j + self.ldab).min(self.n) {
                let v = self.at(i, j);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    /// Checks that every stored entry strictly below subdiagonal `kd` is
    /// (numerically) zero: `|A[i][j]| ≤ tol` for `i − j > kd`.
    pub fn is_band_within(&self, kd: usize, tol: f64) -> bool {
        for j in 0..self.n {
            for i in (j + kd + 1)..(j + self.ldab).min(self.n) {
                if self.at(i, j).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n).map(|j| self.at(j, j)).collect()
    }

    /// Extracts subdiagonal `k` (length `n − k`).
    pub fn subdiag(&self, k: usize) -> Vec<f64> {
        assert!(k < self.ldab);
        (0..self.n - k).map(|j| self.at(j + k, j)).collect()
    }

    /// Interprets a bandwidth-1 matrix as a tridiagonal `(d, e)` pair.
    ///
    /// Panics if any entry beyond the first subdiagonal exceeds `tol`.
    pub fn to_tridiagonal(&self, tol: f64) -> crate::tridiagonal::Tridiagonal {
        assert!(
            self.is_band_within(1, tol),
            "matrix is not tridiagonal within tolerance {tol}"
        );
        crate::tridiagonal::Tridiagonal::new(self.diag(), self.subdiag(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense(n: usize, kd: usize) -> Mat {
        let mut a = Mat::from_fn(n, n, |i, j| {
            let (i, j) = if i >= j { (i, j) } else { (j, i) };
            if i - j <= kd {
                (1 + i + 2 * j) as f64
            } else {
                0.0
            }
        });
        a.mirror_lower();
        a
    }

    #[test]
    fn dense_round_trip() {
        let a = sample_dense(7, 2);
        let b = SymBand::from_dense_lower(&a, 2);
        assert_eq!(b.to_dense(), a);
    }

    #[test]
    fn element_access_symmetry() {
        let a = sample_dense(6, 2);
        let b = SymBand::from_dense_lower(&a, 2);
        assert_eq!(b.get(1, 4), a[(1, 4)]);
        assert_eq!(b.get(4, 1), a[(4, 1)]);
        assert_eq!(b.get(0, 5), 0.0);
    }

    #[test]
    fn col_lengths_shrink_at_edge() {
        let b = SymBand::zeros(5, 2);
        assert_eq!(b.col(0).len(), 3);
        assert_eq!(b.col(3).len(), 2);
        assert_eq!(b.col(4).len(), 1);
    }

    #[test]
    fn storage_headroom() {
        let mut b = SymBand::with_storage(8, 2, 6);
        // fill-in beyond logical bandwidth fits in storage
        *b.at_mut(5, 1) = 3.0; // i-j = 4 < ldab
        assert_eq!(b.at(5, 1), 3.0);
        assert!(!b.is_band_within(2, 0.0));
        assert!(b.is_band_within(4, 0.0));
    }

    #[test]
    fn diag_and_subdiag() {
        let a = sample_dense(5, 1);
        let b = SymBand::from_dense_lower(&a, 1);
        assert_eq!(b.diag().len(), 5);
        assert_eq!(b.subdiag(1).len(), 4);
        assert_eq!(b.diag()[2], a[(2, 2)]);
        assert_eq!(b.subdiag(1)[2], a[(3, 2)]);
    }

    #[test]
    fn tridiagonal_extraction() {
        let a = sample_dense(5, 1);
        let b = SymBand::from_dense_lower(&a, 1);
        let t = b.to_tridiagonal(0.0);
        assert_eq!(t.n(), 5);
        assert_eq!(t.d[0], a[(0, 0)]);
        assert_eq!(t.e[3], a[(4, 3)]);
    }

    #[test]
    fn layout_addresses() {
        let dense = BandLayout::Dense { n: 100 };
        let compact = BandLayout::Compact { ldab: 4 };
        // Walking down one band column: dense strides 8 bytes within a column
        // too (col-major); but across columns along a row it strides 800.
        assert_eq!(dense.address(11, 10), (10 * 100 + 11) as u64 * 8);
        assert_eq!(compact.address(11, 10), (10 * 4 + 1) as u64 * 8);
        // successive columns are 32 bytes apart in compact, 800 in dense
        assert_eq!(compact.address(11, 11) - compact.address(10, 10), 32);
        assert_eq!(dense.address(11, 11) - dense.address(10, 10), 808);
    }

    #[test]
    #[should_panic]
    fn tridiagonal_rejects_wide_band() {
        let a = sample_dense(5, 2);
        let b = SymBand::from_dense_lower(&a, 2);
        let _ = b.to_tridiagonal(1e-12);
    }
}
