//! # tg-matrix
//!
//! Dense column-major matrix storage, lightweight borrowed views, symmetric
//! band storage (both the conventional LAPACK layout and the compact
//! "consecutive" layout of Figure 10 of the paper), matrix generators and
//! norm / residual helpers.
//!
//! This crate is the storage substrate shared by every other crate in the
//! workspace. Everything is `f64`: the paper is an FP64 study end-to-end.
//!
//! ## Layout conventions
//!
//! * Dense matrices are **column-major** with an explicit leading dimension
//!   (`ld`), exactly like LAPACK, so panel factorizations can operate on
//!   sub-matrix views in place.
//! * Symmetric matrices store the **lower** triangle as the reference
//!   triangle unless stated otherwise.
//! * Symmetric band matrices with bandwidth `b` store the diagonal and `b`
//!   subdiagonals.

pub mod band;
pub mod dense;
pub mod digest;
pub mod gen;
pub mod io;
pub mod norms;
pub mod tridiagonal;

pub use band::{BandLayout, SymBand};
pub use dense::{Mat, MatMut, MatRef};
pub use digest::{mat_digest, ContentHasher};
pub use norms::{
    frob_norm, max_abs_diff, orthogonality_residual, similarity_residual, sym_residual,
    try_similarity_residual, ShapeError,
};
pub use tridiagonal::Tridiagonal;

/// Machine epsilon for `f64`, re-exported for residual thresholds.
pub const EPS: f64 = f64::EPSILON;
