//! Content digests over matrix bytes — the keying substrate for
//! result caching.
//!
//! The serving layer caches EVD results by *content*: two requests get the
//! same cache entry exactly when their input matrices are bitwise-identical
//! and their solve configurations agree. That is only sound because the
//! solver stack is bitwise-deterministic end to end (the PR 2/5/7
//! determinism contracts); the digest's job is to make "bitwise-identical
//! input" cheap to test.
//!
//! [`ContentHasher`] is a streaming hash built from the splitmix64 finalizer
//! (the same mixer `tg-check`'s fault campaigns use for seed derivation):
//! every absorbed word passes through the full 3-round avalanche, and the
//! running state is folded in with a distinct odd constant so word order
//! matters. It is **not** cryptographic — a hostile client could engineer a
//! collision — but for dedup/caching of trusted numeric traffic the
//! 64-bit avalanche mixer's collision odds (~2⁻⁶⁴ per pair) are the same
//! class of risk as memory corruption, and the cache's debug verify knob
//! (`tg-serve`) exists to catch exactly such miracles.
//!
//! `f64` values are absorbed through [`f64::to_bits`], so `-0.0` and `0.0`
//! hash differently and NaN payloads are distinguished — "bitwise" means
//! bitwise, matching the determinism contract the cache relies on.

use crate::Mat;

/// Streaming splitmix64-based content hasher.
///
/// ```
/// use tg_matrix::digest::ContentHasher;
/// let mut h1 = ContentHasher::new();
/// h1.write_f64(1.0);
/// h1.write_u64(7);
/// let mut h2 = ContentHasher::new();
/// h2.write_f64(1.0);
/// h2.write_u64(7);
/// assert_eq!(h1.finish(), h2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct ContentHasher {
    state: u64,
    /// Words absorbed so far; folded into [`finish`](Self::finish) so
    /// streams that differ only by trailing zero-words do not collide.
    len: u64,
}

/// splitmix64 finalizer: full-avalanche 64-bit mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher with a fixed, documented initial state (digests are
    /// stable across runs, hosts, and thread counts).
    pub fn new() -> ContentHasher {
        ContentHasher {
            // "tridiag!" as ASCII — an arbitrary non-zero constant so an
            // empty stream does not digest to mix(0).
            state: 0x7472_6964_6961_6721,
            len: 0,
        }
    }

    /// Absorbs one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        // Multiply-by-odd keeps the fold bijective in the running state;
        // the mixed word provides the avalanche.
        self.state = self
            .state
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(mix(w));
        self.len += 1;
    }

    /// Absorbs one `f64` by bit pattern (`-0.0 != 0.0`, NaN payloads kept).
    #[inline]
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Absorbs a slice of `f64`s (length first, then every bit pattern).
    pub fn write_f64_slice(&mut self, xs: &[f64]) {
        self.write_u64(xs.len() as u64);
        for &x in xs {
            self.write_u64(x.to_bits());
        }
    }

    /// The digest of everything absorbed so far (the hasher stays usable).
    pub fn finish(&self) -> u64 {
        mix(self.state ^ mix(self.len))
    }
}

/// Digest of a dense matrix: shape plus every stored byte, in storage
/// order. Matrices that differ in any element's bit pattern — or in shape,
/// even with identical storage — digest differently (up to the 64-bit
/// collision bound).
pub fn mat_digest(a: &Mat) -> u64 {
    let mut h = ContentHasher::new();
    h.write_u64(a.nrows() as u64);
    h.write_u64(a.ncols() as u64);
    h.write_f64_slice(a.as_slice());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let a = Mat::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(mat_digest(&a), mat_digest(&a.clone()));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let a = Mat::from_fn(4, 4, |i, j| 1.0 + (i + j) as f64);
        let mut b = a.clone();
        // Flip the lowest mantissa bit of one element.
        let bits = b[(2, 3)].to_bits() ^ 1;
        b[(2, 3)] = f64::from_bits(bits);
        assert_ne!(mat_digest(&a), mat_digest(&b));
    }

    #[test]
    fn negative_zero_is_distinguished() {
        let a = Mat::zeros(3, 3);
        let mut b = Mat::zeros(3, 3);
        b[(1, 1)] = -0.0;
        assert!(b[(1, 1)].to_bits() != 0, "-0.0 must have a sign bit set");
        assert_ne!(mat_digest(&a), mat_digest(&b));
    }

    #[test]
    fn shape_is_part_of_the_digest() {
        // Same storage bytes (all zero), different shapes.
        let a = Mat::zeros(2, 8);
        let b = Mat::zeros(4, 4);
        assert_ne!(mat_digest(&a), mat_digest(&b));
    }

    #[test]
    fn trailing_zeros_do_not_collide() {
        let mut h1 = ContentHasher::new();
        h1.write_u64(5);
        let mut h2 = ContentHasher::new();
        h2.write_u64(5);
        h2.write_u64(0);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn order_matters() {
        let mut h1 = ContentHasher::new();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = ContentHasher::new();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h1.finish(), h2.finish());
    }
}
