//! Secular equation solver for the rank-one-update eigenproblem
//! `D + ρ z zᵀ` at the heart of divide & conquer (`dlaed4` analogue).
//!
//! For `ρ > 0` and strictly increasing `d`, the eigenvalues `λ_k` satisfy
//!
//! ```text
//! f(λ) = 1 + ρ Σᵢ zᵢ² / (dᵢ − λ) = 0,
//! d_k < λ_k < d_{k+1}  (k < n−1),   d_{n−1} < λ_{n−1} ≤ d_{n−1} + ρ‖z‖².
//! ```
//!
//! Each root is computed in **shifted coordinates** `μ = λ − d_K` relative
//! to the closest pole, so that the differences `dᵢ − λ` used later for
//! eigenvectors carry full relative accuracy — the property that lets the
//! Gu–Eisenstat construction keep eigenvectors orthogonal without extended
//! precision. The iteration is a Newton step safeguarded by bisection on a
//! maintained bracket (monotone `f` ⇒ guaranteed convergence).

/// One secular root in shifted representation: `λ = d[origin] + mu`.
#[derive(Clone, Copy, Debug)]
pub struct SecularRoot {
    /// Index `K` of the pole the root is expressed against.
    pub origin: usize,
    /// Offset from the origin pole.
    pub mu: f64,
}

impl SecularRoot {
    /// The eigenvalue `λ = d[origin] + μ`.
    #[inline]
    pub fn value(&self, d: &[f64]) -> f64 {
        d[self.origin] + self.mu
    }

    /// `dᵢ − λ`, computed to full relative accuracy via the shift.
    #[inline]
    pub fn d_minus_lambda(&self, d: &[f64], i: usize) -> f64 {
        (d[i] - d[self.origin]) - self.mu
    }
}

/// Solves all `n` secular roots of `D + ρ z zᵀ`.
///
/// Requirements: `ρ > 0`, `d` strictly increasing, all `zᵢ ≠ 0`
/// (the caller deflates violations first).
pub fn solve_all(d: &[f64], z: &[f64], rho: f64) -> Vec<SecularRoot> {
    let n = d.len();
    assert_eq!(z.len(), n);
    assert!(rho > 0.0, "rho must be positive (caller normalizes)");
    debug_assert!(d.windows(2).all(|w| w[0] < w[1]), "d must be increasing");
    (0..n).map(|k| solve_root(d, z, rho, k)).collect()
}

/// Evaluates `g(μ) = 1 + ρ Σ zᵢ²/(δᵢ − μ)` and `g'(μ)` with `δᵢ = dᵢ − d_K`.
fn eval_shifted(d: &[f64], z: &[f64], rho: f64, origin: usize, mu: f64) -> (f64, f64) {
    let dk = d[origin];
    let mut f = 1.0;
    let mut fp = 0.0;
    for i in 0..d.len() {
        let delta = (d[i] - dk) - mu;
        let t = z[i] / delta;
        f += rho * z[i] * t;
        fp += rho * t * t;
    }
    (f, fp)
}

/// Solves root `k` (the root in `(d_k, d_{k+1})`, or beyond `d_{n−1}` for
/// `k = n−1`).
pub fn solve_root(d: &[f64], z: &[f64], rho: f64, k: usize) -> SecularRoot {
    let n = d.len();
    let znorm2: f64 = z.iter().map(|x| x * x).sum();

    // choose origin pole and initial bracket for μ
    let (origin, mut lo, mut hi) = if k == n - 1 {
        // last root: μ ∈ (0, ρ‖z‖²]
        (n - 1, 0.0, rho * znorm2)
    } else {
        let gap = d[k + 1] - d[k];
        // evaluate f at the midpoint to decide which pole is closer
        let (fmid, _) = eval_shifted(d, z, rho, k, 0.5 * gap);
        if fmid >= 0.0 {
            // root in the left half: origin d_k, μ ∈ (0, gap/2]
            (k, 0.0, 0.5 * gap)
        } else {
            // root in the right half: origin d_{k+1}, μ ∈ [−gap/2, 0)
            (k + 1, -0.5 * gap, 0.0)
        }
    };

    // Newton iteration safeguarded by the bracket; g is increasing in μ.
    let mut mu = 0.5 * (lo + hi);
    for _ in 0..120 {
        let (g, gp) = eval_shifted(d, z, rho, origin, mu);
        if g == 0.0 || !g.is_finite() {
            break;
        }
        if g > 0.0 {
            hi = mu;
        } else {
            lo = mu;
        }
        // Newton step
        let step = -g / gp;
        let mut next = mu + step;
        if !(next > lo && next < hi && next.is_finite()) {
            next = 0.5 * (lo + hi); // bisect
        }
        let width = hi - lo;
        if width <= 4.0 * f64::EPSILON * mu.abs().max(lo.abs()).max(hi.abs()) || next == mu {
            mu = next;
            break;
        }
        mu = next;
    }
    SecularRoot { origin, mu }
}

/// Recomputes the rank-one vector from the computed roots so eigenvectors
/// are numerically orthogonal (Gu–Eisenstat / `dlaed3` trick):
///
/// ```text
/// z̃ᵢ² = (λ_{n−1} − dᵢ)/ρ · ∏_{k<i} (λ_k − dᵢ)/(d_k − dᵢ)
///                        · ∏_{i≤k<n−1} (λ_k − dᵢ)/(d_{k+1} − dᵢ)
/// ```
///
/// with every `λ_k − dᵢ` evaluated through the shifted representation.
pub fn refine_z(d: &[f64], rho: f64, roots: &[SecularRoot], z_signs: &[f64]) -> Vec<f64> {
    let n = d.len();
    let mut zt = vec![0.0; n];
    for i in 0..n {
        // λ_{n−1} − dᵢ
        let mut prod = -roots[n - 1].d_minus_lambda(d, i) / rho;
        for k in 0..i {
            let num = -roots[k].d_minus_lambda(d, i);
            let den = d[k] - d[i];
            prod *= num / den;
        }
        for k in i..n - 1 {
            let num = -roots[k].d_minus_lambda(d, i);
            let den = d[k + 1] - d[i];
            prod *= num / den;
        }
        debug_assert!(
            prod >= -1e-10,
            "interlacing violated: negative z̃² = {prod} at {i}"
        );
        zt[i] = prod.max(0.0).sqrt() * z_signs[i].signum();
    }
    zt
}

/// Builds the (normalized) eigenvector for `root`:
/// `vᵢ = z̃ᵢ / (dᵢ − λ_k)`.
pub fn eigenvector(d: &[f64], zt: &[f64], root: &SecularRoot) -> Vec<f64> {
    let n = d.len();
    let mut v = vec![0.0; n];
    let mut nrm = 0.0;
    for i in 0..n {
        let denom = root.d_minus_lambda(d, i);
        v[i] = zt[i] / denom;
        nrm += v[i] * v[i];
    }
    let s = nrm.sqrt();
    for vi in &mut v {
        *vi /= s;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secular_f(d: &[f64], z: &[f64], rho: f64, lam: f64) -> f64 {
        1.0 + rho
            * d.iter()
                .zip(z)
                .map(|(&di, &zi)| zi * zi / (di - lam))
                .sum::<f64>()
    }

    #[test]
    fn roots_interlace_and_solve() {
        let d = [0.0, 1.0, 2.5, 4.0];
        let z = [0.5, 0.3, 0.8, 0.2];
        let rho = 1.3;
        let roots = solve_all(&d, &z, rho);
        for (k, r) in roots.iter().enumerate() {
            let lam = r.value(&d);
            if k < 3 {
                assert!(d[k] < lam && lam < d[k + 1], "interlacing at {k}: {lam}");
            } else {
                assert!(lam > d[3]);
            }
            assert!(
                secular_f(&d, &z, rho, lam).abs() < 1e-8,
                "f(λ_{k}) = {}",
                secular_f(&d, &z, rho, lam)
            );
        }
    }

    #[test]
    fn rank_one_2x2_exact() {
        // D + ρzzᵀ = [[1.5, 0.5], [0.5, 3.5]] has a closed-form spectrum
        let d = [1.0, 3.0];
        let z = [1.0, 1.0];
        let rho = 0.5;
        let tr = 5.0f64;
        let det = 1.5 * 3.5 - 0.25;
        let disc = (tr * tr / 4.0 - det).sqrt();
        let exact = [tr / 2.0 - disc, tr / 2.0 + disc];
        let roots = solve_all(&d, &z, rho);
        for k in 0..2 {
            assert!((roots[k].value(&d) - exact[k]).abs() < 1e-13);
        }
    }

    #[test]
    fn tiny_gaps_stay_bracketed() {
        let d = [0.0, 1e-13, 2e-13, 1.0];
        let z = [0.1, 0.1, 0.1, 0.1];
        let rho = 2.0;
        let roots = solve_all(&d, &z, rho);
        for (k, r) in roots.iter().enumerate().take(3) {
            let lam = r.value(&d);
            assert!(lam >= d[k] && lam <= d[k + 1], "root {k} escaped its gap");
        }
    }

    #[test]
    fn refined_z_reproduces_input_on_clean_problem() {
        // In exact arithmetic z̃ == z; check close agreement.
        let d = [0.0, 0.7, 1.9, 3.1, 4.8];
        let z = [0.4, -0.2, 0.6, 0.3, -0.5];
        let rho = 0.9;
        let roots = solve_all(&d, &z, rho);
        let zt = refine_z(&d, rho, &roots, &z);
        for i in 0..5 {
            assert!(
                (zt[i] - z[i]).abs() < 1e-9,
                "z̃[{i}] = {} vs {}",
                zt[i],
                z[i]
            );
        }
    }

    #[test]
    fn eigenvectors_orthogonal_with_clusters() {
        let d = [0.0, 1e-7, 2e-7, 1.0, 2.0];
        let z = [0.3, 0.4, 0.2, 0.5, 0.1];
        let rho = 1.7;
        let roots = solve_all(&d, &z, rho);
        let zt = refine_z(&d, rho, &roots, &z);
        let vs: Vec<Vec<f64>> = roots.iter().map(|r| eigenvector(&d, &zt, r)).collect();
        for a in 0..5 {
            for b in 0..a {
                let dot: f64 = vs[a].iter().zip(&vs[b]).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-12, "⟨v{a}, v{b}⟩ = {dot}");
            }
        }
    }

    #[test]
    fn single_pole() {
        let d = [2.0];
        let z = [0.5];
        let rho = 4.0;
        let roots = solve_all(&d, &z, rho);
        assert!((roots[0].value(&d) - (2.0 + 4.0 * 0.25)).abs() < 1e-12);
    }
}
