//! Pal–Walker–Kahan square-root-free QL iteration — the algorithm behind
//! LAPACK's `dsterf` (eigenvalues only, no vectors).
//!
//! Works on the **squares** of the off-diagonals, so the inner loop does
//! one division instead of the `hypot`-based rotation that
//! [`crate::steqr`] pays per element; this is the classical fast path for
//! the "eigenvalues only" mode of Figure 16. Kept alongside the
//! rotation-based QL as an independent implementation of the same
//! operator — the test suite cross-checks them against each other.
//!
//! The recurrence is transcribed from `dsterf`'s QL branch (variables
//! `c, s, p, γ` with `e2 = e²`).

use crate::EigenError;
use tg_matrix::Tridiagonal;

const MAX_IT: usize = 60;

/// All eigenvalues of a symmetric tridiagonal matrix, ascending,
/// via the PWK square-root-free QL iteration.
pub fn sterf_pwk(t: &Tridiagonal) -> Result<Vec<f64>, EigenError> {
    let n = t.n();
    if n <= 1 {
        return Ok(t.d.clone());
    }
    let mut d = t.d.clone();
    // e2[i] = e[i]², padded with a scratch slot
    let mut e2: Vec<f64> = t.e.iter().map(|x| x * x).collect();
    e2.push(0.0);
    let eps2 = f64::EPSILON * f64::EPSILON;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // find a negligible squared off-diagonal at or beyond l
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e2[m] <= eps2 * dd * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_IT {
                return Err(EigenError::NoConvergence { index: l });
            }

            // shift (dsterf's QL branch)
            let rte = e2[l].sqrt();
            let mut sigma = (d[l + 1] - d[l]) / (2.0 * rte);
            let r = sigma.hypot(1.0);
            sigma = d[l] - rte / (sigma + r.copysign(sigma));

            // square-root-free inner loop (dsterf order: the rotation
            // (c, s) is refreshed from (p, bb) *before* the γ recurrence)
            let mut c = 1.0f64;
            let mut s = 0.0f64;
            let mut gamma = d[m] - sigma;
            let mut p = gamma * gamma;
            for i in (l..m).rev() {
                let bb = e2[i];
                let r = p + bb;
                if i + 1 != m {
                    e2[i + 1] = s * r;
                }
                let oldc = c;
                c = p / r;
                s = bb / r;
                let oldgam = gamma;
                let alpha = d[i];
                gamma = c * (alpha - sigma) - s * oldgam;
                d[i + 1] = oldgam + (alpha - gamma);
                if c != 0.0 {
                    p = gamma * gamma / c;
                } else {
                    p = oldc * bb;
                }
            }
            e2[l] = s * p;
            d[l] = sigma + gamma;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    #[test]
    fn matches_rotation_ql() {
        for seed in 0..8u64 {
            let t = gen::random_tridiagonal(40, seed);
            let a = sterf_pwk(&t).unwrap();
            let b = crate::sterf(&t).unwrap();
            let scale = b.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() < 1e-12 * scale * 40.0,
                    "seed {seed}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn laplacian_exact() {
        let n = 50;
        let t = gen::laplacian_1d(n);
        let eigs = sterf_pwk(&t).unwrap();
        let exact = gen::laplacian_1d_eigs(n);
        assert!(tg_matrix::norms::spectrum_error(&exact, &eigs) < 1e-12);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(sterf_pwk(&Tridiagonal::new(vec![], vec![]))
            .unwrap()
            .is_empty());
        assert_eq!(
            sterf_pwk(&Tridiagonal::new(vec![2.0], vec![])).unwrap(),
            vec![2.0]
        );
        let e = sterf_pwk(&Tridiagonal::new(vec![0.0, 0.0], vec![3.0])).unwrap();
        assert!((e[0] + 3.0).abs() < 1e-13 && (e[1] - 3.0).abs() < 1e-13);
    }

    #[test]
    fn wilkinson_pairs() {
        let t = gen::wilkinson(21);
        let a = sterf_pwk(&t).unwrap();
        let b = crate::sterf(&t).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_offdiagonals_passthrough() {
        let t = Tridiagonal::new(vec![3.0, 1.0, 2.0, -1.0], vec![0.0, 0.0, 0.0]);
        let e = sterf_pwk(&t).unwrap();
        assert_eq!(e, vec![-1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn glued_clusters() {
        let t = gen::glued(12, 3, 1e-11);
        let a = sterf_pwk(&t).unwrap();
        let b = crate::sterf(&t).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}
