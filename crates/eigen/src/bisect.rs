//! Bisection eigenvalues + inverse-iteration eigenvectors
//! (`dstebz`/`dstein` analogues).
//!
//! Independent of both the QL iteration and divide & conquer, this solver
//! is the workspace's *verification oracle*: it computes eigenvalues from
//! Sturm counts alone (guaranteed bracketing, no iteration-convergence
//! questions) and eigenvectors by shifted tridiagonal inverse iteration.
//! It also enables spectrum slicing — computing only eigenvalues
//! `index lo..hi` or inside an interval.

use tg_matrix::Tridiagonal;

/// Computes eigenvalues `index_lo..index_hi` (0-based, half-open, ascending
/// order) by Sturm-count bisection, each to absolute accuracy
/// `~2·ε·max(|λ|, ‖T‖)`.
pub fn eigenvalues_by_index(t: &Tridiagonal, index_lo: usize, index_hi: usize) -> Vec<f64> {
    let n = t.n();
    assert!(index_lo <= index_hi && index_hi <= n);
    if index_lo == index_hi {
        return Vec::new();
    }
    let (glo, ghi) = t.gershgorin();
    let scale = glo.abs().max(ghi.abs()).max(f64::MIN_POSITIVE);
    let pad = 2.0 * f64::EPSILON * scale + f64::MIN_POSITIVE;
    (index_lo..index_hi)
        .map(|k| bisect_kth(t, k, glo - pad, ghi + pad))
        .collect()
}

/// All eigenvalues, ascending.
pub fn eigenvalues(t: &Tridiagonal) -> Vec<f64> {
    eigenvalues_by_index(t, 0, t.n())
}

/// Eigenvalues inside the half-open interval `(lo, hi]`, ascending.
pub fn eigenvalues_in_interval(t: &Tridiagonal, lo: f64, hi: f64) -> Vec<f64> {
    assert!(lo <= hi);
    let c_lo = t.sturm_count(lo);
    let c_hi = t.sturm_count(hi);
    eigenvalues_by_index(t, c_lo, c_hi)
}

/// Bisects for the `k`-th (0-based) eigenvalue in `[lo, hi]`.
fn bisect_kth(t: &Tridiagonal, k: usize, mut lo: f64, mut hi: f64) -> f64 {
    debug_assert!(t.sturm_count(lo) <= k && t.sturm_count(hi) > k);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // interval collapsed to adjacent floats
        }
        if t.sturm_count(mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 2.0 * f64::EPSILON * (lo.abs().max(hi.abs())) + f64::MIN_POSITIVE {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Inverse iteration for the eigenvector of an isolated eigenvalue `lambda`
/// (`dstein`-style, with a perturbed shift and Gaussian elimination with
/// partial pivoting on the shifted tridiagonal matrix).
///
/// For tightly clustered eigenvalues the returned vectors are
/// re-orthogonalized against `prev` (vectors already computed in the same
/// cluster).
pub fn inverse_iteration(t: &Tridiagonal, lambda: f64, prev: &[Vec<f64>]) -> Vec<f64> {
    let n = t.n();
    assert!(n > 0);
    if n == 1 {
        return vec![1.0];
    }
    let norm =
        t.d.iter()
            .chain(t.e.iter())
            .fold(0.0f64, |m, &x| m.max(x.abs()))
            .max(f64::MIN_POSITIVE);
    // tiny random-ish perturbation so (T − λI) is not exactly singular
    let shift = lambda + norm * f64::EPSILON;
    let mut v: Vec<f64> = (0..n)
        .map(|i| 0.5 + ((i * 2654435761) % 1024) as f64 / 1024.0)
        .collect();
    normalize(&mut v);
    for _ in 0..5 {
        solve_shifted(t, shift, &mut v);
        for p in prev {
            let dot: f64 = v.iter().zip(p).map(|(a, b)| a * b).sum();
            for (vi, pi) in v.iter_mut().zip(p) {
                *vi -= dot * pi;
            }
        }
        normalize(&mut v);
    }
    v
}

/// Full eigendecomposition via bisection + inverse iteration.
/// Returns `(eigenvalues ascending, eigenvectors as columns)`.
pub fn bisect_evd(t: &Tridiagonal) -> (Vec<f64>, tg_matrix::Mat) {
    let n = t.n();
    let eigs = eigenvalues(t);
    let mut vecs = tg_matrix::Mat::zeros(n, n);
    let norm =
        t.d.iter()
            .chain(t.e.iter())
            .fold(0.0f64, |m, &x| m.max(x.abs()))
            .max(f64::MIN_POSITIVE);
    let cluster_tol = 1e-7 * norm;
    let mut cluster: Vec<Vec<f64>> = Vec::new();
    for k in 0..n {
        if k > 0 && eigs[k] - eigs[k - 1] > cluster_tol {
            cluster.clear();
        }
        let v = inverse_iteration(t, eigs[k], &cluster);
        vecs.col_mut(k).copy_from_slice(&v);
        cluster.push(v);
    }
    (eigs, vecs)
}

/// Solves `(T − σI) x = v` in place by LU with partial pivoting on the
/// tridiagonal structure (fill-in limited to the second superdiagonal).
fn solve_shifted(t: &Tridiagonal, sigma: f64, v: &mut [f64]) {
    let n = t.n();
    // diag, super1, super2, sub (working copies)
    let mut dd: Vec<f64> = t.d.iter().map(|&x| x - sigma).collect();
    let mut du: Vec<f64> = t.e.clone();
    let mut du2 = vec![0.0f64; n.saturating_sub(2)];
    let mut dl: Vec<f64> = t.e.clone();

    let tiny = f64::MIN_POSITIVE.sqrt();
    // factorization with partial pivoting (dgttrf-style), applying the
    // permutations and multipliers directly to the right-hand side
    for i in 0..n - 1 {
        if dd[i].abs() >= dl[i].abs() {
            // no row interchange
            let piv = if dd[i].abs() > tiny {
                dd[i]
            } else {
                tiny.copysign(dd[i])
            };
            let m = dl[i] / piv;
            dd[i + 1] -= m * du[i];
            v[i + 1] -= m * v[i];
            if i + 2 < n {
                // du2 stays zero in this branch
            }
            dl[i] = 0.0;
        } else {
            // swap rows i and i+1
            let m = dd[i] / dl[i];
            dd[i] = dl[i];
            let tmp = dd[i + 1];
            dd[i + 1] = du[i] - m * tmp;
            du[i] = tmp;
            if i + 2 < n {
                du2[i] = du[i + 1];
                du[i + 1] = -m * du2[i];
            }
            v.swap(i, i + 1);
            v[i + 1] -= m * v[i];
            dl[i] = 0.0;
        }
    }
    // back substitution with the (up to) two superdiagonals
    let last = n - 1;
    let piv = if dd[last].abs() > tiny {
        dd[last]
    } else {
        tiny.copysign(dd[last])
    };
    v[last] /= piv;
    if n >= 2 {
        let i = n - 2;
        let mut num = v[i] - du[i] * v[i + 1];
        let piv = if dd[i].abs() > tiny {
            dd[i]
        } else {
            tiny.copysign(dd[i])
        };
        v[i] = num / piv;
        for i in (0..n.saturating_sub(2)).rev() {
            num = v[i] - du[i] * v[i + 1] - du2[i] * v[i + 2];
            let piv = if dd[i].abs() > tiny {
                dd[i]
            } else {
                tiny.copysign(dd[i])
            };
            v[i] = num / piv;
        }
    }
}

fn normalize(v: &mut [f64]) {
    let nrm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if nrm > 0.0 {
        for x in v.iter_mut() {
            *x /= nrm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    #[test]
    fn laplacian_exact() {
        for n in [2usize, 7, 33, 64] {
            let t = gen::laplacian_1d(n);
            let eigs = eigenvalues(&t);
            let exact = gen::laplacian_1d_eigs(n);
            assert!(
                tg_matrix::norms::spectrum_error(&exact, &eigs) < 1e-12,
                "n = {n}"
            );
        }
    }

    #[test]
    fn agrees_with_sterf() {
        let t = gen::random_tridiagonal(50, 3);
        let bis = eigenvalues(&t);
        let ql = crate::sterf(&t).unwrap();
        for (a, b) in bis.iter().zip(&ql) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn index_slicing() {
        let t = gen::random_tridiagonal(40, 5);
        let all = eigenvalues(&t);
        let slice = eigenvalues_by_index(&t, 10, 20);
        assert_eq!(slice.len(), 10);
        for (i, &v) in slice.iter().enumerate() {
            assert!((v - all[10 + i]).abs() < 1e-10);
        }
    }

    #[test]
    fn interval_slicing() {
        let t = gen::laplacian_1d(32);
        // boundaries chosen between eigenvalues (λ = 1.0 and 3.0 are exact
        // spectrum points of the Laplacian at n = 32, so avoid them)
        let inside = eigenvalues_in_interval(&t, 0.93, 3.07);
        let all = gen::laplacian_1d_eigs(32);
        let expect: Vec<f64> = all.into_iter().filter(|&x| x > 0.93 && x <= 3.07).collect();
        assert_eq!(inside.len(), expect.len());
        for (a, b) in inside.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_iteration_residual() {
        let n = 30;
        let t = gen::random_tridiagonal(n, 9);
        let eigs = eigenvalues(&t);
        let dense = t.to_dense();
        // a well-separated eigenvalue (max gap)
        let k = (1..n)
            .max_by(|&a, &b| {
                let ga = eigs[a] - eigs[a - 1];
                let gb = eigs[b] - eigs[b - 1];
                ga.partial_cmp(&gb).unwrap()
            })
            .unwrap();
        let v = inverse_iteration(&t, eigs[k], &[]);
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += dense[(i, j)] * v[j];
            }
            assert!((s - eigs[k] * v[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn full_evd_orthogonal_with_clusters() {
        // glued matrix: clustered eigenvalues stress re-orthogonalization
        let t = gen::glued(10, 3, 1e-10);
        let (eigs, v) = bisect_evd(&t);
        assert!(eigs.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            tg_matrix::orthogonality_residual(&v) < 1e-8,
            "{}",
            tg_matrix::orthogonality_residual(&v)
        );
    }

    #[test]
    fn cross_check_stedc() {
        let t = gen::random_tridiagonal(64, 17);
        let (e1, _) = bisect_evd(&t);
        let (e2, _) = crate::stedc(&t).unwrap();
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn single_element() {
        let t = Tridiagonal::new(vec![4.2], vec![]);
        assert!((eigenvalues(&t)[0] - 4.2).abs() < 1e-14);
        let (_, v) = bisect_evd(&t);
        assert_eq!(v[(0, 0)].abs(), 1.0);
    }
}
