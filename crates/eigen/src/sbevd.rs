//! Eigensolver for symmetric **band** matrices (`dsbevd` analogue).
//!
//! When the input is already banded, stage 1 of the two-stage reduction is
//! free: go straight to bulge chasing, then divide & conquer, then the
//! (blocked) bulge-chasing back transformation. This is the natural entry
//! point for finite-difference/tight-binding operators, which are banded
//! by construction.

use crate::dc::stedc;
use crate::steqr::sterf;
use crate::{EigenError, Evd};
use tg_matrix::SymBand;
use tridiag_core::bulge_chase_pipelined;

/// Computes eigenvalues (ascending) and optionally eigenvectors of a
/// symmetric band matrix via pipelined bulge chasing + divide & conquer.
///
/// `parallel_sweeps` is the Algorithm-2 sweep concurrency (1 = sequential
/// order on one worker).
///
/// ```
/// use tg_eigen::sbevd::sbevd;
/// use tg_matrix::{gen, SymBand};
///
/// let dense = gen::random_symmetric_band(24, 3, 1);
/// let band = SymBand::from_dense_lower(&dense, 3);
/// let evd = sbevd(&band, 4, true).unwrap();
/// assert!(evd.residual(&dense) < 1e-11);
/// ```
pub fn sbevd(
    band: &SymBand,
    parallel_sweeps: usize,
    want_vectors: bool,
) -> Result<Evd, EigenError> {
    let bc = bulge_chase_pipelined(band, parallel_sweeps.max(1));
    if !want_vectors {
        return Ok(Evd {
            eigenvalues: sterf(&bc.tri)?,
            eigenvectors: None,
        });
    }
    let (eigenvalues, mut v) = stedc(&bc.tri)?;
    // back transformation: V ← Q₂ V with the sweep-blocked factors
    bc.apply_q_left_blocked(&mut v, false);
    Ok(Evd {
        eigenvalues,
        eigenvectors: Some(v),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual};

    #[test]
    fn band_evd_contract() {
        for (n, b, seed) in [(20usize, 2usize, 1u64), (33, 4, 2), (28, 7, 3)] {
            let dense = gen::random_symmetric_band(n, b, seed);
            let band = SymBand::from_dense_lower(&dense, b);
            let evd = sbevd(&band, 4, true).unwrap();
            assert!(evd.residual(&dense) < 1e-11, "n={n} b={b}");
            assert!(
                orthogonality_residual(evd.eigenvectors.as_ref().unwrap()) < 1e-11,
                "n={n} b={b}"
            );
            assert!(evd.eigenvalues.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn matches_dense_pipeline() {
        let n = 26;
        let b = 3;
        let dense = gen::random_symmetric_band(n, b, 9);
        let band = SymBand::from_dense_lower(&dense, b);
        let banded = sbevd(&band, 2, false).unwrap();
        let full = crate::syevd(
            &mut dense.clone(),
            &crate::EvdMethod::CusolverLike { nb: 4 },
            false,
        )
        .unwrap();
        for (x, y) in banded.eigenvalues.iter().zip(&full.eigenvalues) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn tridiagonal_band_shortcut() {
        // bandwidth 1: no bulge chasing at all, straight to D&C
        let t = gen::laplacian_1d(32);
        let band = SymBand::from_dense_lower(&t.to_dense(), 1);
        let evd = sbevd(&band, 1, false).unwrap();
        let exact = gen::laplacian_1d_eigs(32);
        assert!(tg_matrix::norms::spectrum_error(&exact, &evd.eigenvalues) < 1e-12);
    }

    #[test]
    fn tight_binding_workload() {
        // 2-D-ish workload: pentadiagonal operator with disorder
        let n = 40;
        let mut dense = gen::random_symmetric_band(n, 2, 17);
        for i in 0..n {
            dense[(i, i)] += 4.0; // shift to diagonal dominance
        }
        let band = SymBand::from_dense_lower(&dense, 2);
        let evd = sbevd(&band, 8, true).unwrap();
        assert!(evd.residual(&dense) < 1e-11);
        assert!(evd.eigenvalues[0] > 0.0, "diagonally dominant ⇒ SPD-ish");
    }
}
