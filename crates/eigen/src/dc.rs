//! Cuppen's divide & conquer for the symmetric tridiagonal eigenproblem
//! (`dstedc` analogue) — the iterative method the paper couples with its
//! tridiagonalization for end-to-end EVD (§6.2).
//!
//! Splitting: `T = diag(T₁, T₂) + β q qᵀ` with `q = e_m + e_{m+1}`, where
//! the halves get `β` subtracted from the boundary diagonals. After the
//! children are solved, the merge solves `D + ρ z zᵀ`:
//!
//! 1. deflation — negligible `z` components pass through unchanged, and
//!    (near-)equal `d` pairs are rotated together (Givens) so one of them
//!    deflates,
//! 2. the secular equation gives the non-deflated eigenvalues
//!    ([`crate::secular`]),
//! 3. the Gu–Eisenstat `z̃` reconstruction gives numerically orthogonal
//!    eigenvectors, and one GEMM maps them back through the children's `Q`.
//!
//! The two children are solved in parallel with `rayon::join`.

use crate::secular;
use crate::steqr::steqr;
use crate::EigenError;
use tg_blas::{gemm, Op};
use tg_matrix::{Mat, Tridiagonal};

/// Below this size the base-case QL iteration is used (LAPACK's `SMLSIZ`).
pub const SMLSIZ: usize = 24;

/// Computes all eigenvalues (ascending) and eigenvectors of a symmetric
/// tridiagonal matrix by divide & conquer.
///
/// ```
/// use tg_eigen::stedc;
/// use tg_matrix::gen;
///
/// let t = gen::laplacian_1d(40);
/// let (eigs, v) = stedc(&t).unwrap();
/// let exact = gen::laplacian_1d_eigs(40);
/// assert!(tg_matrix::norms::spectrum_error(&exact, &eigs) < 1e-12);
/// assert!(tg_matrix::orthogonality_residual(&v) < 1e-12);
/// ```
pub fn stedc(t: &Tridiagonal) -> Result<(Vec<f64>, Mat), EigenError> {
    let n = t.n();
    if n == 0 {
        return Ok((Vec::new(), Mat::zeros(0, 0)));
    }
    // Region-mark only the top-level split: the recursion below it reuses
    // the same two rayon workers, so deeper joins add no parallelism worth
    // a lane of their own in the timeline.
    let region = tg_trace::RegionId::fresh();
    let _rspan = tg_trace::span_region("parallel.dc", "region", Some(("n", n as u64)), region);
    dc_solve(&t.d, &t.e, region)
}

fn dc_solve(
    d: &[f64],
    e: &[f64],
    region: Option<tg_trace::RegionId>,
) -> Result<(Vec<f64>, Mat), EigenError> {
    let n = d.len();
    if n <= SMLSIZ {
        return steqr(&Tridiagonal::new(d.to_vec(), e.to_vec()));
    }
    let m = n / 2;
    let beta = e[m - 1];

    // children with rank-one-corrected boundary diagonals
    let mut d1 = d[..m].to_vec();
    d1[m - 1] -= beta;
    let e1 = e[..m - 1].to_vec();
    let mut d2 = d[m..].to_vec();
    d2[0] -= beta;
    let e2 = e[m..].to_vec();

    let (left, right) = rayon::join(
        || {
            let _t = region.is_some().then(|| {
                tg_trace::span_region("task.dc_half", "task", Some(("m", m as u64)), region)
            });
            dc_solve(&d1, &e1, None)
        },
        || {
            let _t = region.is_some().then(|| {
                tg_trace::span_region("task.dc_half", "task", Some(("m", (n - m) as u64)), region)
            });
            dc_solve(&d2, &e2, None)
        },
    );
    let (lam1, q1) = left?;
    let (lam2, q2) = right?;

    // block-diagonal Q, concatenated spectra, and the coupling vector
    // z = Qᵀ q = [last row of Q₁ ; first row of Q₂]
    let mut q = Mat::zeros(n, n);
    q.view_mut(0, 0, m, m).copy_from(&q1.as_ref());
    q.view_mut(m, m, n - m, n - m).copy_from(&q2.as_ref());
    let mut dd = Vec::with_capacity(n);
    dd.extend_from_slice(&lam1);
    dd.extend_from_slice(&lam2);
    let mut z = Vec::with_capacity(n);
    for j in 0..m {
        z.push(q1[(m - 1, j)]);
    }
    for j in 0..(n - m) {
        z.push(q2[(0, j)]);
    }

    merge(dd, z, beta, q)
}

/// Solves `D + ρ z zᵀ` given the accumulated `Q` (eigenvectors returned are
/// `Q`-transformed). Consumes and returns sorted output.
fn merge(
    mut d: Vec<f64>,
    mut z: Vec<f64>,
    rho_in: f64,
    q: Mat,
) -> Result<(Vec<f64>, Mat), EigenError> {
    let n = d.len();
    if rho_in == 0.0 {
        return Ok(sort_pairs(d, q));
    }
    // flip the problem so ρ > 0 (eigenvectors are unchanged under negation)
    let flip = rho_in < 0.0;
    let mut rho = rho_in;
    if flip {
        for di in &mut d {
            *di = -*di;
        }
        rho = -rho;
    }
    // normalize ‖z‖ = 1 (fold the norm into ρ) for scale-free tolerances
    let znorm2: f64 = z.iter().map(|x| x * x).sum();
    if znorm2 > 0.0 {
        let zn = znorm2.sqrt();
        for zi in &mut z {
            *zi /= zn;
        }
        rho *= znorm2;
    }

    // sort d ascending; `cols[p]` maps position → column of q
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let ds: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let zs: Vec<f64> = order.iter().map(|&i| z[i]).collect();
    let mut qs = Mat::zeros(n, n);
    for (p, &i) in order.iter().enumerate() {
        qs.col_mut(p).copy_from_slice(q.col(i));
    }
    let mut d = ds;
    let mut z = zs;
    let mut q = qs;

    // ── deflation
    let dmax = d.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    let tol = 8.0 * f64::EPSILON * dmax.max(rho);
    let mut active: Vec<usize> = Vec::with_capacity(n);
    let mut deflated: Vec<usize> = Vec::new();
    for i in 0..n {
        if rho * z[i].abs() <= tol {
            // negligible coupling: (d_i, q_i) is already an eigenpair
            deflated.push(i);
            continue;
        }
        if let Some(&last) = active.last() {
            if d[i] - d[last] <= tol {
                // near-equal eigenvalues: rotate z_i into z_last
                let r = z[last].hypot(z[i]);
                let c = z[last] / r;
                let s = z[i] / r;
                z[last] = r;
                z[i] = 0.0;
                // rotate the two Q columns
                for row in 0..n {
                    let a = q[(row, last)];
                    let b = q[(row, i)];
                    q[(row, last)] = c * a + s * b;
                    q[(row, i)] = -s * a + c * b;
                }
                // rotate the 2×2 diagonal block; the off-diagonal (≤ tol)
                // is dropped
                let (dl, di) = (d[last], d[i]);
                d[last] = c * c * dl + s * s * di;
                d[i] = s * s * dl + c * c * di;
                deflated.push(i);
                continue;
            }
        }
        active.push(i);
    }

    let a = active.len();
    let mut eigenvalues = vec![0.0; n];
    let mut vectors = Mat::zeros(n, n);

    if a > 0 {
        let d_act: Vec<f64> = active.iter().map(|&i| d[i]).collect();
        let z_act: Vec<f64> = active.iter().map(|&i| z[i]).collect();
        let roots = secular::solve_all(&d_act, &z_act, rho);
        let zt = secular::refine_z(&d_act, rho, &roots, &z_act);
        // secular eigenvectors, then one GEMM through the active Q columns
        let mut v = Mat::zeros(a, a);
        for (k, root) in roots.iter().enumerate() {
            let vk = secular::eigenvector(&d_act, &zt, root);
            v.col_mut(k).copy_from_slice(&vk);
        }
        let mut q_act = Mat::zeros(n, a);
        for (p, &i) in active.iter().enumerate() {
            q_act.col_mut(p).copy_from_slice(q.col(i));
        }
        let mut new_vecs = Mat::zeros(n, a);
        gemm(
            1.0,
            &q_act.as_ref(),
            Op::NoTrans,
            &v.as_ref(),
            Op::NoTrans,
            0.0,
            &mut new_vecs.as_mut(),
        );
        for k in 0..a {
            eigenvalues[k] = roots[k].value(&d_act);
            vectors.col_mut(k).copy_from_slice(new_vecs.col(k));
        }
    }
    for (p, &i) in deflated.iter().enumerate() {
        eigenvalues[a + p] = d[i];
        vectors.col_mut(a + p).copy_from_slice(q.col(i));
    }

    if flip {
        for ev in &mut eigenvalues {
            *ev = -*ev;
        }
    }
    Ok(sort_pairs(eigenvalues, vectors))
}

/// Sorts `(values, vector columns)` ascending by value.
fn sort_pairs(values: Vec<f64>, vecs: Mat) -> (Vec<f64>, Mat) {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&x, &y| values[x].partial_cmp(&values[y]).unwrap());
    let sorted: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
    let mut out = Mat::zeros(vecs.nrows(), n);
    for (p, &i) in idx.iter().enumerate() {
        out.col_mut(p).copy_from_slice(vecs.col(i));
    }
    (sorted, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual};

    fn check_tridiagonal(t: &Tridiagonal, tol: f64) {
        let n = t.n();
        let (eigs, v) = stedc(t).unwrap();
        assert!(eigs.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        assert!(
            orthogonality_residual(&v) < tol,
            "eigenvectors not orthogonal: {}",
            orthogonality_residual(&v)
        );
        // residual ‖T v_k − λ_k v_k‖∞
        let dense = t.to_dense();
        let scale = eigs.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for (k, &lam) in eigs.iter().enumerate() {
            let vk = v.col(k);
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += dense[(i, j)] * vk[j];
                }
                assert!(
                    (s - lam * vk[i]).abs() < tol * scale * n as f64,
                    "residual at row {i}, pair {k}"
                );
            }
        }
    }

    #[test]
    fn matches_steqr_small() {
        // below SMLSIZ: identical to the base case
        let t = gen::random_tridiagonal(10, 1);
        let (e1, _) = stedc(&t).unwrap();
        let (e2, _) = steqr(&t).unwrap();
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn laplacian_exact() {
        for n in [40usize, 65, 100] {
            let t = gen::laplacian_1d(n);
            let (eigs, _) = stedc(&t).unwrap();
            let exact = gen::laplacian_1d_eigs(n);
            assert!(
                tg_matrix::norms::spectrum_error(&exact, &eigs) < 1e-12,
                "n = {n}"
            );
        }
    }

    #[test]
    fn random_tridiagonal_contract() {
        check_tridiagonal(&gen::random_tridiagonal(60, 3), 1e-11);
        check_tridiagonal(&gen::random_tridiagonal(97, 4), 1e-11);
    }

    #[test]
    fn wilkinson_close_pairs() {
        check_tridiagonal(&gen::wilkinson(51), 1e-11);
    }

    #[test]
    fn glued_heavy_deflation() {
        // tiny couplings ⇒ massive deflation in every merge
        check_tridiagonal(&gen::glued(20, 4, 1e-12), 1e-10);
    }

    #[test]
    fn zero_couplings_block_diagonal() {
        let mut t = gen::random_tridiagonal(50, 7);
        t.e[24] = 0.0; // exact split at the D&C midpoint
        check_tridiagonal(&t, 1e-11);
    }

    #[test]
    fn negative_rho_branch() {
        // force e[m-1] < 0 at the top merge
        let mut t = gen::random_tridiagonal(40, 9);
        t.e[19] = -0.8;
        check_tridiagonal(&t, 1e-11);
    }

    #[test]
    fn identical_diagonal_full_deflation() {
        // d all equal, e small: merges deflate almost everything
        let n = 40;
        let t = Tridiagonal::new(vec![3.0; n], vec![1e-14; n - 1]);
        let (eigs, v) = stedc(&t).unwrap();
        assert!(orthogonality_residual(&v) < 1e-12);
        for &e in &eigs {
            assert!((e - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn against_sturm_counts() {
        let t = gen::random_tridiagonal(80, 11);
        let (eigs, _) = stedc(&t).unwrap();
        for (k, &lam) in eigs.iter().enumerate().step_by(7) {
            assert!(t.sturm_count(lam - 1e-7) <= k);
            assert!(t.sturm_count(lam + 1e-7) > k);
        }
    }
}
