//! Cyclic Jacobi eigenvalue iteration for dense symmetric matrices —
//! one of the classical methods the paper's §7.2 surveys.
//!
//! Jacobi needs no tridiagonalization at all, which makes it a fully
//! independent cross-check for the reduction-based pipelines (at `O(n³)`
//! per sweep and typically `O(log n)` sweeps it is not competitive, which
//! is exactly why the two-stage reduction exists).

use crate::EigenError;
use tg_matrix::Mat;

/// Maximum Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 30;

/// Computes all eigenvalues (ascending) and eigenvectors of a dense
/// symmetric matrix by the cyclic Jacobi method.
pub fn jacobi_evd(a: &Mat) -> Result<(Vec<f64>, Mat), EigenError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut m = a.clone();
    let mut v = Mat::identity(n);
    if n <= 1 {
        return Ok(((0..n).map(|i| m[(i, i)]).collect(), v));
    }

    let norm = tg_matrix::frob_norm(&m).max(f64::MIN_POSITIVE);
    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for q in 1..n {
            for p in 0..q {
                off += 2.0 * m[(q, p)] * m[(q, p)];
            }
        }
        if off.sqrt() <= 1e-15 * norm * n as f64 {
            break;
        }
        if sweep == MAX_SWEEPS - 1 {
            return Err(EigenError::NoConvergence { index: 0 });
        }
        for q in 1..n {
            for p in 0..q {
                let apq = m[(q, p)];
                if apq == 0.0 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // rotation annihilating (p, q): standard stable formulas
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                apply_rotation(&mut m, p, q, c, s);
                // accumulate into V (columns p and q)
                for r in 0..n {
                    let vp = v[(r, p)];
                    let vq = v[(r, q)];
                    v[(r, p)] = c * vp - s * vq;
                    v[(r, q)] = s * vp + c * vq;
                }
            }
        }
    }

    // sort ascending
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&x, &y| m[(x, x)].partial_cmp(&m[(y, y)]).unwrap());
    let eigs: Vec<f64> = idx.iter().map(|&i| m[(i, i)]).collect();
    let mut vs = Mat::zeros(n, n);
    for (k, &i) in idx.iter().enumerate() {
        vs.col_mut(k).copy_from_slice(v.col(i));
    }
    Ok((eigs, vs))
}

/// Applies the two-sided rotation `J(p,q)ᵀ M J(p,q)` updating the full
/// symmetric matrix (both triangles kept consistent).
fn apply_rotation(m: &mut Mat, p: usize, q: usize, c: f64, s: f64) {
    let n = m.nrows();
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(q, p)];
    for r in 0..n {
        if r == p || r == q {
            continue;
        }
        let arp = m[(r, p)];
        let arq = m[(r, q)];
        let new_rp = c * arp - s * arq;
        let new_rq = s * arp + c * arq;
        m[(r, p)] = new_rp;
        m[(p, r)] = new_rp;
        m[(r, q)] = new_rq;
        m[(q, r)] = new_rq;
    }
    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(q, p)] = 0.0;
    m[(p, q)] = 0.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual};

    #[test]
    fn known_spectrum() {
        let eigs = [1.0, 2.0, 5.0, -3.0, 0.5];
        let a = gen::with_spectrum(&eigs, 1);
        let (computed, v) = jacobi_evd(&a).unwrap();
        let mut sorted = eigs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (x, y) in computed.iter().zip(&sorted) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(orthogonality_residual(&v) < 1e-13);
    }

    #[test]
    fn agrees_with_two_stage_pipeline() {
        let n = 24;
        let a = gen::random_symmetric(n, 3);
        let (jac, _) = jacobi_evd(&a).unwrap();
        let evd = crate::syevd(
            &mut a.clone(),
            &crate::EvdMethod::Proposed {
                b: 2,
                k: 8,
                parallel_sweeps: 2,
                backtransform_k: 8,
                lookahead: true,
            },
            false,
        )
        .unwrap();
        for (x, y) in jac.iter().zip(&evd.eigenvalues) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn eigenpair_residual() {
        let n = 16;
        let a = gen::random_symmetric(n, 7);
        let (eigs, v) = jacobi_evd(&a).unwrap();
        for (k, &lam) in eigs.iter().enumerate() {
            let vk = v.col(k);
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += a[(i, j)] * vk[j];
                }
                assert!((s - lam * vk[i]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn diagonal_is_fixed_point() {
        let mut d = Mat::zeros(5, 5);
        for i in 0..5 {
            d[(i, i)] = (5 - i) as f64;
        }
        let (eigs, _) = jacobi_evd(&d).unwrap();
        assert_eq!(eigs, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn tiny_sizes() {
        let a0 = Mat::zeros(0, 0);
        assert!(jacobi_evd(&a0).unwrap().0.is_empty());
        let a1 = Mat::from_rows(1, 1, &[2.5]);
        assert_eq!(jacobi_evd(&a1).unwrap().0, vec![2.5]);
        let a2 = Mat::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let (e, _) = jacobi_evd(&a2).unwrap();
        assert!((e[0] + 1.0).abs() < 1e-14 && (e[1] - 1.0).abs() < 1e-14);
    }
}
