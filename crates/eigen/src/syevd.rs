//! Full symmetric EVD drivers (`Dsyevd` analogues) — the three pipelines
//! compared in the paper's §6.2 / Figure 16.
//!
//! Every driver is tridiagonalization + divide & conquer; they differ only
//! in the reduction pipeline and back transformation:
//!
//! | variant | reduction | back transformation |
//! |---|---|---|
//! | [`EvdMethod::CusolverLike`] | direct blocked `sytrd` | reflector product |
//! | [`EvdMethod::MagmaLike`]    | SBR + sequential BC | conventional `ormqr` |
//! | [`EvdMethod::Proposed`]     | DBBR + pipelined BC | Figure-13 blocked `W` |

use crate::dc::stedc;
use crate::steqr::sterf;
use crate::EigenError;
use tg_matrix::Mat;
use tridiag_core::{tridiagonalize_ws, AllocPool, DbbrConfig, Method, WorkspacePool};

/// EVD pipeline selector.
#[derive(Clone, Debug)]
pub enum EvdMethod {
    /// cuSOLVER-style: direct tridiagonalization (`Dsytrd` + `Dstedc`).
    CusolverLike {
        /// Panel width for the blocked reduction.
        nb: usize,
    },
    /// MAGMA-style two-stage (`Dsy2sb` + `Dsb2st` + `Dstedc`), CPU-ordered
    /// bulge chasing (sequential).
    MagmaLike {
        /// Bandwidth.
        b: usize,
    },
    /// The paper's pipeline: DBBR + pipelined bulge chasing + blocked back
    /// transformation.
    Proposed {
        /// Bandwidth (paper: 32).
        b: usize,
        /// `syr2k` accumulation width (paper: 1024).
        k: usize,
        /// Parallel sweeps for bulge chasing.
        parallel_sweeps: usize,
        /// Back-transformation block width (paper: 2048).
        backtransform_k: usize,
        /// Stage-1 depth-1 look-ahead (panel QR overlapped with the
        /// trailing update); bitwise-identical output either way.
        lookahead: bool,
    },
}

impl EvdMethod {
    fn to_tridiag_method(&self) -> Method {
        match self {
            EvdMethod::CusolverLike { nb } => Method::Direct { nb: *nb },
            EvdMethod::MagmaLike { b } => Method::Sbr {
                b: *b,
                parallel_sweeps: 1,
            },
            EvdMethod::Proposed {
                b,
                k,
                parallel_sweeps,
                lookahead,
                ..
            } => {
                let mut cfg = DbbrConfig::new(*b, *k);
                cfg.lookahead = *lookahead;
                Method::Dbbr {
                    cfg,
                    parallel_sweeps: *parallel_sweeps,
                }
            }
        }
    }

    /// Sensible defaults scaled to `n` for the proposed pipeline.
    pub fn proposed_default(n: usize) -> EvdMethod {
        let b = 32.min((n / 8).max(2));
        EvdMethod::Proposed {
            b,
            k: (b * 8).min(1024),
            parallel_sweeps: 4,
            backtransform_k: default_backtransform_k(b, n),
            lookahead: true,
        }
    }
}

/// The default back-transformation merge width for bandwidth `b` on an
/// `n × n` problem — the single source of truth (the paper-default
/// constructor and the test/bench grids previously disagreed: `16b` vs
/// `4b`).
///
/// Tuning rationale: each group of `k/b` width-`b` factors costs
/// `O(n·k²)` extra merge flops to buy apply GEMMs with inner dimension
/// `k` instead of `b`, so `k` should grow with `b` until the merge
/// overhead catches up with the apply savings. `16b` (4 merge levels)
/// sits at the flat top of the `repro backtransform_sweep` curve across
/// the (n, b) grid — by `k = 16b` the apply GEMMs are already square
/// enough that doubling `k` again buys < 5 % while the merge cost keeps
/// doubling. The cap of 2048 is the paper's production width (Figure 13);
/// the clamp to `n` exists because a factor can never act on more than
/// `n` rows — wider targets only zero-pad the merge.
pub fn default_backtransform_k(b: usize, n: usize) -> usize {
    (b * 16).min(2048).min(n.max(1))
}

/// Result of [`syevd`].
#[derive(Clone, Debug)]
pub struct Evd {
    /// Eigenvalues, ascending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors (column `k` pairs with `eigenvalues[k]`), if requested.
    pub eigenvectors: Option<Mat>,
}

impl Evd {
    /// `max_k ‖A v_k − λ_k v_k‖∞ / (n ‖A‖)` — the LAPACK-style eigenpair
    /// residual (test/diagnostic helper, `O(n³)`).
    pub fn residual(&self, a: &Mat) -> f64 {
        let v = self.eigenvectors.as_ref().expect("needs eigenvectors");
        let n = a.nrows();
        let scale = self
            .eigenvalues
            .iter()
            .fold(f64::MIN_POSITIVE, |m, &x| m.max(x.abs()));
        let mut worst = 0.0f64;
        for k in 0..n {
            let vk = v.col(k);
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += a[(i, j)] * vk[j];
                }
                worst = worst.max((s - self.eigenvalues[k] * vk[i]).abs());
            }
        }
        worst / (scale * n as f64)
    }
}

/// Computes the symmetric EVD `A = V Λ Vᵀ`.
///
/// `a` is consumed as workspace (only the lower triangle is referenced).
/// With `want_vectors = false` only eigenvalues are returned (the paper's
/// "eigenvalues only" mode, solved with QL instead of D&C just like
/// `cusolverDnDsyevd` with `CUSOLVER_EIG_MODE_NOVECTOR`).
///
/// ```
/// use tg_eigen::{syevd, EvdMethod};
/// use tg_matrix::gen;
///
/// let eigs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// let a = gen::with_spectrum(&eigs, 3);
/// let evd = syevd(&mut a.clone(), &EvdMethod::proposed_default(8), true).unwrap();
/// for (got, want) in evd.eigenvalues.iter().zip(&eigs) {
///     assert!((got - want).abs() < 1e-10);
/// }
/// assert!(evd.residual(&a) < 1e-11);
/// ```
pub fn syevd(a: &mut Mat, method: &EvdMethod, want_vectors: bool) -> Result<Evd, EigenError> {
    syevd_ws(a, method, want_vectors, &mut AllocPool)
}

/// Like [`syevd`] but draws the reduction's scratch matrices from `pool`
/// (see [`tridiag_core::workspace`]). The output is bitwise-identical to
/// [`syevd`] for any conforming pool; `tg-batch` uses this to reuse
/// workspaces across the problems of a batch.
pub fn syevd_ws(
    a: &mut Mat,
    method: &EvdMethod,
    want_vectors: bool,
    pool: &mut dyn WorkspacePool,
) -> Result<Evd, EigenError> {
    let n = a.nrows();
    let _evd = tg_trace::span_cat("evd", "stage", Some(("n", n as u64)));
    let res = {
        let _span = tg_trace::span("evd.reduce");
        tridiagonalize_ws(a, &method.to_tridiag_method(), pool)
    };
    if !want_vectors {
        let _span = tg_trace::span("evd.solve");
        let mut eigenvalues = sterf(&res.tri)?;
        tg_check::fault::inject("evd.values", &mut eigenvalues);
        check_spectrum(&eigenvalues, &res.tri);
        return Ok(Evd {
            eigenvalues,
            eigenvectors: None,
        });
    }
    let (mut eigenvalues, mut v) = {
        let _span = tg_trace::span("evd.solve");
        stedc(&res.tri)?
    };
    tg_check::fault::inject("evd.values", &mut eigenvalues);
    check_spectrum(&eigenvalues, &res.tri);
    // back transformation: V ← Q V
    {
        let _span = tg_trace::span("evd.backtransform");
        match method {
            // The production path: merge once with pool-backed scratch,
            // then apply panel-parallel (bitwise-identical at every thread
            // count; see `tridiag_core::backtransform`).
            EvdMethod::Proposed {
                backtransform_k, ..
            } => res.apply_q_blocked_ws(&mut v, *backtransform_k, pool),
            _ => res.apply_q(&mut v),
        }
    }
    tg_check::fault::inject_mat("backtransform.q", &mut v);
    if tg_check::deep_enabled() {
        tg_check::stage_orthogonality(&v);
    }
    Ok(Evd {
        eigenvalues,
        eigenvectors: Some(v),
    })
}

/// Spectrum invariant hook: compares the solver's eigenvalues against an
/// independent QL/QR pass (`sterf`) over the same reduced tridiagonal —
/// the oracle the checker treats as ground truth — plus the Gershgorin
/// enclosure. The oracle solve only runs while a check session is live.
fn check_spectrum(eigenvalues: &[f64], tri: &tg_matrix::Tridiagonal) {
    if !tg_check::enabled() {
        return;
    }
    if let Ok(oracle) = sterf(tri) {
        tg_check::stage_spectrum(eigenvalues, &oracle, tri.gershgorin());
    }
}

/// Computes the symmetric EVD of every matrix in `problems` with one call
/// — the *serial reference* for batched execution.
///
/// Problems are solved in order on the calling thread, each through the
/// same single-problem [`syevd`] path (matrices are copied; the inputs are
/// not destroyed). This is the baseline that `tg-batch`'s multi-worker
/// `BatchScheduler` is required to match bitwise, and the serial loop that
/// `repro batch_scaling` compares against. The first error aborts the
/// batch.
pub fn syevd_batched(
    problems: &[Mat],
    method: &EvdMethod,
    want_vectors: bool,
) -> Result<Vec<Evd>, EigenError> {
    let _span = tg_trace::span_cat(
        "evd.batch_serial",
        "batch",
        Some(("count", problems.len() as u64)),
    );
    problems
        .iter()
        .map(|a| syevd(&mut a.clone(), method, want_vectors))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual};

    fn methods(n: usize) -> Vec<EvdMethod> {
        let b = 4.min(n / 4).max(2);
        vec![
            EvdMethod::CusolverLike { nb: 8 },
            EvdMethod::MagmaLike { b },
            EvdMethod::Proposed {
                b,
                k: b * 4,
                parallel_sweeps: 3,
                backtransform_k: default_backtransform_k(b, n),
                lookahead: true,
            },
        ]
    }

    #[test]
    fn known_spectrum_all_methods() {
        let n = 48;
        let eigs: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 7.0).collect();
        let a0 = gen::with_spectrum(&eigs, 3);
        for m in methods(n) {
            let mut a = a0.clone();
            let evd = syevd(&mut a, &m, true).unwrap();
            assert!(
                tg_matrix::norms::spectrum_error(&eigs, &evd.eigenvalues) < 1e-10,
                "{m:?} spectrum"
            );
            let v = evd.eigenvectors.as_ref().unwrap();
            assert!(orthogonality_residual(v) < 1e-11, "{m:?} orthogonality");
            assert!(evd.residual(&a0) < 1e-11, "{m:?} residual");
        }
    }

    #[test]
    fn eigenvalues_only_matches_vector_path() {
        let n = 40;
        let a0 = gen::random_symmetric(n, 8);
        let m = EvdMethod::MagmaLike { b: 3 };
        let e1 = syevd(&mut a0.clone(), &m, false).unwrap().eigenvalues;
        let e2 = syevd(&mut a0.clone(), &m, true).unwrap().eigenvalues;
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn clustered_spectrum_orthogonality() {
        // three tight clusters — stresses deflation + Gu-Eisenstat path
        let n = 45;
        let eigs: Vec<f64> = (0..n)
            .map(|i| (i / 15) as f64 + 1e-10 * (i % 15) as f64)
            .collect();
        let a0 = gen::with_spectrum(&eigs, 9);
        let mut a = a0.clone();
        let evd = syevd(&mut a, &EvdMethod::proposed_default(n), true).unwrap();
        assert!(orthogonality_residual(evd.eigenvectors.as_ref().unwrap()) < 1e-10);
        assert!(evd.residual(&a0) < 1e-10);
    }

    #[test]
    fn batched_serial_matches_singles_bitwise() {
        let n = 24;
        let problems: Vec<Mat> = (0..4).map(|s| gen::random_symmetric(n, 100 + s)).collect();
        let m = EvdMethod::proposed_default(n);
        let batch = syevd_batched(&problems, &m, true).unwrap();
        assert_eq!(batch.len(), problems.len());
        for (a, got) in problems.iter().zip(&batch) {
            let single = syevd(&mut a.clone(), &m, true).unwrap();
            assert_eq!(got.eigenvalues, single.eigenvalues);
            assert_eq!(got.eigenvectors, single.eigenvectors);
        }
    }

    #[test]
    fn spd_positive_eigenvalues() {
        let n = 30;
        let a0 = gen::random_spd(n, 11);
        let mut a = a0.clone();
        let evd = syevd(&mut a, &EvdMethod::CusolverLike { nb: 4 }, false).unwrap();
        assert!(evd.eigenvalues.iter().all(|&x| x > 0.0));
    }
}
