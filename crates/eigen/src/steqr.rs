//! Implicit QL iteration for symmetric tridiagonal matrices —
//! `dsteqr`/`dsterf` analogues (QR algorithm of the paper's §7.2).
//!
//! The implementation follows the classic `tql2` scheme: Wilkinson-shifted
//! implicit QL steps applied blockwise between negligible off-diagonals,
//! with plane rotations optionally accumulated into an eigenvector matrix.

use crate::EigenError;
use tg_matrix::{Mat, Tridiagonal};

const MAX_SWEEPS_PER_EIGENVALUE: usize = 50;

/// Eigenvalues (ascending) of a symmetric tridiagonal matrix, no vectors
/// (`dsterf` analogue).
pub fn sterf(t: &Tridiagonal) -> Result<Vec<f64>, EigenError> {
    let mut d = t.d.clone();
    let mut e = t.e.clone();
    ql_iterate(&mut d, &mut e, None)?;
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(d)
}

/// Eigenvalues (ascending) and eigenvectors of a symmetric tridiagonal
/// matrix (`dsteqr` analogue). Column `k` of the returned matrix is the
/// eigenvector for eigenvalue `k`.
pub fn steqr(t: &Tridiagonal) -> Result<(Vec<f64>, Mat), EigenError> {
    let n = t.n();
    let mut d = t.d.clone();
    let mut e = t.e.clone();
    let mut z = Mat::identity(n);
    ql_iterate(&mut d, &mut e, Some(&mut z))?;
    // sort ascending, permuting vector columns
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let sorted: Vec<f64> = idx.iter().map(|&i| d[i]).collect();
    let mut zs = Mat::zeros(n, n);
    for (kcol, &i) in idx.iter().enumerate() {
        zs.col_mut(kcol).copy_from_slice(z.col(i));
    }
    Ok((sorted, zs))
}

/// Like [`steqr`] but updates a caller-provided matrix `z` (which need not
/// be the identity): on return `z_out = z_in · Q` where `Qᵀ T Q = Λ`.
/// Results are **not** sorted (the caller owns ordering).
pub fn steqr_update(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<(), EigenError> {
    ql_iterate(d, e, Some(z))
}

/// Core implicit-QL iteration. `d` (length n) and `e` (length n−1) are
/// overwritten; `e` ends up ~0. `z`, if given, accumulates rotations from
/// the right (`z.ncols() == n`).
fn ql_iterate(d: &mut [f64], e_io: &mut [f64], mut z: Option<&mut Mat>) -> Result<(), EigenError> {
    let n = d.len();
    if n <= 1 {
        return Ok(());
    }
    assert_eq!(e_io.len(), n - 1);
    if let Some(z) = z.as_deref() {
        assert_eq!(z.ncols(), n);
    }
    let eps = f64::EPSILON;
    // pad e with a scratch slot (EISPACK convention): e[n-1] is written by
    // the rotation recurrence but never read as data
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(e_io);
    e.push(0.0);
    let e = &mut e[..];

    for l in 0..n {
        let mut iter = 0;
        loop {
            // find the first negligible off-diagonal at or after l
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= eps * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] converged
            }
            iter += 1;
            if iter > MAX_SWEEPS_PER_EIGENVALUE {
                return Err(EigenError::NoConvergence { index: l });
            }
            // Wilkinson shift from the leading 2×2 of the block
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + copysign_nonzero(r, g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // recover: deflate by annihilating this rotation chain
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if let Some(z) = z.as_deref_mut() {
                    // right-multiply by the rotation in plane (i, i+1)
                    let rows = z.nrows();
                    for k in 0..rows {
                        f = z[(k, i + 1)];
                        z[(k, i + 1)] = s * z[(k, i)] + c * f;
                        z[(k, i)] = c * z[(k, i)] - s * f;
                    }
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            // the step decoupled the block from d[m+1..]; clear the edge
            e[m] = 0.0;
        }
    }
    e_io.copy_from_slice(&e[..n - 1]);
    Ok(())
}

#[inline]
fn copysign_nonzero(mag: f64, sign: f64) -> f64 {
    if sign >= 0.0 {
        mag.abs()
    } else {
        -mag.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    #[test]
    fn laplacian_exact_eigenvalues() {
        for n in [2usize, 3, 8, 33, 64] {
            let t = gen::laplacian_1d(n);
            let eigs = sterf(&t).unwrap();
            let exact = gen::laplacian_1d_eigs(n);
            assert!(
                tg_matrix::norms::spectrum_error(&exact, &eigs) < 1e-13,
                "n = {n}"
            );
        }
    }

    #[test]
    fn steqr_eigenpairs_residual() {
        let n = 40;
        let t = gen::random_tridiagonal(n, 7);
        let (eigs, z) = steqr(&t).unwrap();
        assert!(tg_matrix::orthogonality_residual(&z) < 1e-13);
        // T z_k = λ_k z_k
        let dense = t.to_dense();
        for (k, &lam) in eigs.iter().enumerate() {
            let zk = z.col(k);
            for i in 0..n {
                let mut s = 0.0;
                for j in 0..n {
                    s += dense[(i, j)] * zk[j];
                }
                assert!((s - lam * zk[i]).abs() < 1e-11, "residual at ({i},{k})");
            }
        }
        // ascending order
        assert!(eigs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn diagonal_matrix_identity_vectors() {
        let t = Tridiagonal::new(vec![3.0, 1.0, 2.0], vec![0.0, 0.0]);
        let (eigs, z) = steqr(&t).unwrap();
        assert_eq!(eigs, vec![1.0, 2.0, 3.0]);
        // columns are ± unit vectors
        for k in 0..3 {
            let col = z.col(k);
            let nrm: f64 = col.iter().map(|x| x * x).sum();
            assert!((nrm - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn wilkinson_close_pairs_resolved() {
        let t = gen::wilkinson(21);
        let eigs = sterf(&t).unwrap();
        // W21+ has close (but distinct) pairs; largest ≈ 10.746
        assert!((eigs[20] - 10.746194182903393).abs() < 1e-9);
        assert!(eigs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sturm_agreement() {
        let t = gen::random_tridiagonal(30, 9);
        let eigs = sterf(&t).unwrap();
        for (k, &lam) in eigs.iter().enumerate() {
            assert!(t.sturm_count(lam - 1e-8) <= k);
            assert!(t.sturm_count(lam + 1e-8) > k);
        }
    }

    #[test]
    fn single_and_double() {
        let t1 = Tridiagonal::new(vec![5.0], vec![]);
        assert_eq!(sterf(&t1).unwrap(), vec![5.0]);
        let t2 = Tridiagonal::new(vec![0.0, 0.0], vec![1.0]);
        let e = sterf(&t2).unwrap();
        assert!((e[0] + 1.0).abs() < 1e-14 && (e[1] - 1.0).abs() < 1e-14);
    }
}
