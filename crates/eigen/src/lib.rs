//! # tg-eigen
//!
//! Symmetric eigensolvers built on the tridiagonalization pipelines:
//!
//! * [`steqr`] — implicit QL iteration for tridiagonal matrices, with or
//!   without eigenvector accumulation (`dsteqr`/`dsterf` analogues),
//! * [`dc`] — Cuppen's divide & conquer with deflation, a safeguarded
//!   secular-equation solver ([`secular`]) and the Gu–Eisenstat eigenvector
//!   fix (`dstedc` analogue) — the iterative method the paper pairs with
//!   its tridiagonalization (§6.2),
//! * [`syevd`] — full `Dsyevd`-style drivers for the three pipelines the
//!   paper compares (cuSOLVER-like direct, MAGMA-like two-stage, and the
//!   proposed DBBR + pipelined-BC two-stage),
//! * [`bisect`] — Sturm-count bisection + inverse iteration
//!   (`dstebz`/`dstein` analogues): the independent verification oracle,
//!   with spectrum slicing by index or interval,
//! * [`jacobi`] — cyclic Jacobi on the dense matrix (§7.2's third
//!   classical method), fully independent of any reduction.

pub mod bisect;
pub mod dc;
pub mod jacobi;
pub mod pwk;
pub mod sbevd;
pub mod secular;
pub mod steqr;
pub mod syevd;
pub mod syevx;
pub mod sygv;

pub use bisect::{bisect_evd, eigenvalues_by_index, eigenvalues_in_interval};
pub use dc::stedc;
pub use jacobi::jacobi_evd;
pub use pwk::sterf_pwk;
pub use sbevd::sbevd;
pub use steqr::{steqr, sterf};
pub use syevd::{default_backtransform_k, syevd, syevd_batched, syevd_ws, Evd, EvdMethod};
pub use syevx::{largest_k, smallest_k, syevx_by_index};
pub use sygv::sygvd;

/// Errors from the iterative eigensolvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigenError {
    /// The QL/QR iteration failed to converge for some eigenvalue.
    NoConvergence { index: usize },
}

impl std::fmt::Display for EigenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigenError::NoConvergence { index } => {
                write!(f, "QL iteration failed to converge at eigenvalue {index}")
            }
        }
    }
}

impl std::error::Error for EigenError {}
