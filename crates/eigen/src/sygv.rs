//! Generalized symmetric eigenproblem `A x = λ B x` (`dsygvd` analogue) —
//! the problem class of the paper's reference \[16\] (Ltaief et al.,
//! "Solving the generalized symmetric eigenvalue problem using tile
//! algorithms").
//!
//! Standard reduction: `B = L Lᵀ` (Cholesky), `C = L⁻¹ A L⁻ᵀ` (symmetric),
//! solve `C y = λ y` with any pipeline in this workspace, then map the
//! vectors back with `x = L⁻ᵀ y`. The `x` are `B`-orthonormal
//! (`xᵢᵀ B xⱼ = δᵢⱼ`).

use crate::{syevd, Evd, EvdMethod};
use tg_blas::triangular::{
    potrf_lower, trsm_lower_left, trsm_lower_trans_left, trsm_lower_trans_right,
    NotPositiveDefinite,
};
use tg_matrix::Mat;

/// Error from [`sygvd`].
#[derive(Debug)]
pub enum SygvError {
    /// `B` is not positive definite.
    BNotPositiveDefinite(NotPositiveDefinite),
    /// The standard eigensolve failed.
    Eigen(crate::EigenError),
}

impl std::fmt::Display for SygvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SygvError::BNotPositiveDefinite(e) => write!(f, "B: {e}"),
            SygvError::Eigen(e) => write!(f, "eigensolve: {e}"),
        }
    }
}

impl std::error::Error for SygvError {}

/// Solves `A x = λ B x` for symmetric `A` and SPD `B`.
///
/// Returns eigenvalues ascending; eigenvectors (if requested) are
/// `B`-orthonormal columns.
pub fn sygvd(a: &Mat, b: &Mat, method: &EvdMethod, want_vectors: bool) -> Result<Evd, SygvError> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(b.nrows(), n);
    assert_eq!(b.ncols(), n);

    // B = L Lᵀ
    let mut l = b.clone();
    potrf_lower(&mut l).map_err(SygvError::BNotPositiveDefinite)?;
    // zero the stale upper triangle so the trsm helpers see a clean L
    for j in 1..n {
        for i in 0..j {
            l[(i, j)] = 0.0;
        }
    }

    // C = L⁻¹ A L⁻ᵀ  (two triangular solves)
    let mut c = a.clone();
    c.mirror_lower();
    trsm_lower_left(&l, &mut c.as_mut()); // C ← L⁻¹ A
    trsm_lower_trans_right(&l, &mut c.as_mut()); // C ← (L⁻¹A) L⁻ᵀ
                                                 // enforce exact symmetry (roundoff from the two solves)
    for j in 0..n {
        for i in 0..j {
            let v = 0.5 * (c[(i, j)] + c[(j, i)]);
            c[(i, j)] = v;
            c[(j, i)] = v;
        }
    }

    let mut evd = syevd(&mut c, method, want_vectors).map_err(SygvError::Eigen)?;
    if let Some(v) = evd.eigenvectors.as_mut() {
        // x = L⁻ᵀ y
        trsm_lower_trans_left(&l, &mut v.as_mut());
    }
    Ok(evd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_blas::{gemm, gemm_into, Op};
    use tg_matrix::gen;

    fn residual(a: &Mat, b: &Mat, lam: f64, x: &[f64]) -> f64 {
        let n = a.nrows();
        let mut worst = 0.0f64;
        for i in 0..n {
            let mut ax = 0.0;
            let mut bx = 0.0;
            for j in 0..n {
                ax += a[(i, j)] * x[j];
                bx += b[(i, j)] * x[j];
            }
            worst = worst.max((ax - lam * bx).abs());
        }
        worst
    }

    #[test]
    fn generalized_pairs_solve_the_pencil() {
        let n = 26;
        let a = gen::random_symmetric(n, 1);
        let b = gen::random_spd(n, 2);
        let evd = sygvd(&a, &b, &EvdMethod::proposed_default(n), true).unwrap();
        let v = evd.eigenvectors.as_ref().unwrap();
        let scale = evd.eigenvalues.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for k in 0..n {
            let r = residual(&a, &b, evd.eigenvalues[k], v.col(k));
            assert!(r < 1e-8 * scale * n as f64, "pair {k}: {r}");
        }
        assert!(evd.eigenvalues.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn b_orthonormality() {
        let n = 20;
        let a = gen::random_symmetric(n, 3);
        let b = gen::random_spd(n, 4);
        let evd = sygvd(&a, &b, &EvdMethod::CusolverLike { nb: 4 }, true).unwrap();
        let v = evd.eigenvectors.as_ref().unwrap();
        // VᵀBV = I
        let bv = gemm_into(1.0, &b.as_ref(), Op::NoTrans, &v.as_ref(), Op::NoTrans);
        let mut vtbv = Mat::zeros(n, n);
        gemm(
            1.0,
            &v.as_ref(),
            Op::Trans,
            &bv.as_ref(),
            Op::NoTrans,
            0.0,
            &mut vtbv.as_mut(),
        );
        let eye = Mat::identity(n);
        assert!(tg_matrix::max_abs_diff(&vtbv, &eye) < 1e-9);
    }

    #[test]
    fn b_identity_reduces_to_standard() {
        let n = 18;
        let a = gen::random_symmetric(n, 5);
        let gen_evd = sygvd(&a, &Mat::identity(n), &EvdMethod::MagmaLike { b: 3 }, false).unwrap();
        let std_evd = crate::syevd(&mut a.clone(), &EvdMethod::MagmaLike { b: 3 }, false).unwrap();
        for (x, y) in gen_evd.eigenvalues.iter().zip(&std_evd.eigenvalues) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite_b() {
        let n = 6;
        let a = gen::random_symmetric(n, 7);
        let mut b = Mat::identity(n);
        b[(3, 3)] = -2.0;
        assert!(matches!(
            sygvd(&a, &b, &EvdMethod::CusolverLike { nb: 2 }, false),
            Err(SygvError::BNotPositiveDefinite(_))
        ));
    }

    #[test]
    fn known_diagonal_pencil() {
        // A = diag(1..n), B = diag(1..n)·2 ⇒ every λ = 0.5
        let n = 8;
        let mut a = Mat::zeros(n, n);
        let mut b = Mat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = (i + 1) as f64;
            b[(i, i)] = 2.0 * (i + 1) as f64;
        }
        let evd = sygvd(&a, &b, &EvdMethod::CusolverLike { nb: 2 }, false).unwrap();
        for &lam in &evd.eigenvalues {
            assert!((lam - 0.5).abs() < 1e-12);
        }
    }
}
