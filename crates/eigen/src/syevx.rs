//! Partial symmetric EVD (`dsyevx` analogue): only eigenpairs
//! `index_lo .. index_hi` (or inside an interval) are computed.
//!
//! Pipeline: two-stage tridiagonalization → Sturm-count bisection for the
//! selected eigenvalues → tridiagonal inverse iteration for their vectors
//! → back transformation of just those `k` columns. For `k ≪ n` the back
//! transformation drops from `2n³` to `2n²k` flops — this is how PCA-style
//! workloads (§7.2) use an eigensolver in practice.

use crate::bisect::{eigenvalues_by_index, inverse_iteration};
use crate::{Evd, EvdMethod};
use tg_matrix::Mat;
use tridiag_core::tridiagonalize;

/// Computes eigenpairs with 0-based indices in `index_lo .. index_hi`
/// (ascending), with eigenvectors.
pub fn syevx_by_index(a: &mut Mat, method: &EvdMethod, index_lo: usize, index_hi: usize) -> Evd {
    let n = a.nrows();
    assert!(index_lo <= index_hi && index_hi <= n);
    let red = tridiagonalize(a, &method.tridiag_method());
    let eigenvalues = eigenvalues_by_index(&red.tri, index_lo, index_hi);
    let k = eigenvalues.len();

    // eigenvectors of T by inverse iteration (cluster-aware)
    let norm = red
        .tri
        .d
        .iter()
        .chain(red.tri.e.iter())
        .fold(0.0f64, |m, &x| m.max(x.abs()))
        .max(f64::MIN_POSITIVE);
    let cluster_tol = 1e-7 * norm;
    let mut v = Mat::zeros(n, k);
    let mut cluster: Vec<Vec<f64>> = Vec::new();
    for (j, &lam) in eigenvalues.iter().enumerate() {
        if j > 0 && lam - eigenvalues[j - 1] > cluster_tol {
            cluster.clear();
        }
        let col = inverse_iteration(&red.tri, lam, &cluster);
        v.col_mut(j).copy_from_slice(&col);
        cluster.push(col);
    }

    // back transformation of the k selected columns only
    red.apply_q(&mut v);
    Evd {
        eigenvalues,
        eigenvectors: Some(v),
    }
}

/// Computes the `k` smallest eigenpairs.
pub fn smallest_k(a: &mut Mat, method: &EvdMethod, k: usize) -> Evd {
    syevx_by_index(a, method, 0, k)
}

/// Computes the `k` largest eigenpairs (ascending within the result).
pub fn largest_k(a: &mut Mat, method: &EvdMethod, k: usize) -> Evd {
    let n = a.nrows();
    syevx_by_index(a, method, n - k.min(n), n)
}

impl EvdMethod {
    /// The reduction method this EVD driver uses (exposed for the partial
    /// drivers).
    pub(crate) fn tridiag_method(&self) -> tridiag_core::Method {
        use tridiag_core::{DbbrConfig, Method};
        match self {
            EvdMethod::CusolverLike { nb } => Method::Direct { nb: *nb },
            EvdMethod::MagmaLike { b } => Method::Sbr {
                b: *b,
                parallel_sweeps: 1,
            },
            EvdMethod::Proposed {
                b,
                k,
                parallel_sweeps,
                lookahead,
                ..
            } => {
                let mut cfg = DbbrConfig::new(*b, *k);
                cfg.lookahead = *lookahead;
                Method::Dbbr {
                    cfg,
                    parallel_sweeps: *parallel_sweeps,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    fn residual(a: &Mat, lam: f64, v: &[f64]) -> f64 {
        let n = a.nrows();
        let mut worst = 0.0f64;
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += a[(i, j)] * v[j];
            }
            worst = worst.max((s - lam * v[i]).abs());
        }
        worst
    }

    #[test]
    fn partial_matches_full_solve() {
        let n = 40;
        let a0 = gen::random_symmetric(n, 3);
        let full = crate::syevd(&mut a0.clone(), &EvdMethod::proposed_default(n), false).unwrap();
        let part = syevx_by_index(&mut a0.clone(), &EvdMethod::proposed_default(n), 10, 20);
        assert_eq!(part.eigenvalues.len(), 10);
        for (i, &lam) in part.eigenvalues.iter().enumerate() {
            assert!((lam - full.eigenvalues[10 + i]).abs() < 1e-9);
        }
    }

    #[test]
    fn partial_eigenvectors_residual() {
        let n = 36;
        let a0 = gen::random_symmetric(n, 7);
        let part = smallest_k(&mut a0.clone(), &EvdMethod::proposed_default(n), 5);
        let v = part.eigenvectors.as_ref().unwrap();
        let scale = part.eigenvalues.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for j in 0..5 {
            let r = residual(&a0, part.eigenvalues[j], v.col(j));
            assert!(r < 1e-8 * scale * n as f64, "pair {j}: {r}");
        }
    }

    #[test]
    fn largest_k_picks_the_top() {
        let n = 30;
        let eigs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let a = gen::with_spectrum(&eigs, 9);
        let top = largest_k(&mut a.clone(), &EvdMethod::CusolverLike { nb: 8 }, 3);
        assert_eq!(top.eigenvalues.len(), 3);
        for (i, &lam) in top.eigenvalues.iter().enumerate() {
            assert!((lam - (n - 3 + i) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn full_range_equals_syevd_values() {
        let n = 24;
        let a0 = gen::random_spd(n, 11);
        let m = EvdMethod::MagmaLike { b: 3 };
        let full = crate::syevd(&mut a0.clone(), &m, false).unwrap();
        let part = syevx_by_index(&mut a0.clone(), &m, 0, n);
        for (x, y) in part.eigenvalues.iter().zip(&full.eigenvalues) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
