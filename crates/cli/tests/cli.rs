//! End-to-end tests of the `tridiag` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tridiag"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tg_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_info_round_trip() {
    let f = tmp("g.mtx");
    let out = bin()
        .args([
            "generate",
            f.to_str().unwrap(),
            "--n",
            "24",
            "--kind",
            "band:3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin().args(["info", f.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("shape: 24x24"), "{text}");
    assert!(text.contains("bandwidth: 3"), "{text}");
}

#[test]
fn eigvals_sorted_and_method_consistent() {
    let f = tmp("e.mtx");
    bin()
        .args(["generate", f.to_str().unwrap(), "--n", "32", "--seed", "5"])
        .output()
        .unwrap();
    let mut spectra = Vec::new();
    for method in ["direct", "magma", "proposed"] {
        let out = bin()
            .args(["eigvals", f.to_str().unwrap(), "--method", method])
            .output()
            .unwrap();
        assert!(out.status.success(), "{method}");
        let vals: Vec<f64> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(vals.len(), 32);
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{method} unsorted");
        spectra.push(vals);
    }
    for k in 1..spectra.len() {
        for (s0, sk) in spectra[0].iter().zip(spectra[k].iter()) {
            assert!((s0 - sk).abs() < 1e-9);
        }
    }
}

#[test]
fn reduce_preserves_frobenius_norm() {
    let f = tmp("r.mtx");
    let t = tmp("rt.mtx");
    bin()
        .args([
            "generate",
            f.to_str().unwrap(),
            "--n",
            "20",
            "--kind",
            "spd",
        ])
        .output()
        .unwrap();
    let out = bin()
        .args(["reduce", f.to_str().unwrap(), t.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let norm_of = |p: &PathBuf| -> f64 {
        let out = bin().args(["info", p.to_str().unwrap()]).output().unwrap();
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let line = text
            .lines()
            .find(|l| l.starts_with("frobenius"))
            .unwrap()
            .to_string();
        line.split(": ").nth(1).unwrap().parse().unwrap()
    };
    let (n1, n2) = (norm_of(&f), norm_of(&t));
    assert!((n1 - n2).abs() < 1e-6 * n1, "{n1} vs {n2}");
}

#[test]
fn evd_writes_both_outputs() {
    let f = tmp("v.mtx");
    let vals = tmp("vv.mtx");
    let vecs = tmp("vV.mtx");
    bin()
        .args(["generate", f.to_str().unwrap(), "--n", "16"])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "evd",
            f.to_str().unwrap(),
            vals.to_str().unwrap(),
            vecs.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(vals.exists() && vecs.exists());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("residual"), "{stderr}");
}

#[test]
fn rejects_nonsymmetric_and_bad_args() {
    // non-symmetric input
    let f = tmp("bad.mtx");
    std::fs::write(
        &f,
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n2 1 3.0\n",
    )
    .unwrap();
    let out = bin()
        .args(["eigvals", f.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // unknown subcommand
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // missing file
    let out = bin().args(["info", "/nonexistent/x.mtx"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn batch_solves_and_reports_hit_rate() {
    let out = bin()
        .args([
            "batch",
            "--count",
            "6",
            "--n",
            "24",
            "--threads",
            "2",
            "--seed",
            "9",
            "--profile",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 6, "{stdout}");
    assert!(stdout.contains("problem 0:"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("solved 6 problems"), "{stderr}");
    assert!(stderr.contains("arena hit rate"), "{stderr}");
    // --profile surfaces the arena counters from tg-trace
    assert!(stderr.contains("arena_hits"), "{stderr}");

    // missing --count / --n is an error
    let out = bin().args(["batch", "--n", "8"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn info_reports_shared_thread_helper() {
    let f = tmp("thr.mtx");
    bin()
        .args(["generate", f.to_str().unwrap(), "--n", "8"])
        .output()
        .unwrap();
    let out = bin()
        .env("TG_THREADS", "3")
        .args(["info", f.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("worker threads: 3 (TG_THREADS)"), "{text}");
}

#[test]
fn batch_zero_count_and_zero_n_fail_cleanly() {
    // --count 0 is a distinct, clean error (not a panic or empty output).
    let out = bin()
        .args(["batch", "--count", "0", "--n", "8"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--count must be at least 1"), "{stderr}");

    // --n 0 likewise.
    let out = bin()
        .args(["batch", "--count", "2", "--n", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--n must be at least 1"), "{stderr}");

    // Missing flags name the flag that is missing.
    let out = bin().args(["batch", "--n", "8"]).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("batch requires --count"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin().args(["batch", "--count", "2"]).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("batch requires --n"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn check_flag_prints_report_and_passes_on_clean_run() {
    let f = tmp("chk.mtx");
    bin()
        .args(["generate", f.to_str().unwrap(), "--n", "32", "--seed", "5"])
        .output()
        .unwrap();
    let out = bin()
        .args(["eigvals", f.to_str().unwrap(), "--check"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The strict session runs the deep checkers and reports each by name.
    assert!(stderr.contains("orthogonality"), "{stderr}");
    assert!(stderr.contains("spectrum"), "{stderr}");
    assert!(!stderr.contains("FAIL"), "{stderr}");
    // Eigenvalues still reach stdout untouched.
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 32);
}

#[test]
fn check_flag_composes_with_profile_counters() {
    let f = tmp("chk_prof.mtx");
    bin()
        .args(["generate", f.to_str().unwrap(), "--n", "24", "--seed", "7"])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "reduce",
            f.to_str().unwrap(),
            "/dev/null",
            "--check",
            "--profile",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Check counters land inside the enclosing trace session.
    assert!(stderr.contains("checks_run"), "{stderr}");
}

#[test]
fn timeline_and_flamegraph_flags_emit_reports() {
    let f = tmp("timeline_in.mtx");
    let fg = tmp("timeline_fg.txt");
    bin()
        .args(["generate", f.to_str().unwrap(), "--n", "48", "--seed", "5"])
        .output()
        .unwrap();
    let out = bin()
        .args([
            "batch",
            "--count",
            "4",
            "--n",
            "32",
            "--threads",
            "2",
            "--timeline",
            "--flamegraph",
            fg.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    // --timeline prints lanes, the parallel-region utilization table, and
    // the critical path to stderr.
    assert!(stderr.contains("per-thread lanes"), "{stderr}");
    assert!(stderr.contains("parallel.batch"), "{stderr}");
    assert!(stderr.contains("critical path"), "{stderr}");
    // --flamegraph writes non-empty collapsed stacks ("worker-N;path us").
    let collapsed = std::fs::read_to_string(&fg).unwrap();
    assert!(!collapsed.trim().is_empty());
    assert!(
        collapsed.lines().all(|l| l
            .rsplit_once(' ')
            .map(|(stack, us)| stack.starts_with("worker-") && us.parse::<u64>().is_ok())
            .unwrap_or(false)),
        "malformed collapsed stacks:\n{collapsed}"
    );
}
