//! `tridiag` — command-line symmetric eigensolver.
//!
//! ```text
//! tridiag eigvals  <in.mtx> [--method direct|magma|proposed] [--no-lookahead] [--trace out.json] [--profile] [--timeline] [--flamegraph out.txt] [--check]
//! tridiag evd      <in.mtx> <out-values.mtx> <out-vectors.mtx> [--method …] [--backtransform-k K] [--no-lookahead] [--trace …] [--profile] [--timeline] [--flamegraph …] [--check]
//! tridiag reduce   <in.mtx> <out-tridiag.mtx> [--method …] [--trace …] [--profile] [--timeline] [--flamegraph …] [--check]
//! tridiag batch    --count N --n SIZE [--threads T] [--method …] [--seed S] [--vectors] [--trace …] [--profile] [--timeline] [--flamegraph …] [--check]
//! tridiag serve    --jobs N --n SIZE [--threads T] [--deadline-ms D] [--queue-cap C] [--retries R] [--rate-hz HZ] [--cache-mb M] [--dedup] [--method …] [--seed S] [--vectors] [--trace …] [--profile] [--timeline] [--flamegraph …] [--check]
//! tridiag generate <out.mtx> --n N [--kind random|spd|band:B] [--seed S]
//! tridiag info     <in.mtx>
//! ```
//!
//! `--trace <out.json>` records a Chrome trace-event file (load it in
//! Perfetto / `chrome://tracing`); `--profile` prints a per-stage wall
//! time / GFLOP/s table to stderr; `--timeline` prints per-thread lanes,
//! critical path, and parallel-region utilization; `--flamegraph <out>`
//! writes collapsed stacks for `flamegraph.pl` / inferno. See
//! `docs/OBSERVABILITY.md`.
//!
//! `--check` runs the solve under a `tg-check` session: every stage
//! boundary is verified against its LAPACK-convention invariant (band
//! structure, tridiagonal form, orthogonality, similarity, spectrum) and
//! the per-checker report is printed to stderr; any violation exits
//! non-zero. See `docs/VERIFICATION.md`.
//!
//! Matrices are Matrix Market files (`coordinate real symmetric`,
//! `coordinate real general`, or `array real general`).

use std::process::exit;
use tg_eigen::{syevd, EvdMethod};
use tg_matrix::io::{read_matrix_market, write_matrix_market};
use tg_matrix::{gen, Mat};
use tridiag_core::{tridiagonalize, Method};

fn usage() -> ! {
    eprintln!(
        "usage:\n  tridiag eigvals  <in.mtx> [--method direct|magma|proposed] [--no-lookahead] [--trace out.json] [--profile] [--timeline] [--flamegraph out.txt] [--check]\n  \
         tridiag evd      <in.mtx> <values.mtx> <vectors.mtx> [--method ...] [--backtransform-k K] [--no-lookahead] [--trace ...] [--profile] [--timeline] [--flamegraph ...] [--check]\n  \
         tridiag reduce   <in.mtx> <out.mtx> [--method ...] [--trace ...] [--profile] [--timeline] [--flamegraph ...] [--check]\n  \
         tridiag batch    --count N --n SIZE [--threads T] [--method ...] [--seed S] [--vectors] [--trace ...] [--profile] [--timeline] [--flamegraph ...] [--check]\n  \
         tridiag serve    --jobs N --n SIZE [--threads T] [--deadline-ms D] [--queue-cap C] [--retries R] [--rate-hz HZ] [--cache-mb M] [--dedup] [--method ...] [--seed S] [--vectors] [--trace ...] [--profile] [--timeline] [--flamegraph ...] [--check]\n  \
         tridiag generate <out.mtx> --n N [--kind random|spd|band:B] [--seed S]\n  \
         tridiag info     <in.mtx>"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

struct Opts {
    positional: Vec<String>,
    method: String,
    n: Option<usize>,
    count: Option<usize>,
    threads: usize,
    vectors: bool,
    kind: String,
    seed: u64,
    jobs: Option<usize>,
    deadline_ms: u64,
    queue_cap: usize,
    retries: u32,
    rate_hz: f64,
    cache_mb: u64,
    dedup: bool,
    backtransform_k: Option<usize>,
    no_lookahead: bool,
    trace: Option<String>,
    profile: bool,
    timeline: bool,
    flamegraph: Option<String>,
    check: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        positional: Vec::new(),
        method: "proposed".into(),
        n: None,
        count: None,
        threads: 0,
        vectors: false,
        kind: "random".into(),
        seed: 42,
        jobs: None,
        deadline_ms: 30_000,
        queue_cap: 64,
        retries: 2,
        rate_hz: 0.0,
        cache_mb: 0,
        dedup: false,
        backtransform_k: None,
        no_lookahead: false,
        trace: None,
        profile: false,
        timeline: false,
        flamegraph: None,
        check: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--method" => o.method = it.next().cloned().unwrap_or_else(|| usage()),
            "--trace" => o.trace = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--profile" => o.profile = true,
            "--timeline" => o.timeline = true,
            "--flamegraph" => o.flamegraph = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--check" => o.check = true,
            "--n" => {
                o.n = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--count" => {
                o.count = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--threads" => {
                o.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--vectors" => o.vectors = true,
            "--jobs" => {
                o.jobs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                o.deadline_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--queue-cap" => {
                o.queue_cap = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--retries" => {
                o.retries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--rate-hz" => {
                o.rate_hz = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cache-mb" => {
                o.cache_mb = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dedup" => o.dedup = true,
            "--backtransform-k" => {
                o.backtransform_k = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-lookahead" => o.no_lookahead = true,
            "--kind" => o.kind = it.next().cloned().unwrap_or_else(|| usage()),
            "--seed" => {
                o.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ if a.starts_with("--") => usage(),
            _ => o.positional.push(a.clone()),
        }
    }
    o
}

fn load_symmetric(path: &str) -> Mat {
    let m = read_matrix_market(path).unwrap_or_else(|e| fail(e));
    if m.nrows() != m.ncols() {
        fail(format!(
            "matrix is {}x{}, need square",
            m.nrows(),
            m.ncols()
        ));
    }
    let defect = tg_matrix::sym_residual(&m);
    if defect > 1e-12 {
        fail(format!("matrix is not symmetric (defect {defect:.2e})"));
    }
    m
}

fn evd_method(o: &Opts, n: usize) -> EvdMethod {
    let b = (n / 16).clamp(2, 32);
    match o.method.as_str() {
        "direct" => EvdMethod::CusolverLike { nb: 32 },
        "magma" => EvdMethod::MagmaLike { b },
        "proposed" => {
            let mut m = EvdMethod::proposed_default(n);
            // Merge width for the blocked back transformation; the
            // default is `min(16·b, 2048, n)` — see
            // `tg_eigen::default_backtransform_k` and "Back
            // transformation" in docs/PERFORMANCE.md.
            if let (
                Some(k),
                EvdMethod::Proposed {
                    backtransform_k, ..
                },
            ) = (o.backtransform_k, &mut m)
            {
                *backtransform_k = k.clamp(1, n.max(1));
            }
            // `--no-lookahead` falls back to the serial stage-1 panel
            // order (bitwise-identical output; see docs/PERFORMANCE.md).
            if let EvdMethod::Proposed { lookahead, .. } = &mut m {
                *lookahead = !o.no_lookahead;
            }
            m
        }
        other => fail(format!("unknown method: {other}")),
    }
}

fn tridiag_method(o: &Opts, n: usize) -> Method {
    let b = (n / 16).clamp(2, 32);
    match o.method.as_str() {
        "direct" => Method::Direct { nb: 32 },
        "magma" => Method::Sbr {
            b,
            parallel_sweeps: 1,
        },
        "proposed" => {
            let mut m = Method::paper_default(n);
            if let Method::Dbbr { cfg, .. } = &mut m {
                cfg.lookahead = !o.no_lookahead;
            }
            m
        }
        other => fail(format!("unknown method: {other}")),
    }
}

/// Runs `f` under a trace session when any observability flag was given
/// (`--trace`, `--profile`, `--timeline`, `--flamegraph`), then writes the
/// Chrome trace / collapsed-stack file and prints the profile / timeline
/// reports (to stderr, so commands whose data goes to stdout stay
/// pipeable).
fn with_trace<T>(o: &Opts, f: impl FnOnce() -> T) -> T {
    if o.trace.is_none() && !o.profile && !o.timeline && o.flamegraph.is_none() {
        return f();
    }
    let session = tg_trace::TraceSession::begin();
    let out = f();
    let trace = session.finish();
    if let Some(path) = &o.trace {
        std::fs::write(path, trace.chrome_json()).unwrap_or_else(|e| fail(e));
        eprintln!(
            "wrote Chrome trace ({} events) to {path}",
            trace.events.len()
        );
    }
    if let Some(path) = &o.flamegraph {
        std::fs::write(path, trace.flamegraph()).unwrap_or_else(|e| fail(e));
        eprintln!("wrote collapsed-stack flamegraph to {path} (feed to flamegraph.pl / inferno)");
    }
    if o.profile {
        eprint!("{}", trace.profile_table());
    }
    if o.timeline {
        eprint!("{}", trace.timeline_report());
    }
    out
}

/// Runs `f` under a strict `tg-check` session when `--check` was given:
/// every stage boundary the solve crosses is verified against its
/// LAPACK-convention invariant, the per-checker report goes to stderr, and
/// any violation turns into a non-zero exit.
fn with_check<T>(o: &Opts, f: impl FnOnce() -> T) -> T {
    if !o.check {
        return f();
    }
    let session = tg_check::CheckSession::begin(tg_check::CheckConfig::strict());
    let out = f();
    let report = session.finish();
    eprint!("{}", report.render());
    if !report.passed() {
        fail(format!(
            "{} invariant check(s) failed",
            report.failures().len()
        ));
    }
    out
}

/// Open-loop load generator for `tridiag serve`: submission times sit on a
/// fixed clock grid (`start + i / rate`) and are never adjusted for
/// completions — an overloaded service keeps receiving work at full rate,
/// which is exactly what exposes load shedding. `rate_hz == 0` submits the
/// whole set as one burst. Returns (admitted, shed, completed-job
/// latencies).
fn drive_open_loop(
    svc: &tg_serve::JobService,
    specs: Vec<tg_serve::JobSpec>,
    rate_hz: f64,
    deadline_ms: u64,
) -> (u64, u64, Vec<std::time::Duration>) {
    use std::time::{Duration, Instant};
    let start = Instant::now();
    let mut ids = Vec::new();
    let mut shed = 0u64;
    for (i, spec) in specs.into_iter().enumerate() {
        if rate_hz > 0.0 {
            let due = start + Duration::from_secs_f64(i as f64 / rate_hz);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        match svc.submit(spec) {
            Ok(id) => ids.push(id),
            Err(tg_serve::SubmitError::Overloaded { .. }) => shed += 1,
            Err(e) => fail(e),
        }
    }
    let grace = Duration::from_millis(deadline_ms) * 2 + Duration::from_secs(60);
    if !svc.wait_quiescent(grace) {
        fail("service failed to quiesce within the grace period (hang?)");
    }
    let mut latencies = Vec::new();
    for id in ids.iter() {
        let out = svc.wait(*id);
        if out.status == tg_serve::JobStatus::Completed {
            latencies.push(out.latency);
        }
    }
    (ids.len() as u64, shed, latencies)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let o = parse_opts(&args[1..]);
    match cmd.as_str() {
        "eigvals" => {
            let [input] = o.positional.as_slice() else {
                usage()
            };
            let a = load_symmetric(input);
            let n = a.nrows();
            let evd = with_trace(&o, || {
                with_check(&o, || syevd(&mut a.clone(), &evd_method(&o, n), false))
            })
            .unwrap_or_else(|e| fail(e));
            for v in &evd.eigenvalues {
                println!("{v:.17e}");
            }
        }
        "evd" => {
            let [input, out_vals, out_vecs] = o.positional.as_slice() else {
                usage()
            };
            let a = load_symmetric(input);
            let n = a.nrows();
            let evd = with_trace(&o, || {
                with_check(&o, || syevd(&mut a.clone(), &evd_method(&o, n), true))
            })
            .unwrap_or_else(|e| fail(e));
            let mut vals = Mat::zeros(n, 1);
            for (i, &v) in evd.eigenvalues.iter().enumerate() {
                vals[(i, 0)] = v;
            }
            write_matrix_market(out_vals, &vals, false).unwrap_or_else(|e| fail(e));
            write_matrix_market(out_vecs, evd.eigenvectors.as_ref().unwrap(), false)
                .unwrap_or_else(|e| fail(e));
            eprintln!(
                "wrote {n} eigenvalues to {out_vals}, vectors to {out_vecs} \
                 (residual {:.2e})",
                evd.residual(&a)
            );
        }
        "reduce" => {
            let [input, output] = o.positional.as_slice() else {
                usage()
            };
            let a = load_symmetric(input);
            let n = a.nrows();
            let red = with_trace(&o, || {
                with_check(&o, || {
                    tridiagonalize(&mut a.clone(), &tridiag_method(&o, n))
                })
            });
            write_matrix_market(output, &red.tri.to_dense(), true).unwrap_or_else(|e| fail(e));
            eprintln!("wrote tridiagonal form ({n}x{n}) to {output}");
        }
        "batch" => {
            if !o.positional.is_empty() {
                usage()
            }
            let count = match o.count {
                None => fail("batch requires --count"),
                Some(0) => fail("--count must be at least 1"),
                Some(c) => c,
            };
            let n = match o.n {
                None => fail("batch requires --n"),
                Some(0) => fail("--n must be at least 1"),
                Some(n) => n,
            };
            let problems: Vec<Mat> = (0..count)
                .map(|i| gen::random_symmetric(n, o.seed.wrapping_add(i as u64)))
                .collect();
            let workers = if o.threads > 0 {
                o.threads
            } else {
                tg_batch::worker_threads()
            };
            let scheduler = tg_batch::BatchScheduler::new(workers);
            let method = evd_method(&o, n);
            let batch = with_trace(&o, || {
                with_check(&o, || scheduler.syevd(&problems, &method, o.vectors))
            })
            .unwrap_or_else(|e| fail(e));
            for (i, evd) in batch.results.iter().enumerate() {
                let lo = evd.eigenvalues.first().copied().unwrap_or(f64::NAN);
                let hi = evd.eigenvalues.last().copied().unwrap_or(f64::NAN);
                println!("problem {i}: eigenvalues in [{lo:.6e}, {hi:.6e}]");
            }
            let s = batch.stats;
            eprintln!(
                "solved {} problems of n={} on {} workers in {:.3}s \
                 ({:.1} problems/s, arena hit rate {:.1}%)",
                s.problems,
                n,
                s.workers,
                s.wall.as_secs_f64(),
                s.throughput(),
                100.0 * s.arena.hit_rate()
            );
        }
        "serve" => {
            if !o.positional.is_empty() {
                usage()
            }
            let jobs = match o.jobs {
                None => fail("serve requires --jobs"),
                Some(0) => fail("--jobs must be at least 1"),
                Some(j) => j,
            };
            let n = match o.n {
                None => fail("serve requires --n"),
                Some(0) => fail("--n must be at least 1"),
                Some(n) => n,
            };
            let method = evd_method(&o, n);
            // With caching or dedup on, cycle a small pool of distinct
            // matrices so repeats actually occur (otherwise every job is
            // unique and the cache can only miss).
            let distinct = if o.cache_mb > 0 || o.dedup {
                jobs.min(8)
            } else {
                jobs
            };
            let specs: Vec<_> = (0..jobs)
                .map(|i| {
                    tg_serve::JobSpec::new(
                        gen::random_symmetric(n, o.seed.wrapping_add((i % distinct) as u64)),
                        method.clone(),
                        o.vectors,
                    )
                    .with_priority(tg_serve::Priority::ALL[i % 3])
                })
                .collect();
            let cfg = tg_serve::ServeConfig {
                workers: o.threads,
                queue_cap: o.queue_cap,
                default_deadline: std::time::Duration::from_millis(o.deadline_ms),
                max_retries: o.retries,
                cache_bytes: o.cache_mb * 1024 * 1024,
                dedup: o.dedup,
                ..tg_serve::ServeConfig::default()
            };
            let report = with_trace(&o, || {
                with_check(&o, || {
                    let svc = tg_serve::JobService::start(cfg).unwrap_or_else(|e| fail(e));
                    let outcome = drive_open_loop(&svc, specs, o.rate_hz, o.deadline_ms);
                    let table = tg_serve::render_status_table(&svc.status_table());
                    let stats = svc.shutdown();
                    (outcome, table, stats)
                })
            });
            let ((admitted, shed, latencies), table, stats) = report;
            print!("{table}");
            let l = stats.ledger;
            eprintln!(
                "served {} submissions on {} worker(s): {} completed, {} failed, \
                 {} shed ({} admitted), {} retr{}, {} via fallback",
                l.submitted,
                o.threads.max(1),
                l.completed,
                l.failed,
                l.shed,
                admitted,
                stats.retries,
                if stats.retries == 1 { "y" } else { "ies" },
                stats.fallback_completions,
            );
            debug_assert_eq!(l.shed, shed);
            if o.cache_mb > 0 || o.dedup {
                eprintln!(
                    "cache: {} hit(s), {} miss(es), {} coalesced, {} insertion(s), \
                     {} eviction(s), {} B live / {} B budget ({} distinct inputs)",
                    l.cache_hits,
                    stats.cache.misses,
                    l.coalesced,
                    stats.cache.insertions,
                    stats.cache.evictions,
                    stats.cache_live_bytes,
                    o.cache_mb * 1024 * 1024,
                    distinct,
                );
            }
            if !latencies.is_empty() {
                let mut lat = latencies;
                lat.sort_unstable();
                let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
                eprintln!(
                    "completed-job latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms \
                     (deadline {} ms)",
                    pct(0.50).as_secs_f64() * 1e3,
                    pct(0.99).as_secs_f64() * 1e3,
                    lat.last().unwrap().as_secs_f64() * 1e3,
                    o.deadline_ms
                );
            }
            if !l.balanced() {
                fail("ledger conservation violated");
            }
        }
        "generate" => {
            let [output] = o.positional.as_slice() else {
                usage()
            };
            let n = match o.n {
                None | Some(0) => fail("--n is required for generate (and must be >= 1)"),
                Some(n) => n,
            };
            let m = if o.kind == "random" {
                gen::random_symmetric(n, o.seed)
            } else if o.kind == "spd" {
                gen::random_spd(n, o.seed)
            } else if let Some(b) = o.kind.strip_prefix("band:") {
                let b: usize = b.parse().unwrap_or_else(|_| fail("bad band width"));
                gen::random_symmetric_band(n, b, o.seed)
            } else {
                fail(format!("unknown kind: {}", o.kind))
            };
            write_matrix_market(output, &m, true).unwrap_or_else(|e| fail(e));
            eprintln!("wrote {} ({}x{})", output, n, n);
        }
        "info" => {
            let [input] = o.positional.as_slice() else {
                usage()
            };
            let m = read_matrix_market(input).unwrap_or_else(|e| fail(e));
            let n = m.nrows();
            println!("shape: {}x{}", n, m.ncols());
            println!("worker threads: {}", tg_batch::threads::describe());
            println!("frobenius norm: {:.6e}", tg_matrix::frob_norm(&m));
            let total = n * m.ncols();
            let mut nnz = 0usize;
            for j in 0..m.ncols() {
                for i in 0..n {
                    if m[(i, j)] != 0.0 {
                        nnz += 1;
                    }
                }
            }
            println!(
                "nnz: {nnz} / {total} (density {:.2}%)",
                100.0 * nnz as f64 / total.max(1) as f64
            );
            if m.ncols() == n {
                println!("symmetry defect: {:.2e}", tg_matrix::sym_residual(&m));
                // detect bandwidth
                let mut bw = 0usize;
                for j in 0..n {
                    for i in (j + 1)..n {
                        if m[(i, j)] != 0.0 {
                            bw = bw.max(i - j);
                        }
                    }
                }
                println!("bandwidth: {bw}");
                // slots inside the detected band: diagonal + 2·Σ_{d=1..bw}(n−d)
                let band_slots = n + 2 * (1..=bw).map(|d| n - d).sum::<usize>();
                println!(
                    "band occupancy: {:.2}% of {band_slots} in-band slots nonzero",
                    100.0 * nnz as f64 / band_slots.max(1) as f64
                );
            }
        }
        _ => usage(),
    }
}
