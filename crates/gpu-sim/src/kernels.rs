//! Kernel-level cost models.
//!
//! Each function returns an estimated execution time in **seconds** for one
//! kernel invocation on the given [`Device`]. Models are either rooflines
//! (`max(flops/rate, bytes/bandwidth) + overhead`) or the additive
//! floor-plus-rate form fitted to Table 1 (see [`crate::calib`]).

use crate::calib::*;
use crate::device::{Device, DeviceKind};

/// Scaling of H100-family saturation constants when a what-if device
/// changes the FP64 peak (the calibration constants are anchored to the
/// stock 67 TFLOP/s part).
fn h100_peak_scale(dev: &Device) -> f64 {
    dev.fp64_peak_tflops / 67.0
}

/// Flop count of `syr2k` on an `n × n` result with rank `2k` (paper
/// convention: `2·k·n·(n+1) ≈ 2n²k`).
pub fn syr2k_flops(n: usize, k: usize) -> f64 {
    2.0 * k as f64 * n as f64 * (n as f64 + 1.0)
}

/// cuBLAS `Dsyr2k` time. Additive model `t = t0(n) + flops/P_sat(n)`
/// fitted to Table 1, with the Figure-8 cliff for `n ≥ 49152` on H100.
pub fn cublas_syr2k_time(dev: &Device, n: usize, k: usize) -> f64 {
    let flops = syr2k_flops(n, k);
    match dev.kind {
        DeviceKind::H100 => {
            let t0 = CUBLAS_SYR2K_FLOOR_8192_S * (n as f64 / 8192.0).powf(CUBLAS_SYR2K_FLOOR_EXP);
            let mut sat = CUBLAS_SYR2K_SAT_TFLOPS * h100_peak_scale(dev) * 1e12;
            if n >= CUBLAS_SYR2K_CLIFF_N {
                sat *= CUBLAS_SYR2K_CLIFF_FACTOR;
            }
            t0 + flops / sat
        }
        DeviceKind::Rtx4090 => {
            // compute-bound at FP64 peak with mild shape efficiency
            // (Table 1 RTX 4090 column: 0.83..0.97 of peak)
            let eff = rtx_syr2k_eff(k);
            flops / (dev.fp64_peak_tflops * eff * 1e12) + 0.2e-3
        }
    }
}

fn rtx_syr2k_eff(k: usize) -> f64 {
    let l = ((k.max(16) as f64) / 16.0).log2().min(8.0);
    0.83 + 0.13 * l / 8.0
}

/// The proposed square-block `syr2k` (Figure 7): stable saturated rate,
/// tiny launch floor, no large-`n` cliff.
pub fn ours_syr2k_time(dev: &Device, n: usize, k: usize) -> f64 {
    let flops = syr2k_flops(n, k);
    match dev.kind {
        DeviceKind::H100 => {
            let t0 = OURS_SYR2K_FLOOR_8192_S * (n as f64 / 8192.0).powf(CUBLAS_SYR2K_FLOOR_EXP);
            // memory roofline still applies for very small k
            let bytes = 8.0 * (n as f64) * (n as f64) + 32.0 * n as f64 * k as f64;
            let t_mem = bytes / (dev.mem_bw_tbs * STREAM_BW_EFF * 1e12);
            t0 + (flops / (OURS_SYR2K_SAT_TFLOPS * h100_peak_scale(dev) * 1e12)).max(t_mem)
        }
        DeviceKind::Rtx4090 => {
            let eff = (rtx_syr2k_eff(k) + 0.05).min(0.97);
            flops / (dev.gemm_peak_tflops() * eff * 1e12) + 0.1e-3
        }
    }
}

/// Inner-dimension knee for a device, scaled by its compute/bandwidth
/// balance (an H100 needs ~20 flops/byte of reuse to saturate; a 4090's
/// scarce FP64 units saturate with far less).
fn gemm_knee(dev: &Device) -> f64 {
    let balance = dev.gemm_peak_tflops() / dev.mem_bw_tbs;
    GEMM_K_KNEE * balance / (67.0 / 3.35)
}

/// General GEMM (`m × n` output, inner dimension `k`): rate saturates with
/// the inner dimension (`SAT · k/(k + KNEE)`), plus the memory roofline.
pub fn gemm_time(dev: &Device, m: usize, n: usize, k: usize) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let sat = match dev.kind {
        DeviceKind::H100 => GEMM_SAT_TFLOPS * h100_peak_scale(dev),
        DeviceKind::Rtx4090 => dev.gemm_peak_tflops() * 0.9,
    };
    let rate = sat * (k as f64) / (k as f64 + gemm_knee(dev)) * 1e12;
    let bytes = 8.0 * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64);
    let t_mem = bytes / (dev.mem_bw_tbs * STREAM_BW_EFF * 1e12);
    (flops / rate).max(t_mem) + 20.0e-6
}

/// Symmetric-times-panel product `A·W` (`A` n×n symmetric, `W` n×b):
/// bounded by streaming `A` once and by the narrow-output rate knee
/// (only `b` result columns limit occupancy, like a GEMM with inner
/// dimension `b` limits reuse).
pub fn symm_time(dev: &Device, n: usize, b: usize) -> f64 {
    let flops = 2.0 * n as f64 * n as f64 * b as f64;
    let bytes = 8.0 * n as f64 * n as f64 * 0.5 + 16.0 * n as f64 * b as f64;
    let t_mem = bytes / (dev.mem_bw_tbs * STREAM_BW_EFF * 1e12);
    let sat = match dev.kind {
        DeviceKind::H100 => GEMM_SAT_TFLOPS * h100_peak_scale(dev),
        DeviceKind::Rtx4090 => dev.gemm_peak_tflops() * 0.9,
    };
    let rate = sat * (b as f64) / (b as f64 + gemm_knee(dev)) * 1e12;
    (flops / rate).max(t_mem) + 20.0e-6
}

/// cuBLAS-flavoured `symm` used inside MAGMA's trailing update: pays the
/// same call floor as its `syr2k`.
pub fn cublas_symm_time(dev: &Device, n: usize, b: usize) -> f64 {
    match dev.kind {
        DeviceKind::H100 => {
            let t0 =
                CUBLAS_SYR2K_FLOOR_8192_S * (n.max(1) as f64 / 8192.0).powf(CUBLAS_SYR2K_FLOOR_EXP);
            t0 + symm_time(dev, n, b)
        }
        DeviceKind::Rtx4090 => symm_time(dev, n, b) + 0.2e-3,
    }
}

/// Tall-skinny panel QR (`m × b`).
pub fn panel_qr_time(dev: &Device, m: usize, b: usize) -> f64 {
    let flops = 2.0 * m as f64 * b as f64 * b as f64;
    let rate = PANEL_QR_TFLOPS.min(dev.fp64_peak_tflops * 0.5) * 1e12;
    flops / rate + 30.0e-6
}

/// cuSOLVER `Dsytrd`: `4n³/3` flops at a size-saturating rate
/// (2.0–2.1 TFLOP/s at large `n` on H100 — §3.1).
pub fn cusolver_sytrd_time(dev: &Device, n: usize) -> f64 {
    let flops = 4.0 / 3.0 * (n as f64).powi(3);
    let sat = match dev.kind {
        DeviceKind::H100 => CUSOLVER_SYTRD_SAT_TFLOPS,
        // direct tridiagonalization is ~50 % BLAS-2 ⇒ bandwidth-bound;
        // scale the H100 rate by the bandwidth ratio
        DeviceKind::Rtx4090 => CUSOLVER_SYTRD_SAT_TFLOPS * (1.008 / 3.35),
    };
    let x = (n as f64 / CUSOLVER_SYTRD_HALF_N).powi(3);
    let rate = sat * x / (1.0 + x) * 1e12;
    flops / rate.max(1e9)
}

/// MAGMA CPU bulge chasing (`Dsb2st`, 8 MKL threads): `t = f(b)·n²`,
/// log-interpolated between the paper's three `b` anchors.
pub fn magma_bc_time(dev: &Device, n: usize, b: usize) -> f64 {
    let f = magma_bc_s_per_n2(b);
    let host = match dev.kind {
        DeviceKind::H100 => 1.0,
        DeviceKind::Rtx4090 => MAGMA_BC_HOST_4090_FACTOR,
    };
    f * host * (n as f64) * (n as f64)
}

fn magma_bc_s_per_n2(b: usize) -> f64 {
    let pts = [
        (32.0f64, MAGMA_BC_B32_S_PER_N2),
        (64.0, MAGMA_BC_B64_S_PER_N2),
        (128.0, MAGMA_BC_B128_S_PER_N2),
    ];
    let lb = (b.max(2) as f64).log2();
    if lb <= pts[0].0.log2() {
        // extrapolate flat below b = 32
        return pts[0].1 * (b as f64 / 32.0).max(0.5);
    }
    for w in pts.windows(2) {
        let (b0, f0) = w[0];
        let (b1, f1) = w[1];
        if lb <= b1.log2() {
            let t = (lb - b0.log2()) / (b1.log2() - b0.log2());
            return (f0.ln() * (1.0 - t) + f1.ln() * t).exp();
        }
    }
    // extrapolate beyond b = 128 with the last slope
    let slope = (MAGMA_BC_B128_S_PER_N2 / MAGMA_BC_B64_S_PER_N2).ln();
    MAGMA_BC_B128_S_PER_N2 * ((lb - 7.0) * slope).exp()
}

/// Per-bulge task time for the GPU bulge-chasing kernels, scaled from the
/// H100 `b = 32` anchors by work (`∝ b²`) and device bandwidth.
pub fn bc_bulge_time(dev: &Device, b: usize, optimized: bool) -> f64 {
    let base = if optimized {
        BC_BULGE_TIME_OPT_S
    } else {
        BC_BULGE_TIME_NAIVE_S
    };
    let work = (base - BC_BULGE_LATENCY_S).max(0.0) * (b as f64 / 32.0).powi(2);
    let bw_scale = 3.35 / dev.mem_bw_tbs;
    BC_BULGE_LATENCY_S + work * bw_scale
}

/// Maximum concurrent sweeps the device sustains for a BC kernel flavour.
pub fn bc_max_sweeps(dev: &Device, optimized: bool) -> usize {
    dev.sm_count
        * if optimized {
            BC_OPT_SWEEPS_PER_SM
        } else {
            BC_NAIVE_SWEEPS_PER_SM
        }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tflops(flops: f64, t: f64) -> f64 {
        flops / t / 1e12
    }

    /// The model must land on Table 1 within ~15 % for every cell.
    #[test]
    fn table1_h100_anchors() {
        let dev = Device::h100();
        let table: &[(usize, usize, f64)] = &[
            (8192, 16, 0.43),
            (8192, 64, 1.71),
            (8192, 128, 3.39),
            (8192, 1024, 18.91),
            (8192, 4096, 34.59),
            (32768, 16, 3.58),
            (32768, 64, 12.78),
            (32768, 128, 21.05),
            (32768, 1024, 42.86),
            (32768, 4096, 45.54),
        ];
        for &(n, k, expect) in table {
            let t = cublas_syr2k_time(&dev, n, k);
            let got = tflops(syr2k_flops(n, k), t);
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.16,
                "n={n} k={k}: model {got:.2} vs paper {expect:.2} ({:.0}%)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn table1_rtx4090_anchors() {
        let dev = Device::rtx4090();
        for &(n, k, expect) in &[
            (8192usize, 16usize, 1.07f64),
            (8192, 128, 1.06),
            (8192, 4096, 1.24),
            (32768, 1024, 1.24),
        ] {
            let t = cublas_syr2k_time(&dev, n, k);
            let got = tflops(syr2k_flops(n, k), t);
            assert!(
                (got - expect).abs() / expect < 0.12,
                "n={n} k={k}: {got:.3} vs {expect:.3}"
            );
        }
    }

    #[test]
    fn ours_beats_cublas_and_survives_cliff() {
        let dev = Device::h100();
        for n in [8192usize, 16384, 32768, 49152, 65536] {
            let ours = ours_syr2k_time(&dev, n, 1024);
            let cublas = cublas_syr2k_time(&dev, n, 1024);
            assert!(ours < cublas, "n={n}");
        }
        // cliff: cuBLAS rate drops sharply at 49152; ours is stable
        let r_cu_48k = tflops(
            syr2k_flops(49152, 1024),
            cublas_syr2k_time(&dev, 49152, 1024),
        );
        let r_cu_32k = tflops(
            syr2k_flops(32768, 1024),
            cublas_syr2k_time(&dev, 32768, 1024),
        );
        assert!(
            r_cu_48k < 0.5 * r_cu_32k,
            "no cliff: {r_cu_48k} vs {r_cu_32k}"
        );
        let r_ours_48k = tflops(syr2k_flops(49152, 1024), ours_syr2k_time(&dev, 49152, 1024));
        assert!(r_ours_48k > 45.0);
    }

    #[test]
    fn sytrd_anchor() {
        let dev = Device::h100();
        let t = cusolver_sytrd_time(&dev, 49152);
        let rate = tflops(4.0 / 3.0 * 49152f64.powi(3), t);
        assert!((rate - 2.05).abs() < 0.15, "rate {rate}");
    }

    #[test]
    fn magma_bc_anchors() {
        let dev = Device::h100();
        assert!((magma_bc_time(&dev, 49152, 32) - 16.2).abs() < 0.01);
        assert!((magma_bc_time(&dev, 49152, 64) - 23.9).abs() < 0.01);
        assert!((magma_bc_time(&dev, 49152, 128) - 84.9).abs() < 0.01);
        // interpolation is monotone
        let t48 = magma_bc_time(&dev, 49152, 48);
        assert!(t48 > 16.2 && t48 < 23.9);
    }

    #[test]
    fn rtx4090_magma_bc_anchor() {
        // §6.1: 14 327 ms at n = 32768, b = 64 on the 4090 system
        let dev = Device::rtx4090();
        let t = magma_bc_time(&dev, 32768, 64);
        assert!((t - 14.327).abs() / 14.327 < 0.01, "t = {t}");
    }

    #[test]
    fn gemm_rate_grows_with_inner_dim() {
        let dev = Device::h100();
        let r64 = 2.0 * 4096f64.powi(2) * 64.0 / gemm_time(&dev, 4096, 4096, 64) / 1e12;
        let r2048 = 2.0 * 4096f64.powi(2) * 2048.0 / gemm_time(&dev, 4096, 4096, 2048) / 1e12;
        assert!(r64 < 30.0 && r64 > 15.0, "k=64 rate {r64}");
        assert!(r2048 > 40.0, "k=2048 rate {r2048}");
    }

    #[test]
    fn bulge_time_scales() {
        let h = Device::h100();
        let r = Device::rtx4090();
        assert!(bc_bulge_time(&h, 32, true) < bc_bulge_time(&h, 32, false));
        assert!(bc_bulge_time(&h, 64, true) > bc_bulge_time(&h, 32, true));
        assert!(bc_bulge_time(&r, 32, true) > bc_bulge_time(&h, 32, true));
    }
}
