//! Ablation studies over the design choices the paper stacks together.
//!
//! The paper's headline (19.6 vs 3.4 TFLOP/s) combines four independent
//! decisions; these functions isolate each one's contribution by toggling
//! it inside the composed model:
//!
//! 1. double blocking (DBBR) vs single blocking (SBR),
//! 2. the Figure-7 square-block `syr2k` vs cuBLAS `syr2k`,
//! 3. GPU bulge chasing vs CPU bulge chasing,
//! 4. optimized (L2-compact, warp-grouped) vs naive GPU BC kernels,
//! 5. the bandwidth/rank split `(b, k)` itself.

use crate::calib::*;
use crate::compose;
use crate::device::Device;
use crate::kernels::*;
use serde::Serialize;

/// A named configuration and its modeled tridiagonalization time.
#[derive(Serialize, Clone, Debug)]
pub struct AblationRow {
    pub config: String,
    pub stage1_s: f64,
    pub bc_s: f64,
    pub total_s: f64,
    pub tflops: f64,
}

fn row(config: String, n: usize, stage1: f64, bc: f64) -> AblationRow {
    let flops = 4.0 / 3.0 * (n as f64).powi(3);
    AblationRow {
        config,
        stage1_s: stage1,
        bc_s: bc,
        total_s: stage1 + bc,
        tflops: flops / (stage1 + bc) / 1e12,
    }
}

/// DBBR variant that calls cuBLAS `syr2k` for its deferred trailing update
/// instead of the Figure-7 kernel — isolates the §5.1 contribution.
pub fn dbbr_time_with_cublas_syr2k(dev: &Device, n: usize, b: usize, k: usize) -> f64 {
    let mut t = 0.0;
    let mut i = 0;
    while i + b + 1 < n {
        let mut kacc = 0;
        let mut j = i;
        while j < i + k && j + b + 1 < n {
            let m = n - j - b;
            t += DBBR_PANEL_OVERHEAD_S + panel_qr_time(dev, m, b) + symm_time(dev, m, b);
            if kacc > 0 {
                t += 4.0 * gemm_time(dev, m, b, kacc);
            }
            kacc += b;
            j += b;
        }
        if kacc > 0 && j < n {
            t += cublas_syr2k_time(dev, n - j, kacc);
        }
        i += k;
    }
    t
}

/// The full ablation ladder from the MAGMA baseline to the paper's final
/// configuration, at one matrix size.
pub fn ladder(dev: &Device, n: usize) -> Vec<AblationRow> {
    vec![
        // baseline: MAGMA two-stage (b = 64, CPU BC)
        {
            let (s, bc) = compose::tridiag_magma(dev, n, 64);
            row("SBR(b=64) + CPU BC  [MAGMA baseline]".into(), n, s, bc)
        },
        // + GPU BC only (naive kernel), same SBR
        {
            let s = compose::sbr_time_magma(dev, n, 64);
            let bc = compose::bc_gpu_time(dev, n, 64, false, None);
            row("SBR(b=64) + naive GPU BC".into(), n, s, bc)
        },
        // + DBBR (cuBLAS syr2k inside), naive GPU BC
        {
            let s = dbbr_time_with_cublas_syr2k(dev, n, 64, 1024);
            let bc = compose::bc_gpu_time(dev, n, 64, false, None);
            row(
                "DBBR(b=64,k=1024, cuBLAS syr2k) + naive GPU BC".into(),
                n,
                s,
                bc,
            )
        },
        // + the Figure-7 square-block syr2k
        {
            let s = compose::dbbr_time(dev, n, 64, 1024);
            let bc = compose::bc_gpu_time(dev, n, 64, false, None);
            row(
                "DBBR(b=64,k=1024, square syr2k) + naive GPU BC".into(),
                n,
                s,
                bc,
            )
        },
        // + shrink the band to b = 32 (BC gets cheaper, syr2k stays wide)
        {
            let s = compose::dbbr_time(dev, n, 32, 1024);
            let bc = compose::bc_gpu_time(dev, n, 32, false, None);
            row("DBBR(b=32,k=1024) + naive GPU BC".into(), n, s, bc)
        },
        // + optimized BC kernel (paper's final configuration)
        {
            let (s, bc) = compose::tridiag_ours(dev, n, 32, 1024);
            row(
                "DBBR(b=32,k=1024) + optimized GPU BC  [paper]".into(),
                n,
                s,
                bc,
            )
        },
    ]
}

/// Sensitivity of the final configuration to the `(b, k)` choice.
pub fn bk_sweep(dev: &Device, n: usize) -> Vec<AblationRow> {
    let mut out = Vec::new();
    for &b in &[16usize, 32, 64, 128] {
        for &k in &[256usize, 1024] {
            if k < b {
                continue;
            }
            let s = compose::dbbr_time(dev, n, b, k);
            let bc = compose::bc_gpu_time(dev, n, b, true, None);
            out.push(row(format!("b={b:<3} k={k}"), n, s, bc));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_improvement() {
        // each added optimization must not slow the pipeline down
        let dev = Device::h100();
        let rows = ladder(&dev, 49152);
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(
                w[1].total_s <= w[0].total_s * 1.05,
                "'{}' ({:.2}s) slower than '{}' ({:.2}s)",
                w[1].config,
                w[1].total_s,
                w[0].config,
                w[0].total_s
            );
        }
        // the ladder spans the paper's full 3.4 → ~19.6 TFLOP/s range
        assert!(rows[0].tflops < 4.0);
        assert!(rows[5].tflops > 15.0);
    }

    #[test]
    fn square_syr2k_contribution_is_visible() {
        let dev = Device::h100();
        let n = 49152;
        let with_cublas = dbbr_time_with_cublas_syr2k(&dev, n, 64, 1024);
        let with_square = compose::dbbr_time(&dev, n, 64, 1024);
        assert!(with_square < with_cublas, "{with_square} !< {with_cublas}");
    }

    #[test]
    fn bk_sweep_paper_choice_near_optimal() {
        let dev = Device::h100();
        let rows = bk_sweep(&dev, 49152);
        let best = rows
            .iter()
            .min_by(|a, b| a.total_s.partial_cmp(&b.total_s).unwrap())
            .unwrap();
        let paper = rows
            .iter()
            .find(|r| r.config.contains("b=32") && r.config.contains("k=1024"))
            .unwrap();
        // the paper's (32, 1024) is within 25 % of the model's optimum
        assert!(
            paper.total_s <= best.total_s * 1.25,
            "paper choice {:.2}s vs best '{}' {:.2}s",
            paper.total_s,
            best.config,
            best.total_s
        );
    }

    #[test]
    fn wide_band_hurts_bc_narrow_band_hurts_syr2k() {
        // the §3.2 tension that motivates DBBR, visible in the model
        let dev = Device::h100();
        let n = 49152;
        let bc16 = compose::bc_gpu_time(&dev, n, 16, true, None);
        let bc128 = compose::bc_gpu_time(&dev, n, 128, true, None);
        assert!(bc16 < bc128, "BC must get cheaper with narrower bands");
        let sbr16 = compose::sbr_time_magma(&dev, n, 16);
        let sbr128 = compose::sbr_time_magma(&dev, n, 128);
        assert!(sbr128 < sbr16, "SBR must get cheaper with wider bands");
    }
}
