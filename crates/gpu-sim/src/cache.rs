//! Set-associative LRU cache simulator + bulge-chasing access traces.
//!
//! Backs the paper's Figure-10 argument (§5.2): band entries embedded in a
//! full dense matrix are *non-consecutive* in memory, so the working set of
//! a bulge task spans many cache lines; the compact band layout makes the
//! same walk consecutive, and on an H100 the whole compact band
//! (`≈ 2b·n·8` bytes) fits in the 50 MB L2.

use tg_matrix::BandLayout;

/// A set-associative cache with LRU replacement.
pub struct CacheSim {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `tags[set]` holds up to `ways` line tags, most-recently-used last.
    tags: Vec<Vec<u64>>,
    pub hits: u64,
    pub misses: u64,
}

impl CacheSim {
    /// Builds a cache of `capacity_bytes` with the given associativity and
    /// line size. Panics unless the geometry divides evenly.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(capacity_bytes.is_multiple_of(ways * line_bytes), "geometry");
        let sets = capacity_bytes / (ways * line_bytes);
        CacheSim {
            line_bytes: line_bytes as u64,
            sets,
            ways,
            tags: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// A GPU-L2-like configuration: 128-byte lines, 16-way.
    pub fn gpu_l2(capacity_bytes: usize) -> Self {
        Self::new(capacity_bytes, 16, 128)
    }

    /// Simulates one access; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let ways = self.ways;
        let v = &mut self.tags[set];
        if let Some(pos) = v.iter().position(|&t| t == line) {
            let t = v.remove(pos);
            v.push(t);
            self.hits += 1;
            true
        } else {
            if v.len() == ways {
                v.remove(0);
            }
            v.push(line);
            self.misses += 1;
            false
        }
    }

    /// Hit rate over all accesses so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets counters (keeps contents).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// Streams the accesses of bulge-chasing sweeps into `cache` using the
/// given storage layout, and returns the hit rate.
///
/// `s_parallel` sweeps proceed in the interleaved order the pipeline
/// produces (round-robin over in-flight sweeps, one task each), touching
/// the three `b × b` blocks of each task.
pub fn bc_trace_hit_rate(
    cache: &mut CacheSim,
    layout: BandLayout,
    n: usize,
    b: usize,
    n_sweeps: usize,
    s_parallel: usize,
) -> f64 {
    let n_sweeps = n_sweeps.min(n.saturating_sub(b + 2));
    let mut next_task = vec![0usize; n_sweeps];
    let mut done = vec![false; n_sweeps];
    let mut n_done = 0usize;
    while n_done < n_sweeps {
        // one wave: every live, unblocked sweep advances by one task
        let mut advanced = false;
        let mut active = 0usize;
        for s in 0..n_sweeps {
            if done[s] {
                continue;
            }
            // law ①: stay ≥ 3 tasks behind the previous sweep
            if s > 0 && !done[s - 1] && next_task[s - 1] < next_task[s] + 3 {
                break;
            }
            active += 1;
            if active > s_parallel {
                break; // law ③
            }
            let j = next_task[s];
            let col0 = if j == 0 { s } else { s + 1 + (j - 1) * b };
            if col0 + b + 1 >= n {
                done[s] = true;
                n_done += 1;
                continue;
            }
            access_task(cache, layout, n, b, col0);
            next_task[s] += 1;
            advanced = true;
        }
        if !advanced {
            break; // all remaining sweeps are trivially done
        }
    }
    cache.hit_rate()
}

/// Accesses the three blocks of one bulge task anchored at column `col0`.
fn access_task(cache: &mut CacheSim, layout: BandLayout, n: usize, b: usize, col0: usize) {
    let r0 = (col0 + b).min(n - 1);
    // diagonal block, off-band block, bulge block — read + write each entry
    for c in col0..(col0 + b).min(n) {
        for r in c..(c + 2 * b).min(n) {
            if r < r0 + 2 * b && r >= c {
                let a = layout.address(r, c);
                cache.access(a);
                cache.access(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_basics() {
        let mut c = CacheSim::new(2 * 64, 2, 64); // 1 set, 2 ways
        assert!(!c.access(0));
        assert!(!c.access(64));
        assert!(c.access(0)); // still resident
        assert!(!c.access(128)); // evicts LRU (64)
        assert!(!c.access(64));
    }

    #[test]
    fn sequential_stream_has_high_hit_rate() {
        let mut c = CacheSim::gpu_l2(1 << 20);
        for i in 0..10_000u64 {
            c.access(i * 8);
        }
        // 16 doubles per 128-byte line ⇒ 15/16 hit rate
        assert!((c.hit_rate() - 15.0 / 16.0).abs() < 0.01);
    }

    #[test]
    fn strided_stream_misses() {
        let mut c = CacheSim::gpu_l2(1 << 20);
        for i in 0..10_000u64 {
            c.access(i * 8 * 1024); // > line stride, > capacity coverage
        }
        assert!(c.hit_rate() < 0.01);
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        // bigger cache ⇒ hit rate can only improve on the same trace
        let trace: Vec<u64> = (0..20_000u64).map(|i| (i * 7919) % 100_000 * 8).collect();
        let mut small = CacheSim::gpu_l2(1 << 16);
        let mut big = CacheSim::gpu_l2(1 << 22);
        for &a in &trace {
            small.access(a);
            big.access(a);
        }
        assert!(big.hit_rate() >= small.hit_rate());
    }

    /// Figure 10's claim, quantified: the compact band layout yields a
    /// substantially better L2 hit rate than the dense-embedded layout
    /// once the dense matrix no longer fits in L2.
    #[test]
    fn compact_layout_beats_dense_embedding() {
        // Geometry chosen so the *compact* band working set fits the cache
        // while the dense-embedded band (3× line waste: 136 useful bytes
        // per column spread over 128-byte lines at 8·n stride) does not —
        // the same relationship as n = 65536, b = 32 vs the 50 MB H100 L2.
        let n = 4096;
        let b = 4;
        let cap = 1 << 18; // 256 KB L2 stand-in
        let sweeps = 512;
        let mut dense_cache = CacheSim::gpu_l2(cap);
        let dense_rate = bc_trace_hit_rate(
            &mut dense_cache,
            BandLayout::Dense { n },
            n,
            b,
            sweeps,
            sweeps,
        );
        let mut compact_cache = CacheSim::gpu_l2(cap);
        let compact_rate = bc_trace_hit_rate(
            &mut compact_cache,
            BandLayout::Compact { ldab: 2 * b + 1 },
            n,
            b,
            sweeps,
            sweeps,
        );
        assert!(
            compact_rate > dense_rate + 0.05,
            "compact {compact_rate:.3} vs dense {dense_rate:.3}"
        );
    }
}
