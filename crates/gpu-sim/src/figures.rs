//! Structured regenerators for every table and figure in the paper's
//! evaluation. The `repro` binary in `tg-bench` pretty-prints these.

use crate::compose;
use crate::device::Device;
use crate::kernels;
use crate::pipeline;
use serde::Serialize;

/// One cell of Table 1.
#[derive(Serialize, Clone, Debug)]
pub struct Table1Row {
    pub k: usize,
    pub h100_n8192_tflops: f64,
    pub h100_n32768_tflops: f64,
    pub rtx4090_n8192_tflops: f64,
    pub rtx4090_n32768_tflops: f64,
}

/// Table 1: cuBLAS `Dsyr2k` throughput vs `k`.
pub fn table1() -> Vec<Table1Row> {
    let h100 = Device::h100();
    let rtx = Device::rtx4090();
    let rate = |dev: &Device, n: usize, k: usize| {
        kernels::syr2k_flops(n, k) / kernels::cublas_syr2k_time(dev, n, k) / 1e12
    };
    [16usize, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        .iter()
        .map(|&k| Table1Row {
            k,
            h100_n8192_tflops: rate(&h100, 8192, k),
            h100_n32768_tflops: rate(&h100, 32768, k),
            rtx4090_n8192_tflops: rate(&rtx, 8192, k),
            rtx4090_n32768_tflops: rate(&rtx, 32768, k),
        })
        .collect()
}

/// Figure 4: EVD time breakdown at `n = 49152` on H100.
#[derive(Serialize, Clone, Debug)]
pub struct Fig4 {
    pub n: usize,
    pub cusolver_sytrd_s: f64,
    pub cusolver_dc_s: f64,
    pub cusolver_tridiag_share: f64,
    pub cusolver_tridiag_tflops: f64,
    pub magma_sbr_s: f64,
    pub magma_bc_s: f64,
    pub magma_dc_s: f64,
    pub magma_bc_share_of_tridiag: f64,
    pub magma_tridiag_tflops: f64,
}

pub fn fig4() -> Fig4 {
    let dev = Device::h100();
    let n = 49152usize;
    let flops = 4.0 / 3.0 * (n as f64).powi(3);
    let sytrd = compose::tridiag_cusolver(&dev, n);
    let cdc = compose::dc_time_cusolver(n);
    let (sbr, bc) = compose::tridiag_magma(&dev, n, 64);
    let mdc = compose::dc_time_magma(n);
    Fig4 {
        n,
        cusolver_sytrd_s: sytrd,
        cusolver_dc_s: cdc,
        cusolver_tridiag_share: sytrd / (sytrd + cdc),
        cusolver_tridiag_tflops: flops / sytrd / 1e12,
        magma_sbr_s: sbr,
        magma_bc_s: bc,
        magma_dc_s: mdc,
        magma_bc_share_of_tridiag: bc / (sbr + bc),
        magma_tridiag_tflops: flops / (sbr + bc) / 1e12,
    }
}

/// Figure 5: closed-form GPU-BC time vs `S` at `n = 65536`, `b = 32`,
/// with the MAGMA `sb2st` baseline.
#[derive(Serialize, Clone, Debug)]
pub struct Fig5Row {
    pub parallel_sweeps: usize,
    pub estimated_time_s: f64,
    pub des_time_s: Option<f64>,
    pub magma_baseline_s: f64,
}

pub fn fig5(with_des: bool) -> Vec<Fig5Row> {
    let dev = Device::h100();
    let n = 65536usize;
    let b = 32usize;
    let magma = kernels::magma_bc_time(&dev, n, b);
    let t_bulge = kernels::bc_bulge_time(&dev, b, false);
    [1usize, 2, 4, 8, 16, 32, 48, 64, 96, 128]
        .iter()
        .map(|&s| Fig5Row {
            parallel_sweeps: s,
            estimated_time_s: crate::bc_model::estimated_time(n, b, s, t_bulge),
            des_time_s: if with_des {
                Some(pipeline::simulate(n, b, s, t_bulge).makespan_s)
            } else {
                None
            },
            magma_baseline_s: magma,
        })
        .collect()
}

/// Figure 8: proposed vs cuBLAS `syr2k` across `n` (k = 1024) on H100.
#[derive(Serialize, Clone, Debug)]
pub struct Fig8Row {
    pub n: usize,
    pub cublas_tflops: f64,
    pub ours_tflops: f64,
}

pub fn fig8() -> Vec<Fig8Row> {
    let dev = Device::h100();
    let k = 1024;
    [
        4096usize, 8192, 16384, 24576, 32768, 40960, 49152, 57344, 65536,
    ]
    .iter()
    .map(|&n| {
        let f = kernels::syr2k_flops(n, k);
        Fig8Row {
            n,
            cublas_tflops: f / kernels::cublas_syr2k_time(&dev, n, k) / 1e12,
            ours_tflops: f / kernels::ours_syr2k_time(&dev, n, k) / 1e12,
        }
    })
    .collect()
}

/// Figure 9: DBBR vs MAGMA SBR (both `b = 64`) on H100.
#[derive(Serialize, Clone, Debug)]
pub struct Fig9Row {
    pub n: usize,
    pub magma_sbr_s: f64,
    pub dbbr_s: f64,
    pub speedup: f64,
}

pub fn fig9() -> Vec<Fig9Row> {
    let dev = Device::h100();
    [4096usize, 8192, 16384, 24576, 32768, 40960, 49152]
        .iter()
        .map(|&n| {
            let magma = compose::sbr_time_magma(&dev, n, 64);
            let ours = compose::dbbr_time(&dev, n, 64, 1024);
            Fig9Row {
                n,
                magma_sbr_s: magma,
                dbbr_s: ours,
                speedup: magma / ours,
            }
        })
        .collect()
}

/// Figure 11: bulge chasing — MAGMA vs naive GPU vs optimized GPU.
#[derive(Serialize, Clone, Debug)]
pub struct Fig11Row {
    pub n: usize,
    pub magma_s: f64,
    pub naive_gpu_s: f64,
    pub optimized_gpu_s: f64,
    pub naive_speedup: f64,
    pub optimized_speedup: f64,
}

pub fn fig11() -> Vec<Fig11Row> {
    let dev = Device::h100();
    let b = 32;
    [4096usize, 8192, 16384, 32768, 49152, 65536]
        .iter()
        .map(|&n| {
            let magma = kernels::magma_bc_time(&dev, n, b);
            let naive = compose::bc_gpu_time(&dev, n, b, false, None);
            let opt = compose::bc_gpu_time(&dev, n, b, true, None);
            Fig11Row {
                n,
                magma_s: magma,
                naive_gpu_s: naive,
                optimized_gpu_s: opt,
                naive_speedup: magma / naive,
                optimized_speedup: magma / opt,
            }
        })
        .collect()
}

/// Figure 12: achieved memory throughput vs parallel sweeps (DES).
#[derive(Serialize, Clone, Debug)]
pub struct Fig12Row {
    pub parallel_sweeps: usize,
    pub throughput_tbs: f64,
    pub avg_parallelism: f64,
}

pub fn fig12(n: usize) -> Vec<Fig12Row> {
    let dev = Device::h100();
    let b = 32;
    let t_bulge = kernels::bc_bulge_time(&dev, b, true);
    let max = kernels::bc_max_sweeps(&dev, true);
    let mut ss = vec![1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    ss.retain(|&s| s < max);
    ss.push(max);
    ss.iter()
        .map(|&s| {
            let st = pipeline::simulate(n, b, s, t_bulge);
            Fig12Row {
                parallel_sweeps: s,
                throughput_tbs: st.throughput_tbs,
                avg_parallelism: st.avg_parallelism,
            }
        })
        .collect()
}

/// Figure 14: back transformation, MAGMA `ormqr` vs proposed (`b = 64`,
/// merge width 2048).
#[derive(Serialize, Clone, Debug)]
pub struct Fig14Row {
    pub n: usize,
    pub magma_s: f64,
    pub ours_s: f64,
    pub speedup: f64,
}

pub fn fig14() -> Vec<Fig14Row> {
    let dev = Device::h100();
    [8192usize, 16384, 24576, 32768, 40960, 49152]
        .iter()
        .map(|&n| {
            let magma = compose::backtransform_magma(&dev, n, 64);
            let ours = compose::backtransform_ours(&dev, n, 64, 2048);
            Fig14Row {
                n,
                magma_s: magma,
                ours_s: ours,
                speedup: magma / ours,
            }
        })
        .collect()
}

/// Figure 15: tridiagonalization across sizes and devices.
#[derive(Serialize, Clone, Debug)]
pub struct Fig15Row {
    pub n: usize,
    pub cusolver_s: f64,
    pub cusolver_tflops: f64,
    pub magma_sbr_s: f64,
    pub magma_bc_s: f64,
    pub magma_tflops: f64,
    pub ours_stage1_s: f64,
    pub ours_bc_s: f64,
    pub ours_tflops: f64,
}

pub fn fig15(dev: &Device, sizes: &[usize]) -> Vec<Fig15Row> {
    sizes
        .iter()
        .map(|&n| {
            let flops = 4.0 / 3.0 * (n as f64).powi(3);
            let cus = compose::tridiag_cusolver(dev, n);
            let (msbr, mbc) = compose::tridiag_magma(dev, n, 64);
            let (dbbr, obc) = compose::tridiag_ours(dev, n, 32, 1024);
            Fig15Row {
                n,
                cusolver_s: cus,
                cusolver_tflops: flops / cus / 1e12,
                magma_sbr_s: msbr,
                magma_bc_s: mbc,
                magma_tflops: flops / (msbr + mbc) / 1e12,
                ours_stage1_s: dbbr,
                ours_bc_s: obc,
                ours_tflops: flops / (dbbr + obc) / 1e12,
            }
        })
        .collect()
}

/// Figure 16: end-to-end EVD, with and without eigenvectors.
#[derive(Serialize, Clone, Debug)]
pub struct Fig16Row {
    pub n: usize,
    pub vectors: bool,
    pub cusolver_s: f64,
    pub magma_s: f64,
    pub ours_s: f64,
    pub speedup_vs_cusolver: f64,
    pub speedup_vs_magma: f64,
}

pub fn fig16() -> Vec<Fig16Row> {
    let dev = Device::h100();
    let mut rows = Vec::new();
    for &vectors in &[false, true] {
        for &n in &[4096usize, 8192, 16384, 24576, 32768, 40960, 49152] {
            let cus = compose::evd_cusolver(&dev, n, vectors);
            let mag = compose::evd_magma(&dev, n, vectors);
            let ours = compose::evd_ours(&dev, n, vectors);
            rows.push(Fig16Row {
                n,
                vectors,
                cusolver_s: cus,
                magma_s: mag,
                ours_s: ours,
                speedup_vs_cusolver: cus / ours,
                speedup_vs_magma: mag / ours,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_expected_shape() {
        let t = table1();
        assert_eq!(t.len(), 9);
        // monotone in k on H100
        for w in t.windows(2) {
            assert!(w[1].h100_n8192_tflops > w[0].h100_n8192_tflops);
            assert!(w[1].h100_n32768_tflops > w[0].h100_n32768_tflops);
        }
        // 4090 near peak everywhere
        for r in &t {
            assert!(r.rtx4090_n8192_tflops > 0.9 && r.rtx4090_n8192_tflops < 1.3);
        }
    }

    #[test]
    fn fig4_shares() {
        let f = fig4();
        // §3.1: tridiagonalization is > 97 % of cuSOLVER's EVD
        assert!(
            f.cusolver_tridiag_share > 0.95,
            "{}",
            f.cusolver_tridiag_share
        );
        // §3.1: BC is ≈ 48 % of MAGMA's two-stage tridiagonalization
        assert!(
            (0.40..0.58).contains(&f.magma_bc_share_of_tridiag),
            "{}",
            f.magma_bc_share_of_tridiag
        );
        assert!((f.magma_tridiag_tflops - 3.4).abs() < 0.7);
        assert!((f.cusolver_tridiag_tflops - 2.0).abs() < 0.4);
    }

    #[test]
    fn fig5_crossover() {
        let rows = fig5(false);
        let magma = rows[0].magma_baseline_s;
        let at = |s: usize| {
            rows.iter()
                .find(|r| r.parallel_sweeps == s)
                .unwrap()
                .estimated_time_s
        };
        assert!(at(1) > magma * 5.0);
        assert!(at(16) > magma);
        assert!(at(32) < magma);
        assert!(at(128) < at(32));
    }

    #[test]
    fn fig8_cliff_and_win() {
        let rows = fig8();
        for r in &rows {
            assert!(r.ours_tflops > r.cublas_tflops, "n={}", r.n);
        }
        let r32k = rows.iter().find(|r| r.n == 32768).unwrap();
        let r49k = rows.iter().find(|r| r.n == 49152).unwrap();
        assert!(r49k.cublas_tflops < 0.5 * r32k.cublas_tflops);
        assert!(r49k.ours_tflops > 0.9 * r32k.ours_tflops);
    }

    #[test]
    fn fig9_speedup_band() {
        let rows = fig9();
        assert!(rows.iter().all(|r| r.speedup > 1.0), "DBBR always wins");
        // at the paper's largest size the ratio lands near the quoted 3.1×
        let last = rows.last().unwrap();
        assert!(
            (2.5..4.5).contains(&last.speedup),
            "DBBR speedup at {} = {:.2}",
            last.n,
            last.speedup
        );
    }

    #[test]
    fn fig11_speedup_bands() {
        let rows = fig11();
        let last = rows.last().unwrap();
        assert!((4.0..8.0).contains(&last.naive_speedup));
        assert!((9.0..16.0).contains(&last.optimized_speedup));
    }

    #[test]
    fn fig12_throughput_monotone() {
        let rows = fig12(4096); // small n: test-speed DES
        for w in rows.windows(2) {
            assert!(w[1].throughput_tbs >= w[0].throughput_tbs * 0.95);
        }
        assert!(rows.last().unwrap().throughput_tbs > 3.0 * rows[0].throughput_tbs);
    }

    #[test]
    fn fig14_band() {
        for r in fig14() {
            assert!(
                (1.1..2.4).contains(&r.speedup),
                "n={} {:.2}",
                r.n,
                r.speedup
            );
        }
    }

    #[test]
    fn fig15_h100_headline() {
        let rows = fig15(&Device::h100(), &[16384, 32768, 49152]);
        let last = rows.last().unwrap();
        assert!(
            (16.0..24.0).contains(&last.ours_tflops),
            "{}",
            last.ours_tflops
        );
        assert!(last.ours_tflops > 4.0 * last.magma_tflops);
        assert!(last.magma_tflops > last.cusolver_tflops);
    }

    #[test]
    fn fig15_rtx4090_bc_comparison() {
        // §6.1: on the 4090, MAGMA BC 14 327 ms vs ours 1 839 ms at 32768
        let rows = fig15(&Device::rtx4090(), &[4096, 32768]);
        let big = rows.last().unwrap();
        let ratio = big.magma_bc_s / big.ours_bc_s;
        assert!((5.0..11.0).contains(&ratio), "4090 BC ratio {ratio:.1}");
        // ours can exceed the FP64 peak thanks to the INT8 DGEMM model
        assert!(big.ours_tflops > 1.0);
    }

    #[test]
    fn fig16_headline() {
        let rows = fig16();
        let novec: Vec<_> = rows.iter().filter(|r| !r.vectors).collect();
        let best_cus = novec
            .iter()
            .map(|r| r.speedup_vs_cusolver)
            .fold(0.0, f64::max);
        // vs MAGMA compare at the anchor size (small-n ratios are dominated
        // by MAGMA's cuBLAS call floors in the model)
        let mag_49k = novec
            .iter()
            .find(|r| r.n == 49152)
            .unwrap()
            .speedup_vs_magma;
        assert!((4.5..8.0).contains(&best_cus), "{best_cus:.1}");
        assert!((2.8..5.0).contains(&mag_49k), "{mag_49k:.1}");
        // small-n crossover: at 4096 without vectors cuSOLVER wins
        let small = novec.iter().find(|r| r.n == 4096).unwrap();
        assert!(small.speedup_vs_cusolver < 1.1);
        // with vectors the advantage over cuSOLVER is modest
        let wv: Vec<_> = rows.iter().filter(|r| r.vectors).collect();
        let best_v = wv.iter().map(|r| r.speedup_vs_cusolver).fold(0.0, f64::max);
        assert!((1.1..2.5).contains(&best_v), "{best_v:.2}");
    }
}
