//! Batched-launch cost model: many moderate-size EVDs on one device.
//!
//! A single n ≈ 256 EVD is *overhead-dominated* on a datacenter GPU: the
//! divide & conquer's host synchronization alone costs hundreds of
//! milliseconds ([`crate::calib::MAGMA_DC_OVERHEAD_S`]), panel factorizations
//! pay a fixed launch/sync cost each, and every problem re-allocates its
//! reduction workspaces (`cudaMalloc` synchronizes the device). None of
//! that overhead does arithmetic, so running problems one at a time leaves
//! the device idle almost all the time.
//!
//! The batched execution that `tg-batch` mirrors on the CPU fixes this in
//! two ways, and the model charges exactly those two effects:
//!
//! 1. **Workspace reuse.** Each of the `w` workers (streams) allocates one
//!    workspace set and recycles it across its problems (the arena), so
//!    allocation cost scales with `w`, not with `count`.
//! 2. **Overlap.** Problems run concurrently on separate streams; fixed
//!    sync latencies overlap, and compute overlaps until the aggregate
//!    working set saturates the device ([`concurrency`]). Only the
//!    host-side *launch issue* stream stays serial.
//!
//! Everything here composes the same single-problem primitive
//! ([`crate::compose::evd_ours`]) that regenerates Figure 16 — the batch
//! model adds scheduling arithmetic on top, it does not refit any kernel.

use crate::compose;
use crate::device::Device;

/// Driver-synchronizing allocation cost per workspace buffer
/// (`cudaMalloc`-class, ~100 µs — device-independent driver behaviour).
pub const ALLOC_PER_BUFFER_S: f64 = 1.0e-4;

/// Host-side cost to *issue* one kernel launch (~5 µs). Issue is serial
/// across streams — it is the part of per-problem overhead that batching
/// cannot overlap.
pub const LAUNCH_ISSUE_S: f64 = 5.0e-6;

/// Kernel launches issued per DBBR panel (QR, just-in-time updates, the
/// corrected-Z `symm`, bookkeeping).
pub const LAUNCHES_PER_PANEL: f64 = 6.0;

/// Kernel launches for the non-panel remainder of one EVD (bulge chasing,
/// D&C merges, back transformation).
pub const LAUNCHES_FIXED: f64 = 200.0;

/// Single problem size that saturates the device: a problem of dimension
/// `n` can overlap with roughly `BATCH_SATURATION_N / n` peers before
/// aggregate compute serializes. Matches where Figure 15's single-problem
/// `syr2k` curves reach their plateau.
pub const BATCH_SATURATION_N: usize = 4096;

/// Distinct workspace-buffer acquisitions for one two-stage reduction with
/// bandwidth `b` and accumulation width `k` — the same sequence
/// `tg-batch`'s arena serves: per `k`-block the two accumulators, plus
/// three panel buffers (`u`, `znew`, `ynew`) per panel.
pub fn workspace_buffers(n: usize, b: usize, k: usize) -> usize {
    let blocks = n.div_ceil(k.max(1)).max(1);
    let panels = n.div_ceil(b.max(1)).max(1);
    2 * blocks + 3 * panels
}

/// Arena hit rate the model predicts for a uniform-shape batch: each of
/// the `min(workers, count)` arenas takes its misses on its first problem
/// only, so `hits / total = (count − workers) / count`.
pub fn predicted_hit_rate(count: usize, workers: usize) -> f64 {
    if count == 0 {
        return 0.0;
    }
    (count.saturating_sub(workers.max(1).min(count))) as f64 / count as f64
}

/// Effective stream concurrency for `workers` streams of `n`-sized
/// problems: capped by how many such problems fit on the device at once.
pub fn concurrency(dev: &Device, workers: usize, n: usize) -> usize {
    // sm_count enters through BATCH_SATURATION_N being an H100-class
    // figure; scale it for smaller parts.
    let sat = (BATCH_SATURATION_N as f64 * dev.sm_count as f64 / 132.0).max(1.0);
    let fit = (sat / n.max(1) as f64).floor().max(1.0) as usize;
    workers.max(1).min(fit)
}

/// Workspace allocation time for one worker's arena (paid once per worker
/// in the batched path, once per problem in the serial loop).
pub fn alloc_time(n: usize, b: usize, k: usize) -> f64 {
    workspace_buffers(n, b, k) as f64 * ALLOC_PER_BUFFER_S
}

/// Host launch-issue time for one EVD (serial even under batching).
pub fn issue_time(n: usize, b: usize) -> f64 {
    let panels = n.div_ceil(b.max(1)) as f64;
    (panels * LAUNCHES_PER_PANEL + LAUNCHES_FIXED) * LAUNCH_ISSUE_S
}

fn shape_defaults(n: usize) -> (usize, usize) {
    // mirrors EvdMethod::proposed_default / compose::evd_ours (b=32, k=1024)
    (32.min((n / 8).max(2)), 1024.min(n.max(1)))
}

/// Modeled wall time for a *serial loop* over `count` problems: every
/// problem pays allocation + issue + the full single-problem EVD latency.
pub fn evd_serial_loop_time(dev: &Device, n: usize, count: usize, vectors: bool) -> f64 {
    let (b, k) = shape_defaults(n);
    count as f64 * (alloc_time(n, b, k) + issue_time(n, b) + compose::evd_ours(dev, n, vectors))
}

/// Modeled wall time for the batched path: `workers` streams, one cached
/// workspace arena each, execution overlapped up to [`concurrency`].
pub fn evd_batch_time(dev: &Device, n: usize, count: usize, workers: usize, vectors: bool) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let (b, k) = shape_defaults(n);
    let w = workers.max(1).min(count);
    let c = concurrency(dev, w, n) as f64;
    w as f64 * alloc_time(n, b, k)                       // one arena per worker
        + count as f64 * issue_time(n, b)                // serial host issue
        + count as f64 * compose::evd_ours(dev, n, vectors) / c // overlapped execution
}

/// One row of the batch-scaling table.
#[derive(Clone, Copy, Debug)]
pub struct BatchPoint {
    /// Problems in the batch.
    pub count: usize,
    /// Workers / streams.
    pub workers: usize,
    /// Modeled serial-loop seconds.
    pub serial_s: f64,
    /// Modeled batched seconds.
    pub batched_s: f64,
    /// Predicted arena hit rate for this configuration.
    pub hit_rate: f64,
}

impl BatchPoint {
    /// Serial / batched speedup.
    pub fn speedup(&self) -> f64 {
        if self.batched_s > 0.0 {
            self.serial_s / self.batched_s
        } else {
            0.0
        }
    }
}

/// Batch-scaling sweep: one [`BatchPoint`] per worker count.
pub fn batch_scaling(
    dev: &Device,
    n: usize,
    count: usize,
    worker_counts: &[usize],
    vectors: bool,
) -> Vec<BatchPoint> {
    let serial_s = evd_serial_loop_time(dev, n, count, vectors);
    worker_counts
        .iter()
        .map(|&w| BatchPoint {
            count,
            workers: w,
            serial_s,
            batched_s: evd_batch_time(dev, n, count, w, vectors),
            hit_rate: predicted_hit_rate(count, w),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_64_problems_n256_8_workers_at_least_2x() {
        // ISSUE acceptance: ≥2× modeled throughput for a 64-problem
        // n = 256 batch on 8 workers vs the serial loop.
        let dev = Device::h100();
        let p = &batch_scaling(&dev, 256, 64, &[8], false)[0];
        assert!(
            p.speedup() >= 2.0,
            "expected ≥2× for 64×n=256 on 8 workers, got {:.2}×",
            p.speedup()
        );
        // and the win is bounded by the worker count — no free lunch
        assert!(p.speedup() <= 8.0 + 1e-9, "{:.2}×", p.speedup());
    }

    #[test]
    fn speedup_monotone_in_workers_until_saturation() {
        let dev = Device::h100();
        let pts = batch_scaling(&dev, 256, 64, &[1, 2, 4, 8, 16], false);
        for pair in pts.windows(2) {
            assert!(
                pair[1].speedup() >= pair[0].speedup() - 1e-12,
                "speedup dropped: {pair:?}"
            );
        }
        // one worker with an arena still beats per-problem reallocation,
        // but only barely — overlap is where the real win is
        assert!(pts[0].speedup() >= 1.0);
        assert!(pts[0].speedup() < 1.5);
    }

    #[test]
    fn concurrency_caps_large_problems() {
        let dev = Device::h100();
        // an n = 4096 problem saturates the device alone: no overlap
        assert_eq!(concurrency(&dev, 8, 4096), 1);
        // small problems overlap many-wide
        assert!(concurrency(&dev, 16, 256) >= 8);
        // worker cap still applies
        assert_eq!(concurrency(&dev, 2, 256), 2);
    }

    #[test]
    fn predicted_hit_rate_matches_arena_arithmetic() {
        assert_eq!(predicted_hit_rate(64, 1), 63.0 / 64.0);
        assert_eq!(predicted_hit_rate(64, 8), 56.0 / 64.0);
        assert_eq!(predicted_hit_rate(4, 8), 0.0);
        assert_eq!(predicted_hit_rate(0, 4), 0.0);
        // uniform 64-batch on one worker predicts > 90% — the acceptance
        // threshold the real arena is held to in tg-batch's tests
        assert!(predicted_hit_rate(64, 1) > 0.9);
    }

    #[test]
    fn workspace_buffers_tracks_panel_count() {
        // n=256, b=32, k=1024 → 1 block, 8 panels → 2 + 24 = 26 buffers
        // (the real dbbr_ws sequence skips the final sub-band panel, so
        // this is an upper bound that scales with the same n/b, n/k terms)
        assert_eq!(workspace_buffers(256, 32, 1024), 26);
        assert!(workspace_buffers(512, 32, 1024) > workspace_buffers(256, 32, 1024));
    }
}
