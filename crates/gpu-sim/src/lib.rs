//! # tg-gpu-sim
//!
//! The GPU substrate substitute: device models, calibrated kernel cost
//! models, the paper's bulge-chasing pipeline model (closed form, §3.3)
//! plus a discrete-event cross-check, an L2 cache simulator for the
//! Figure-10 layout argument, and algorithm-level time composers used to
//! regenerate every table and figure of the evaluation.
//!
//! ## Why a model and not a GPU
//!
//! This reproduction runs on a CPU-only host. The paper's performance
//! claims are *shape* claims — who wins, by what factor, where crossovers
//! sit — and those shapes derive from (a) roofline arithmetic, (b) the
//! empirically poor small-`k` behaviour of cuBLAS `syr2k` (Table 1), and
//! (c) the sweep-pipeline structure of bulge chasing. All three are
//! mechanistic and reproducible without the silicon. Kernel primitives are
//! calibrated against numbers *printed in the paper* (see [`calib`]);
//! figure-level results are **composed** from those primitives, never
//! hard-coded.

pub mod ablation;
pub mod anchors;
pub mod batch;
pub mod bc_model;
pub mod cache;
pub mod calib;
pub mod compose;
pub mod device;
pub mod figures;
pub mod kernels;
pub mod model_check;
pub mod pipeline;
pub mod roofline;
pub mod tune;
pub mod whatif;

pub use device::{Device, DeviceKind};
