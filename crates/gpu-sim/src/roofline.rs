//! Roofline analysis (§3.2 cites Williams et al. \[25\] to explain why
//! small-`k` `syr2k` cannot run fast on an H100 but saturates an RTX 4090).
//!
//! For each kernel shape this module computes the arithmetic intensity
//! `AI = flops / bytes` and the roofline bound
//! `min(peak, AI · bandwidth)`, which the cost models in
//! [`crate::kernels`] must respect — a test enforces that no model ever
//! predicts super-roofline throughput.

use crate::device::Device;
use serde::Serialize;

/// A kernel shape placed on the roofline.
#[derive(Serialize, Clone, Debug)]
pub struct RooflinePoint {
    pub kernel: String,
    /// Arithmetic intensity in flops/byte.
    pub ai: f64,
    /// Roofline-bound throughput in TFLOP/s.
    pub bound_tflops: f64,
    /// What the calibrated cost model actually predicts.
    pub model_tflops: f64,
    /// Whether the kernel is memory-bound at this shape.
    pub memory_bound: bool,
}

/// Roofline bound for a given arithmetic intensity on a device (FP64
/// compute ceiling).
pub fn bound(dev: &Device, ai: f64) -> f64 {
    (ai * dev.mem_bw_tbs).min(dev.fp64_peak_tflops)
}

/// Like [`bound`] but with the *effective* compute ceiling — the INT8
/// tensor-core DGEMM rate where modeled (the RTX 4090 exceeding its FP64
/// peak in Figure 15b is exactly this ceiling).
pub fn bound_effective(dev: &Device, ai: f64) -> f64 {
    (ai * dev.mem_bw_tbs).min(dev.gemm_peak_tflops())
}

/// Arithmetic intensity of `syr2k` on an `n × n` result with rank `2k`:
/// reads `A`, `B` (`2·8nk`), reads + writes the `C` triangle (`2·8·n²/2`).
pub fn syr2k_ai(n: usize, k: usize) -> f64 {
    let flops = 2.0 * n as f64 * n as f64 * k as f64;
    let bytes = 16.0 * n as f64 * k as f64 + 8.0 * n as f64 * n as f64;
    flops / bytes
}

/// Arithmetic intensity of `symv` (`y = Ax`, symmetric `A` read once):
/// `2n²` flops over `8·n²/2 + 24n` bytes ⇒ ≈ 0.5 flops/byte — the §2.2
/// explanation of why direct tridiagonalization (≈50 % BLAS-2) is slow.
pub fn symv_ai(n: usize) -> f64 {
    let flops = 2.0 * n as f64 * n as f64;
    let bytes = 4.0 * n as f64 * n as f64 + 24.0 * n as f64;
    flops / bytes
}

/// Arithmetic intensity of square GEMM (`n³·2` flops, `3·8n²` bytes).
pub fn gemm_ai(n: usize) -> f64 {
    2.0 * n as f64 / 24.0
}

/// Places the paper's key kernel shapes on a device's roofline.
pub fn chart(dev: &Device, n: usize) -> Vec<RooflinePoint> {
    use crate::kernels;
    let mut out = Vec::new();
    for &k in &[16usize, 64, 128, 1024, 4096] {
        let ai = syr2k_ai(n, k);
        let model = kernels::syr2k_flops(n, k) / kernels::cublas_syr2k_time(dev, n, k) / 1e12;
        out.push(RooflinePoint {
            kernel: format!("cublas_syr2k k={k}"),
            ai,
            bound_tflops: bound(dev, ai),
            model_tflops: model,
            memory_bound: ai * dev.mem_bw_tbs < dev.fp64_peak_tflops,
        });
    }
    {
        let k = 1024;
        let ai = syr2k_ai(n, k);
        let model = kernels::syr2k_flops(n, k) / kernels::ours_syr2k_time(dev, n, k) / 1e12;
        out.push(RooflinePoint {
            kernel: format!("ours_syr2k k={k}"),
            ai,
            bound_tflops: bound(dev, ai),
            model_tflops: model,
            memory_bound: ai * dev.mem_bw_tbs < dev.fp64_peak_tflops,
        });
    }
    {
        // symm (the ZY product) at bandwidth 32
        let ai = 2.0 * 32.0 / 8.0 * 2.0; // 2n²b flops / (n²/2·8 + …) ≈ b/2
        let flops = 2.0 * (n as f64) * (n as f64) * 32.0;
        let model = flops / crate::kernels::symm_time(dev, n, 32) / 1e12;
        out.push(RooflinePoint {
            kernel: "symm b=32 (ZY product)".into(),
            ai,
            bound_tflops: bound(dev, ai),
            model_tflops: model,
            memory_bound: ai * dev.mem_bw_tbs < dev.fp64_peak_tflops,
        });
    }
    {
        let ai = symv_ai(n);
        // BLAS-2 half of direct sytrd runs at the symv roofline at best
        out.push(RooflinePoint {
            kernel: "symv (sytrd BLAS-2 half)".into(),
            ai,
            bound_tflops: bound(dev, ai),
            model_tflops: bound(dev, ai), // definitionally at the roofline
            memory_bound: true,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ai_formulas() {
        // syr2k AI ≈ k/4 for k ≪ n (the §3.2 back-of-envelope)
        let ai = syr2k_ai(32768, 64);
        assert!((ai - 64.0 / 4.0).abs() / ai < 0.2, "{ai}");
        // symv is ~0.5 flops/byte
        assert!((symv_ai(8192) - 0.5).abs() < 0.05);
        // gemm AI grows linearly with n
        assert!(gemm_ai(1200) > 10.0 * gemm_ai(120) * 0.99);
    }

    /// No calibrated model may exceed its roofline bound (physics check);
    /// memory-bound kernels must sit well below peak.
    #[test]
    fn models_respect_the_roofline() {
        for dev in [Device::h100(), Device::rtx4090()] {
            for p in chart(&dev, 32768) {
                let ceiling = bound_effective(&dev, p.ai);
                assert!(
                    p.model_tflops <= ceiling * 1.05,
                    "{} on {}: model {:.1} > roofline {:.1}",
                    p.kernel,
                    dev.name,
                    p.model_tflops,
                    ceiling
                );
            }
        }
    }

    /// The §3.2 observation: on H100, k = 64 syr2k is memory-bound far
    /// below peak; on the 4090 the same shape is compute-bound.
    #[test]
    fn h100_vs_4090_boundedness() {
        let h = Device::h100();
        let r = Device::rtx4090();
        let ai = syr2k_ai(32768, 64);
        assert!(bound(&h, ai) < h.fp64_peak_tflops, "H100 memory-bound");
        assert!(
            bound(&r, ai) >= r.fp64_peak_tflops,
            "4090 compute-bound at the same shape"
        );
    }

    /// Dimension-k growth moves syr2k from memory-bound to compute-bound on
    /// H100 — the mechanism behind Table 1 and the whole DBBR idea.
    #[test]
    fn k_moves_syr2k_across_the_ridge() {
        let h = Device::h100();
        let ridge = h.fp64_peak_tflops / h.mem_bw_tbs; // flops/byte at the ridge
        assert!(syr2k_ai(32768, 16) < ridge);
        assert!(syr2k_ai(32768, 128) > ridge * 0.9);
        assert!(syr2k_ai(32768, 1024) > ridge);
    }
}
