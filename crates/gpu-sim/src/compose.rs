//! Algorithm-level time composition.
//!
//! Every function replays the *control flow* of the corresponding algorithm
//! (the same loop structure as the real implementations in `tridiag-core`)
//! and sums kernel-model costs. Nothing here is fitted to a figure — only
//! the kernel primitives in [`crate::kernels`] are calibrated.

use crate::bc_model;
use crate::calib::*;
use crate::device::Device;
use crate::kernels::*;

/// MAGMA-style single-blocking SBR (`Dsy2sb`): per panel, a host-synced
/// panel QR, the ZY `symm`, and a rank-`2b` cuBLAS `syr2k`.
pub fn sbr_time_magma(dev: &Device, n: usize, b: usize) -> f64 {
    let mut t = 0.0;
    let mut j = 0;
    while j + b + 1 < n {
        let m = n - j - b;
        t += MAGMA_PANEL_OVERHEAD_S;
        t += panel_qr_time(dev, m, b);
        t += cublas_symm_time(dev, m, b); // Z = A W − ½Y(WᵀAW)
        t += cublas_syr2k_time(dev, m, b); // A₂ ← A₂ − ZYᵀ − YZᵀ
        j += b;
    }
    t
}

/// The proposed DBBR (Algorithm 1): panels stay GPU-resident, only the
/// next panel is updated inline, and the trailing update is a rank-`2k`
/// call to the square-block `syr2k`.
pub fn dbbr_time(dev: &Device, n: usize, b: usize, k: usize) -> f64 {
    let mut t = 0.0;
    let mut i = 0;
    while i + b + 1 < n {
        let mut kacc = 0;
        let mut j = i;
        while j < i + k && j + b + 1 < n {
            let m = n - j - b;
            t += DBBR_PANEL_OVERHEAD_S;
            t += panel_qr_time(dev, m, b);
            // just-in-time update of the current panel (rank 2·kacc GEMMs)
            if kacc > 0 {
                t += 2.0 * gemm_time(dev, m, b, kacc);
            }
            // corrected Z: symm against the trailing matrix + corrections
            t += symm_time(dev, m, b);
            if kacc > 0 {
                t += 2.0 * gemm_time(dev, m, b, kacc);
            }
            kacc += b;
            j += b;
        }
        if kacc > 0 && j < n {
            t += ours_syr2k_time(dev, n - j, kacc);
        }
        i += k;
    }
    t
}

/// GPU bulge chasing time via the closed-form pipeline model.
///
/// `s_override` pins the number of parallel sweeps (Figure 5/12 x-axis);
/// `None` uses the device's capacity for the chosen kernel flavour.
///
/// ```
/// use tg_gpu_sim::{compose, Device};
///
/// let dev = Device::h100();
/// let serial = compose::bc_gpu_time(&dev, 65536, 32, false, Some(1));
/// let full = compose::bc_gpu_time(&dev, 65536, 32, false, None);
/// assert!(full < serial / 50.0); // the Figure-5 story
/// ```
pub fn bc_gpu_time(
    dev: &Device,
    n: usize,
    b: usize,
    optimized: bool,
    s_override: Option<usize>,
) -> f64 {
    let s = s_override
        .unwrap_or_else(|| bc_max_sweeps(dev, optimized))
        .max(1);
    let t_bulge = bc_bulge_time(dev, b, optimized);
    bc_model::estimated_time(n, b, s, t_bulge)
}

/// Tridiagonalization totals for the three pipelines (Figure 15).
pub fn tridiag_cusolver(dev: &Device, n: usize) -> f64 {
    cusolver_sytrd_time(dev, n)
}

/// MAGMA two-stage (`Dsy2sb` + CPU `Dsb2st`), with the paper's `b = 64`.
pub fn tridiag_magma(dev: &Device, n: usize, b: usize) -> (f64, f64) {
    (sbr_time_magma(dev, n, b), magma_bc_time(dev, n, b))
}

/// The proposed pipeline with `b = 32`, `k = 1024` (paper defaults).
pub fn tridiag_ours(dev: &Device, n: usize, b: usize, k: usize) -> (f64, f64) {
    (dbbr_time(dev, n, b, k), bc_gpu_time(dev, n, b, true, None))
}

/// Back transformation, conventional `ormqr` order (Figure 14 baseline):
/// per factor two GEMMs whose inner dimension is only `b`, plus the cuBLAS
/// call floor.
pub fn backtransform_magma(dev: &Device, n: usize, b: usize) -> f64 {
    let mut t = 0.0;
    let mut j = 0;
    while j + b + 1 < n {
        let m = n - j - b;
        // X = Yᵀ C (inner m, cheap) ; C ← C − W X (inner b, the bottleneck)
        t += gemm_time(dev, b, n, m);
        t += gemm_time(dev, m, n, b);
        j += b;
    }
    t
}

/// Back transformation with the Figure-13 blocked `W` (merge to width `k`
/// with batched GEMMs, then apply wide factors).
pub fn backtransform_ours(dev: &Device, n: usize, b: usize, k: usize) -> f64 {
    let mut t = 0.0;
    // merge levels: widths b, 2b, … k/2 — each level is one batched GEMM
    // wave over all pairs (batched ⇒ one launch, near-GEMM rates)
    let mut w = b;
    while w < k {
        // at width w there are (n/b)/(2w/b) = n/(2w) pairs to merge
        let pair_count = (n / (2 * w)).max(1);
        // per pair: S = Y₁ᵀW₂ (w×w, inner n) and W₂ −= W₁S (n×w, inner w)
        let per_pair = 2.0 * (n as f64) * (w as f64) * (w as f64) * 2.0;
        let flops = per_pair * pair_count as f64;
        let rate = GEMM_SAT_TFLOPS.min(dev.gemm_peak_tflops() * 0.9)
            * (w as f64 / (w as f64 + GEMM_K_KNEE))
            * 1e12;
        t += flops / rate + 50.0e-6;
        w *= 2;
    }
    // apply ⌈(n/b)/(k/b)⌉ wide factors, inner dimension k
    let wide = (n / k).max(1);
    for i in 0..wide {
        let m = n - i * k;
        t += gemm_time(dev, k, n, m);
        t += gemm_time(dev, m, n, k);
    }
    t
}

/// Counted FLOPs of one `tg_blas::syr2k_blocked(n, rank k, block nb)`
/// call — an exact replay of the instrumented arithmetic: per column
/// panel of width `w`, the triangular `syr2k_ref` charges 4 flops per
/// (lower-triangle element, rank index) = `2·k·w·(w+1)`, and the
/// sub-diagonal strip is a pair of `m × w × k` GEMMs at `2mwk` each.
pub fn syr2k_blocked_flops(n: usize, k: usize, nb: usize) -> f64 {
    let mut t = 0.0;
    let mut j = 0;
    while j < n {
        let w = nb.min(n - j);
        t += 2.0 * k as f64 * w as f64 * (w as f64 + 1.0);
        let m = n - j - w;
        if m > 0 {
            t += 4.0 * m as f64 * w as f64 * k as f64;
        }
        j += w;
    }
    t
}

/// Counted FLOPs of one `tg_blas::syr2k_square(n, rank k, nb, g)` call —
/// diagonal super-blocks delegate to [`syr2k_blocked_flops`], off-diagonal
/// super-blocks are square GEMM pairs.
pub fn syr2k_square_flops(n: usize, k: usize, nb: usize, g: usize) -> f64 {
    let sb = nb * g;
    let mut t = 0.0;
    let mut j0 = 0;
    while j0 < n {
        let w = sb.min(n - j0);
        t += syr2k_blocked_flops(w, k, nb);
        let mut i0 = j0 + w;
        while i0 < n {
            let h = sb.min(n - i0);
            t += 4.0 * h as f64 * w as f64 * k as f64;
            i0 += h;
        }
        j0 += w;
    }
    t
}

/// Counted FLOPs of one stage-1 panel QR on an `m × b` panel: the
/// instrumented arithmetic is the compact-WY `T` assembly (per reflector
/// `j ≥ 1` with a non-degenerate tail, one `2·j·m` GEMM — a length-1
/// reflector gets `τ = 0` and skips it) plus the `W = V·T` GEMM
/// (`2·m·kr²`). The `geqr2` reflector math itself is BLAS-1 and
/// uninstrumented by design.
pub fn stage1_panel_flops(m: usize, b: usize) -> f64 {
    let kr = m.min(b);
    let mut t = 0.0;
    for j in 1..kr {
        if m - j >= 2 {
            t += 2.0 * j as f64 * m as f64;
        }
    }
    t + 2.0 * m as f64 * kr as f64 * kr as f64
}

/// The replayed depth-1 look-ahead schedule of `tridiag_core::dbbr_ws`
/// (square trailing `syr2k`, the implementation's `g = 2`).
pub struct Stage1Overlap {
    /// Number of engaged look-ahead regions (one per overlapped trailing
    /// update).
    pub regions: usize,
    /// Counted FLOPs of all worker-side panel factorizations.
    pub panel_flops: f64,
    /// Counted FLOPs of all overlapped tail `syr2k` updates.
    pub tail_flops: f64,
}

/// Replays DBBR's outer/inner loop structure with look-ahead on and
/// predicts, exactly, how many overlap regions engage and the instrumented
/// FLOPs of the worker-side panels (`task.stage1_panel`) and the
/// overlapped tails (`task.stage1_tail`). Mirrors the engage condition in
/// `dbbr_ws`: a region forms when factors accumulated, the next outer
/// block's first panel exists (`t0 + b + 1 < n`), and the sb-aligned split
/// leaves a non-empty tail.
pub fn stage1_overlap_schedule(n: usize, b: usize, k: usize, nb_syr2k: usize) -> Stage1Overlap {
    let sb = nb_syr2k * 2; // square scheme, g = 2 as in dbbr_ws
    let mut out = Stage1Overlap {
        regions: 0,
        panel_flops: 0.0,
        tail_flops: 0.0,
    };
    let mut i = 0;
    while i + b + 1 < n {
        let mut kacc = 0;
        let mut j = i;
        while j < i + k && j + b + 1 < n {
            let m = n - j - b;
            kacc += m.min(b);
            j += b;
        }
        let t0 = j;
        if kacc > 0 && t0 < n {
            let mt = n - t0;
            let split = (b.div_ceil(sb) * sb).min(mt);
            if t0 + b + 1 < n && split < mt {
                out.regions += 1;
                out.panel_flops += stage1_panel_flops(mt - b, b);
                out.tail_flops += syr2k_square_flops(mt - split, kacc, nb_syr2k, 2);
            }
        }
        i += k;
    }
    out
}

/// Exact merge-flop count of the Figure-13 blocked back transformation.
///
/// Replays the grouping, zero-padding and pairwise level structure of
/// `tridiag_core::backtransform::merge_q1_blocked_ws` over the factor
/// footprints `(offset, rows, width)` — Algorithm 3 evaluated
/// level-by-level — charging `4·rows·ka·kb` flops per pair merge (the two
/// `rows × ka × kb` GEMMs of the merge identity). Unlike
/// [`backtransform_ours`], which composes *time* from calibrated rates,
/// this counts the arithmetic exactly, so the `MergeFlops` counter in the
/// real implementation reconciles against it with zero error
/// ([`crate::model_check::check_backtransform`]).
pub fn backtransform_merge_flops(factors: &[(usize, usize, usize)], target_k: usize) -> f64 {
    if factors.is_empty() {
        return 0.0;
    }
    let b = factors.iter().map(|&(_, _, w)| w).max().unwrap_or(1);
    let per_group = (target_k / b.max(1)).max(1);
    let mut total = 0.0;
    for chunk in factors.chunks(per_group) {
        let off0 = chunk[0].0; // smallest offset (offsets ascend)
        let rows = chunk.iter().map(|&(o, r, _)| o + r).max().unwrap() - off0;
        // after zero-padding, every factor in the group spans `rows` rows;
        // the level loop merges adjacent pairs, odd block carried through
        let mut widths: Vec<usize> = chunk.iter().map(|&(_, _, w)| w).collect();
        while widths.len() > 1 && widths[0] < target_k {
            let mut next = Vec::with_capacity(widths.len().div_ceil(2));
            let mut it = widths.chunks_exact(2);
            for pair in &mut it {
                total += 4.0 * rows as f64 * pair[0] as f64 * pair[1] as f64;
                next.push(pair[0] + pair[1]);
            }
            next.extend(it.remainder().iter().copied());
            widths = next;
        }
    }
    total
}

/// Bulge-chasing back transformation (applying `Q₂`'s ≈ `n²/2b` short
/// reflectors to an `n × n` eigenvector matrix): `2n³` flops at a
/// batched-small-kernel rate. Dominates the with-vectors EVD (§6.2: 61 %
/// for the proposed pipeline, 36 % for MAGMA at `n = 49152`).
pub fn bc_backtransform_time(dev: &Device, n: usize) -> f64 {
    let flops = 2.0 * (n as f64).powi(3);
    let rate = match dev.kind {
        crate::device::DeviceKind::H100 => 7.2e12,
        crate::device::DeviceKind::Rtx4090 => dev.gemm_peak_tflops() * 0.55e12,
    };
    flops / rate
}

/// Divide & conquer (`Dstedc`) time, `∝ n³` through the §6.2 anchors.
pub fn dc_time_magma(n: usize) -> f64 {
    MAGMA_DC_OVERHEAD_S + MAGMA_DC_49152_S * (n as f64 / 49152.0).powi(3)
}

/// cuSOLVER's D&C.
pub fn dc_time_cusolver(n: usize) -> f64 {
    CUSOLVER_DC_OVERHEAD_S + CUSOLVER_DC_49152_S * (n as f64 / 49152.0).powi(3)
}

/// End-to-end EVD times (Figure 16). Returns seconds.
pub fn evd_cusolver(dev: &Device, n: usize, vectors: bool) -> f64 {
    let mut t = tridiag_cusolver(dev, n) + dc_time_cusolver(n);
    if vectors {
        // ormtr back transformation: 2n³ at saturated GEMM rate
        t += 2.0 * (n as f64).powi(3) / (GEMM_SAT_TFLOPS.min(dev.gemm_peak_tflops()) * 1e12);
    }
    t
}

/// MAGMA EVD: two-stage (b = 64) + its D&C; with vectors both back
/// transformations are added.
pub fn evd_magma(dev: &Device, n: usize, vectors: bool) -> f64 {
    let (sbr, bc) = tridiag_magma(dev, n, 64);
    let mut t = sbr + bc + dc_time_magma(n);
    if vectors {
        t += backtransform_magma(dev, n, 64);
        t += bc_backtransform_time(dev, n);
    }
    t
}

/// The proposed EVD: DBBR (b = 32, k = 1024) + GPU BC + MAGMA's D&C.
pub fn evd_ours(dev: &Device, n: usize, vectors: bool) -> f64 {
    let (dbbr, bc) = tridiag_ours(dev, n, 32, 1024);
    let mut t = dbbr + bc + dc_time_magma(n);
    if vectors {
        t += backtransform_ours(dev, n, 32, 2048);
        t += bc_backtransform_time(dev, n);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magma_sbr_anchor() {
        // §3.2: SBR takes 22.1 s at n = 49152, b = 64 on H100
        let dev = Device::h100();
        let t = sbr_time_magma(&dev, 49152, 64);
        assert!(
            (t - 22.1).abs() / 22.1 < 0.2,
            "MAGMA SBR model {t:.1}s vs paper 22.1s"
        );
        // §3.2: b = 128 ⇒ 16.5 s (SBR gets faster with wider bands)
        let t128 = sbr_time_magma(&dev, 49152, 128);
        assert!(t128 < t, "wider band must be faster: {t128} vs {t}");
        assert!((t128 - 16.5).abs() / 16.5 < 0.35, "b=128 model {t128:.1}s");
    }

    #[test]
    fn dbbr_beats_magma_sbr() {
        // Figure 9: up to 3.1× at b = 64 on H100
        let dev = Device::h100();
        for n in [8192usize, 16384, 32768, 49152] {
            let magma = sbr_time_magma(&dev, n, 64);
            let ours = dbbr_time(&dev, n, 64, 1024);
            assert!(ours < magma, "n={n}");
        }
        // at the paper's largest size the ratio lands near the quoted 3.1×
        let at_49k = sbr_time_magma(&dev, 49152, 64) / dbbr_time(&dev, 49152, 64, 1024);
        assert!(
            (2.5..4.5).contains(&at_49k),
            "DBBR speedup at 49152 = {at_49k:.2}, Figure 9 quotes 3.1×"
        );
    }

    #[test]
    fn bc_gpu_speedups_match_figure11() {
        // Figure 11: naive ≈ 5.9×, optimized ≈ 12.5× over MAGMA at large n
        let dev = Device::h100();
        let n = 65536;
        let b = 32;
        let magma = magma_bc_time(&dev, n, b);
        let naive = bc_gpu_time(&dev, n, b, false, None);
        let opt = bc_gpu_time(&dev, n, b, true, None);
        let s_naive = magma / naive;
        let s_opt = magma / opt;
        assert!((4.0..8.0).contains(&s_naive), "naive speedup {s_naive:.1}");
        assert!((9.0..16.0).contains(&s_opt), "optimized speedup {s_opt:.1}");
        assert!(s_opt > s_naive);
    }

    #[test]
    fn tridiag_totals_match_figure15a() {
        // headline rates at n = 49152 on H100: ours ≈ 19.6, MAGMA ≈ 3.4,
        // cuSOLVER ≈ 2.1 TFLOP/s
        let dev = Device::h100();
        let n = 49152usize;
        let flops = 4.0 / 3.0 * (n as f64).powi(3);
        let rate = |t: f64| flops / t / 1e12;

        let cus = rate(tridiag_cusolver(&dev, n));
        assert!((1.8..2.4).contains(&cus), "cuSOLVER {cus:.2} TFLOP/s");

        let (sbr, bc) = tridiag_magma(&dev, n, 64);
        let magma = rate(sbr + bc);
        assert!((2.8..4.0).contains(&magma), "MAGMA {magma:.2} TFLOP/s");

        let (dbbr, gbc) = tridiag_ours(&dev, n, 32, 1024);
        let ours = rate(dbbr + gbc);
        assert!((16.0..24.0).contains(&ours), "ours {ours:.2} TFLOP/s");
    }

    #[test]
    fn rtx4090_bc_anchor() {
        // §6.1: ours ≈ 1839 ms at n = 32768 (b = 32) on the 4090
        let dev = Device::rtx4090();
        let t = bc_gpu_time(&dev, 32768, 32, true, None);
        assert!(
            (1.0..3.0).contains(&t),
            "4090 BC model {t:.2}s vs paper 1.84s"
        );
    }

    #[test]
    fn backtransform_figure14_ratio() {
        // Figure 14 / §8: proposed back transformation ≈ 1.6× over MAGMA
        let dev = Device::h100();
        for n in [16384usize, 32768, 49152] {
            let magma = backtransform_magma(&dev, n, 64);
            let ours = backtransform_ours(&dev, n, 64, 2048);
            let ratio = magma / ours;
            assert!(
                (1.2..2.4).contains(&ratio),
                "n={n}: back-transform ratio {ratio:.2}"
            );
        }
    }

    #[test]
    fn merge_flops_model_hand_checked() {
        // Two width-2 factors, overlapping supports, merged to width 4 in
        // one level: 4 · rows · 2 · 2 with rows = max(0+8, 2+6) − 0 = 8.
        let flops = backtransform_merge_flops(&[(0, 8, 2), (2, 6, 2)], 4);
        assert_eq!(flops, 4.0 * 8.0 * 2.0 * 2.0);
        // Odd count: [2,2,2] → merge one pair (carry the odd block), then
        // [4,2] → one more merge since width 4 < target 8.
        let flops = backtransform_merge_flops(&[(0, 10, 2), (0, 10, 2), (0, 10, 2)], 8);
        assert_eq!(flops, 4.0 * 10.0 * 2.0 * 2.0 + 4.0 * 10.0 * 4.0 * 2.0);
        // Already at target width: no merges at all.
        assert_eq!(backtransform_merge_flops(&[(0, 8, 4), (0, 8, 4)], 4), 0.0);
        assert_eq!(backtransform_merge_flops(&[], 8), 0.0);
    }

    #[test]
    fn evd_figure16_speedups() {
        let dev = Device::h100();
        let n = 49152;
        // without eigenvectors: up to ≈ 6.1× vs cuSOLVER, ≈ 3.8× vs MAGMA
        let ours = evd_ours(&dev, n, false);
        let s_cus = evd_cusolver(&dev, n, false) / ours;
        let s_mag = evd_magma(&dev, n, false) / ours;
        assert!((4.5..8.0).contains(&s_cus), "vs cuSOLVER {s_cus:.1}");
        assert!((2.8..5.0).contains(&s_mag), "vs MAGMA {s_mag:.1}");
        // with eigenvectors: modest advantage (paper: up to ≈ 1.8×)
        let ours_v = evd_ours(&dev, n, true);
        let s_cus_v = evd_cusolver(&dev, n, true) / ours_v;
        assert!((1.1..2.4).contains(&s_cus_v), "with vectors {s_cus_v:.2}");
        // BC back transformation dominates the proposed with-vectors EVD
        let share = bc_backtransform_time(&dev, n) / ours_v;
        assert!((0.45..0.75).contains(&share), "BC-BT share {share:.2}");
    }

    #[test]
    fn small_matrices_cusolver_wins_novector() {
        // §6.2: below 8192, cuSOLVER wins because MAGMA's D&C overhead
        // (248 ms vs 33 ms) dominates
        let dev = Device::h100();
        let ours = evd_ours(&dev, 4096, false);
        let cus = evd_cusolver(&dev, 4096, false);
        assert!(cus < ours * 1.5, "crossover missing: {cus} vs {ours}");
    }
}
