//! Model-vs-measured cross-check.
//!
//! The cost models in [`crate::kernels`] are built on analytic FLOP and
//! byte counts (`syr2k_flops`, the `2mnk` GEMM convention, the
//! `8(mk + kn + 2mn)` GEMM traffic of `gemm_time`). The `tg-trace`
//! instrumentation inside `tg-blas` counts the *same* quantities at kernel
//! granularity while the real arithmetic runs. This module executes the
//! actual kernels under a trace session and compares the two, flagging any
//! disagreement above 1 % — a drift alarm for both the instrumentation and
//! the models.
//!
//! Each check runs its own [`tg_trace::TraceSession`]; do not call these
//! functions while another session is already open on this thread (the
//! global session lock is not reentrant).

use crate::kernels;
use tg_blas::Op;
use tg_matrix::gen;
use tg_trace::{Counter, TraceSession};

/// Tolerated relative disagreement between model and measurement.
pub const TOLERANCE: f64 = 0.01;

/// One compared quantity for one kernel invocation.
pub struct ModelRow {
    /// Kernel under test (`syr2k_blocked`, `syr2k_square`, `gemm`).
    pub kernel: &'static str,
    /// Invocation shape `(n, b, k)` as passed to [`model_vs_measured`].
    pub shape: (usize, usize, usize),
    /// Compared quantity (`flops` or `bytes`).
    pub quantity: &'static str,
    /// Value counted by the `tg-trace` instrumentation.
    pub measured: f64,
    /// Value predicted by the analytic formula.
    pub modeled: f64,
    /// Tolerated relative disagreement for this row. Deterministic counter
    /// comparisons use [`TOLERANCE`]; wall-clock rows (checker overhead)
    /// carry a looser budget since they see scheduler noise.
    pub tol: f64,
}

impl ModelRow {
    /// Relative error of the measurement against the model.
    pub fn rel_err(&self) -> f64 {
        if self.modeled == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.modeled).abs() / self.modeled
        }
    }

    /// Whether the disagreement is within this row's `tol`.
    pub fn within_tolerance(&self) -> bool {
        self.rel_err() <= self.tol
    }
}

fn measure<F: FnOnce()>(f: F) -> tg_trace::Trace {
    let session = TraceSession::begin();
    f();
    session.finish()
}

/// Runs both `syr2k` variants on an `n × n` update of rank `2k` and
/// compares counted FLOPs against [`kernels::syr2k_flops`].
pub fn check_syr2k(n: usize, k: usize) -> Vec<ModelRow> {
    let z = gen::random(n, k, 11);
    let y = gen::random(n, k, 12);
    let modeled = kernels::syr2k_flops(n, k);
    let mut rows = Vec::new();

    let mut c = gen::random_symmetric(n, 13);
    let t = measure(|| {
        tg_blas::syr2k_blocked(-1.0, &z.as_ref(), &y.as_ref(), 1.0, &mut c.as_mut(), 32);
    });
    rows.push(ModelRow {
        kernel: "syr2k_blocked",
        shape: (n, 0, k),
        quantity: "flops",
        measured: t.total(Counter::Flops) as f64,
        modeled,
        tol: TOLERANCE,
    });

    let mut c = gen::random_symmetric(n, 13);
    let t = measure(|| {
        tg_blas::syr2k_square(-1.0, &z.as_ref(), &y.as_ref(), 1.0, &mut c.as_mut(), 32, 2);
    });
    rows.push(ModelRow {
        kernel: "syr2k_square",
        shape: (n, 0, k),
        quantity: "flops",
        measured: t.total(Counter::Flops) as f64,
        modeled,
        tol: TOLERANCE,
    });
    rows
}

/// Runs a real `m × n × k` GEMM and compares counted FLOPs against the
/// `2mnk` convention and counted bytes (read + written) against the
/// `8(mk + kn + 2mn)` traffic that [`kernels::gemm_time`] charges.
pub fn check_gemm(m: usize, n: usize, k: usize) -> Vec<ModelRow> {
    let a = gen::random(m, k, 21);
    let b = gen::random(k, n, 22);
    let t = measure(|| {
        let _ = tg_blas::gemm_into(1.0, &a.as_ref(), Op::NoTrans, &b.as_ref(), Op::NoTrans);
    });
    let bytes_measured = t.total(Counter::BytesRead) + t.total(Counter::BytesWritten);
    vec![
        ModelRow {
            kernel: "gemm",
            shape: (m, n, k),
            quantity: "flops",
            measured: t.total(Counter::Flops) as f64,
            modeled: 2.0 * m as f64 * n as f64 * k as f64,
            tol: TOLERANCE,
        },
        ModelRow {
            kernel: "gemm",
            shape: (m, n, k),
            quantity: "bytes",
            measured: bytes_measured as f64,
            modeled: 8.0 * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64),
            tol: TOLERANCE,
        },
    ]
}

/// Runs the *real* `tg-batch` scheduler over `count` identical `n × n`
/// problems (identical inputs make the data-dependent QL iteration counts
/// equal) and checks two batch-model invariants against the trace:
///
/// * counted batch FLOPs = `count ×` single-problem FLOPs — batching must
///   not change the arithmetic, only its schedule;
/// * arena hits = `(count − 1)/count` of all workspace requests — the
///   [`crate::batch::predicted_hit_rate`] arithmetic, exact for a
///   uniform-shape batch on one worker.
pub fn check_batched_evd(n: usize, count: usize) -> Vec<ModelRow> {
    use tg_batch::BatchScheduler;
    use tg_eigen::{syevd, EvdMethod};

    let method = EvdMethod::proposed_default(n);
    let a = gen::random_symmetric(n, 41);
    let problems = vec![a.clone(); count];

    let t1 = measure(|| {
        let _ = syevd(&mut a.clone(), &method, false);
    });
    let single_flops = t1.total(Counter::Flops) as f64;

    let tb = measure(|| {
        let _ = BatchScheduler::new(1).syevd(&problems, &method, false);
    });
    let hits = tb.total(Counter::ArenaHit) as f64;
    let misses = tb.total(Counter::ArenaMiss) as f64;

    vec![
        ModelRow {
            kernel: "batched_evd",
            shape: (n, count, 0),
            quantity: "flops",
            measured: tb.total(Counter::Flops) as f64,
            modeled: count as f64 * single_flops,
            tol: TOLERANCE,
        },
        ModelRow {
            kernel: "batched_evd",
            shape: (n, count, 0),
            quantity: "arena_hits",
            measured: hits,
            modeled: crate::batch::predicted_hit_rate(count, 1) * (hits + misses),
            tol: TOLERANCE,
        },
    ]
}

/// Tolerated relative disagreement between the trace-derived average
/// parallelism and the simulator's analytic occupancy. The traced value
/// integrates per-sweep virtual spans (whose durations include mid-sweep
/// dependency stalls), the model integrates pure task time — they agree
/// exactly when sweeps never stall mid-flight and drift apart by at most a
/// few percent when they do, hence the 5 % budget.
pub const UTILIZATION_TOL: f64 = 0.05;

/// Reconciles the timeline analyses against the gpu-sim occupancy model.
///
/// Runs [`crate::pipeline::simulate`] under a trace session and compares,
/// all on **virtual time** (deterministic — no wall-clock noise):
///
/// * average parallelism derived from the recorded per-slot timeline
///   (`Σ span duration / makespan`) vs. [`PipelineStats::avg_parallelism`]
///   — within [`UTILIZATION_TOL`];
/// * the virtual timeline's end vs. the reported makespan — within
///   [`TOLERANCE`].
///
/// A third row runs the *real* `tg-batch` scheduler under a trace and
/// checks that the `parallel.batch` region reports exactly the worker
/// lanes the scheduler spawned (worker spans are recorded per spawned
/// thread, so this count is deterministic even on one core).
///
/// [`PipelineStats::avg_parallelism`]: crate::pipeline::PipelineStats
pub fn check_utilization(n: usize, b: usize, s_max: usize) -> Vec<ModelRow> {
    let mut stats = None;
    let t = measure(|| {
        stats = Some(crate::pipeline::simulate(n, b, s_max, 1e-6));
    });
    let stats = stats.expect("simulate ran");
    let measured_par = t.virtual_parallelism().unwrap_or(0.0);
    let timeline_end_us = t
        .lanes(true)
        .iter()
        .map(|l| l.last_end_us)
        .fold(0.0_f64, f64::max);
    let mut rows = vec![
        ModelRow {
            kernel: "bc_pipeline",
            shape: (n, b, s_max),
            quantity: "avg_parallelism",
            measured: measured_par,
            modeled: stats.avg_parallelism,
            tol: UTILIZATION_TOL,
        },
        ModelRow {
            kernel: "bc_pipeline",
            shape: (n, b, s_max),
            quantity: "makespan_us",
            measured: timeline_end_us,
            modeled: stats.makespan_s * 1e6,
            tol: TOLERANCE,
        },
    ];

    {
        use tg_batch::BatchScheduler;
        use tridiag_core::Method;
        let workers = 2usize;
        let problems: Vec<_> = (0..4).map(|s| gen::random_symmetric(24, 61 + s)).collect();
        let method = Method::paper_default(24);
        let tb = measure(|| {
            let _ = BatchScheduler::new(workers).tridiagonalize(&problems, &method);
        });
        let region_workers = tb
            .region_utilization()
            .iter()
            .find(|r| r.name == "parallel.batch")
            .map(|r| r.workers as f64)
            .unwrap_or(0.0);
        rows.push(ModelRow {
            kernel: "batch_region",
            shape: (24, workers, problems.len()),
            quantity: "worker_lanes",
            measured: region_workers,
            modeled: workers as f64,
            tol: 0.0,
        });
    }
    rows
}

/// Reconciles the blocked back transformation against the Figure-13 /
/// Algorithm-3 merge cost model, all on deterministic counters:
///
/// * `merge_flops` — runs the *real* pooled merge + panel apply
///   (`merge_q1_blocked_ws` → `apply_blocks_panels`) on the SBR factors of
///   an `n × n` problem under a trace and compares
///   [`Counter::MergeFlops`] against
///   [`crate::compose::backtransform_merge_flops`], which replays the
///   exact grouping/padding/level control flow from the factor footprints
///   — counter and model must agree to rounding;
/// * `worker_lanes` — the `parallel.backtransform` region must report
///   exactly the panel workers that were spawned (worker spans are
///   recorded per thread, deterministic even on one core);
/// * `panel_tasks` — the region's member tasks must equal
///   `⌈ncols / PANEL_COLS⌉`: every fixed-width column panel claimed
///   exactly once, none lost or duplicated by the queue.
pub fn check_backtransform(n: usize, b: usize, k: usize) -> Vec<ModelRow> {
    use tridiag_core::backtransform::{apply_blocks_panels, merge_q1_blocked_ws, release_blocks};
    use tridiag_core::{band_reduce, AllocPool, PanelPools, PANEL_COLS};

    let mut a = gen::random_symmetric(n, 71);
    let factors = band_reduce(&mut a, b, 8).factors;
    let footprints: Vec<(usize, usize, usize)> = factors
        .iter()
        .map(|(o, f)| (*o, f.w.nrows(), f.width()))
        .collect();
    let modeled_flops = crate::compose::backtransform_merge_flops(&footprints, k);

    let workers = 2usize;
    let mut c = gen::random(n, n, 72);
    let mut pool = AllocPool;
    let mut panel_pools = PanelPools::new();
    let t = measure(|| {
        let blocks = merge_q1_blocked_ws(&factors, k, &mut pool);
        apply_blocks_panels(&blocks, &mut c, workers, &mut panel_pools);
        release_blocks(blocks, &mut pool);
    });
    let (lanes, tasks) = t
        .region_utilization()
        .into_iter()
        .find(|r| r.name == "parallel.backtransform")
        .map(|r| (r.workers as f64, r.tasks as f64))
        .unwrap_or((0.0, 0.0));
    vec![
        ModelRow {
            kernel: "backtransform",
            shape: (n, b, k),
            quantity: "merge_flops",
            measured: t.total(Counter::MergeFlops) as f64,
            modeled: modeled_flops,
            tol: TOLERANCE,
        },
        ModelRow {
            kernel: "backtransform",
            shape: (n, b, k),
            quantity: "worker_lanes",
            measured: lanes,
            modeled: workers as f64,
            tol: 0.0,
        },
        ModelRow {
            kernel: "backtransform",
            shape: (n, b, k),
            quantity: "panel_tasks",
            measured: tasks,
            modeled: n.div_ceil(PANEL_COLS) as f64,
            tol: 0.0,
        },
    ]
}

/// Reconciles DBBR's stage-1 look-ahead schedule against the replayed
/// overlap model ([`crate::compose::stage1_overlap_schedule`]), all on
/// deterministic counters:
///
/// * `regions` — one `parallel.stage1` region per engaged look-ahead step,
///   exactly as the replay predicts;
/// * `worker_lanes` / `overlap_tasks` — every region must report two
///   distinct lanes (the dedicated panel worker plus the updating thread)
///   and two member tasks (`task.stage1_panel`, `task.stage1_tail`):
///   the overlap is visible to the observatory, not just implied;
/// * `panel_flops` / `tail_flops` — the `Flops` counted inside the worker
///   panel spans and the overlapped tail spans must match the replay's
///   exact WY-assembly and `syr2k` arithmetic within [`TOLERANCE`].
///
/// The reduction is measured under a `tg_blas` nested-region guard so the
/// tail `syr2k` dispatches serially on the measuring thread — its flops
/// then nest inside the `task.stage1_tail` span (results are
/// bitwise-identical either way, the PR 5 contract; only the counter
/// attribution needs the serial schedule).
pub fn check_stage1_overlap(n: usize, b: usize, k: usize) -> Vec<ModelRow> {
    use tridiag_core::{dbbr_ws, AllocPool, DbbrConfig};

    let mut cfg = DbbrConfig::new(b, k);
    // Small syr2k blocks so the sb-aligned split leaves a non-empty tail
    // (and look-ahead engages) at cross-check sizes; the replay uses the
    // same blocking.
    cfg.nb_syr2k = 4;
    cfg.lookahead = true;
    let sched = crate::compose::stage1_overlap_schedule(n, b, k, cfg.nb_syr2k);

    let mut a = gen::random_symmetric(n, 91);
    let t = measure(|| {
        let _serial = tg_blas::threads::enter_parallel_region();
        let _ = dbbr_ws(&mut a, &cfg, &mut AllocPool);
    });

    let regions = t
        .events
        .iter()
        .filter(|e| e.name == "parallel.stage1")
        .count();
    let flops_of = |name: &str| -> f64 {
        t.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.counter(Counter::Flops) as f64)
            .sum()
    };
    let stage1_regions: Vec<_> = t
        .region_utilization()
        .into_iter()
        .filter(|r| r.name == "parallel.stage1")
        .collect();
    let lanes: usize = stage1_regions.iter().map(|r| r.workers).sum();
    let tasks: usize = stage1_regions.iter().map(|r| r.tasks).sum();

    vec![
        ModelRow {
            kernel: "stage1_overlap",
            shape: (n, b, k),
            quantity: "regions",
            measured: regions as f64,
            modeled: sched.regions as f64,
            tol: 0.0,
        },
        ModelRow {
            kernel: "stage1_overlap",
            shape: (n, b, k),
            quantity: "worker_lanes",
            measured: lanes as f64,
            modeled: 2.0 * sched.regions as f64,
            tol: 0.0,
        },
        ModelRow {
            kernel: "stage1_overlap",
            shape: (n, b, k),
            quantity: "overlap_tasks",
            measured: tasks as f64,
            modeled: 2.0 * sched.regions as f64,
            tol: 0.0,
        },
        ModelRow {
            kernel: "stage1_overlap",
            shape: (n, b, k),
            quantity: "panel_flops",
            measured: flops_of("task.stage1_panel"),
            modeled: sched.panel_flops,
            tol: TOLERANCE,
        },
        ModelRow {
            kernel: "stage1_overlap",
            shape: (n, b, k),
            quantity: "tail_flops",
            measured: flops_of("task.stage1_tail"),
            modeled: sched.tail_flops,
            tol: TOLERANCE,
        },
    ]
}

/// Tolerated wall-time ratio drift for the checker-overhead row: wall
/// clocks see scheduler noise, so the budget is far looser than the
/// counter comparisons (the EXPERIMENTS.md <2% overhead claim is measured
/// across whole-process runs, not here).
pub const CHECKER_OVERHEAD_TOL: f64 = 0.5;

/// Measures what the `tg-check` hooks cost when **no session is live** —
/// the zero-cost-when-disabled contract — on the paper's reduce pipeline:
///
/// * counted FLOPs of a reduction with a preceding (finished) check
///   session vs. a plain reduction must be identical: hooks, armed or
///   not, never change the arithmetic;
/// * median wall time of the hooks-dormant reduction vs. plain must stay
///   within [`CHECKER_OVERHEAD_TOL`] (the hooks are one relaxed atomic
///   load each, so this row detects an accidentally always-on checker).
pub fn check_checker_overhead(n: usize) -> Vec<ModelRow> {
    use tridiag_core::{tridiagonalize, Method};
    let method = Method::paper_default(n);
    let a = gen::random_symmetric(n, 51);

    let timed_flops = || -> (f64, f64) {
        let mut samples = [0.0f64; 3];
        let mut flops = 0u64;
        for s in samples.iter_mut() {
            let mut work = a.clone();
            let session = TraceSession::begin();
            let t0 = std::time::Instant::now();
            let _ = tridiagonalize(&mut work, &method);
            *s = t0.elapsed().as_secs_f64();
            flops = session.finish().total(Counter::Flops);
        }
        samples.sort_by(f64::total_cmp);
        (samples[1], flops as f64)
    };

    // plain run: no check session has ever been armed in this comparison
    let (t_plain, flops_plain) = timed_flops();
    // dormant run: open and immediately finish a session so the hook path
    // has seen an armed-then-disarmed lifecycle, then reduce with checks off
    {
        let session = tg_check::CheckSession::begin(tg_check::CheckConfig::fast());
        let _ = session.finish();
    }
    let (t_dormant, flops_dormant) = timed_flops();

    vec![
        ModelRow {
            kernel: "check_hooks",
            shape: (n, 0, 0),
            quantity: "flops",
            measured: flops_dormant,
            modeled: flops_plain,
            tol: 0.0,
        },
        ModelRow {
            kernel: "check_hooks",
            shape: (n, 0, 0),
            quantity: "wall_ratio",
            measured: t_dormant / t_plain.max(f64::MIN_POSITIVE),
            modeled: 1.0,
            tol: CHECKER_OVERHEAD_TOL,
        },
    ]
}

/// Runs the full cross-check over a list of `(n, b, k)` shapes: each shape
/// contributes both `syr2k` variants at `(n, k)` and a GEMM at
/// `(m = n, n = b, k)` — the panel-update shape that dominates DBBR.
pub fn model_vs_measured(shapes: &[(usize, usize, usize)]) -> Vec<ModelRow> {
    let mut rows = Vec::new();
    for &(n, b, k) in shapes {
        rows.extend(check_syr2k(n, k));
        rows.extend(check_gemm(n, b, k));
    }
    rows
}

/// Renders the comparison as a plain-text table; rows beyond [`TOLERANCE`]
/// are flagged.
pub fn report(rows: &[ModelRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>16} {:>8} {:>16} {:>16} {:>8}\n",
        "kernel", "shape (n,b,k)", "qty", "measured", "model", "err %"
    ));
    let mut bad = 0usize;
    for r in rows {
        let flag = if r.within_tolerance() {
            ""
        } else {
            bad += 1;
            "  <-- MISMATCH"
        };
        out.push_str(&format!(
            "{:<14} {:>16} {:>8} {:>16.0} {:>16.0} {:>8.3}{}\n",
            r.kernel,
            format!("{:?}", r.shape),
            r.quantity,
            r.measured,
            r.modeled,
            r.rel_err() * 100.0,
            flag
        ));
    }
    if bad == 0 {
        out.push_str(&format!("all {} rows agree within tolerance\n", rows.len()));
    } else {
        out.push_str(&format!(
            "{bad} of {} rows exceed their tolerance\n",
            rows.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_evd_flops_and_hits_match_model() {
        for r in check_batched_evd(32, 5) {
            assert!(
                r.within_tolerance(),
                "{} {:?} {}: measured {} vs model {} ({:.2}%)",
                r.kernel,
                r.shape,
                r.quantity,
                r.measured,
                r.modeled,
                r.rel_err() * 100.0
            );
        }
    }

    /// Acceptance criterion: the stage-1 look-ahead trace reconciles with
    /// the replayed overlap schedule — region/lane/task counts exactly,
    /// panel and tail flops within 1 %.
    #[test]
    fn stage1_overlap_reconciles_with_replay() {
        let rows = check_stage1_overlap(72, 8, 16);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.within_tolerance(),
                "{} {:?} {}: measured {} vs model {} ({:.2}%)",
                r.kernel,
                r.shape,
                r.quantity,
                r.measured,
                r.modeled,
                r.rel_err() * 100.0
            );
        }
    }

    /// Acceptance criterion: model vs measured agrees within 1 % on at
    /// least two `(n, b, k)` shapes.
    #[test]
    fn model_matches_measured_on_two_shapes() {
        let rows = model_vs_measured(&[(64, 8, 16), (96, 12, 24)]);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.within_tolerance(),
                "{} {:?} {}: measured {} vs model {} ({:.2}%)",
                r.kernel,
                r.shape,
                r.quantity,
                r.measured,
                r.modeled,
                r.rel_err() * 100.0
            );
        }
    }

    /// Acceptance criterion: the `MergeFlops` instrumentation reconciles
    /// exactly with the Algorithm-3 replay, and the panel region reports
    /// its workers and tasks deterministically.
    #[test]
    fn backtransform_reconciles_with_merge_model() {
        for (n, b, k) in [(64usize, 4usize, 16usize), (96, 8, 32)] {
            for r in check_backtransform(n, b, k) {
                assert!(
                    r.within_tolerance(),
                    "{} {:?} {}: measured {} vs model {} ({:.2}%)",
                    r.kernel,
                    r.shape,
                    r.quantity,
                    r.measured,
                    r.modeled,
                    r.rel_err() * 100.0
                );
            }
        }
    }

    #[test]
    fn checker_overhead_flops_identical_when_dormant() {
        let rows = check_checker_overhead(64);
        assert_eq!(rows.len(), 2);
        let flops = &rows[0];
        assert_eq!(flops.quantity, "flops");
        assert_eq!(
            flops.measured, flops.modeled,
            "dormant check hooks changed the arithmetic"
        );
        assert!(flops.within_tolerance());
        let wall = &rows[1];
        assert_eq!(wall.quantity, "wall_ratio");
        assert!(wall.measured.is_finite() && wall.measured > 0.0);
    }

    /// Acceptance criterion: the trace-derived utilization reconciles with
    /// the simulator's occupancy model within the documented tolerance.
    #[test]
    fn utilization_reconciles_with_occupancy_model() {
        for (n, b, s) in [(96usize, 8usize, 1usize), (96, 8, 4), (128, 16, 8)] {
            for r in check_utilization(n, b, s) {
                assert!(
                    r.within_tolerance(),
                    "{} {:?} {}: measured {} vs model {} ({:.2}%)",
                    r.kernel,
                    r.shape,
                    r.quantity,
                    r.measured,
                    r.modeled,
                    r.rel_err() * 100.0
                );
            }
        }
    }

    #[test]
    fn report_flags_mismatch() {
        let rows = vec![
            ModelRow {
                kernel: "gemm",
                shape: (8, 8, 8),
                quantity: "flops",
                measured: 1024.0,
                modeled: 1024.0,
                tol: TOLERANCE,
            },
            ModelRow {
                kernel: "gemm",
                shape: (8, 8, 8),
                quantity: "bytes",
                measured: 1050.0,
                modeled: 1000.0,
                tol: TOLERANCE,
            },
        ];
        let text = report(&rows);
        assert!(text.contains("MISMATCH"));
        assert!(text.contains("1 of 2 rows"));
        assert!(!report(&rows[..1]).contains("MISMATCH"));
    }
}
