//! Paper-vs-model anchor report.
//!
//! Every number the paper prints in its evaluation, next to what this
//! reproduction's model produces for the same configuration. The `repro
//! anchors` subcommand renders this table; EXPERIMENTS.md embeds it.
//!
//! Anchors marked `calibrated` were used to fit kernel constants
//! ([`crate::calib`]); the rest are *predictions* of the composed model and
//! measure how well the composition generalizes.

use crate::compose;
use crate::device::Device;
use crate::kernels;
use serde::Serialize;

/// One paper-number-vs-model-number comparison.
#[derive(Serialize, Clone, Debug)]
pub struct Anchor {
    /// Where the paper states the number.
    pub source: &'static str,
    /// What is being compared.
    pub quantity: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// This reproduction's value.
    pub model: f64,
    /// Unit for display.
    pub unit: &'static str,
    /// Whether this anchor was used to calibrate kernel constants.
    pub calibrated: bool,
}

impl Anchor {
    /// Relative error of the model against the paper value.
    pub fn rel_err(&self) -> f64 {
        (self.model - self.paper).abs() / self.paper.abs().max(f64::MIN_POSITIVE)
    }
}

/// Builds the full anchor report.
pub fn anchor_report() -> Vec<Anchor> {
    let h = Device::h100();
    let r = Device::rtx4090();
    let mut out = Vec::new();
    let mut push = |source, quantity, paper: f64, model: f64, unit, calibrated| {
        out.push(Anchor {
            source,
            quantity,
            paper,
            model,
            unit,
            calibrated,
        })
    };

    // ── Table 1 (cuBLAS syr2k) — calibration set + held-out cells
    let syr2k_rate = |dev: &Device, n: usize, k: usize| {
        kernels::syr2k_flops(n, k) / kernels::cublas_syr2k_time(dev, n, k) / 1e12
    };
    for (n, k, v, cal) in [
        (8192usize, 16usize, 0.43, true),
        (8192, 128, 3.39, false),
        (8192, 1024, 18.91, false),
        (8192, 4096, 34.59, true),
        (32768, 16, 3.58, true),
        (32768, 128, 21.05, false),
        (32768, 1024, 42.86, false),
        (32768, 4096, 45.54, true),
    ] {
        push(
            "Table 1",
            if n == 8192 {
                "cuBLAS syr2k TFLOP/s, H100 n=8192"
            } else {
                "cuBLAS syr2k TFLOP/s, H100 n=32768"
            },
            v,
            syr2k_rate(&h, n, k),
            "TFLOP/s",
            cal,
        );
    }
    push(
        "Table 1",
        "cuBLAS syr2k TFLOP/s, 4090 n=8192 k=128",
        1.06,
        syr2k_rate(&r, 8192, 128),
        "TFLOP/s",
        true,
    );

    // ── §3.1 / Figure 4
    let n49 = 49152usize;
    let flops49 = 4.0 / 3.0 * (n49 as f64).powi(3);
    let sytrd = compose::tridiag_cusolver(&h, n49);
    push(
        "§3.1",
        "cuSOLVER Dsytrd TFLOP/s at n=49152",
        2.0,
        flops49 / sytrd / 1e12,
        "TFLOP/s",
        true,
    );
    let cdc = compose::dc_time_cusolver(n49);
    push(
        "Fig. 4",
        "cuSOLVER tridiag share of EVD",
        0.977,
        sytrd / (sytrd + cdc),
        "fraction",
        false,
    );
    let (sbr, bc) = compose::tridiag_magma(&h, n49, 64);
    push(
        "§3.2",
        "MAGMA Dsy2sb (b=64) at n=49152",
        22.1,
        sbr,
        "s",
        true,
    );
    push(
        "§3.2",
        "MAGMA Dsb2st (b=64) at n=49152",
        23.9,
        bc,
        "s",
        true,
    );
    push(
        "§3.2",
        "MAGMA Dsy2sb (b=128) at n=49152",
        16.5,
        compose::sbr_time_magma(&h, n49, 128),
        "s",
        false,
    );
    push(
        "§3.2",
        "MAGMA Dsb2st (b=128) at n=49152",
        84.9,
        kernels::magma_bc_time(&h, n49, 128),
        "s",
        true,
    );
    push(
        "§4.1",
        "MAGMA Dsb2st (b=32) at n=49152",
        16.2,
        kernels::magma_bc_time(&h, n49, 32),
        "s",
        true,
    );
    push(
        "Fig. 4",
        "MAGMA BC share of two-stage tridiag",
        0.48,
        bc / (sbr + bc),
        "fraction",
        false,
    );
    push(
        "Fig. 4",
        "MAGMA tridiag TFLOP/s at n=49152",
        3.4,
        flops49 / (sbr + bc) / 1e12,
        "TFLOP/s",
        false,
    );

    // ── Figure 9
    push(
        "Fig. 9",
        "DBBR vs MAGMA SBR speedup (b=64, n=49152)",
        3.1,
        compose::sbr_time_magma(&h, n49, 64) / compose::dbbr_time(&h, n49, 64, 1024),
        "x",
        false,
    );

    // ── Figure 11
    let n65 = 65536usize;
    let magma_bc65 = kernels::magma_bc_time(&h, n65, 32);
    push(
        "Fig. 11",
        "naive GPU BC speedup at n=65536",
        5.9,
        magma_bc65 / compose::bc_gpu_time(&h, n65, 32, false, None),
        "x",
        false,
    );
    push(
        "Fig. 11",
        "optimized GPU BC speedup at n=65536",
        12.5,
        magma_bc65 / compose::bc_gpu_time(&h, n65, 32, true, None),
        "x",
        true,
    );

    // ── Figure 14
    push(
        "Fig. 14 / §8",
        "back transformation speedup (b=64, k=2048, n=49152)",
        1.6,
        compose::backtransform_magma(&h, n49, 64) / compose::backtransform_ours(&h, n49, 64, 2048),
        "x",
        true,
    );

    // ── Figure 15
    let (dbbr, gbc) = compose::tridiag_ours(&h, n49, 32, 1024);
    push(
        "Fig. 15a",
        "proposed tridiag TFLOP/s at n=49152 (H100)",
        19.6,
        flops49 / (dbbr + gbc) / 1e12,
        "TFLOP/s",
        false,
    );
    let n32 = 32768usize;
    push(
        "§6.1",
        "MAGMA BC on 4090 at n=32768 (b=64)",
        14.327,
        kernels::magma_bc_time(&r, n32, 64),
        "s",
        true,
    );
    push(
        "§6.1",
        "proposed BC on 4090 at n=32768",
        1.839,
        compose::bc_gpu_time(&r, n32, 32, true, None),
        "s",
        false,
    );
    let (d4090, b4090) = compose::tridiag_ours(&r, n32, 32, 1024);
    push(
        "Fig. 15b",
        "proposed tridiag TFLOP/s at n=32768 (4090)",
        1.4,
        4.0 / 3.0 * (n32 as f64).powi(3) / (d4090 + b4090) / 1e12,
        "TFLOP/s",
        false,
    );

    // ── Figure 16 / §6.2 / §8
    push(
        "Fig. 16",
        "EVD speedup vs cuSOLVER, no vectors (max)",
        6.1,
        [16384usize, 24576, 32768, 40960, 49152]
            .iter()
            .map(|&n| compose::evd_cusolver(&h, n, false) / compose::evd_ours(&h, n, false))
            .fold(0.0, f64::max),
        "x",
        false,
    );
    push(
        "Fig. 16",
        "EVD speedup vs MAGMA, no vectors (n=49152)",
        3.8,
        compose::evd_magma(&h, n49, false) / compose::evd_ours(&h, n49, false),
        "x",
        false,
    );
    push(
        "§8",
        "EVD speedup vs cuSOLVER, with vectors (max)",
        1.8,
        [16384usize, 32768, 49152]
            .iter()
            .map(|&n| compose::evd_cusolver(&h, n, true) / compose::evd_ours(&h, n, true))
            .fold(0.0, f64::max),
        "x",
        false,
    );
    push(
        "§6.2",
        "BC back-transform share of proposed EVD (vectors)",
        0.61,
        compose::bc_backtransform_time(&h, n49) / compose::evd_ours(&h, n49, true),
        "fraction",
        true,
    );
    push(
        "§6.2",
        "BC back-transform share of MAGMA EVD (vectors)",
        0.36,
        compose::bc_backtransform_time(&h, n49) / compose::evd_magma(&h, n49, true),
        "fraction",
        false,
    );
    push(
        "§6.2",
        "cuSOLVER D&C at n=8192",
        0.033,
        compose::dc_time_cusolver(8192),
        "s",
        true,
    );
    push(
        "§6.2",
        "MAGMA D&C at n=8192",
        0.248,
        compose::dc_time_magma(8192),
        "s",
        true,
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Calibrated anchors must sit within 12 %; held-out predictions
    /// within 40 % (they are *compositions*, not fits).
    #[test]
    fn anchors_within_tolerance() {
        let report = anchor_report();
        assert!(report.len() >= 25);
        for a in &report {
            let budget = if a.calibrated { 0.12 } else { 0.40 };
            assert!(
                a.rel_err() <= budget,
                "{} / {}: paper {} vs model {:.4} ({:.0}% > {:.0}%)",
                a.source,
                a.quantity,
                a.paper,
                a.model,
                a.rel_err() * 100.0,
                budget * 100.0
            );
        }
    }

    /// The median error across all anchors should be small — the model is
    /// a faithful reproduction, not a loose sketch.
    #[test]
    fn median_error_small() {
        let mut errs: Vec<f64> = anchor_report().iter().map(|a| a.rel_err()).collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median < 0.15, "median anchor error {:.1}%", median * 100.0);
    }
}
