//! Calibration constants, each anchored to a number printed in the paper.
//!
//! Only *kernel-level* constants live here. Figure-level results are
//! composed from these; nothing downstream is fit to a figure directly.

/// cuBLAS `Dsyr2k` additive launch/blocking floor on H100 at `n = 8192`,
/// in seconds. **Anchor**: Table 1, H100 column, `n = 8192`: throughput is
/// exactly linear in `k` for `k ≤ 128` (0.43 → 3.39 TFLOP/s), implying a
/// constant ≈ 5 ms per call in that regime (`2·8192²·16 / 0.43e12`).
pub const CUBLAS_SYR2K_FLOOR_8192_S: f64 = 5.0e-3;

/// Exponent for the floor's growth in `n`:
/// `t0(n) = FLOOR_8192 · (n/8192)^α`. **Anchor**: Table 1 `n = 32768`
/// linear regime gives ≈ 9.6 ms ⇒ α ≈ ln(9.6/5)/ln(4) ≈ 0.47.
pub const CUBLAS_SYR2K_FLOOR_EXP: f64 = 0.47;

/// cuBLAS `Dsyr2k` saturated throughput on H100, TFLOP/s.
/// **Anchor**: Table 1 large-`k` entries (45.5 at `n = 32768, k = 4096`,
/// fitted through the additive model to ≈ 48–50).
pub const CUBLAS_SYR2K_SAT_TFLOPS: f64 = 49.0;

/// Multiplier applied to cuBLAS `syr2k` throughput for `n ≥ 49152`.
/// **Anchor**: Figure 8 — "when n ≥ 49152, the performance of the cuBLAS
/// syr2k routine drops significantly".
pub const CUBLAS_SYR2K_CLIFF_FACTOR: f64 = 0.35;

/// Matrix size at which the cuBLAS cliff begins (Figure 8).
pub const CUBLAS_SYR2K_CLIFF_N: usize = 49152;

/// Saturated throughput of the proposed square-block `syr2k`, TFLOP/s.
/// **Anchor**: §5.1 — "even for smaller matrix sizes, syr2k can achieve
/// less than 50 TFLOPs" (cuBLAS) while the proposed kernel sustains ≈ 50
/// and §4.1 "enabling the internal syr2k operations to reach up to 50
/// TFLOPs".
pub const OURS_SYR2K_SAT_TFLOPS: f64 = 52.0;

/// Launch floor of the proposed `syr2k` (GPU-resident, no cuBLAS
/// re-blocking): one grid launch, ≈ 0.5 ms at `n = 8192` scaling like the
/// cuBLAS floor exponent.
pub const OURS_SYR2K_FLOOR_8192_S: f64 = 0.5e-3;

/// Effective throughput of large square GEMM on H100, TFLOP/s
/// (used for back transformation with inner dimension ≥ 1024).
pub const GEMM_SAT_TFLOPS: f64 = 50.0;

/// GEMM throughput knee: effective rate `= SAT · k/(k + KNEE)` for inner
/// dimension `k`. **Anchor**: MAGMA `ormqr` with `k = b = 64` must land
/// near 23 TFLOP/s so the Figure 14 ratio comes out ≈ 1.6×.
pub const GEMM_K_KNEE: f64 = 75.0;

/// Fraction of peak memory bandwidth a streaming symmetric update
/// achieves (`symm`, band copies).
pub const STREAM_BW_EFF: f64 = 0.72;

/// cuSOLVER `Dsytrd` saturated throughput, TFLOP/s.
/// **Anchor**: §1/§3.1 — 2.0–2.1 TFLOP/s at `n = 49152` on H100.
pub const CUSOLVER_SYTRD_SAT_TFLOPS: f64 = 2.15;

/// Size at which `Dsytrd` reaches half its saturated rate.
pub const CUSOLVER_SYTRD_HALF_N: f64 = 6000.0;

/// MAGMA host-side per-panel overhead in SBR (CPU↔GPU synchronization),
/// seconds. **Anchor**: closes the gap between the roofline composition
/// (≈ 17 s) and the measured 22.1 s for `Dsy2sb`, `n = 49152`, `b = 64`
/// (Figure 4 / §3.2).
pub const MAGMA_PANEL_OVERHEAD_S: f64 = 6.0e-3;

/// Our DBBR per-panel overhead (GPU-resident panel, no host sync).
pub const DBBR_PANEL_OVERHEAD_S: f64 = 0.3e-3;

/// Tall-skinny panel-QR throughput on GPU, TFLOP/s.
pub const PANEL_QR_TFLOPS: f64 = 1.0;

/// MAGMA CPU bulge-chasing seconds per `n²` at `b = 32` (8 MKL threads).
/// **Anchor**: §4.1 — `Dsb2st` takes 16.2 s at `n = 49152`, `b = 32`.
pub const MAGMA_BC_B32_S_PER_N2: f64 = 16.2 / (49152.0 * 49152.0);

/// Same at `b = 64`. **Anchor**: §3.2 — 23.9 s at `n = 49152`.
pub const MAGMA_BC_B64_S_PER_N2: f64 = 23.9 / (49152.0 * 49152.0);

/// Same at `b = 128`. **Anchor**: §3.2 — 84.9 s at `n = 49152`.
pub const MAGMA_BC_B128_S_PER_N2: f64 = 84.9 / (49152.0 * 49152.0);

/// Host-speed factor for the RTX 4090 test system's CPU (its MAGMA BC
/// anchors are ≈ 1.35× the H100 host's at equal work: 14 327 ms at
/// `n = 32768`, `b = 64` — §6.1).
pub const MAGMA_BC_HOST_4090_FACTOR: f64 = 1.35;

/// Time to chase one bulge (one task) on H100, **naive** one-block-per-
/// sweep kernel, seconds, at `b = 32`.
///
/// **Anchor**: §3.3 — "the approximate time for chasing down one bulge is
/// around 10ms on H100". We read this as 10 **µs**: with 10 ms, the best
/// case in Figure 5 would be ≈ 45 minutes while the figure's MAGMA
/// baseline is ≈ 29 s; with 10 µs the model lands the Figure 5 crossover
/// at S ≈ 32 exactly as the paper describes. Recorded as a known erratum
/// in EXPERIMENTS.md.
pub const BC_BULGE_TIME_NAIVE_S: f64 = 10.0e-6;

/// Same for the optimized kernel (L2-resident compact band, warp-per-sweep
/// grouping, prefetch warps — §5.2). **Anchor**: Figure 11 — optimized BC
/// reaches 12.5× over MAGMA where naive reaches 5.9×: the per-bulge time
/// ratio is the kernel-time ratio at saturated parallelism.
pub const BC_BULGE_TIME_OPT_S: f64 = 4.2e-6;

/// Latency floor inside a bulge task (dependent operations on one column).
pub const BC_BULGE_LATENCY_S: f64 = 1.5e-6;

/// Parallel sweeps supported by the naive kernel: one thread block per SM.
pub const BC_NAIVE_SWEEPS_PER_SM: usize = 1;

/// Parallel sweeps for the optimized kernel. The §5.2 optimizations (warp-
/// per-sweep grouping, prefetch warps, compact L2-resident band) shorten
/// the per-bulge time rather than adding sweep slots — consistent with the
/// Figure 11 ratios (12.5/5.9 ≈ the kernel-time ratio at equal S).
pub const BC_OPT_SWEEPS_PER_SM: usize = 1;

/// Bytes touched per bulge task at bandwidth `b` (three `b × b` blocks,
/// read + write, 8-byte elements): `3 · b² · 8 · 2`.
pub fn bc_bytes_per_task(b: usize) -> f64 {
    (3 * b * b * 8 * 2) as f64
}

/// Divide & conquer (`Dstedc`) times, seconds. **Anchors**: §6.2 —
/// cuSOLVER D&C ≈ 33 ms and MAGMA ≈ 248 ms at n = 8192; Figure 4 — MAGMA
/// D&C is 7.6 % of a ≈ 50 s EVD at n = 49152 (≈ 3.8 s). Modeled ∝ n³
/// through the 49152 anchor with a fixed per-call overhead.
pub const MAGMA_DC_49152_S: f64 = 3.8;
pub const CUSOLVER_DC_49152_S: f64 = 1.8;
pub const MAGMA_DC_OVERHEAD_S: f64 = 0.23;
pub const CUSOLVER_DC_OVERHEAD_S: f64 = 0.025;

#[cfg(test)]
mod tests {
    use super::*;

    // Sanity tests on the calibration constants themselves — the asserts
    // are intentionally "constant" to a fresh compiler.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn magma_bc_anchor_ordering() {
        assert!(MAGMA_BC_B32_S_PER_N2 < MAGMA_BC_B64_S_PER_N2);
        assert!(MAGMA_BC_B64_S_PER_N2 < MAGMA_BC_B128_S_PER_N2);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn optimized_bulge_faster_than_naive() {
        assert!(BC_BULGE_TIME_OPT_S < BC_BULGE_TIME_NAIVE_S);
    }

    #[test]
    fn bytes_per_task_scales_quadratically() {
        assert_eq!(bc_bytes_per_task(32), 3.0 * 1024.0 * 16.0);
        assert_eq!(bc_bytes_per_task(64), 4.0 * bc_bytes_per_task(32));
    }
}
