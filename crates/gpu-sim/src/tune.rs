//! Model-based parameter tuning for the proposed pipeline.
//!
//! §4.1's tension — small `b` speeds bulge chasing, large `k` speeds the
//! trailing update — makes `(b, k)` a genuine tuning problem. This module
//! searches the composed model for the best configuration on a device, the
//! same exercise the `gpu_model_explorer` example walks through manually.

use crate::compose;
use crate::device::Device;
use serde::Serialize;

/// A tuned DBBR + GPU-BC configuration.
#[derive(Serialize, Clone, Debug, PartialEq)]
pub struct TunedConfig {
    /// Bandwidth.
    pub b: usize,
    /// `syr2k` accumulation width (multiple of `b`).
    pub k: usize,
    /// Predicted stage-1 (DBBR) seconds.
    pub stage1_s: f64,
    /// Predicted bulge-chasing seconds.
    pub bc_s: f64,
}

impl TunedConfig {
    /// Total predicted tridiagonalization time.
    pub fn total_s(&self) -> f64 {
        self.stage1_s + self.bc_s
    }
}

/// Candidate bandwidths considered by [`best_config`].
pub const B_CANDIDATES: [usize; 5] = [8, 16, 32, 64, 128];
/// Candidate accumulation widths.
pub const K_CANDIDATES: [usize; 5] = [128, 256, 512, 1024, 2048];

/// Finds the `(b, k)` pair minimizing the modeled tridiagonalization time
/// for an `n × n` problem on `dev`.
pub fn best_config(dev: &Device, n: usize) -> TunedConfig {
    let mut best: Option<TunedConfig> = None;
    for &b in &B_CANDIDATES {
        if b + 1 >= n {
            continue;
        }
        let bc = compose::bc_gpu_time(dev, n, b, true, None);
        for &k in &K_CANDIDATES {
            if k < b || !k.is_multiple_of(b) || k > n {
                continue;
            }
            let stage1 = compose::dbbr_time(dev, n, b, k);
            let cand = TunedConfig {
                b,
                k,
                stage1_s: stage1,
                bc_s: bc,
            };
            if best
                .as_ref()
                .map(|c| cand.total_s() < c.total_s())
                .unwrap_or(true)
            {
                best = Some(cand);
            }
        }
    }
    best.expect("no feasible configuration (n too small)")
}

/// Predicted speedup of the tuned configuration over the baselines.
#[derive(Serialize, Clone, Debug)]
pub struct TuneReport {
    pub n: usize,
    pub config: TunedConfig,
    pub vs_cusolver: f64,
    pub vs_magma: f64,
    pub vs_paper_choice: f64,
}

/// Tunes and compares against cuSOLVER, MAGMA, and the paper's fixed
/// `(32, 1024)`.
pub fn tune_report(dev: &Device, n: usize) -> TuneReport {
    let config = best_config(dev, n);
    let total = config.total_s();
    let cus = compose::tridiag_cusolver(dev, n);
    let (ms, mb) = compose::tridiag_magma(dev, n, 64);
    let (ps, pb) = compose::tridiag_ours(dev, n, 32, 1024.min(n));
    TuneReport {
        n,
        config,
        vs_cusolver: cus / total,
        vs_magma: (ms + mb) / total,
        vs_paper_choice: (ps + pb) / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_beats_or_matches_paper_choice() {
        let dev = Device::h100();
        for n in [8192usize, 32768, 49152] {
            let r = tune_report(&dev, n);
            assert!(
                r.vs_paper_choice >= 0.999,
                "n={n}: tuned worse than the paper's fixed choice ({:.3})",
                r.vs_paper_choice
            );
            assert!(r.vs_cusolver > 1.0, "n={n}");
            assert!(r.vs_magma > 1.0, "n={n}");
        }
    }

    #[test]
    fn config_is_feasible() {
        let dev = Device::h100();
        let c = best_config(&dev, 16384);
        assert!(c.k.is_multiple_of(c.b));
        assert!(c.k <= 16384);
        assert!(c.total_s() > 0.0);
    }

    #[test]
    fn devices_tune_differently() {
        // the 4090's compute-starved FP64 prefers different trade-offs than
        // the H100 — at minimum the predicted times differ hugely
        let h = best_config(&Device::h100(), 32768);
        let r = best_config(&Device::rtx4090(), 32768);
        assert!(r.total_s() > 5.0 * h.total_s());
    }

    #[test]
    #[should_panic]
    fn infeasible_size_panics() {
        let _ = best_config(&Device::h100(), 4);
    }
}
