//! The paper's closed-form bulge-chasing pipeline model (§3.3).
//!
//! Time is measured in *bulge cycles* (one cycle = chasing one bulge one
//! step). Three laws:
//!
//! * ① sweep `i+1` starts after sweep `i` has processed 3 bulges,
//! * ② the number of bulges per sweep decreases by one every `b` sweeps,
//! * ③ at most `S` sweeps are in flight; extra sweeps stall.
//!
//! With unlimited parallelism the makespan is `3n − 2` cycles; with `S`
//! sweeps the paper derives the stall-cycle sum reproduced verbatim in
//! [`stall_cycles`].

/// Total stall cycles for matrix order `n`, bandwidth `b`, `S` parallel
/// sweeps — the summation displayed at the end of §3.3:
///
/// ```text
/// Σ_{i=1}^{(n+3b)/S − 3b}  ( (n+S)/b − 3S + 3 − (S/b)·i )
/// ```
///
/// Negative terms are clamped at zero (the paper notes the stall count
/// reaches zero at `i ≥ (n+3b)/S − 3b + 1`).
pub fn stall_cycles(n: usize, b: usize, s: usize) -> f64 {
    let (nf, bf, sf) = (n as f64, b as f64, s as f64);
    let imax = ((nf + 3.0 * bf) / sf - 3.0 * bf).floor();
    if imax < 1.0 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut i = 1.0;
    while i <= imax {
        let term = (nf + sf) / bf - 3.0 * sf + 3.0 - (sf / bf) * i;
        if term <= 0.0 {
            break;
        }
        total += term;
        i += 1.0;
    }
    total
}

/// Total bulge cycles: successive-bulge makespan `3n − 2` plus stalls.
pub fn total_cycles(n: usize, b: usize, s: usize) -> f64 {
    3.0 * n as f64 - 2.0 + stall_cycles(n, b, s)
}

/// Estimated wall time for GPU bulge chasing per the closed-form model.
pub fn estimated_time(n: usize, b: usize, s: usize, t_bulge: f64) -> f64 {
    total_cycles(n, b, s) * t_bulge
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_parallelism_no_stalls() {
        // with S large enough the stall sum is empty
        assert_eq!(stall_cycles(65536, 32, 4096), 0.0);
        assert_eq!(total_cycles(65536, 32, 4096), 3.0 * 65536.0 - 2.0);
    }

    #[test]
    fn serial_is_quadratic() {
        // S = 1 ⇒ stalls ≈ n²/(2b)
        let n = 65536;
        let b = 32;
        let st = stall_cycles(n, b, 1);
        let approx = (n * n) as f64 / (2.0 * b as f64);
        assert!((st - approx).abs() / approx < 0.01, "{st} vs {approx}");
    }

    #[test]
    fn monotone_in_s() {
        let n = 65536;
        let b = 32;
        let mut prev = f64::INFINITY;
        for s in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let t = total_cycles(n, b, s);
            assert!(t <= prev, "not monotone at S={s}");
            prev = t;
        }
    }

    /// Figure 5's headline: with the MAGMA baseline at n = 65536, b = 32
    /// (≈ 28.8 s by the n² scaling of the 16.2 s anchor), the GPU model
    /// crosses below MAGMA at S ≈ 32 and is far slower serial.
    #[test]
    fn figure5_crossover_at_32_sweeps() {
        let n = 65536;
        let b = 32;
        let t_bulge = crate::calib::BC_BULGE_TIME_NAIVE_S;
        let magma = crate::calib::MAGMA_BC_B32_S_PER_N2 * (n * n) as f64;
        assert!((magma - 28.8).abs() < 0.5, "MAGMA baseline {magma}");
        let serial = estimated_time(n, b, 1, t_bulge);
        assert!(serial > 5.0 * magma, "serial {serial} vs {magma}");
        let s32 = estimated_time(n, b, 32, t_bulge);
        assert!(s32 < magma, "S=32: {s32} vs {magma}");
        let s16 = estimated_time(n, b, 16, t_bulge);
        assert!(s16 > magma, "S=16 should not beat MAGMA: {s16}");
    }
}
