//! Device models for the two GPUs the paper evaluates on.

use serde::{Deserialize, Serialize};

/// Which modeled GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA H100 SXM (the paper's primary platform).
    H100,
    /// NVIDIA RTX 4090 (the paper's consumer-GPU comparison).
    Rtx4090,
}

/// Hardware parameters of a modeled GPU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Device {
    pub kind: DeviceKind,
    pub name: &'static str,
    /// Peak FP64 throughput in TFLOP/s (H100: 67 with FP64 tensor cores;
    /// RTX 4090: 1.29 — both as quoted in the paper's Figure 15 caption).
    pub fp64_peak_tflops: f64,
    /// HBM/GDDR bandwidth in TB/s.
    pub mem_bw_tbs: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// L2 cache size in bytes (§5.2 cites 50 MB for H100).
    pub l2_bytes: usize,
    /// Effective FP64-equivalent rate for INT8-tensor-core DGEMM
    /// (Ozaki scheme, paper ref [19]); `None` if not used.
    /// Explains the RTX 4090 exceeding its FP64 peak in Figure 15b.
    pub int8_dgemm_tflops: Option<f64>,
}

impl Device {
    /// The H100-SXM model.
    pub fn h100() -> Device {
        Device {
            kind: DeviceKind::H100,
            name: "H100-SXM",
            fp64_peak_tflops: 67.0,
            mem_bw_tbs: 3.35,
            sm_count: 132,
            l2_bytes: 50 * 1024 * 1024,
            int8_dgemm_tflops: None,
        }
    }

    /// The RTX 4090 model.
    pub fn rtx4090() -> Device {
        Device {
            kind: DeviceKind::Rtx4090,
            name: "RTX 4090",
            fp64_peak_tflops: 1.29,
            mem_bw_tbs: 1.008,
            sm_count: 128,
            l2_bytes: 72 * 1024 * 1024,
            int8_dgemm_tflops: Some(1.45),
        }
    }

    /// Effective GEMM peak: INT8-tensor-core DGEMM if modeled, else FP64.
    pub fn gemm_peak_tflops(&self) -> f64 {
        self.int8_dgemm_tflops.unwrap_or(self.fp64_peak_tflops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_peaks() {
        assert_eq!(Device::h100().fp64_peak_tflops, 67.0);
        assert_eq!(Device::rtx4090().fp64_peak_tflops, 1.29);
        assert_eq!(Device::h100().l2_bytes, 50 * 1024 * 1024);
    }

    #[test]
    fn gemm_peak_uses_int8_on_4090() {
        assert!(Device::rtx4090().gemm_peak_tflops() > 1.29);
        assert_eq!(Device::h100().gemm_peak_tflops(), 67.0);
    }

    #[test]
    fn serializes() {
        let s = serde_json::to_string(&Device::h100()).unwrap();
        assert!(s.contains("H100"));
    }
}
