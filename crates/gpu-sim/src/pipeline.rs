//! Discrete-event simulator of the bulge-chasing sweep pipeline.
//!
//! Where [`crate::bc_model`] reproduces the paper's closed-form §3.3
//! estimate, this simulator executes the actual dependency structure of
//! Algorithm 2 — sweep `s` task `j` waits for sweep `s−1` task `j+3`
//! (the 2b-row spacing expressed in tasks) and for a free sweep slot —
//! and reports makespan, occupancy and achieved memory throughput
//! (the quantity Figure 12 measures with Nsight Compute).

use crate::calib::bc_bytes_per_task;

/// Result of a pipeline simulation.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// End-to-end time in seconds.
    pub makespan_s: f64,
    /// Total bulge tasks executed.
    pub total_tasks: u64,
    /// Average number of concurrently busy sweeps.
    pub avg_parallelism: f64,
    /// Achieved memory throughput in TB/s, given the per-task byte count.
    pub throughput_tbs: f64,
}

/// Number of bulge tasks in sweep `s` for an `n × n` band of width `b`
/// (mirrors `run_sweep` in `tridiag-core`).
pub fn tasks_in_sweep(n: usize, b: usize, s: usize) -> usize {
    if s + 2 >= n {
        return 0;
    }
    let first_end = (s + b).min(n - 1);
    1 + (n - 1 - first_end).div_ceil(b)
}

/// Simulates the pipeline: `s_max` concurrent sweep slots, each bulge task
/// takes `t_bulge` seconds.
///
/// Dependency rule (law ①): task `j` of sweep `s` starts only after task
/// `j + 3` of sweep `s − 1` finished. Slot rule (law ③): sweep `s` cannot
/// start before sweep `s − s_max` finished.
pub fn simulate(n: usize, b: usize, s_max: usize, t_bulge: f64) -> PipelineStats {
    assert!(s_max >= 1);
    let n_sweeps = n.saturating_sub(2);
    let mut slot_free = vec![0.0f64; s_max];
    // completion times of the previous sweep's tasks
    let mut prev: Vec<f64> = Vec::new();
    let mut total_tasks = 0u64;
    let mut makespan = 0.0f64;
    let mut busy_time = 0.0f64;

    for s in 0..n_sweeps {
        let tasks = tasks_in_sweep(n, b, s);
        if tasks == 0 {
            continue;
        }
        let slot = s % s_max;
        let mut t = slot_free[slot];
        let mut sweep_start = t;
        let mut cur = Vec::with_capacity(tasks);
        for j in 0..tasks {
            // law ①: sweep s starts after sweep s−1 processed 3 bulges,
            // i.e. task j waits for task j+2 of the previous sweep to
            // complete (so the previous sweep is *working on* j+3)
            if s > 0 {
                let dep = j + 2;
                if dep < prev.len() {
                    t = t.max(prev[dep]);
                } else if !prev.is_empty() {
                    t = t.max(*prev.last().unwrap());
                }
            }
            if j == 0 {
                sweep_start = t;
            }
            t += t_bulge;
            cur.push(t);
        }
        busy_time += tasks as f64 * t_bulge;
        total_tasks += tasks as u64;
        makespan = makespan.max(t);
        slot_free[slot] = t;
        prev = cur;
        // one virtual-timeline event per sweep; its slot plays the tid
        tg_trace::record_virtual(
            "sim.sweep",
            "sim",
            Some(("s", s as u64)),
            slot as u64,
            sweep_start * 1e6,
            (t - sweep_start) * 1e6,
        );
    }

    let bytes = total_tasks as f64 * bc_bytes_per_task(b);
    PipelineStats {
        makespan_s: makespan,
        total_tasks,
        avg_parallelism: if makespan > 0.0 {
            busy_time / makespan
        } else {
            0.0
        },
        throughput_tbs: if makespan > 0.0 {
            bytes / makespan / 1e12
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc_model;

    #[test]
    fn task_counts() {
        // n = 10, b = 2: sweep 0 spans [1, 2], then +2 per task to row 9
        assert_eq!(tasks_in_sweep(10, 2, 0), 1 + 4);
        assert_eq!(tasks_in_sweep(10, 2, 7), 1);
        assert_eq!(tasks_in_sweep(10, 2, 8), 0);
        // wide band: single task per sweep
        assert_eq!(tasks_in_sweep(10, 16, 0), 1);
    }

    #[test]
    fn serial_equals_total_work() {
        let n = 200;
        let b = 4;
        let st = simulate(n, b, 1, 1.0);
        // S = 1: sweeps never overlap ⇒ makespan = total tasks
        assert_eq!(st.makespan_s, st.total_tasks as f64);
        assert!((st.avg_parallelism - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_monotone_in_s() {
        let n = 400;
        let b = 8;
        let mut prev = f64::INFINITY;
        for s in [1usize, 2, 4, 8, 16, 64] {
            let st = simulate(n, b, s, 1.0);
            assert!(st.makespan_s <= prev + 1e-9, "S={s}");
            prev = st.makespan_s;
        }
    }

    #[test]
    fn unlimited_matches_3n_law() {
        // with unlimited slots, the makespan is ≈ 3·(#sweeps) + tasks of
        // the first sweep tail — the same scaling as the paper's 3n − 2
        let n = 2000;
        let b = 20;
        let st = simulate(n, b, n, 1.0);
        let closed = bc_model::total_cycles(n, b, n);
        let rel = (st.makespan_s - closed).abs() / closed;
        assert!(rel < 0.15, "DES {} vs closed {closed}", st.makespan_s);
    }

    #[test]
    fn closed_form_tracks_des_with_stalls() {
        let n = 1024;
        let b = 16;
        for s in [4usize, 8, 16] {
            let des = simulate(n, b, s, 1.0).makespan_s;
            let closed = bc_model::total_cycles(n, b, s);
            let rel = (des - closed).abs() / closed;
            assert!(
                rel < 0.35,
                "S={s}: DES {des} vs closed {closed} ({:.0}%)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn throughput_rises_with_parallelism() {
        // Figure 12's qualitative content
        let n = 1500;
        let b = 16;
        let t1 = simulate(n, b, 1, 1e-5).throughput_tbs;
        let t16 = simulate(n, b, 16, 1e-5).throughput_tbs;
        let t64 = simulate(n, b, 64, 1e-5).throughput_tbs;
        assert!(t16 > 5.0 * t1);
        assert!(t64 >= t16);
    }

    #[test]
    fn emits_virtual_sweep_events_when_traced() {
        let session = tg_trace::TraceSession::begin();
        let st = simulate(64, 8, 4, 1e-6);
        let trace = session.finish();
        let sweeps: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.name == "sim.sweep")
            .collect();
        // every non-empty sweep of n = 64 emits one event
        assert_eq!(sweeps.len(), 62);
        assert!(sweeps.iter().all(|e| e.virtual_time));
        // the virtual timeline ends exactly at the reported makespan
        let end = sweeps
            .iter()
            .map(|e| e.ts_us + e.dur_us)
            .fold(0.0f64, f64::max);
        assert!((end - st.makespan_s * 1e6).abs() < 1e-9);
        // s_max = 4 slots ⇒ tids 0..4 only
        assert!(sweeps.iter().all(|e| e.tid < 4));
    }

    #[test]
    fn parallelism_bounded_by_slots() {
        let st = simulate(600, 8, 7, 1.0);
        assert!(st.avg_parallelism <= 7.0 + 1e-9);
        assert!(st.avg_parallelism > 3.0);
    }
}
