//! What-if device exploration: how the paper's pipeline scales as GPU
//! parameters move.
//!
//! The interesting question the model can answer that the paper's testbed
//! cannot: which hardware lever most helps each stage? DBBR's trailing
//! update is compute-bound (FP64 peak), its ZY `symm` and the bulge
//! chasing are bandwidth/latency-bound, and the CPU baselines don't scale
//! at all. These functions perturb one device parameter at a time and
//! recompose the pipeline.

use crate::compose;
use crate::device::Device;
use serde::Serialize;

/// One what-if scenario result.
#[derive(Serialize, Clone, Debug)]
pub struct WhatIfRow {
    pub scenario: String,
    pub stage1_s: f64,
    pub bc_s: f64,
    pub total_s: f64,
    pub speedup_vs_base: f64,
}

/// Scales selected parameters of a device.
pub fn scaled_device(base: &Device, peak_mul: f64, bw_mul: f64, sm_mul: f64) -> Device {
    let mut d = base.clone();
    d.fp64_peak_tflops *= peak_mul;
    d.mem_bw_tbs *= bw_mul;
    d.sm_count = ((d.sm_count as f64) * sm_mul).round() as usize;
    if let Some(x) = d.int8_dgemm_tflops.as_mut() {
        *x *= peak_mul;
    }
    d
}

/// Evaluates the proposed pipeline under single-parameter scalings.
pub fn sweep(base: &Device, n: usize) -> Vec<WhatIfRow> {
    let scenarios: Vec<(String, Device)> = vec![
        ("baseline".into(), base.clone()),
        ("2x FP64 peak".into(), scaled_device(base, 2.0, 1.0, 1.0)),
        (
            "2x memory bandwidth".into(),
            scaled_device(base, 1.0, 2.0, 1.0),
        ),
        ("2x SM count".into(), scaled_device(base, 1.0, 1.0, 2.0)),
        ("2x everything".into(), scaled_device(base, 2.0, 2.0, 2.0)),
    ];
    let (bs, bb) = compose::tridiag_ours(base, n, 32, 1024);
    let base_total = bs + bb;
    scenarios
        .into_iter()
        .map(|(name, dev)| {
            let (s1, bc) = compose::tridiag_ours(&dev, n, 32, 1024);
            WhatIfRow {
                scenario: name,
                stage1_s: s1,
                bc_s: bc,
                total_s: s1 + bc,
                speedup_vs_base: base_total / (s1 + bc),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_hardware_never_hurts() {
        let rows = sweep(&Device::h100(), 49152);
        let base = rows[0].total_s;
        for r in &rows[1..] {
            assert!(
                r.total_s <= base * 1.001,
                "'{}' slower than baseline: {} vs {base}",
                r.scenario,
                r.total_s
            );
        }
    }

    #[test]
    fn bandwidth_helps_stage1_more_than_peak() {
        // stage 1 is dominated by the memory/latency-bound symm at b = 32,
        // so doubling bandwidth beats doubling FP64 peak
        let rows = sweep(&Device::h100(), 49152);
        let peak = rows.iter().find(|r| r.scenario.contains("FP64")).unwrap();
        let bw = rows
            .iter()
            .find(|r| r.scenario.contains("bandwidth"))
            .unwrap();
        assert!(
            bw.stage1_s < peak.stage1_s,
            "bw {} vs peak {}",
            bw.stage1_s,
            peak.stage1_s
        );
    }

    #[test]
    fn sm_count_helps_bc() {
        // more SMs ⇒ more parallel sweeps ⇒ faster bulge chasing
        let rows = sweep(&Device::h100(), 65536);
        let base = &rows[0];
        let sm = rows.iter().find(|r| r.scenario.contains("SM")).unwrap();
        assert!(sm.bc_s < base.bc_s * 0.95, "{} vs {}", sm.bc_s, base.bc_s);
    }

    #[test]
    fn doubling_everything_compounds() {
        let rows = sweep(&Device::h100(), 49152);
        let all = rows
            .iter()
            .find(|r| r.scenario.contains("everything"))
            .unwrap();
        assert!(all.speedup_vs_base > 1.5);
    }
}
