//! Lightweight instrumentation for the tridiagonalization pipelines.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero cost when disabled.** Tracing is off by default; every
//!    entry point first reads one relaxed atomic and bails. No allocation,
//!    no clock read, no lock on the disabled path.
//! 2. **Safe under parallelism.** Spans nest per-thread (a thread-local
//!    frame stack); completed spans and counter totals funnel into a global
//!    collector, so the bulge-chasing workers can be instrumented without
//!    changing their threading structure.
//! 3. **Two export formats.** [`Trace::chrome_json`] emits Chrome
//!    trace-event JSON (loadable in Perfetto / `chrome://tracing`);
//!    [`Trace::profile_table`] renders a per-stage wall-time/FLOP summary.
//!
//! # Usage
//!
//! ```
//! let session = tg_trace::TraceSession::begin();
//! {
//!     let _s = tg_trace::span("demo.compute");
//!     tg_trace::add(tg_trace::Counter::Flops, 1000);
//! }
//! let trace = session.finish();
//! assert_eq!(trace.total(tg_trace::Counter::Flops), 1000);
//! assert_eq!(trace.events.len(), 1);
//! ```
//!
//! Counters attribute to the innermost open span on the current thread
//! (inclusively: parents accumulate their children's counts when the child
//! closes), or to the session totals when no span is open. Sessions are
//! process-global and serialized: `begin` blocks while another session is
//! live, which keeps concurrently-running tests from mixing events.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

mod export;
pub mod timeline;

pub use timeline::{CriticalPath, LaneStats, RegionUtilization, TimelineReport};

/// Typed counters recorded alongside spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Floating-point operations (FMA counted as 2).
    Flops,
    /// Bytes read from matrix storage by kernels.
    BytesRead,
    /// Bytes written to matrix storage by kernels.
    BytesWritten,
    /// Bulge-chasing sweeps started.
    Sweeps,
    /// Bulge-chasing tasks executed.
    BulgeTasks,
    /// Workspace-arena buffer requests served from the cache.
    ArenaHit,
    /// Workspace-arena buffer requests that had to allocate.
    ArenaMiss,
    /// Stage-invariant checks executed (`tg-check`).
    ChecksRun,
    /// Stage-invariant checks that found a violation (`tg-check`).
    CheckFailures,
    /// Faults injected by an armed `tg-check` fault plan.
    FaultsInjected,
    /// Bytes copied into GEMM packing buffers (A/B micro-panels). Kept
    /// separate from [`Counter::BytesRead`]/[`Counter::BytesWritten`] so the
    /// analytic-model cross-check window is unaffected by packing traffic.
    PackBytes,
    /// Workspace-arena live bytes. Unlike every other counter this is a
    /// **gauge**: producers call [`gauge_add`]/[`gauge_sub`] as buffers are
    /// acquired and released, and the session total reports the *high-water
    /// mark* (peak simultaneous live bytes), not a sum. Never use [`add`]
    /// with this counter.
    ArenaLiveBytes,
    /// Job attempts re-executed by the serving layer after a transient
    /// failure (`tg-serve` retry-with-backoff).
    JobsRetried,
    /// Jobs rejected at admission because the service queue was saturated
    /// (`tg-serve` load shedding).
    JobsShed,
    /// Submissions served straight from the content-addressed result cache
    /// (`tg-serve`; see `docs/CACHING.md`).
    CacheHit,
    /// Cache-enabled submissions that had to run (no stored result; the
    /// denominator of the hit rate together with [`Counter::CacheHit`]).
    CacheMiss,
    /// Bytes of cached results evicted to respect the cache byte budget.
    CacheEvictedBytes,
    /// Submissions that attached to an identical in-flight job instead of
    /// entering the worker queue (`tg-serve` request coalescing).
    JobsCoalesced,
    /// Flops spent merging WY factors in the blocked back transformation
    /// (Algorithm 3 / Figure 13). Kept separate from [`Counter::Flops`] so
    /// the merge *overhead* of the width-`k` scheme can be reconciled
    /// against the gpu-sim cost model independently of the apply GEMMs.
    MergeFlops,
}

/// Number of [`Counter`] kinds (length of per-span counter arrays).
pub const N_COUNTERS: usize = 19;

impl Counter {
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::Flops,
        Counter::BytesRead,
        Counter::BytesWritten,
        Counter::Sweeps,
        Counter::BulgeTasks,
        Counter::ArenaHit,
        Counter::ArenaMiss,
        Counter::ChecksRun,
        Counter::CheckFailures,
        Counter::FaultsInjected,
        Counter::PackBytes,
        Counter::ArenaLiveBytes,
        Counter::JobsRetried,
        Counter::JobsShed,
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::CacheEvictedBytes,
        Counter::JobsCoalesced,
        Counter::MergeFlops,
    ];

    fn index(self) -> usize {
        match self {
            Counter::Flops => 0,
            Counter::BytesRead => 1,
            Counter::BytesWritten => 2,
            Counter::Sweeps => 3,
            Counter::BulgeTasks => 4,
            Counter::ArenaHit => 5,
            Counter::ArenaMiss => 6,
            Counter::ChecksRun => 7,
            Counter::CheckFailures => 8,
            Counter::FaultsInjected => 9,
            Counter::PackBytes => 10,
            Counter::ArenaLiveBytes => 11,
            Counter::JobsRetried => 12,
            Counter::JobsShed => 13,
            Counter::CacheHit => 14,
            Counter::CacheMiss => 15,
            Counter::CacheEvictedBytes => 16,
            Counter::JobsCoalesced => 17,
            Counter::MergeFlops => 18,
        }
    }

    /// Key used in exported JSON / profile tables.
    pub fn key(self) -> &'static str {
        match self {
            Counter::Flops => "flops",
            Counter::BytesRead => "bytes_read",
            Counter::BytesWritten => "bytes_written",
            Counter::Sweeps => "sweeps",
            Counter::BulgeTasks => "bulge_tasks",
            Counter::ArenaHit => "arena_hits",
            Counter::ArenaMiss => "arena_misses",
            Counter::ChecksRun => "checks_run",
            Counter::CheckFailures => "check_failures",
            Counter::FaultsInjected => "faults_injected",
            Counter::PackBytes => "pack_bytes",
            Counter::ArenaLiveBytes => "arena_live_bytes",
            Counter::JobsRetried => "jobs_retried",
            Counter::JobsShed => "jobs_shed",
            Counter::CacheHit => "cache_hits",
            Counter::CacheMiss => "cache_misses",
            Counter::CacheEvictedBytes => "cache_evicted_bytes",
            Counter::JobsCoalesced => "jobs_coalesced",
            Counter::MergeFlops => "merge_flops",
        }
    }
}

/// A completed span (or virtual-time event), ready for export.
#[derive(Clone, Debug)]
pub struct Event {
    pub name: &'static str,
    /// Category: coarse grouping for trace viewers ("stage", "kernel", …).
    pub cat: &'static str,
    /// Optional argument, e.g. the sweep index for `bc.sweep`.
    pub arg: Option<(&'static str, u64)>,
    /// Logical thread id (stable per OS thread within a session).
    pub tid: u64,
    /// Start, microseconds since session begin (or virtual time).
    pub ts_us: f64,
    pub dur_us: f64,
    /// Inclusive counter totals for the span, indexed by [`Counter`].
    pub counters: [u64; N_COUNTERS],
    /// True for simulator events on the virtual timeline — exported under
    /// a separate pid so real and virtual time don't interleave.
    pub virtual_time: bool,
    /// Parallel-region membership: the region span itself (cat `"region"`)
    /// and every task span spawned under it carry the same id, which lets
    /// the timeline analyses group work by fork-join region even though the
    /// member spans live on different threads. `None` for ordinary spans.
    pub region: Option<u64>,
}

impl Event {
    /// Value of counter `c` attributed to this span (nested spans on the
    /// same thread included — counters roll up to the enclosing frame).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }
}

/// Everything recorded between [`TraceSession::begin`] and
/// [`TraceSession::finish`].
#[derive(Clone, Debug)]
pub struct Trace {
    /// Completed spans, ordered by start time.
    pub events: Vec<Event>,
    /// Session-wide counter totals (including counts recorded outside any
    /// span), indexed by [`Counter`].
    pub totals: [u64; N_COUNTERS],
    /// Wall time from session begin to finish.
    pub wall: Duration,
}

impl Trace {
    pub fn total(&self, c: Counter) -> u64 {
        self.totals[c.index()]
    }
}

// ---- global state ----

static ENABLED: AtomicBool = AtomicBool::new(false);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static TOTALS: [AtomicU64; N_COUNTERS] = [ZERO; N_COUNTERS];
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static NEXT_REGION: AtomicU64 = AtomicU64::new(1);
/// Current value of the [`Counter::ArenaLiveBytes`] gauge; the session
/// total keeps the running maximum (see [`gauge_add`]).
static GAUGE_LIVE: AtomicU64 = AtomicU64::new(0);

struct CollectorState {
    epoch: Option<Instant>,
    events: Vec<Event>,
}

fn collector() -> &'static Mutex<CollectorState> {
    static COLLECTOR: OnceLock<Mutex<CollectorState>> = OnceLock::new();
    COLLECTOR.get_or_init(|| {
        Mutex::new(CollectorState {
            epoch: None,
            events: Vec::new(),
        })
    })
}

fn session_lock() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

/// Unpoisoned lock: a panicking instrumented test must not wedge tracing
/// for the rest of the process.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Frame {
    name: &'static str,
    cat: &'static str,
    arg: Option<(&'static str, u64)>,
    start: Instant,
    counters: [u64; N_COUNTERS],
    region: Option<u64>,
}

thread_local! {
    static STACK: std::cell::RefCell<Vec<Frame>> = const { std::cell::RefCell::new(Vec::new()) };
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
}

fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == u64::MAX {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Whether a trace session is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Identifier of one parallel (fork-join) region. The coordinating thread
/// allocates one with [`RegionId::fresh`], opens the region span with
/// [`span_region`], and passes the id into its worker closures so each task
/// span tags itself as a member. Ids are process-unique within a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionId(pub u64);

impl RegionId {
    /// Allocates a fresh region id, or `None` when tracing is disabled so
    /// callers can thread an `Option<RegionId>` through worker closures at
    /// zero cost on the disabled path.
    #[inline]
    pub fn fresh() -> Option<RegionId> {
        if !enabled() {
            return None;
        }
        Some(RegionId(NEXT_REGION.fetch_add(1, Ordering::Relaxed)))
    }
}

// ---- session ----

/// RAII handle for one recording session. Only one session can be live at
/// a time; `begin` blocks until the previous one finishes.
pub struct TraceSession {
    _exclusive: MutexGuard<'static, ()>,
    begun: Instant,
}

impl TraceSession {
    pub fn begin() -> TraceSession {
        let exclusive = lock_unpoisoned(session_lock());
        let now = Instant::now();
        {
            let mut st = lock_unpoisoned(collector());
            st.epoch = Some(now);
            st.events.clear();
        }
        for t in &TOTALS {
            t.store(0, Ordering::Relaxed);
        }
        GAUGE_LIVE.store(0, Ordering::Relaxed);
        ENABLED.store(true, Ordering::SeqCst);
        TraceSession {
            _exclusive: exclusive,
            begun: now,
        }
    }

    /// Stops recording and returns everything captured.
    ///
    /// Spans still open on *other* threads when `finish` is called are
    /// dropped (their counters were not yet flushed); finish after joining
    /// worker threads.
    pub fn finish(self) -> Trace {
        let wall = self.begun.elapsed();
        ENABLED.store(false, Ordering::SeqCst);
        let mut st = lock_unpoisoned(collector());
        st.epoch = None;
        let mut events = std::mem::take(&mut st.events);
        drop(st);
        events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        let mut totals = [0u64; N_COUNTERS];
        for (i, t) in TOTALS.iter().enumerate() {
            totals[i] = t.swap(0, Ordering::Relaxed);
        }
        Trace {
            events,
            totals,
            wall,
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // finish() consumed self normally; this handles early drops (e.g.
        // a panicking test) so the next session starts clean.
        ENABLED.store(false, Ordering::SeqCst);
        let mut st = lock_unpoisoned(collector());
        st.epoch = None;
        st.events.clear();
    }
}

// ---- spans and counters ----

/// Closes the span (records the event) when dropped.
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span in category `"stage"`. Returns an inert guard when
/// tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "stage", None)
}

/// Opens a span with an explicit category and optional argument.
#[inline]
pub fn span_cat(
    name: &'static str,
    cat: &'static str,
    arg: Option<(&'static str, u64)>,
) -> SpanGuard {
    span_region(name, cat, arg, None)
}

/// Opens a span tagged with a parallel-region id (see [`RegionId`]).
/// Conventional categories: the coordinating span uses cat `"region"`,
/// member task spans `"task"`, long-lived worker-loop spans `"worker"`,
/// and dependency-stall spans `"wait"` — the timeline analyses key off
/// these categories when computing utilization.
#[inline]
pub fn span_region(
    name: &'static str,
    cat: &'static str,
    arg: Option<(&'static str, u64)>,
    region: Option<RegionId>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            name,
            cat,
            arg,
            start: Instant::now(),
            counters: [0; N_COUNTERS],
            region: region.map(|r| r.0),
        })
    });
    SpanGuard { active: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = Instant::now();
        // Pop unconditionally (the frame was pushed when this guard was
        // created), even if the session ended while the span was open.
        let frame = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop().expect("span stack underflow");
            if let Some(parent) = stack.last_mut() {
                for i in 0..N_COUNTERS {
                    parent.counters[i] += frame.counters[i];
                }
            } else {
                for (total, &v) in TOTALS.iter().zip(frame.counters.iter()) {
                    if v != 0 {
                        total.fetch_add(v, Ordering::Relaxed);
                    }
                }
            }
            frame
        });
        let mut st = lock_unpoisoned(collector());
        if let Some(epoch) = st.epoch {
            let ts_us = frame.start.saturating_duration_since(epoch).as_secs_f64() * 1e6;
            let dur_us = end.saturating_duration_since(frame.start).as_secs_f64() * 1e6;
            st.events.push(Event {
                name: frame.name,
                cat: frame.cat,
                arg: frame.arg,
                tid: thread_id(),
                ts_us,
                dur_us,
                counters: frame.counters,
                virtual_time: false,
                region: frame.region,
            });
        }
    }
}

/// Adds `n` to counter `c`, attributed to the innermost open span on this
/// thread (or the session totals when no span is open).
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let attributed = STACK.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            top.counters[c.index()] += n;
            true
        } else {
            false
        }
    });
    if !attributed {
        TOTALS[c.index()].fetch_add(n, Ordering::Relaxed);
    }
}

/// Records a completed event on the **virtual** timeline (simulator time,
/// not wall time). `track` plays the role of a tid within the virtual pid.
pub fn record_virtual(
    name: &'static str,
    cat: &'static str,
    arg: Option<(&'static str, u64)>,
    track: u64,
    ts_us: f64,
    dur_us: f64,
) {
    if !enabled() {
        return;
    }
    let mut st = lock_unpoisoned(collector());
    if st.epoch.is_some() {
        st.events.push(Event {
            name,
            cat,
            arg,
            tid: track,
            ts_us,
            dur_us,
            counters: [0; N_COUNTERS],
            virtual_time: true,
            region: None,
        });
    }
}

/// Records an already-elapsed interval as a completed span on the calling
/// thread's lane — for durations that can only be measured after the fact,
/// such as the time a job spent parked in a queue before a worker picked it
/// up (`tg-serve` emits these with cat `"wait"` so the timeline analyses
/// separate queue wait from compute). The interval is clipped to the
/// session epoch; no counters are attributed.
pub fn record_span(
    name: &'static str,
    cat: &'static str,
    arg: Option<(&'static str, u64)>,
    start: Instant,
    end: Instant,
    region: Option<RegionId>,
) {
    if !enabled() {
        return;
    }
    let tid = thread_id();
    let mut st = lock_unpoisoned(collector());
    if let Some(epoch) = st.epoch {
        let ts_us = start.saturating_duration_since(epoch).as_secs_f64() * 1e6;
        let dur_us = end
            .saturating_duration_since(start.max(epoch))
            .as_secs_f64()
            * 1e6;
        st.events.push(Event {
            name,
            cat,
            arg,
            tid,
            ts_us,
            dur_us,
            counters: [0; N_COUNTERS],
            virtual_time: false,
            region: region.map(|r| r.0),
        });
    }
}

/// Raises the [`Counter::ArenaLiveBytes`] gauge by `n` bytes and folds the
/// new current value into the session high-water mark. The peak is kept in
/// the ordinary totals slot via `fetch_max`, so [`Trace::total`] reports
/// *peak simultaneous* live bytes rather than a sum.
#[inline]
pub fn gauge_add(c: Counter, n: u64) {
    debug_assert!(matches!(c, Counter::ArenaLiveBytes));
    if !enabled() || n == 0 {
        return;
    }
    let now = GAUGE_LIVE.fetch_add(n, Ordering::Relaxed) + n;
    TOTALS[c.index()].fetch_max(now, Ordering::Relaxed);
}

/// Lowers the [`Counter::ArenaLiveBytes`] gauge by `n` bytes (saturating:
/// releases recorded without a traced acquire — e.g. a session opened
/// mid-computation — clamp at zero instead of wrapping).
#[inline]
pub fn gauge_sub(c: Counter, n: u64) {
    debug_assert!(matches!(c, Counter::ArenaLiveBytes));
    if !enabled() || n == 0 {
        return;
    }
    let _ = GAUGE_LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(n))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes this module's tests: the assertions around session
    /// boundaries (e.g. "enabled() is false before begin") would race with
    /// a concurrently-running instrumented test otherwise.
    fn serial() -> MutexGuard<'static, ()> {
        static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        lock_unpoisoned(TEST_LOCK.get_or_init(|| Mutex::new(())))
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _serial = serial();
        assert!(!enabled());
        let g = span("not.recorded");
        add(Counter::Flops, 123);
        drop(g);
        let session = TraceSession::begin();
        let trace = session.finish();
        assert!(trace.events.is_empty());
        assert_eq!(trace.total(Counter::Flops), 0);
    }

    #[test]
    fn counters_attribute_inclusively() {
        let _serial = serial();
        let session = TraceSession::begin();
        {
            let _outer = span("outer");
            add(Counter::Flops, 10);
            {
                let _inner = span_cat("inner", "kernel", Some(("k", 7)));
                add(Counter::Flops, 32);
                add(Counter::BytesRead, 8);
            }
            add(Counter::Flops, 100);
        }
        add(Counter::Sweeps, 1); // outside any span: straight to totals
        let trace = session.finish();
        assert_eq!(trace.total(Counter::Flops), 142);
        assert_eq!(trace.total(Counter::BytesRead), 8);
        assert_eq!(trace.total(Counter::Sweeps), 1);
        let inner = trace.events.iter().find(|e| e.name == "inner").unwrap();
        let outer = trace.events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.counters[Counter::Flops.index()], 32);
        assert_eq!(outer.counters[Counter::Flops.index()], 142);
        assert_eq!(inner.arg, Some(("k", 7)));
        assert!(outer.ts_us <= inner.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1.0);
    }

    #[test]
    fn spans_and_counters_across_threads() {
        let _serial = serial();
        let session = TraceSession::begin();
        let threads: u64 = 4;
        let per_thread: u64 = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    let _w = span_cat("worker", "stage", Some(("w", t)));
                    for _ in 0..per_thread {
                        let _task = span_cat("task", "kernel", None);
                        add(Counter::Flops, 2);
                    }
                });
            }
        });
        let trace = session.finish();
        assert_eq!(trace.total(Counter::Flops), threads * per_thread * 2);
        let workers: Vec<_> = trace.events.iter().filter(|e| e.name == "worker").collect();
        assert_eq!(workers.len(), threads as usize);
        // all tasks nested under some worker span on the same thread
        for task in trace.events.iter().filter(|e| e.name == "task") {
            let host = workers.iter().find(|w| w.tid == task.tid).unwrap();
            assert!(task.ts_us >= host.ts_us);
        }
        // distinct tids per worker thread
        let mut tids: Vec<u64> = workers.iter().map(|w| w.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), threads as usize);
    }

    #[test]
    fn virtual_events_recorded() {
        let _serial = serial();
        let session = TraceSession::begin();
        record_virtual("sim.sweep", "sim", Some(("s", 0)), 0, 0.0, 10.0);
        record_virtual("sim.sweep", "sim", Some(("s", 1)), 1, 5.0, 10.0);
        let trace = session.finish();
        assert_eq!(trace.events.len(), 2);
        assert!(trace.events.iter().all(|e| e.virtual_time));
    }

    #[test]
    fn gauge_reports_high_water_not_sum() {
        let _serial = serial();
        let session = TraceSession::begin();
        gauge_add(Counter::ArenaLiveBytes, 100);
        gauge_add(Counter::ArenaLiveBytes, 50); // peak: 150
        gauge_sub(Counter::ArenaLiveBytes, 120);
        gauge_add(Counter::ArenaLiveBytes, 40); // current 70, below peak
        let trace = session.finish();
        assert_eq!(trace.total(Counter::ArenaLiveBytes), 150);
        // a fresh session starts from a clean gauge
        let s2 = TraceSession::begin();
        gauge_add(Counter::ArenaLiveBytes, 10);
        let t2 = s2.finish();
        assert_eq!(t2.total(Counter::ArenaLiveBytes), 10);
    }

    #[test]
    fn region_spans_tag_members_across_threads() {
        let _serial = serial();
        let session = TraceSession::begin();
        let region = RegionId::fresh();
        assert!(region.is_some(), "enabled session must mint region ids");
        {
            let _r = span_region("parallel.demo", "region", None, region);
            std::thread::scope(|s| {
                for i in 0..2u64 {
                    s.spawn(move || {
                        let _t = span_region("task.demo", "task", Some(("i", i)), region);
                    });
                }
            });
        }
        let trace = session.finish();
        let id = region.unwrap().0;
        let tagged: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.region == Some(id))
            .collect();
        assert_eq!(tagged.len(), 3); // opener + 2 tasks
        let regs = trace.region_utilization();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].tasks, 2);
        assert_eq!(regs[0].workers, 2);
    }

    #[test]
    fn region_ids_are_none_when_disabled() {
        let _serial = serial();
        assert!(!enabled());
        assert_eq!(RegionId::fresh(), None);
        let g = span_region("not.recorded", "task", None, None);
        drop(g);
        gauge_add(Counter::ArenaLiveBytes, 999);
        let session = TraceSession::begin();
        let trace = session.finish();
        assert!(trace.events.is_empty());
        assert_eq!(trace.total(Counter::ArenaLiveBytes), 0);
    }

    #[test]
    fn record_span_backdates_within_session() {
        let _serial = serial();
        // outside a session: inert
        record_span(
            "not.recorded",
            "wait",
            None,
            Instant::now(),
            Instant::now(),
            None,
        );
        let session = TraceSession::begin();
        let t0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = Instant::now();
        record_span("queue.wait", "wait", Some(("job", 3)), t0, t1, None);
        let trace = session.finish();
        let e = trace
            .events
            .iter()
            .find(|e| e.name == "queue.wait")
            .expect("recorded");
        assert_eq!(e.cat, "wait");
        assert!(e.dur_us >= 1000.0, "dur {} us", e.dur_us);
        assert_eq!(e.arg, Some(("job", 3)));
        // an interval starting before the epoch is clipped, not negative
        let session = TraceSession::begin();
        record_span("pre.epoch", "wait", None, t0, Instant::now(), None);
        let trace = session.finish();
        let e = trace.events.iter().find(|e| e.name == "pre.epoch").unwrap();
        assert!(e.ts_us >= 0.0 && e.dur_us >= 0.0);
    }

    #[test]
    fn sessions_reset_state() {
        let _serial = serial();
        let s1 = TraceSession::begin();
        add(Counter::Flops, 5);
        let t1 = s1.finish();
        assert_eq!(t1.total(Counter::Flops), 5);
        let s2 = TraceSession::begin();
        let t2 = s2.finish();
        assert_eq!(t2.total(Counter::Flops), 0);
        assert!(t2.events.is_empty());
    }
}
