//! Timeline analyses over a finished [`Trace`]: per-thread lanes,
//! parallel-region utilization / load imbalance, and critical-path
//! extraction.
//!
//! All three analyses consume the per-thread span intervals the recorder
//! already collects (stable `tid`, monotonic `ts_us`/`dur_us` relative to
//! session begin). Nothing here touches the hot recording path — these are
//! post-mortem passes over an owned [`Trace`].
//!
//! * **Lanes** ([`Trace::lanes`]): one row per thread (or per virtual
//!   track), with busy time computed as the union of that lane's span
//!   intervals — nested spans are not double counted.
//! * **Region utilization** ([`Trace::region_utilization`]): spans opened
//!   with [`crate::span_region`] carry a region id; per region we report
//!   distinct workers, busy vs. wait time, utilization, and the imbalance
//!   ratio (max worker busy / mean worker busy; 1.0 = perfectly balanced).
//! * **Critical path** ([`Trace::critical_path`]): a backward "last to
//!   finish" walk over leaf segments (each span's self time, i.e. its
//!   interval minus its children). From the last segment end, repeatedly
//!   attribute the latest-finishing segment and jump to its start; gaps
//!   where no segment ends are idle. The result partitions the session
//!   window into per-span-name shares of the critical path.

use crate::{Event, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tolerance (µs) for interval comparisons: child end timestamps are
/// measured independently of their parent's and can round past it.
const EPS_US: f64 = 0.5;

/// Busy/idle summary for one thread lane (or one virtual track).
#[derive(Clone, Debug)]
pub struct LaneStats {
    pub tid: u64,
    /// Number of spans recorded on this lane.
    pub spans: usize,
    /// Union of span intervals, µs (nesting not double counted).
    pub busy_us: f64,
    pub first_ts_us: f64,
    pub last_end_us: f64,
}

/// Utilization metrics for one parallel region (see [`crate::RegionId`]).
#[derive(Clone, Debug)]
pub struct RegionUtilization {
    pub region: u64,
    /// Name of the region-opening span (`"?"` if it never closed).
    pub name: &'static str,
    /// Region span duration, µs.
    pub wall_us: f64,
    /// Distinct worker threads that ran member tasks.
    pub workers: usize,
    /// Member task spans executed.
    pub tasks: usize,
    /// Sum of member task durations, µs (wait time included).
    pub busy_us: f64,
    /// Sum of `"wait"`-category spans in the region (dependency stalls).
    pub wait_us: f64,
    /// `(busy - wait) / (workers × wall)`; 1.0 = every worker busy for the
    /// whole region.
    pub utilization: f64,
    /// Max worker busy / mean worker busy; 1.0 = perfectly balanced.
    pub imbalance: f64,
}

/// One critical-path entry: total µs the named span was the last thing
/// running, and its share of the walked window.
#[derive(Clone, Debug)]
pub struct CriticalPathRow {
    pub name: &'static str,
    pub us: f64,
    pub share: f64,
}

/// Result of [`Trace::critical_path`].
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Per-span attribution, largest first. Shares sum to ≤ 1; the
    /// remainder is [`CriticalPath::idle_us`].
    pub rows: Vec<CriticalPathRow>,
    /// Time on the walk not covered by any span.
    pub idle_us: f64,
    /// Walked window (first segment start to last segment end), µs.
    pub total_us: f64,
}

/// Rendered plain-text report (lanes + regions + critical path).
pub struct TimelineReport(pub String);

/// One leaf segment: a span's self time on its thread, with the full
/// nesting path for flamegraph export.
#[derive(Clone, Debug)]
pub(crate) struct Segment {
    pub tid: u64,
    pub ts_us: f64,
    pub end_us: f64,
    pub name: &'static str,
    /// `;`-joined nesting path, e.g. `evd;evd.reduce;blas.syr2k_square`.
    pub path: String,
}

fn fmt_pct(x: f64) -> String {
    if x.is_finite() {
        format!("{:.1}%", 100.0 * x)
    } else {
        "n/a".to_string()
    }
}

fn fmt_ratio(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "n/a".to_string()
    }
}

fn sorted_by_lane(events: &[Event], virtual_time: bool) -> BTreeMap<u64, Vec<&Event>> {
    let mut lanes: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in events.iter().filter(|e| e.virtual_time == virtual_time) {
        lanes.entry(e.tid).or_default().push(e);
    }
    for lane in lanes.values_mut() {
        // start ascending; at equal starts the longer (outer) span first
        lane.sort_by(|a, b| {
            a.ts_us
                .total_cmp(&b.ts_us)
                .then(b.dur_us.total_cmp(&a.dur_us))
        });
    }
    lanes
}

/// Union length of a set of intervals (each `(start, end)`), µs.
fn union_us(mut iv: Vec<(f64, f64)>) -> f64 {
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

impl Trace {
    /// Per-thread (or, with `virtual_time`, per-track) busy/idle summary.
    pub fn lanes(&self, virtual_time: bool) -> Vec<LaneStats> {
        sorted_by_lane(&self.events, virtual_time)
            .into_iter()
            .map(|(tid, evs)| {
                let iv: Vec<(f64, f64)> =
                    evs.iter().map(|e| (e.ts_us, e.ts_us + e.dur_us)).collect();
                LaneStats {
                    tid,
                    spans: evs.len(),
                    busy_us: union_us(iv.clone()),
                    first_ts_us: iv.iter().map(|i| i.0).fold(f64::INFINITY, f64::min),
                    last_end_us: iv.iter().map(|i| i.1).fold(0.0, f64::max),
                }
            })
            .collect()
    }

    /// Average parallelism over the **virtual** (simulator) timeline:
    /// `Σ dur / (max end − min start)`. `None` when no virtual events were
    /// recorded. This is what [`check_utilization`] in `tg-gpu-sim`
    /// reconciles against the analytic occupancy model.
    pub fn virtual_parallelism(&self) -> Option<f64> {
        let virt: Vec<&Event> = self.events.iter().filter(|e| e.virtual_time).collect();
        if virt.is_empty() {
            return None;
        }
        let busy: f64 = virt.iter().map(|e| e.dur_us).sum();
        let start = virt.iter().map(|e| e.ts_us).fold(f64::INFINITY, f64::min);
        let end = virt
            .iter()
            .map(|e| e.ts_us + e.dur_us)
            .fold(0.0_f64, f64::max);
        if end <= start {
            return None;
        }
        Some(busy / (end - start))
    }

    /// Checks that spans are well-formed per thread: non-negative
    /// durations, and no partially-overlapping siblings (every pair of
    /// spans on a thread is either disjoint or properly nested). The RAII
    /// recorder guarantees this by construction; the check exists to catch
    /// recorder regressions and hand-built traces.
    pub fn validate_nesting(&self) -> Result<(), String> {
        for (tid, evs) in sorted_by_lane(&self.events, false) {
            let mut open: Vec<(f64, &'static str)> = Vec::new(); // (end, name)
            for e in evs {
                if e.dur_us < 0.0 {
                    return Err(format!("tid {tid}: span {} has negative duration", e.name));
                }
                let end = e.ts_us + e.dur_us;
                while let Some(&(top_end, _)) = open.last() {
                    if top_end <= e.ts_us + EPS_US {
                        open.pop();
                    } else {
                        break;
                    }
                }
                if let Some(&(top_end, top_name)) = open.last() {
                    if end > top_end + EPS_US {
                        return Err(format!(
                            "tid {tid}: span {} [{:.1}, {end:.1}] overlaps sibling/parent \
                             {top_name} ending at {top_end:.1}",
                            e.name, e.ts_us
                        ));
                    }
                }
                open.push((end, e.name));
            }
        }
        Ok(())
    }

    /// Computes utilization and imbalance for every parallel region in the
    /// trace (spans recorded through [`crate::span_region`]).
    pub fn region_utilization(&self) -> Vec<RegionUtilization> {
        struct Acc<'t> {
            opener: Option<&'t Event>,
            members: Vec<&'t Event>,
        }
        let mut by_region: BTreeMap<u64, Acc<'_>> = BTreeMap::new();
        for e in self.events.iter().filter(|e| !e.virtual_time) {
            let Some(r) = e.region else { continue };
            let acc = by_region.entry(r).or_insert(Acc {
                opener: None,
                members: Vec::new(),
            });
            if e.cat == "region" {
                acc.opener = Some(e);
            } else {
                acc.members.push(e);
            }
        }
        let mut out = Vec::new();
        for (region, acc) in by_region {
            let (name, wall_us) = match acc.opener {
                Some(e) => (e.name, e.dur_us),
                None => {
                    let start = acc
                        .members
                        .iter()
                        .map(|e| e.ts_us)
                        .fold(f64::INFINITY, f64::min);
                    let end = acc
                        .members
                        .iter()
                        .map(|e| e.ts_us + e.dur_us)
                        .fold(0.0_f64, f64::max);
                    ("?", (end - start).max(0.0))
                }
            };
            // busy per worker counts task-like spans; "worker" spans are
            // long-lived loop markers (they would double count their nested
            // tasks) and "wait" spans are stalls subtracted from busy time.
            let mut busy_by_tid: BTreeMap<u64, f64> = BTreeMap::new();
            let mut tasks = 0usize;
            let mut wait_us = 0.0;
            for e in &acc.members {
                match e.cat {
                    "worker" => {
                        busy_by_tid.entry(e.tid).or_insert(0.0);
                    }
                    "wait" => {
                        wait_us += e.dur_us;
                        *busy_by_tid.entry(e.tid).or_insert(0.0) -= e.dur_us;
                    }
                    _ => {
                        tasks += 1;
                        *busy_by_tid.entry(e.tid).or_insert(0.0) += e.dur_us;
                    }
                }
            }
            let workers = busy_by_tid.len();
            let busy_us: f64 = busy_by_tid.values().sum::<f64>() + wait_us;
            let effective = busy_us - wait_us;
            let utilization = if workers > 0 && wall_us > 0.0 {
                effective / (workers as f64 * wall_us)
            } else {
                f64::NAN
            };
            let mean = if workers > 0 {
                effective / workers as f64
            } else {
                0.0
            };
            let max = busy_by_tid.values().cloned().fold(0.0_f64, f64::max);
            let imbalance = if mean > 0.0 { max / mean } else { f64::NAN };
            out.push(RegionUtilization {
                region,
                name,
                wall_us,
                workers,
                tasks,
                busy_us,
                wait_us,
                utilization,
                imbalance,
            });
        }
        out
    }

    /// Leaf ("self time") segments: each span's interval minus its
    /// children, with the nesting path preserved. Shared by the critical
    /// path walk and the flamegraph exporter.
    pub(crate) fn self_segments(&self) -> Vec<Segment> {
        struct OpenSpan {
            name: &'static str,
            end: f64,
            cursor: f64,
            path: String,
        }
        let mut segs = Vec::new();
        for (tid, evs) in sorted_by_lane(&self.events, false) {
            let mut stack: Vec<OpenSpan> = Vec::new();
            let emit = |segs: &mut Vec<Segment>, o: &OpenSpan, a: f64, b: f64| {
                if b > a + 1e-9 {
                    segs.push(Segment {
                        tid,
                        ts_us: a,
                        end_us: b,
                        name: o.name,
                        path: o.path.clone(),
                    });
                }
            };
            let pop = |segs: &mut Vec<Segment>, stack: &mut Vec<OpenSpan>| {
                let top = stack.pop().expect("pop on empty stack");
                emit(segs, &top, top.cursor, top.end);
                if let Some(p) = stack.last_mut() {
                    p.cursor = p.cursor.max(top.end);
                }
            };
            for e in evs {
                let end = e.ts_us + e.dur_us;
                while let Some(top) = stack.last() {
                    if top.end <= e.ts_us + EPS_US {
                        pop(&mut segs, &mut stack);
                    } else {
                        break;
                    }
                }
                if let Some(p) = stack.last_mut() {
                    let (a, b) = (p.cursor, e.ts_us);
                    if b > a + 1e-9 {
                        segs.push(Segment {
                            tid,
                            ts_us: a,
                            end_us: b,
                            name: p.name,
                            path: p.path.clone(),
                        });
                    }
                    p.cursor = p.cursor.max(end);
                }
                let path = match stack.last() {
                    Some(p) => format!("{};{}", p.path, e.name),
                    None => e.name.to_string(),
                };
                stack.push(OpenSpan {
                    name: e.name,
                    end,
                    cursor: e.ts_us,
                    path,
                });
            }
            while !stack.is_empty() {
                pop(&mut segs, &mut stack);
            }
        }
        segs
    }

    /// Extracts the critical path with a backward "last to finish" walk
    /// over leaf segments (see module docs). Deterministic for a given
    /// trace; returns an empty path when no wall-clock spans exist.
    pub fn critical_path(&self) -> CriticalPath {
        let segs = self.self_segments();
        if segs.is_empty() {
            return CriticalPath {
                rows: Vec::new(),
                idle_us: 0.0,
                total_us: 0.0,
            };
        }
        let t_start = segs.iter().map(|s| s.ts_us).fold(f64::INFINITY, f64::min);
        let t_end = segs.iter().map(|s| s.end_us).fold(0.0_f64, f64::max);
        let mut attr: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut idle = 0.0;
        let mut t = t_end;
        while t > t_start + 1e-9 {
            // latest-finishing segment as seen from t (ends clipped to t —
            // a segment still running at t counts as active up to t); ties
            // broken toward the earlier start (the longer chain link)
            let best = segs.iter().filter(|s| s.ts_us < t - 1e-9).max_by(|a, b| {
                a.end_us
                    .min(t)
                    .total_cmp(&b.end_us.min(t))
                    .then(b.ts_us.total_cmp(&a.ts_us))
            });
            match best {
                Some(s) => {
                    let end = s.end_us.min(t);
                    idle += t - end;
                    *attr.entry(s.name).or_insert(0.0) += end - s.ts_us;
                    t = s.ts_us;
                }
                None => {
                    idle += t - t_start;
                    break;
                }
            }
        }
        let total_us = t_end - t_start;
        let mut rows: Vec<CriticalPathRow> = attr
            .into_iter()
            .map(|(name, us)| CriticalPathRow {
                name,
                us,
                share: if total_us > 0.0 { us / total_us } else { 0.0 },
            })
            .collect();
        rows.sort_by(|a, b| b.us.total_cmp(&a.us));
        CriticalPath {
            rows,
            idle_us: idle,
            total_us,
        }
    }

    /// Renders the lanes / regions / critical-path report as plain text
    /// (the `--timeline` CLI output). Ratios with a zero denominator render
    /// as `n/a`, never `NaN`.
    pub fn timeline_report(&self) -> TimelineReport {
        let mut out = String::new();
        let wall_us = self.wall.as_secs_f64() * 1e6;

        let lanes = self.lanes(false);
        let _ = writeln!(out, "== per-thread lanes ==");
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>12} {:>8}",
            "worker", "spans", "busy ms", "busy %"
        );
        for l in &lanes {
            let pct = if wall_us > 0.0 {
                l.busy_us / wall_us
            } else {
                f64::NAN
            };
            let _ = writeln!(
                out,
                "{:<8} {:>7} {:>12.3} {:>8}",
                format!("w{}", l.tid),
                l.spans,
                l.busy_us * 1e-3,
                fmt_pct(pct)
            );
        }
        if lanes.is_empty() {
            let _ = writeln!(out, "(no wall-clock spans recorded)");
        }

        let regions = self.region_utilization();
        if !regions.is_empty() {
            let _ = writeln!(out, "\n== parallel regions ==");
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>7} {:>7} {:>11} {:>11} {:>7} {:>9}",
                "region", "workers", "tasks", "wall ms", "busy ms", "wait ms", "util", "imbalance"
            );
            for r in &regions {
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>7} {:>7.3} {:>11.3} {:>11.3} {:>7} {:>9}",
                    r.name,
                    r.workers,
                    r.tasks,
                    r.wall_us * 1e-3,
                    r.busy_us * 1e-3,
                    r.wait_us * 1e-3,
                    fmt_pct(r.utilization),
                    fmt_ratio(r.imbalance)
                );
            }
        }

        let cp = self.critical_path();
        if !cp.rows.is_empty() {
            let _ = writeln!(
                out,
                "\ncritical path ({:.3} ms, {} idle):",
                cp.total_us * 1e-3,
                fmt_pct(if cp.total_us > 0.0 {
                    cp.idle_us / cp.total_us
                } else {
                    f64::NAN
                })
            );
            for r in &cp.rows {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10.3} ms {:>7}",
                    r.name,
                    r.us * 1e-3,
                    fmt_pct(r.share)
                );
            }
        }
        TimelineReport(out)
    }
}

impl std::fmt::Display for TimelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::N_COUNTERS;
    use std::time::Duration;

    fn ev(name: &'static str, tid: u64, ts: f64, dur: f64) -> Event {
        Event {
            name,
            cat: "stage",
            arg: None,
            tid,
            ts_us: ts,
            dur_us: dur,
            counters: [0; N_COUNTERS],
            virtual_time: false,
            region: None,
        }
    }

    fn trace(events: Vec<Event>, wall_us: u64) -> Trace {
        Trace {
            events,
            totals: [0; N_COUNTERS],
            wall: Duration::from_micros(wall_us),
        }
    }

    #[test]
    fn lanes_union_does_not_double_count_nesting() {
        // outer [0,100] with child [10,60] on one thread
        let t = trace(
            vec![ev("outer", 0, 0.0, 100.0), ev("inner", 0, 10.0, 50.0)],
            100,
        );
        let lanes = t.lanes(false);
        assert_eq!(lanes.len(), 1);
        assert!((lanes[0].busy_us - 100.0).abs() < 1e-9);
        assert_eq!(lanes[0].spans, 2);
    }

    #[test]
    fn validate_nesting_accepts_proper_and_rejects_overlap() {
        let good = trace(
            vec![
                ev("root", 0, 0.0, 100.0),
                ev("a", 0, 10.0, 30.0),
                ev("b", 0, 50.0, 40.0),
                ev("other", 1, 0.0, 80.0),
            ],
            100,
        );
        good.validate_nesting().unwrap();
        // partial overlap on one thread: [10,60] and [40,90]
        let bad = trace(vec![ev("a", 0, 10.0, 50.0), ev("b", 0, 40.0, 50.0)], 100);
        assert!(bad.validate_nesting().is_err());
    }

    #[test]
    fn self_segments_subtract_children() {
        // parent [0,100], child [20,50]: parent self = [0,20] + [50,100]
        let t = trace(vec![ev("p", 0, 0.0, 100.0), ev("c", 0, 20.0, 30.0)], 100);
        let segs = t.self_segments();
        let p_self: f64 = segs
            .iter()
            .filter(|s| s.name == "p")
            .map(|s| s.end_us - s.ts_us)
            .sum();
        let c_self: f64 = segs
            .iter()
            .filter(|s| s.name == "c")
            .map(|s| s.end_us - s.ts_us)
            .sum();
        assert!((p_self - 70.0).abs() < 1e-6, "p self {p_self}");
        assert!((c_self - 30.0).abs() < 1e-6, "c self {c_self}");
        let c_seg = segs.iter().find(|s| s.name == "c").unwrap();
        assert_eq!(c_seg.path, "p;c");
    }

    #[test]
    fn critical_path_follows_last_finisher_and_counts_idle() {
        // t0: a [0,40]; t1: b [10,100]; gap; t0: c [120,150]
        let t = trace(
            vec![
                ev("a", 0, 0.0, 40.0),
                ev("b", 1, 10.0, 90.0),
                ev("c", 0, 120.0, 30.0),
            ],
            150,
        );
        let cp = t.critical_path();
        assert!((cp.total_us - 150.0).abs() < 1e-6);
        let us = |n: &str| {
            cp.rows
                .iter()
                .find(|r| r.name == n)
                .map(|r| r.us)
                .unwrap_or(0.0)
        };
        // walk: c [120,150] → idle [100,120] → b [10,100] → a [0,10] clipped
        assert!((us("c") - 30.0).abs() < 1e-6);
        assert!((us("b") - 90.0).abs() < 1e-6);
        assert!(
            (us("a") - 10.0).abs() < 1e-6,
            "a clipped to [0,10], got {}",
            us("a")
        );
        assert!((cp.idle_us - 20.0).abs() < 1e-6);
        let share_sum: f64 = cp.rows.iter().map(|r| r.share).sum();
        assert!((share_sum + cp.idle_us / cp.total_us - 1.0).abs() < 1e-9);
    }

    #[test]
    fn region_utilization_counts_workers_waits_and_imbalance() {
        let mut region_span = ev("parallel.demo", 0, 0.0, 100.0);
        region_span.cat = "region";
        region_span.region = Some(7);
        let mut t1 = ev("task", 1, 0.0, 90.0);
        t1.cat = "task";
        t1.region = Some(7);
        let mut t2 = ev("task", 2, 0.0, 40.0);
        t2.cat = "task";
        t2.region = Some(7);
        let mut w = ev("wait", 2, 30.0, 10.0);
        w.cat = "wait";
        w.region = Some(7);
        let tr = trace(vec![region_span, t1, t2, w], 100);
        let regs = tr.region_utilization();
        assert_eq!(regs.len(), 1);
        let r = &regs[0];
        assert_eq!(r.name, "parallel.demo");
        assert_eq!(r.workers, 2);
        assert_eq!(r.tasks, 2);
        assert!((r.wait_us - 10.0).abs() < 1e-9);
        // busy = task durations (90 + 40, waits nested inside) = 130
        assert!((r.busy_us - 130.0).abs() < 1e-9);
        // effective busy 120 over 2 workers × 100 wall = 60%
        assert!((r.utilization - 0.6).abs() < 1e-9);
        // per-worker effective: w1 = 90, w2 = 40(task) − 10(wait) = 30
        // mean 60, max 90 → imbalance 1.5
        assert!(
            (r.imbalance - 1.5).abs() < 1e-9,
            "imbalance {}",
            r.imbalance
        );
    }

    #[test]
    fn empty_trace_yields_na_not_nan() {
        let t = trace(Vec::new(), 0);
        let report = t.timeline_report().0;
        assert!(!report.contains("NaN"), "{report}");
        let cp = t.critical_path();
        assert!(cp.rows.is_empty());
        assert_eq!(t.virtual_parallelism(), None);
    }

    #[test]
    fn virtual_parallelism_sums_tracks() {
        let mut a = ev("sim.sweep", 0, 0.0, 100.0);
        a.virtual_time = true;
        let mut b = ev("sim.sweep", 1, 50.0, 100.0);
        b.virtual_time = true;
        let t = trace(vec![a, b], 1);
        // 200 busy over [0,150] window
        let p = t.virtual_parallelism().unwrap();
        assert!((p - 200.0 / 150.0).abs() < 1e-9);
    }
}
