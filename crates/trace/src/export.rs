//! Trace exporters: Chrome trace-event JSON and a plain-text profile table.

use crate::{Counter, Event, Trace, N_COUNTERS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Wall-clock events are exported under this pid, virtual-time events
/// under [`VIRTUAL_PID`], so viewers show them as separate processes.
pub const WALL_PID: u64 = 1;
pub const VIRTUAL_PID: u64 = 2;

impl Trace {
    /// Renders the trace in Chrome trace-event JSON ("X" complete events
    /// plus "M" metadata naming the process and thread lanes), loadable in
    /// Perfetto or `chrome://tracing`.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let meta = |out: &mut String, first: &mut bool, body: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&body);
        };
        meta(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{WALL_PID},\"tid\":0,\
                 \"args\":{{\"name\":\"wall clock\"}}}}"
            ),
        );
        let mut lanes: Vec<(u64, bool)> = self
            .events
            .iter()
            .map(|e| (e.tid, e.virtual_time))
            .collect();
        lanes.sort_unstable();
        lanes.dedup();
        if lanes.iter().any(|&(_, v)| v) {
            meta(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{VIRTUAL_PID},\"tid\":0,\
                     \"args\":{{\"name\":\"gpu-sim (virtual time)\"}}}}"
                ),
            );
        }
        for &(tid, virt) in &lanes {
            let (pid, label) = if virt {
                (VIRTUAL_PID, format!("slot-{tid}"))
            } else {
                (WALL_PID, format!("worker-{tid}"))
            };
            meta(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":{}}}}}",
                    json_str(&label)
                ),
            );
        }
        for e in self.events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            write_event(&mut out, e);
        }
        out.push_str("]}");
        out
    }

    /// Renders the trace in collapsed-stack ("folded") format, one line per
    /// distinct nesting path with its **self time** in integer microseconds:
    ///
    /// ```text
    /// worker-0;evd;evd.reduce;blas.syr2k_square 1234
    /// ```
    ///
    /// Feed to any flamegraph renderer (e.g. `flamegraph.pl`, speedscope,
    /// inferno). Each thread lane is a separate root frame; virtual-time
    /// simulator events are excluded.
    pub fn flamegraph(&self) -> String {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for seg in self.self_segments() {
            let us = (seg.end_us - seg.ts_us).round() as u64;
            if us == 0 {
                continue;
            }
            *folded
                .entry(format!("worker-{};{}", seg.tid, seg.path))
                .or_insert(0) += us;
        }
        let mut out = String::new();
        for (path, us) in folded {
            let _ = writeln!(out, "{path} {us}");
        }
        out
    }

    /// Aggregates events by span name into [`ProfileRow`]s, ordered by
    /// total wall time (descending). Virtual-time events are excluded.
    pub fn profile_rows(&self) -> Vec<ProfileRow> {
        let mut by_name: BTreeMap<&'static str, ProfileRow> = BTreeMap::new();
        for e in self.events.iter().filter(|e| !e.virtual_time) {
            let row = by_name.entry(e.name).or_insert_with(|| ProfileRow {
                name: e.name,
                cat: e.cat,
                count: 0,
                wall: 0.0,
                counters: [0; N_COUNTERS],
            });
            row.count += 1;
            row.wall += e.dur_us * 1e-6;
            for i in 0..N_COUNTERS {
                row.counters[i] += e.counters[i];
            }
        }
        let mut rows: Vec<ProfileRow> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.wall.total_cmp(&a.wall));
        rows
    }

    /// Renders the per-stage profile table:
    ///
    /// ```text
    /// span            cat    calls   wall ms   % wall     GFLOP   GFLOP/s
    /// evd.reduce      stage      1    12.100    74.2%     0.350     28.92
    /// ```
    ///
    /// Percentages are relative to the session wall time; nested spans both
    /// appear (durations are inclusive), so only sibling rows sum to ≤100%.
    pub fn profile_table(&self) -> String {
        let rows = self.profile_rows();
        let total_s = self.wall.as_secs_f64();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:<7} {:>6} {:>11} {:>7} {:>10} {:>9}",
            "span", "cat", "calls", "wall ms", "% wall", "GFLOP", "GFLOP/s"
        );
        // zero denominators render as "n/a", never NaN: an empty session
        // has total_s == 0, and sub-microsecond spans can round to wall 0
        let fmt_pct = |num: f64, den: f64| -> String {
            if den > 0.0 {
                format!("{:.1}%", 100.0 * num / den)
            } else {
                "n/a".to_string()
            }
        };
        let fmt_rate = |num: f64, den: f64| -> String {
            if den > 0.0 {
                format!("{:.2}", num / den)
            } else {
                "n/a".to_string()
            }
        };
        for r in &rows {
            let gflop = r.counters[Counter::Flops.index()] as f64 / 1e9;
            let _ = writeln!(
                out,
                "{:<22} {:<7} {:>6} {:>11.3} {:>7} {:>10.3} {:>9}",
                r.name,
                r.cat,
                r.count,
                r.wall * 1e3,
                fmt_pct(r.wall, total_s),
                gflop,
                fmt_rate(gflop, r.wall)
            );
        }
        let total_gflop = self.total(Counter::Flops) as f64 / 1e9;
        let _ = writeln!(
            out,
            "{:<22} {:<7} {:>6} {:>11.3} {:>7} {:>10.3} {:>9}",
            "TOTAL (session)",
            "",
            "",
            total_s * 1e3,
            fmt_pct(total_s, total_s),
            total_gflop,
            fmt_rate(total_gflop, total_s)
        );
        for c in [
            Counter::BytesRead,
            Counter::BytesWritten,
            Counter::Sweeps,
            Counter::BulgeTasks,
            Counter::ArenaHit,
            Counter::ArenaMiss,
            Counter::ChecksRun,
            Counter::CheckFailures,
            Counter::FaultsInjected,
            Counter::PackBytes,
            Counter::JobsRetried,
            Counter::JobsShed,
            Counter::CacheHit,
            Counter::CacheMiss,
            Counter::CacheEvictedBytes,
            Counter::JobsCoalesced,
        ] {
            let v = self.total(c);
            if v != 0 {
                let _ = writeln!(out, "  total {:<14} {v}", c.key());
            }
        }
        let peak = self.total(Counter::ArenaLiveBytes);
        if peak != 0 {
            let _ = writeln!(out, "  peak {:<15} {peak}", Counter::ArenaLiveBytes.key());
        }
        let hits = self.total(Counter::ArenaHit);
        let misses = self.total(Counter::ArenaMiss);
        let hit_rate = if hits + misses > 0 {
            format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
        } else {
            "n/a".to_string()
        };
        let _ = writeln!(out, "  arena hit rate       {hit_rate}");
        out
    }
}

/// One aggregated profile line: all events sharing a span name.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    pub name: &'static str,
    pub cat: &'static str,
    pub count: usize,
    /// Total inclusive wall time, seconds.
    pub wall: f64,
    pub counters: [u64; N_COUNTERS],
}

fn write_event(out: &mut String, e: &Event) {
    let pid = if e.virtual_time {
        VIRTUAL_PID
    } else {
        WALL_PID
    };
    let _ = write!(
        out,
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{}",
        json_str(e.name),
        json_str(e.cat),
        e.ts_us,
        e.dur_us,
        e.tid
    );
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some((k, v)) = e.arg {
        let _ = write!(out, "{}:{v}", json_str(k));
        first = false;
    }
    if let Some(r) = e.region {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "\"region\":{r}");
        first = false;
    }
    for c in Counter::ALL {
        let val = e.counters[c.index()];
        if val != 0 {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{}:{val}", json_str(c.key()));
            first = false;
        }
    }
    out.push_str("}}");
}

/// Minimal JSON string escaping (span/category names are code literals,
/// but keep the output valid for arbitrary content).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> Trace {
        let mut reduce_counters = [0u64; N_COUNTERS];
        reduce_counters[..3].copy_from_slice(&[350_000, 16_384, 8_192]);
        let mut solve_counters = [0u64; N_COUNTERS];
        solve_counters[0] = 50_000;
        let mut totals = [0u64; N_COUNTERS];
        totals[..3].copy_from_slice(&[400_000, 16_384, 8_192]);
        Trace {
            events: vec![
                Event {
                    name: "evd.reduce",
                    cat: "stage",
                    arg: Some(("n", 64)),
                    tid: 0,
                    ts_us: 0.0,
                    dur_us: 900.0,
                    counters: reduce_counters,
                    virtual_time: false,
                    region: None,
                },
                Event {
                    name: "evd.solve",
                    cat: "stage",
                    arg: None,
                    tid: 0,
                    ts_us: 900.0,
                    dur_us: 100.0,
                    counters: solve_counters,
                    virtual_time: false,
                    region: Some(3),
                },
                Event {
                    name: "sim.sweep",
                    cat: "sim",
                    arg: Some(("s", 2)),
                    tid: 1,
                    ts_us: 0.0,
                    dur_us: 5.0,
                    counters: [0; N_COUNTERS],
                    virtual_time: true,
                    region: None,
                },
            ],
            totals,
            wall: std::time::Duration::from_micros(1000),
        }
    }

    #[test]
    fn chrome_json_shape() {
        let json = demo_trace().chrome_json();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"evd.reduce\""));
        assert!(json.contains("\"flops\":350000"));
        // virtual event under its own pid
        assert!(json.contains(&format!("\"pid\":{VIRTUAL_PID}")));
        // lane metadata: named processes and one thread_name per lane
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"worker-0\""));
        assert!(json.contains("\"name\":\"slot-1\""));
        assert!(json.contains("gpu-sim (virtual time)"));
        // region membership exported as an arg
        assert!(json.contains("\"region\":3"));
    }

    #[test]
    fn flamegraph_collapses_self_time() {
        let fg = demo_trace().flamegraph();
        // two sibling stage spans on worker 0, self time = full duration
        assert!(fg.contains("worker-0;evd.reduce 900"), "{fg}");
        assert!(fg.contains("worker-0;evd.solve 100"), "{fg}");
        // virtual events excluded
        assert!(!fg.contains("sim.sweep"), "{fg}");
    }

    #[test]
    fn profile_table_renders_na_for_zero_denominators() {
        let empty = Trace {
            events: Vec::new(),
            totals: [0; N_COUNTERS],
            wall: std::time::Duration::ZERO,
        };
        let table = empty.profile_table();
        assert!(table.contains("n/a"), "{table}");
        assert!(!table.contains("NaN"), "{table}");
        assert!(table.contains("arena hit rate       n/a"), "{table}");
    }

    #[test]
    fn profile_rows_aggregate_and_sort() {
        let rows = demo_trace().profile_rows();
        assert_eq!(rows.len(), 2); // virtual event excluded
        assert_eq!(rows[0].name, "evd.reduce"); // longest first
        assert_eq!(rows[0].counters[0], 350_000);
        assert!((rows[0].wall - 900e-6).abs() < 1e-12);
    }

    #[test]
    fn profile_table_mentions_stages_and_total() {
        let table = demo_trace().profile_table();
        assert!(table.contains("evd.reduce"));
        assert!(table.contains("evd.solve"));
        assert!(table.contains("TOTAL (session)"));
        assert!(table.contains("GFLOP/s"));
    }
}
