//! Double-blocking band reduction — **Algorithm 1**, the paper's first
//! contribution (§4.1).
//!
//! SBR couples the `syr2k` rank `k` to the bandwidth `b`; Table 1 shows
//! `syr2k` throughput grows with `k`, while §3.2 shows bulge chasing cost
//! grows with `b`. DBBR decouples them: panels of width `b` are factorized
//! as usual, but their rank-2b updates are **deferred** — only the next
//! panel is updated just in time (`lines 7–12`) — and once `k` columns of
//! `(Z, Y)` have accumulated, the whole trailing matrix is updated with a
//! single rank-`2k` `syr2k` (`line 15`). This keeps `b` small (fast bulge
//! chasing) while making the `syr2k` wide (fast trailing update).
//!
//! Deferring updates requires the textbook look-ahead correction when
//! computing each panel's `Z` (the trailing matrix seen by Equation 1 must
//! be the *fully updated* one); Algorithm 1 elides this detail, we
//! implement it.

use crate::sbr::BandReduction;
use crate::workspace::{AllocPool, WorkspacePool};
use tg_blas::level3::symm_lower;
use tg_blas::{
    gemm, gemm_into, syr2k_blocked, syr2k_blocked_head, syr2k_square, syr2k_square_head, Op,
};
use tg_householder::panel::panel_qr;
use tg_householder::wblock::WyPair;
use tg_matrix::{Mat, SymBand};

/// Configuration for [`dbbr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbbrConfig {
    /// Target bandwidth (the paper uses `b = 32` on H100).
    pub b: usize,
    /// Accumulation width for the deferred `syr2k` (the paper uses
    /// `k = 1024`); must be a multiple of `b`.
    pub k: usize,
    /// Internal blocking of the trailing `syr2k`.
    pub nb_syr2k: usize,
    /// Use the Figure-7 square-block `syr2k` for the trailing update
    /// (the paper's §5.1 optimization) instead of the conventional one.
    pub square_syr2k: bool,
    /// Depth-1 look-ahead: factorize the next outer block's first panel on
    /// a dedicated worker while the remainder of the deferred trailing
    /// update runs. Bitwise-identical output either way (see
    /// `docs/PERFORMANCE.md`, "Stage-1 look-ahead").
    pub lookahead: bool,
}

/// Why a [`DbbrConfig`] was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbbrConfigError {
    /// `b = 0`: the band must be at least one diagonal wide.
    ZeroBandwidth,
    /// `k = 0`: at least one panel must accumulate per outer block.
    ZeroAccumulation,
    /// `k < b`: the accumulation window cannot hold even one panel.
    AccumulationTooNarrow { b: usize, k: usize },
    /// `k % b != 0`: panels of width `b` must tile the window exactly.
    NotAMultiple { b: usize, k: usize },
}

impl std::fmt::Display for DbbrConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbbrConfigError::ZeroBandwidth => write!(f, "bandwidth b must be at least 1"),
            DbbrConfigError::ZeroAccumulation => {
                write!(f, "accumulation width k must be at least 1")
            }
            DbbrConfigError::AccumulationTooNarrow { b, k } => write!(
                f,
                "accumulation width k={k} is narrower than the bandwidth b={b}"
            ),
            DbbrConfigError::NotAMultiple { b, k } => {
                write!(f, "k={k} must be a multiple of b={b}")
            }
        }
    }
}

impl std::error::Error for DbbrConfigError {}

impl DbbrConfig {
    /// Paper defaults scaled for the given problem size; panics on an
    /// invalid `(b, k)` pair. Use [`DbbrConfig::try_new`] to handle the
    /// error instead.
    pub fn new(b: usize, k: usize) -> Self {
        Self::try_new(b, k).unwrap_or_else(|e| panic!("invalid DbbrConfig: {e}"))
    }

    /// Validating constructor: `b ≥ 1`, `k ≥ b`, and `k` a multiple of `b`.
    pub fn try_new(b: usize, k: usize) -> Result<Self, DbbrConfigError> {
        if b == 0 {
            return Err(DbbrConfigError::ZeroBandwidth);
        }
        if k == 0 {
            return Err(DbbrConfigError::ZeroAccumulation);
        }
        if k < b {
            return Err(DbbrConfigError::AccumulationTooNarrow { b, k });
        }
        if !k.is_multiple_of(b) {
            return Err(DbbrConfigError::NotAMultiple { b, k });
        }
        Ok(DbbrConfig {
            b,
            k,
            nb_syr2k: 32,
            square_syr2k: true,
            lookahead: true,
        })
    }
}

/// Double-blocking band reduction of symmetric `A` (lower triangle
/// referenced, overwritten) to bandwidth `cfg.b`.
pub fn dbbr(a: &mut Mat, cfg: &DbbrConfig) -> BandReduction {
    dbbr_ws(a, cfg, &mut AllocPool)
}

/// Like [`dbbr`] but draws every scratch matrix (the accumulated `(Z, Y)`
/// pair and the per-panel `U`) from `pool` instead of allocating. With any
/// conforming pool (see [`WorkspacePool`]) the output is bitwise-identical
/// to [`dbbr`]; a caching pool such as `tg-batch`'s `WorkspaceArena` makes
/// repeated same-shape reductions allocation-free after the first.
pub fn dbbr_ws(a: &mut Mat, cfg: &DbbrConfig, pool: &mut dyn WorkspacePool) -> BandReduction {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let _span = tg_trace::span_cat("reduce.dbbr", "stage", Some(("n", n as u64)));
    let (b, k) = (cfg.b, cfg.k);
    assert!(b >= 1 && k >= b && k % b == 0);
    let mut factors: Vec<(usize, WyPair)> = Vec::new();

    // Depth-1 look-ahead state: the `(W, Y)` pair of the next outer
    // block's first panel, factorized by a worker while the previous
    // trailing update ran (see the trailing section below).
    let mut pending: Option<(Mat, Mat)> = None;

    let mut i = 0;
    while i + b + 1 < n {
        // This outer block accumulates panels j = i, i+b, … while j < i+k.
        let sup = n - i - b; // row support of this block's factors: rows i+b..n
        let mut zbig = pool.acquire(sup, 0);
        let mut ybig = pool.acquire(sup, 0);
        let mut kacc = 0usize;
        let mut j = i;
        while j < i + k && j + b + 1 < n {
            let m = n - j - b;
            // ── lines 5–12: obtain this panel's `(W, Y)`. Normally that is
            //    the just-in-time update followed by the panel QR, done
            //    right here; with look-ahead the first panel of this outer
            //    block was already updated and factorized by the worker
            //    that overlapped the previous trailing `syr2k`.
            let (w, y) = match pending.take() {
                Some(wy) => wy,
                None => {
                    // ── lines 7–12: bring this panel up to date with the
                    //    pending factors of the current outer block
                    //    (just-in-time form). The paper's "green panel" is
                    //    A[j..n, j..j+b]: the diagonal block (final band
                    //    output!) plus the sub-panel.
                    if kacc > 0 {
                        // diagonal block [j..j+b)² — lower triangle only
                        {
                            let zd = zbig.view(j - b - i, 0, b, kacc);
                            let yd = ybig.view(j - b - i, 0, b, kacc);
                            let mut diag = a.view_mut(j, j, b, b);
                            tg_blas::level3::syr2k_ref(-1.0, &zd, &yd, 1.0, &mut diag);
                        }
                        // rectangular sub-panel [j+b..n) × [j..j+b)
                        let zp = zbig.view(j - i, 0, m, kacc); // Z rows j+b..n
                        let ytop = ybig.view(j - b - i, 0, b, kacc); // Y rows j..j+b
                        let ylow = ybig.view(j - i, 0, m, kacc);
                        let ztop = zbig.view(j - b - i, 0, b, kacc);
                        let mut panel = a.view_mut(j + b, j, m, b);
                        gemm(-1.0, &zp, Op::NoTrans, &ytop, Op::Trans, 1.0, &mut panel);
                        gemm(-1.0, &ylow, Op::NoTrans, &ztop, Op::Trans, 1.0, &mut panel);
                    }
                    // ── line 5: QR-factorize the panel
                    let pq = {
                        let mut panel = a.view_mut(j + b, j, m, b);
                        panel_qr(&mut panel)
                    };
                    for c in 0..b {
                        for r in (c + 1)..m {
                            a[(j + b + r, j + c)] = 0.0;
                        }
                    }
                    (pq.block.w(), pq.block.v.clone()) // both m × kr
                }
            };
            // tg-check fault hook (site `blas.panel_qr`): corrupts the
            // freshly computed panel W on the orchestrating thread — the
            // same thread for the inline and look-ahead paths, so serve's
            // fired-on-thread retry classification sees both. Inert
            // without a live check session.
            let mut w = w;
            tg_check::fault::inject_mat("blas.panel_qr", &mut w);
            let kr = y.ncols();
            // ── corrected ZY computation against the *virtually updated*
            //    trailing matrix Â = A − Σ pending (Z Yᵀ + Y Zᵀ):
            //    U = Â W,  S = Wᵀ U,  Z = U − ½ Y S
            let mut u = pool.acquire(m, kr);
            {
                let trail = a.view(j + b, j + b, m, m);
                symm_lower(1.0, &trail, &w.as_ref(), 0.0, &mut u.as_mut());
            }
            if kacc > 0 {
                let zp = zbig.view(j - i, 0, m, kacc);
                let yp = ybig.view(j - i, 0, m, kacc);
                // U −= Zp (Ypᵀ W) + Yp (Zpᵀ W)
                let s1 = gemm_into(1.0, &yp, Op::Trans, &w.as_ref(), Op::NoTrans);
                gemm(
                    -1.0,
                    &zp,
                    Op::NoTrans,
                    &s1.as_ref(),
                    Op::NoTrans,
                    1.0,
                    &mut u.as_mut(),
                );
                let s2 = gemm_into(1.0, &zp, Op::Trans, &w.as_ref(), Op::NoTrans);
                gemm(
                    -1.0,
                    &yp,
                    Op::NoTrans,
                    &s2.as_ref(),
                    Op::NoTrans,
                    1.0,
                    &mut u.as_mut(),
                );
            }
            let s = gemm_into(1.0, &w.as_ref(), Op::Trans, &u.as_ref(), Op::NoTrans);
            let mut z = u;
            gemm(
                -0.5,
                &y.as_ref(),
                Op::NoTrans,
                &s.as_ref(),
                Op::NoTrans,
                1.0,
                &mut z.as_mut(),
            );

            // ── line 6: append to the accumulated (Z, Y)
            let mut znew = pool.acquire(sup, kacc + kr);
            znew.view_mut(0, 0, sup, kacc).copy_from(&zbig.as_ref());
            znew.view_mut(j - i, kacc, m, kr).copy_from(&z.as_ref());
            let mut ynew = pool.acquire(sup, kacc + kr);
            ynew.view_mut(0, 0, sup, kacc).copy_from(&ybig.as_ref());
            ynew.view_mut(j - i, kacc, m, kr).copy_from(&y.as_ref());
            pool.release(z);
            pool.release(std::mem::replace(&mut zbig, znew));
            pool.release(std::mem::replace(&mut ybig, ynew));
            kacc += kr;

            factors.push((j + b, WyPair { w, y }));
            j += b;
        }
        // ── line 15: deferred trailing update with the wide syr2k.
        // Panels covered columns [i, j); everything from t0 = j on still
        // carries the accumulated rank-2·kacc update.
        //
        // With look-ahead on, the update is split at a task-aligned column
        // boundary `split ≥ b`: the head strip (which contains the next
        // outer block's first panel) is updated first, then that panel is
        // QR-factorized on a dedicated worker *concurrently* with the tail
        // of the update. The head/tail split and the worker's serial
        // dispatch are both bitwise-identical to the unsplit serial path
        // (see `syr2k_square_head` and `docs/PERFORMANCE.md`).
        let t0 = j;
        if kacc > 0 && t0 < n {
            let mt = n - t0;
            let align = if cfg.square_syr2k {
                cfg.nb_syr2k * 2 // super-block size of the Figure-7 grid
            } else {
                cfg.nb_syr2k
            };
            let split = (b.div_ceil(align) * align).min(mt);
            // Engage only when a next panel actually exists (t0 + b + 1 < n
            // exactly characterizes "the next outer iteration runs and its
            // first panel is this one") and the tail is non-empty.
            if cfg.lookahead && t0 + b + 1 < n && split < mt {
                {
                    let zt = zbig.view(t0 - i - b, 0, mt, kacc);
                    let yt = ybig.view(t0 - i - b, 0, mt, kacc);
                    let mut trail = a.view_mut(t0, t0, mt, mt);
                    if cfg.square_syr2k {
                        syr2k_square_head(-1.0, &zt, &yt, 1.0, &mut trail, cfg.nb_syr2k, 2, split);
                    } else {
                        syr2k_blocked_head(-1.0, &zt, &yt, 1.0, &mut trail, cfg.nb_syr2k, split);
                    }
                }
                let ztail = zbig.view(t0 - i - b + split, 0, mt - split, kacc);
                let ytail = ybig.view(t0 - i - b + split, 0, mt - split, kacc);
                // Carve the trailing view into the (now fully updated)
                // next panel and the square tail — element-disjoint, so
                // the worker and the pool can mutate them concurrently.
                let trail = a.view_mut(t0, t0, mt, mt);
                let (panel_cols, rest) = trail.split_at_col(b);
                let (_band_rows, mut panel) = panel_cols.split_at_row(b);
                let (_head_cols, tail_cols) = rest.split_at_col(split - b);
                let (_head_rows, mut tail) = tail_cols.split_at_row(split);
                let region = tg_trace::RegionId::fresh();
                let _rspan = tg_trace::span_region(
                    "parallel.stage1",
                    "region",
                    Some(("t0", t0 as u64)),
                    region,
                );
                pending = std::thread::scope(|scope| {
                    let worker = scope.spawn(move || {
                        // Serial dispatch inside the worker: its GEMMs are
                        // bitwise-identical to the parallel ones (the PR 5
                        // contract), and the pool stays free for the tail.
                        let _nested = tg_blas::threads::enter_parallel_region();
                        let _lane = tg_trace::span_region(
                            "stage1.lookahead_worker",
                            "worker",
                            None,
                            region,
                        );
                        let _task =
                            tg_trace::span_region("task.stage1_panel", "task", None, region);
                        let mp = panel.nrows();
                        let pq = panel_qr(&mut panel);
                        for c in 0..b {
                            let col = panel.col_mut(c);
                            col[(c + 1)..mp].fill(0.0);
                        }
                        (pq.block.w(), pq.block.v.clone())
                    });
                    {
                        let _task = tg_trace::span_region("task.stage1_tail", "task", None, region);
                        if cfg.square_syr2k {
                            syr2k_square(-1.0, &ztail, &ytail, 1.0, &mut tail, cfg.nb_syr2k, 2);
                        } else {
                            syr2k_blocked(-1.0, &ztail, &ytail, 1.0, &mut tail, cfg.nb_syr2k);
                        }
                    }
                    let wait_from = std::time::Instant::now();
                    let wy = worker.join().expect("look-ahead panel worker panicked");
                    tg_trace::record_span(
                        "stage1.wait_panel",
                        "wait",
                        None,
                        wait_from,
                        std::time::Instant::now(),
                        region,
                    );
                    Some(wy)
                });
            } else {
                let zt = zbig.view(t0 - i - b, 0, mt, kacc);
                let yt = ybig.view(t0 - i - b, 0, mt, kacc);
                let mut trail = a.view_mut(t0, t0, mt, mt);
                if cfg.square_syr2k {
                    syr2k_square(-1.0, &zt, &yt, 1.0, &mut trail, cfg.nb_syr2k, 2);
                } else {
                    syr2k_blocked(-1.0, &zt, &yt, 1.0, &mut trail, cfg.nb_syr2k);
                }
            }
        }
        pool.release(zbig);
        pool.release(ybig);
        i += k;
    }
    debug_assert!(pending.is_none(), "look-ahead panel never consumed");

    BandReduction {
        band: SymBand::from_dense_lower(a, b),
        factors,
        b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual, similarity_residual};

    fn check(n: usize, b: usize, k: usize, seed: u64, square: bool) {
        let a0 = gen::random_symmetric(n, seed);
        let mut a = a0.clone();
        let mut cfg = DbbrConfig::new(b, k);
        cfg.square_syr2k = square;
        cfg.nb_syr2k = 8;
        let red = dbbr(&mut a, &cfg);
        assert!(
            red.band.is_band_within(b, 1e-12),
            "not band-{b} (n={n},k={k})"
        );
        let q = red.form_q(n);
        assert!(
            orthogonality_residual(&q) < 1e-12,
            "Q not orthogonal (n={n},b={b},k={k})"
        );
        let bd = red.band.to_dense();
        let r = similarity_residual(&a0, &q, &bd);
        assert!(r < 1e-11, "A ≠ Q B Qᵀ: {r} (n={n},b={b},k={k})");
    }

    #[test]
    fn dbbr_various_shapes() {
        check(24, 2, 8, 1, true);
        check(24, 2, 8, 2, false);
        check(30, 3, 6, 3, true);
        check(33, 4, 8, 4, true); // ragged tail
        check(20, 4, 4, 5, true); // k == b: degenerates to SBR
        check(40, 2, 16, 6, true); // k large relative to n
        check(16, 1, 4, 7, true); // b = 1: direct tridiagonalization
    }

    #[test]
    fn dbbr_equals_sbr_band_up_to_signs() {
        // DBBR and SBR eliminate the same columns with the same reflector
        // spans, so the band entries agree up to column sign flips; compare
        // via eigenvalue-invariant quantities instead: trace and ‖·‖_F.
        let n = 26;
        let b = 2;
        let a0 = gen::random_symmetric(n, 10);
        let mut a1 = a0.clone();
        let red1 = crate::sbr::band_reduce(&mut a1, b, 8);
        let mut a2 = a0.clone();
        let red2 = dbbr(&mut a2, &DbbrConfig::new(b, 8));
        let d1 = red1.band.to_dense();
        let d2 = red2.band.to_dense();
        let tr = |m: &Mat| (0..n).map(|i| m[(i, i)]).sum::<f64>();
        assert!((tr(&d1) - tr(&d2)).abs() < 1e-10);
        let f1 = tg_matrix::frob_norm(&d1);
        let f2 = tg_matrix::frob_norm(&d2);
        assert!((f1 - f2).abs() < 1e-9);
    }

    #[test]
    fn dbbr_factor_offsets_match_sbr() {
        let n = 24;
        let b = 4;
        let a0 = gen::random_symmetric(n, 20);
        let mut a = a0.clone();
        let red = dbbr(&mut a, &DbbrConfig::new(b, 8));
        let offs: Vec<usize> = red.factors.iter().map(|(o, _)| *o).collect();
        assert_eq!(offs, vec![4, 8, 12, 16, 20]);
    }

    #[test]
    #[should_panic]
    fn k_must_be_multiple_of_b() {
        let _ = DbbrConfig::new(3, 7);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            DbbrConfig::try_new(0, 8),
            Err(DbbrConfigError::ZeroBandwidth)
        );
        assert_eq!(
            DbbrConfig::try_new(4, 0),
            Err(DbbrConfigError::ZeroAccumulation)
        );
        assert_eq!(
            DbbrConfig::try_new(8, 4),
            Err(DbbrConfigError::AccumulationTooNarrow { b: 8, k: 4 })
        );
        assert_eq!(
            DbbrConfig::try_new(3, 7),
            Err(DbbrConfigError::NotAMultiple { b: 3, k: 7 })
        );
        let cfg = DbbrConfig::try_new(4, 16).expect("valid");
        assert!(cfg.lookahead, "look-ahead is the default");
        // error messages are human-readable (new() panics with them)
        assert!(DbbrConfigError::NotAMultiple { b: 3, k: 7 }
            .to_string()
            .contains("multiple"));
    }

    /// The tentpole contract: look-ahead on vs off is bitwise-identical —
    /// band, factor offsets, and every W/Y entry — including ragged tails
    /// and both syr2k blockings.
    #[test]
    fn lookahead_is_bitwise_identical_to_serial() {
        for &(n, b, k, seed, square) in &[
            (48usize, 4usize, 8usize, 31u64, true),
            (48, 4, 8, 31, false),
            (51, 4, 12, 32, true), // ragged last panels, n % k ≠ 0
            (40, 2, 8, 33, true),
            (26, 3, 6, 34, false),
        ] {
            let a0 = gen::random_symmetric(n, seed);
            let mut serial_cfg = DbbrConfig::new(b, k);
            serial_cfg.square_syr2k = square;
            serial_cfg.nb_syr2k = 4; // small blocks so look-ahead engages
            serial_cfg.lookahead = false;
            let mut la_cfg = serial_cfg.clone();
            la_cfg.lookahead = true;

            let reference = dbbr(&mut a0.clone(), &serial_cfg);
            let mut out = a0.clone();
            let red = dbbr(&mut out, &la_cfg);
            assert_eq!(red.band, reference.band, "band differs (n={n},b={b},k={k})");
            assert_eq!(red.factors.len(), reference.factors.len());
            for ((o1, f1), (o2, f2)) in red.factors.iter().zip(&reference.factors) {
                assert_eq!(o1, o2);
                assert_eq!(f1.w, f2.w, "W differs (n={n},b={b},k={k})");
                assert_eq!(f1.y, f2.y, "Y differs (n={n},b={b},k={k})");
            }
        }
    }

    /// Look-ahead through a recycling pool stays bitwise-identical and
    /// still hits the pool on the second pass.
    #[test]
    fn lookahead_ws_bitwise_matches_serial_through_pool() {
        let n = 44;
        let mut serial_cfg = DbbrConfig::new(4, 8);
        serial_cfg.nb_syr2k = 4;
        serial_cfg.lookahead = false;
        let mut la_cfg = serial_cfg.clone();
        la_cfg.lookahead = true;
        let a0 = gen::random_symmetric(n, 35);
        let reference = dbbr(&mut a0.clone(), &serial_cfg);
        let mut pool = RecyclingPool::default();
        for pass in 0..2 {
            let red = dbbr_ws(&mut a0.clone(), &la_cfg, &mut pool);
            assert_eq!(red.band, reference.band, "band differs on pass {pass}");
            for ((o1, f1), (o2, f2)) in red.factors.iter().zip(&reference.factors) {
                assert_eq!(o1, o2);
                assert_eq!(f1.w, f2.w, "W differs on pass {pass}");
                assert_eq!(f1.y, f2.y, "Y differs on pass {pass}");
            }
        }
        assert!(pool.reused > 0, "second pass never hit the pool");
    }

    /// Minimal conforming caching pool: recycles buffers by exact length,
    /// zeroing on reuse. Validates the [`WorkspacePool`] determinism
    /// contract without depending on `tg-batch`.
    #[derive(Default)]
    struct RecyclingPool {
        free: std::collections::BTreeMap<usize, Vec<Vec<f64>>>,
        reused: usize,
    }

    impl crate::workspace::WorkspacePool for RecyclingPool {
        fn acquire(&mut self, rows: usize, cols: usize) -> Mat {
            if let Some(mut buf) = self.free.get_mut(&(rows * cols)).and_then(Vec::pop) {
                self.reused += 1;
                buf.fill(0.0);
                Mat::from_col_major(rows, cols, buf)
            } else {
                Mat::zeros(rows, cols)
            }
        }

        fn release(&mut self, m: Mat) {
            let buf = m.into_col_major();
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }

    #[test]
    fn dbbr_ws_bitwise_matches_dbbr() {
        let n = 30;
        let cfg = DbbrConfig::new(3, 6);
        let a0 = gen::random_symmetric(n, 17);
        let reference = dbbr(&mut a0.clone(), &cfg);
        let mut pool = RecyclingPool::default();
        // run twice through the same pool: the second pass reuses buffers
        for pass in 0..2 {
            let red = dbbr_ws(&mut a0.clone(), &cfg, &mut pool);
            assert_eq!(red.band, reference.band, "band differs on pass {pass}");
            assert_eq!(red.factors.len(), reference.factors.len());
            for ((o1, f1), (o2, f2)) in red.factors.iter().zip(&reference.factors) {
                assert_eq!(o1, o2);
                assert_eq!(f1.w, f2.w, "W differs on pass {pass}");
                assert_eq!(f1.y, f2.y, "Y differs on pass {pass}");
            }
        }
        assert!(pool.reused > 0, "second pass never hit the pool");
    }
}
