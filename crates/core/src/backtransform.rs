//! Back transformation for the band-reduction stage (§4.3, §5.3).
//!
//! After SBR/DBBR, `A = Q₁ B Q₁ᵀ` with
//! `Q₁ = (I − W₁Y₁ᵀ)(I − W₂Y₂ᵀ) ⋯ (I − W_pY_pᵀ)`, each factor acting on a
//! trailing row range. Eigenvectors of `B` are mapped back with `Q₁ · X`.
//!
//! * [`apply_q1`] — conventional `ormqr` ordering: one factor at a time,
//!   every GEMM has inner dimension `b` (slow on wide GPUs — Figure 14's
//!   baseline).
//! * [`apply_q1_blocked`] — the Figure-13 scheme: factors are merged
//!   pairwise (batched) into blocks of width `≥ target_k`, then applied;
//!   the GEMMs become `n × k`-sized at the cost of extra flops for the
//!   merged `W`s.
//! * [`apply_q1_blocked_ws`] — the production path: the merge runs **once**
//!   with pool-backed scratch ([`merge_q1_blocked_ws`]), then the merged
//!   read-only blocks are applied to fixed-width *column panels* of `C` on
//!   a scoped worker pool ([`apply_blocks_panels`]).
//!
//! # Why panels split columns, never the factor product
//!
//! The factor product `F₁F₂⋯F_p` is ordered — the factors overlap row
//! ranges and do not commute — so parallelizing across *factors* would
//! change the arithmetic. Columns of `C` are the independent axis: each
//! eigenvector is transformed by the same ordered product with no data
//! shared between columns. Partitioning `C` into **fixed-width** panels
//! (width [`PANEL_COLS`], independent of the worker count) keeps the
//! per-panel GEMM shapes — and therefore the kernel dispatch and the
//! floating-point evaluation order — identical no matter how many workers
//! drain the panel queue, so the result is bitwise-identical at every
//! `TG_THREADS`. The serial path is literally the same panels applied in
//! order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::workspace::{CachingPool, WorkspacePool};
use tg_blas::{gemm, gemm_into, Op};
use tg_householder::wblock::{merge_to_width, merge_to_width_ws, WyPair};
use tg_matrix::{Mat, MatMut};

/// Eigenvector-panel width for the parallel apply. Fixed — deliberately
/// *not* derived from the worker count or `C`'s shape — so the per-panel
/// GEMM shapes (and with them the dispatch and summation order) are
/// invariant under `TG_THREADS`; see the module docs. 32 columns keeps a
/// `k × 32` update above the packed-GEMM threshold for production widths
/// while still yielding enough panels to feed 8 workers at `n = 256`.
pub const PANEL_COLS: usize = 32;

/// Applies `Q₁` (or `Q₁ᵀ`) to `C` one factor at a time (conventional order).
///
/// `factors[i] = (offset, I − WᵢYᵢᵀ)` in product order
/// (`Q₁ = F₁ F₂ ⋯ F_p`, offsets ascending).
pub fn apply_q1(factors: &[(usize, WyPair)], c: &mut Mat, trans: bool) {
    if trans {
        // Q₁ᵀ C = F_pᵀ ⋯ F₁ᵀ C : forward order, transposed factors
        for (off, f) in factors {
            let mut sub = c.view_mut(*off, 0, f.w.nrows(), c.ncols());
            apply_factor_trans(f, &mut sub);
        }
    } else {
        // Q₁ C = F₁ (F₂ (⋯ F_p C)) : reverse order
        for (off, f) in factors.iter().rev() {
            let mut sub = c.view_mut(*off, 0, f.w.nrows(), c.ncols());
            f.apply_left(&mut sub);
        }
    }
}

/// `(I − W Yᵀ)ᵀ C = C − Y (Wᵀ C)`.
fn apply_factor_trans(f: &WyPair, c: &mut MatMut<'_>) {
    let x = gemm_into(1.0, &f.w.as_ref(), Op::Trans, &c.rb(), Op::NoTrans);
    gemm(
        -1.0,
        &f.y.as_ref(),
        Op::NoTrans,
        &x.as_ref(),
        Op::NoTrans,
        1.0,
        c,
    );
}

/// Applies `Q₁` to `C` with the Figure-13 blocked-`W` scheme.
///
/// Consecutive factors are grouped until each group holds `target_k / b`
/// factors; within a group the factors are zero-padded to the group's
/// leading offset and merged level-by-level with batched GEMMs
/// ([`merge_to_width`]), then the few wide factors are applied in order.
pub fn apply_q1_blocked(factors: &[(usize, WyPair)], c: &mut Mat, target_k: usize) {
    if factors.is_empty() {
        return;
    }
    let b = factors.iter().map(|(_, f)| f.width()).max().unwrap_or(1);
    let per_group = (target_k / b.max(1)).max(1);

    // Build merged groups (in product order).
    let mut merged: Vec<(usize, WyPair)> = Vec::new();
    for chunk in factors.chunks(per_group) {
        let off0 = chunk[0].0; // smallest offset (offsets ascend)
        let rows = chunk.iter().map(|(o, f)| f.w.nrows() + o).max().unwrap() - off0;
        let padded: Vec<WyPair> = chunk
            .iter()
            .map(|(o, f)| pad_top(f, o - off0, rows))
            .collect();
        let wide = merge_to_width(padded, target_k);
        for f in wide {
            merged.push((off0, f));
        }
    }
    // Q₁ C: apply merged factors in reverse product order.
    for (off, f) in merged.iter().rev() {
        let mut sub = c.view_mut(*off, 0, f.w.nrows(), c.ncols());
        f.apply_left(&mut sub);
    }
}

/// Zero-pads a factor with `pad` rows on top (embedding it in a larger
/// identity) so factors with different supports can be merged.
fn pad_top(f: &WyPair, pad: usize, rows: usize) -> WyPair {
    let k = f.width();
    let m = f.w.nrows();
    assert!(pad + m <= rows);
    let mut w = Mat::zeros(rows, k);
    w.view_mut(pad, 0, m, k).copy_from(&f.w.as_ref());
    let mut y = Mat::zeros(rows, k);
    y.view_mut(pad, 0, m, k).copy_from(&f.y.as_ref());
    WyPair { w, y }
}

/// Pool-backed [`pad_top`]: the padded storage is pool-acquired (caller
/// releases). Bitwise-identical under the zero contract.
pub fn pad_top_ws(f: &WyPair, pad: usize, rows: usize, pool: &mut dyn WorkspacePool) -> WyPair {
    let k = f.width();
    let m = f.w.nrows();
    assert!(pad + m <= rows);
    let mut w = pool.acquire(rows, k);
    w.view_mut(pad, 0, m, k).copy_from(&f.w.as_ref());
    let mut y = pool.acquire(rows, k);
    y.view_mut(pad, 0, m, k).copy_from(&f.y.as_ref());
    WyPair { w, y }
}

/// The merge half of [`apply_q1_blocked`], run **once** so the wide blocks
/// can be shared read-only across all column panels: groups, zero-pads and
/// merges the factors exactly as the allocating path does, with every
/// temporary and the merged `W`/`Y` storage drawn from `pool`.
///
/// Returns the merged `(offset, factor)` list in product order; every
/// returned matrix is pool-acquired — release with [`release_blocks`].
pub fn merge_q1_blocked_ws(
    factors: &[(usize, WyPair)],
    target_k: usize,
    pool: &mut dyn WorkspacePool,
) -> Vec<(usize, WyPair)> {
    let _span = tg_trace::span_cat(
        "backtransform.merge",
        "stage",
        Some(("factors", factors.len() as u64)),
    );
    if factors.is_empty() {
        return Vec::new();
    }
    let b = factors.iter().map(|(_, f)| f.width()).max().unwrap_or(1);
    let per_group = (target_k / b.max(1)).max(1);
    let mut merged: Vec<(usize, WyPair)> = Vec::new();
    for chunk in factors.chunks(per_group) {
        let off0 = chunk[0].0; // smallest offset (offsets ascend)
        let rows = chunk.iter().map(|(o, f)| f.w.nrows() + o).max().unwrap() - off0;
        let padded: Vec<WyPair> = chunk
            .iter()
            .map(|(o, f)| pad_top_ws(f, o - off0, rows, pool))
            .collect();
        let wide = merge_to_width_ws(padded, target_k, pool);
        for f in wide {
            merged.push((off0, f));
        }
    }
    merged
}

/// Releases every matrix of a pool-acquired block list (the counterpart of
/// [`merge_q1_blocked_ws`] / `BcResult::sweep_blocks_ws`).
pub fn release_blocks(blocks: Vec<(usize, WyPair)>, pool: &mut dyn WorkspacePool) {
    for (_, f) in blocks {
        pool.release(f.w);
        pool.release(f.y);
    }
}

/// Per-worker scratch pools for the panel loop, reusable across calls so a
/// steady-state driver (the bench sweep, a batched EVD) reaches an
/// allocation-free hot path. Workers never share a pool, so the panel loop
/// takes no locks on the acquire/release path.
#[derive(Default)]
pub struct PanelPools {
    pools: Vec<CachingPool>,
}

impl PanelPools {
    pub fn new() -> Self {
        Self::default()
    }

    /// At least `workers` pools, growing on demand (existing pools keep
    /// their caches).
    fn for_workers(&mut self, workers: usize) -> &mut [CachingPool] {
        while self.pools.len() < workers {
            self.pools.push(CachingPool::new());
        }
        &mut self.pools[..workers]
    }

    /// Total cache hits across all worker pools.
    pub fn hits(&self) -> u64 {
        self.pools.iter().map(CachingPool::hits).sum()
    }

    /// Total cache misses (allocations) across all worker pools.
    pub fn misses(&self) -> u64 {
        self.pools.iter().map(CachingPool::misses).sum()
    }

    /// Aggregate hit rate across all worker pools (0 before first use).
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.pools.iter().map(CachingPool::hits).sum();
        let total: u64 = self.pools.iter().map(|p| p.hits() + p.misses()).sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Applies the ordered block-factor product `F₁F₂⋯F_p` (each entry
/// `(offset, I − WYᵀ)`) to `C` from the left, partitioned into
/// [`PANEL_COLS`]-wide column panels drained by `workers` scoped threads.
///
/// The blocks are shared read-only; each panel applies the full product in
/// reverse order with its worker's private [`CachingPool`] supplying the
/// `YᵀC` scratch. Panel boundaries are independent of `workers`, so the
/// result is bitwise-identical for every worker count (the `workers == 1`
/// path is the same panels in order on the calling thread). Workers enter
/// the `tg_blas::threads` nested-fan-out guard so inner GEMMs stay serial
/// (PR 5 pattern); a single worker keeps intra-kernel parallelism.
pub fn apply_blocks_panels(
    blocks: &[(usize, WyPair)],
    c: &mut Mat,
    workers: usize,
    panel_pools: &mut PanelPools,
) {
    let ncols = c.ncols();
    if blocks.is_empty() || ncols == 0 {
        return;
    }
    let n_panels = ncols.div_ceil(PANEL_COLS);
    let workers = workers.max(1).min(n_panels);
    let pools = panel_pools.for_workers(workers);

    // Carve C into disjoint fixed-width column panels.
    let mut panels: Vec<MatMut<'_>> = Vec::with_capacity(n_panels);
    let mut rest = c.view_mut(0, 0, c.nrows(), ncols);
    while rest.ncols() > 0 {
        let w = rest.ncols().min(PANEL_COLS);
        let (p, r) = rest.split_at_col(w);
        panels.push(p);
        rest = r;
    }

    if workers == 1 {
        for (idx, panel) in panels.iter_mut().enumerate() {
            let _t = tg_trace::span_cat("backtransform.panel", "task", Some(("panel", idx as u64)));
            apply_blocks_to_panel(blocks, panel, &mut pools[0]);
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<MatMut<'_>>>> =
        panels.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let region = tg_trace::RegionId::fresh();
    let _rspan = tg_trace::span_region(
        "parallel.backtransform",
        "region",
        Some(("panels", n_panels as u64)),
        region,
    );
    std::thread::scope(|s| {
        for (wid, pool) in pools.iter_mut().enumerate() {
            let (next, slots) = (&next, &slots);
            s.spawn(move || {
                // Parallelism budget is spent across panels: keep the BLAS
                // kernels inside each panel serial (bitwise-identical
                // either way) instead of nesting a second fan-out.
                let _region = tg_blas::threads::enter_parallel_region();
                let _wspan = tg_trace::span_region(
                    "backtransform.worker",
                    "worker",
                    Some(("w", wid as u64)),
                    region,
                );
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let mut panel = lock_unpoisoned(&slots[i])
                        .take()
                        .expect("each panel claimed once");
                    let _t = tg_trace::span_region(
                        "backtransform.panel",
                        "task",
                        Some(("panel", i as u64)),
                        region,
                    );
                    apply_blocks_to_panel(blocks, &mut panel, pool);
                }
            });
        }
    });
}

/// A panicking panel worker must not wedge its siblings' slot access.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One panel's work: the full ordered product, reverse order, pooled
/// scratch. Row sub-ranges are taken per factor so each `apply_left_ws`
/// sees exactly the rows the factor acts on.
fn apply_blocks_to_panel(
    blocks: &[(usize, WyPair)],
    panel: &mut MatMut<'_>,
    pool: &mut CachingPool,
) {
    for (off, f) in blocks.iter().rev() {
        let rows = f.w.nrows();
        let (_, below) = panel.rb_mut().split_at_row(*off);
        let (mut sub, _) = below.split_at_row(rows);
        f.apply_left_ws(&mut sub, pool);
    }
}

/// The production back transformation: [`merge_q1_blocked_ws`] once, then
/// the merged blocks applied panel-parallel by [`apply_blocks_panels`].
///
/// Numerically this matches [`apply_q1_blocked`] to merge accuracy (the
/// merged factors are bitwise-identical; only the apply GEMM shapes
/// differ), and it is bitwise-identical to *itself* at every `workers`.
pub fn apply_q1_blocked_ws(
    factors: &[(usize, WyPair)],
    c: &mut Mat,
    target_k: usize,
    pool: &mut dyn WorkspacePool,
    workers: usize,
    panel_pools: &mut PanelPools,
) {
    let merged = merge_q1_blocked_ws(factors, target_k, pool);
    apply_blocks_panels(&merged, c, workers, panel_pools);
    release_blocks(merged, pool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbr::band_reduce;
    use crate::workspace::AllocPool;
    use tg_matrix::{gen, max_abs_diff};

    fn setup(n: usize, b: usize, seed: u64) -> Vec<(usize, WyPair)> {
        let mut a = gen::random_symmetric(n, seed);
        band_reduce(&mut a, b, 8).factors
    }

    #[test]
    fn conventional_matches_form_q() {
        let n = 20;
        let factors = setup(n, 3, 1);
        let mut q = Mat::identity(n);
        apply_q1(&factors, &mut q, false);
        // cross-check against BandReduction::form_q by rebuilding
        let mut a = gen::random_symmetric(n, 1);
        let red = band_reduce(&mut a, 3, 8);
        let q_ref = red.form_q(n);
        assert!(max_abs_diff(&q, &q_ref) < 1e-13);
    }

    #[test]
    fn trans_is_inverse() {
        let n = 18;
        let factors = setup(n, 2, 2);
        let c0 = gen::random(n, 5, 10);
        let mut c = c0.clone();
        apply_q1(&factors, &mut c, false);
        apply_q1(&factors, &mut c, true);
        assert!(max_abs_diff(&c, &c0) < 1e-12);
    }

    #[test]
    fn blocked_matches_conventional() {
        let n = 28;
        let b = 2;
        let factors = setup(n, b, 3);
        let c0 = gen::random(n, 6, 20);
        for target_k in [2usize, 4, 8, 64] {
            let mut c1 = c0.clone();
            apply_q1(&factors, &mut c1, false);
            let mut c2 = c0.clone();
            apply_q1_blocked(&factors, &mut c2, target_k);
            assert!(
                max_abs_diff(&c1, &c2) < 1e-11,
                "target_k={target_k}: {}",
                max_abs_diff(&c1, &c2)
            );
        }
    }

    #[test]
    fn blocked_on_single_factor() {
        let n = 10;
        let factors = setup(n, 4, 4);
        let c0 = gen::random(n, 3, 30);
        let mut c1 = c0.clone();
        apply_q1(&factors, &mut c1, false);
        let mut c2 = c0.clone();
        apply_q1_blocked(&factors, &mut c2, 1024);
        assert!(max_abs_diff(&c1, &c2) < 1e-12);
    }

    #[test]
    fn empty_factors_noop() {
        let c0 = gen::random(5, 2, 40);
        let mut c = c0.clone();
        apply_q1(&[], &mut c, false);
        apply_q1_blocked(&[], &mut c, 8);
        apply_q1_blocked_ws(&[], &mut c, 8, &mut AllocPool, 4, &mut PanelPools::new());
        assert_eq!(c, c0);
    }

    #[test]
    fn merged_ws_blocks_are_bitwise_identical_to_allocating_merge() {
        let n = 28;
        let factors = setup(n, 2, 5);
        // The allocating path merges inline; replicate its grouping here.
        let b = factors.iter().map(|(_, f)| f.width()).max().unwrap();
        for target_k in [4usize, 8] {
            let per_group = (target_k / b).max(1);
            let mut expect: Vec<(usize, WyPair)> = Vec::new();
            for chunk in factors.chunks(per_group) {
                let off0 = chunk[0].0;
                let rows = chunk.iter().map(|(o, f)| f.w.nrows() + o).max().unwrap() - off0;
                let padded: Vec<WyPair> = chunk
                    .iter()
                    .map(|(o, f)| pad_top(f, o - off0, rows))
                    .collect();
                for f in merge_to_width(padded, target_k) {
                    expect.push((off0, f));
                }
            }
            let got = merge_q1_blocked_ws(&factors, target_k, &mut AllocPool);
            assert_eq!(expect.len(), got.len());
            for ((eo, ef), (go, gf)) in expect.iter().zip(&got) {
                assert_eq!(eo, go);
                assert_eq!(ef.w, gf.w, "target_k={target_k}");
                assert_eq!(ef.y, gf.y, "target_k={target_k}");
            }
            release_blocks(got, &mut AllocPool);
        }
    }

    #[test]
    fn panel_apply_matches_conventional_and_is_worker_invariant() {
        let n = 40;
        let factors = setup(n, 3, 6);
        // More columns than one panel so the partition is non-trivial, and
        // a ragged final panel (n+PANEL_COLS/2 columns) to cover the
        // short-panel dispatch path.
        let cols = PANEL_COLS + PANEL_COLS / 2 + 3;
        let c0 = gen::random(n, cols, 60);
        let mut reference = c0.clone();
        apply_q1(&factors, &mut reference, false);

        let mut serial = c0.clone();
        apply_q1_blocked_ws(
            &factors,
            &mut serial,
            8,
            &mut AllocPool,
            1,
            &mut PanelPools::new(),
        );
        assert!(
            max_abs_diff(&reference, &serial) < 1e-11,
            "{}",
            max_abs_diff(&reference, &serial)
        );

        for workers in [2usize, 3, 4, 7] {
            let mut par = c0.clone();
            apply_q1_blocked_ws(
                &factors,
                &mut par,
                8,
                &mut AllocPool,
                workers,
                &mut PanelPools::new(),
            );
            assert_eq!(serial, par, "workers = {workers} must be bitwise-identical");
        }
    }

    #[test]
    fn panel_pools_reach_steady_state_hit_rate() {
        let n = 36;
        let factors = setup(n, 3, 7);
        let c0 = gen::random(n, 2 * PANEL_COLS, 70);
        let mut pools = PanelPools::new();
        let mut pool = AllocPool;
        // Single worker: the panel→pool mapping is deterministic, so the
        // steady-state claim is exact (the parallel mapping only shifts
        // which worker's pool warms up, not whether the loop allocates).
        let mut c = c0.clone();
        apply_q1_blocked_ws(&factors, &mut c, 8, &mut pool, 1, &mut pools);
        // …after which the panel loop allocates nothing.
        let before_misses: u64 = pools.pools.iter().map(CachingPool::misses).sum();
        let mut c = c0.clone();
        apply_q1_blocked_ws(&factors, &mut c, 8, &mut pool, 1, &mut pools);
        let after_misses: u64 = pools.pools.iter().map(CachingPool::misses).sum();
        assert_eq!(
            before_misses, after_misses,
            "steady state must not allocate"
        );
        assert!(pools.hit_rate() > 0.0);
    }
}
