//! Back transformation for the band-reduction stage (§4.3, §5.3).
//!
//! After SBR/DBBR, `A = Q₁ B Q₁ᵀ` with
//! `Q₁ = (I − W₁Y₁ᵀ)(I − W₂Y₂ᵀ) ⋯ (I − W_pY_pᵀ)`, each factor acting on a
//! trailing row range. Eigenvectors of `B` are mapped back with `Q₁ · X`.
//!
//! * [`apply_q1`] — conventional `ormqr` ordering: one factor at a time,
//!   every GEMM has inner dimension `b` (slow on wide GPUs — Figure 14's
//!   baseline).
//! * [`apply_q1_blocked`] — the Figure-13 scheme: factors are merged
//!   pairwise (batched) into blocks of width `≥ target_k`, then applied;
//!   the GEMMs become `n × k`-sized at the cost of extra flops for the
//!   merged `W`s.

use tg_blas::{gemm, gemm_into, Op};
use tg_householder::wblock::{merge_to_width, WyPair};
use tg_matrix::{Mat, MatMut};

/// Applies `Q₁` (or `Q₁ᵀ`) to `C` one factor at a time (conventional order).
///
/// `factors[i] = (offset, I − WᵢYᵢᵀ)` in product order
/// (`Q₁ = F₁ F₂ ⋯ F_p`, offsets ascending).
pub fn apply_q1(factors: &[(usize, WyPair)], c: &mut Mat, trans: bool) {
    if trans {
        // Q₁ᵀ C = F_pᵀ ⋯ F₁ᵀ C : forward order, transposed factors
        for (off, f) in factors {
            let mut sub = c.view_mut(*off, 0, f.w.nrows(), c.ncols());
            apply_factor_trans(f, &mut sub);
        }
    } else {
        // Q₁ C = F₁ (F₂ (⋯ F_p C)) : reverse order
        for (off, f) in factors.iter().rev() {
            let mut sub = c.view_mut(*off, 0, f.w.nrows(), c.ncols());
            f.apply_left(&mut sub);
        }
    }
}

/// `(I − W Yᵀ)ᵀ C = C − Y (Wᵀ C)`.
fn apply_factor_trans(f: &WyPair, c: &mut MatMut<'_>) {
    let x = gemm_into(1.0, &f.w.as_ref(), Op::Trans, &c.rb(), Op::NoTrans);
    gemm(
        -1.0,
        &f.y.as_ref(),
        Op::NoTrans,
        &x.as_ref(),
        Op::NoTrans,
        1.0,
        c,
    );
}

/// Applies `Q₁` to `C` with the Figure-13 blocked-`W` scheme.
///
/// Consecutive factors are grouped until each group holds `target_k / b`
/// factors; within a group the factors are zero-padded to the group's
/// leading offset and merged level-by-level with batched GEMMs
/// ([`merge_to_width`]), then the few wide factors are applied in order.
pub fn apply_q1_blocked(factors: &[(usize, WyPair)], c: &mut Mat, target_k: usize) {
    if factors.is_empty() {
        return;
    }
    let b = factors.iter().map(|(_, f)| f.width()).max().unwrap_or(1);
    let per_group = (target_k / b.max(1)).max(1);

    // Build merged groups (in product order).
    let mut merged: Vec<(usize, WyPair)> = Vec::new();
    for chunk in factors.chunks(per_group) {
        let off0 = chunk[0].0; // smallest offset (offsets ascend)
        let rows = chunk.iter().map(|(o, f)| f.w.nrows() + o).max().unwrap() - off0;
        let padded: Vec<WyPair> = chunk
            .iter()
            .map(|(o, f)| pad_top(f, o - off0, rows))
            .collect();
        let wide = merge_to_width(padded, target_k);
        for f in wide {
            merged.push((off0, f));
        }
    }
    // Q₁ C: apply merged factors in reverse product order.
    for (off, f) in merged.iter().rev() {
        let mut sub = c.view_mut(*off, 0, f.w.nrows(), c.ncols());
        f.apply_left(&mut sub);
    }
}

/// Zero-pads a factor with `pad` rows on top (embedding it in a larger
/// identity) so factors with different supports can be merged.
fn pad_top(f: &WyPair, pad: usize, rows: usize) -> WyPair {
    let k = f.width();
    let m = f.w.nrows();
    assert!(pad + m <= rows);
    let mut w = Mat::zeros(rows, k);
    w.view_mut(pad, 0, m, k).copy_from(&f.w.as_ref());
    let mut y = Mat::zeros(rows, k);
    y.view_mut(pad, 0, m, k).copy_from(&f.y.as_ref());
    WyPair { w, y }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbr::band_reduce;
    use tg_matrix::{gen, max_abs_diff};

    fn setup(n: usize, b: usize, seed: u64) -> Vec<(usize, WyPair)> {
        let mut a = gen::random_symmetric(n, seed);
        band_reduce(&mut a, b, 8).factors
    }

    #[test]
    fn conventional_matches_form_q() {
        let n = 20;
        let factors = setup(n, 3, 1);
        let mut q = Mat::identity(n);
        apply_q1(&factors, &mut q, false);
        // cross-check against BandReduction::form_q by rebuilding
        let mut a = gen::random_symmetric(n, 1);
        let red = band_reduce(&mut a, 3, 8);
        let q_ref = red.form_q(n);
        assert!(max_abs_diff(&q, &q_ref) < 1e-13);
    }

    #[test]
    fn trans_is_inverse() {
        let n = 18;
        let factors = setup(n, 2, 2);
        let c0 = gen::random(n, 5, 10);
        let mut c = c0.clone();
        apply_q1(&factors, &mut c, false);
        apply_q1(&factors, &mut c, true);
        assert!(max_abs_diff(&c, &c0) < 1e-12);
    }

    #[test]
    fn blocked_matches_conventional() {
        let n = 28;
        let b = 2;
        let factors = setup(n, b, 3);
        let c0 = gen::random(n, 6, 20);
        for target_k in [2usize, 4, 8, 64] {
            let mut c1 = c0.clone();
            apply_q1(&factors, &mut c1, false);
            let mut c2 = c0.clone();
            apply_q1_blocked(&factors, &mut c2, target_k);
            assert!(
                max_abs_diff(&c1, &c2) < 1e-11,
                "target_k={target_k}: {}",
                max_abs_diff(&c1, &c2)
            );
        }
    }

    #[test]
    fn blocked_on_single_factor() {
        let n = 10;
        let factors = setup(n, 4, 4);
        let c0 = gen::random(n, 3, 30);
        let mut c1 = c0.clone();
        apply_q1(&factors, &mut c1, false);
        let mut c2 = c0.clone();
        apply_q1_blocked(&factors, &mut c2, 1024);
        assert!(max_abs_diff(&c1, &c2) < 1e-12);
    }

    #[test]
    fn empty_factors_noop() {
        let c0 = gen::random(5, 2, 40);
        let mut c = c0.clone();
        apply_q1(&[], &mut c, false);
        apply_q1_blocked(&[], &mut c, 8);
        assert_eq!(c, c0);
    }
}
