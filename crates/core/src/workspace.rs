//! Scratch-buffer injection for the reduction kernels.
//!
//! The band-reduction stages allocate sizeable intermediates — the
//! accumulated `(Z, Y)` pair grows to `n × k` per outer block, and every
//! panel needs a fresh `U`/`Z` — so a driver solving many problems in a row
//! (see `tg-batch`) pays the allocator once per buffer per problem. The
//! [`WorkspacePool`] trait lets a caller hand the kernels recycled storage
//! instead: `dbbr_ws` / `tridiagonalize_ws` request every scratch matrix
//! through the pool and return it when done.
//!
//! The trait itself now lives in [`tg_householder::pool`] — the blocked
//! back transformation pushed pooled scratch below this crate, into the
//! `wblock` merge/apply kernels — and is re-exported here so
//! `tridiag_core::WorkspacePool` keeps naming the same trait for every
//! implementor and consumer upstack.
//!
//! **Determinism contract:** a pool must return buffers that are
//! *bitwise-zero*, exactly like `Mat::zeros`. Under that contract the
//! workspace-taking variants perform the identical floating-point
//! operations as the allocating ones, so their outputs are
//! bitwise-identical regardless of which pool is used. The default
//! [`AllocPool`] simply allocates and drops; [`CachingPool`] recycles.

use std::collections::BTreeMap;

use tg_matrix::Mat;

pub use tg_householder::pool::WorkspacePool;

/// The trivial pool: every acquire is a fresh allocation, every release a
/// drop. [`crate::dbbr`] and [`crate::tridiagonalize`] use this, so the
/// allocating entry points are literally the `_ws` variants with this pool.
#[derive(Default)]
pub struct AllocPool;

impl WorkspacePool for AllocPool {
    fn acquire(&mut self, rows: usize, cols: usize) -> Mat {
        // Feed the live-bytes gauge so the single-problem path reports the
        // same workspace high-water mark the batched arenas do.
        tg_trace::gauge_add(tg_trace::Counter::ArenaLiveBytes, 8 * (rows * cols) as u64);
        Mat::zeros(rows, cols)
    }

    fn release(&mut self, m: Mat) {
        tg_trace::gauge_sub(
            tg_trace::Counter::ArenaLiveBytes,
            8 * (m.nrows() * m.ncols()) as u64,
        );
    }
}

/// A recycling pool: released buffers park in per-size free lists and are
/// zero-scrubbed on reuse, upholding the bitwise contract while making the
/// steady state allocation-free. This is the single-threaded sibling of
/// `tg_batch::WorkspaceArena` (which adds leases, shape-class preallocation
/// and fault hooks); the parallel back transformation keeps one
/// `CachingPool` per panel worker so workers never contend on a lock.
///
/// Every acquire records [`tg_trace::Counter::ArenaHit`] or
/// [`tg_trace::Counter::ArenaMiss`] and feeds the
/// [`tg_trace::Counter::ArenaLiveBytes`] gauge; [`CachingPool::hit_rate`]
/// exposes the same ratio without a trace session for the bench sweeps.
#[derive(Default)]
pub struct CachingPool {
    free: BTreeMap<usize, Vec<Vec<f64>>>,
    hits: u64,
    misses: u64,
}

impl CachingPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires served from the free lists since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Acquires that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// `hits / (hits + misses)`, or 0 before the first acquire.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl WorkspacePool for CachingPool {
    fn acquire(&mut self, rows: usize, cols: usize) -> Mat {
        let len = rows * cols;
        tg_trace::gauge_add(tg_trace::Counter::ArenaLiveBytes, 8 * len as u64);
        if let Some(mut buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.hits += 1;
            tg_trace::add(tg_trace::Counter::ArenaHit, 1);
            // Zeroing (not just clearing the debug poison) is what upholds
            // the bitwise contract: a recycled buffer must be
            // indistinguishable from Mat::zeros.
            buf.fill(0.0);
            Mat::from_col_major(rows, cols, buf)
        } else {
            self.misses += 1;
            tg_trace::add(tg_trace::Counter::ArenaMiss, 1);
            Mat::zeros(rows, cols)
        }
    }

    fn release(&mut self, m: Mat) {
        let mut buf = m.into_col_major();
        tg_trace::gauge_sub(tg_trace::Counter::ArenaLiveBytes, 8 * buf.len() as u64);
        if cfg!(debug_assertions) {
            // Poison dead buffers so a kernel that reads workspace it never
            // wrote (contract violation) produces NaNs, not stale results.
            buf.fill(f64::NAN);
        }
        self.free.entry(buf.len()).or_default().push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_pool_returns_zeros() {
        let mut pool = AllocPool;
        let m = pool.acquire(3, 5);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 5);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        pool.release(m);
    }

    #[test]
    fn caching_pool_recycles_and_zeroes() {
        let mut pool = CachingPool::new();
        let mut m = pool.acquire(4, 4);
        m.fill(7.0);
        pool.release(m);
        // Same size ⇒ hit, and the buffer must come back bitwise-zero.
        let m2 = pool.acquire(2, 8);
        assert!(m2.as_slice().iter().all(|&x| x.to_bits() == 0));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
        assert!((pool.hit_rate() - 0.5).abs() < 1e-15);
        pool.release(m2);
        // Different size ⇒ miss.
        let m3 = pool.acquire(3, 3);
        assert_eq!(pool.misses(), 2);
        pool.release(m3);
    }
}
