//! Scratch-buffer injection for the reduction kernels.
//!
//! The band-reduction stages allocate sizeable intermediates — the
//! accumulated `(Z, Y)` pair grows to `n × k` per outer block, and every
//! panel needs a fresh `U`/`Z` — so a driver solving many problems in a row
//! (see `tg-batch`) pays the allocator once per buffer per problem. The
//! [`WorkspacePool`] trait lets a caller hand the kernels recycled storage
//! instead: `dbbr_ws` / `tridiagonalize_ws` request every scratch matrix
//! through the pool and return it when done.
//!
//! **Determinism contract:** a pool must return buffers that are
//! *bitwise-zero*, exactly like `Mat::zeros`. Under that contract the
//! workspace-taking variants perform the identical floating-point
//! operations as the allocating ones, so their outputs are
//! bitwise-identical regardless of which pool is used. The default
//! [`AllocPool`] simply allocates and drops.

use tg_matrix::Mat;

/// Supplies zeroed scratch matrices and accepts them back for reuse.
///
/// Implementations must return buffers indistinguishable from
/// `Mat::zeros(rows, cols)`; everything else (caching policy, accounting,
/// debug poisoning) is up to the pool.
pub trait WorkspacePool {
    /// Returns a zero-filled `rows × cols` matrix.
    fn acquire(&mut self, rows: usize, cols: usize) -> Mat;

    /// Hands a no-longer-needed buffer back to the pool. The pool may
    /// recycle or drop it; the contents are dead.
    fn release(&mut self, m: Mat);
}

/// The trivial pool: every acquire is a fresh allocation, every release a
/// drop. [`crate::dbbr`] and [`crate::tridiagonalize`] use this, so the
/// allocating entry points are literally the `_ws` variants with this pool.
#[derive(Default)]
pub struct AllocPool;

impl WorkspacePool for AllocPool {
    fn acquire(&mut self, rows: usize, cols: usize) -> Mat {
        // Feed the live-bytes gauge so the single-problem path reports the
        // same workspace high-water mark the batched arenas do.
        tg_trace::gauge_add(tg_trace::Counter::ArenaLiveBytes, 8 * (rows * cols) as u64);
        Mat::zeros(rows, cols)
    }

    fn release(&mut self, m: Mat) {
        tg_trace::gauge_sub(
            tg_trace::Counter::ArenaLiveBytes,
            8 * (m.nrows() * m.ncols()) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_pool_returns_zeros() {
        let mut pool = AllocPool;
        let m = pool.acquire(3, 5);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 5);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        pool.release(m);
    }
}
