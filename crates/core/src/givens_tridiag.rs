//! Givens-rotation tridiagonalization — the third classical reduction
//! (after Householder and two-stage), kept as an independent correctness
//! baseline. LAPACK's band reduction `dsbtrd` is built from exactly these
//! rotations; here we run them on the dense symmetric matrix.
//!
//! For each column `j`, the sub-band entries `A[i][j]` (`i > j + 1`) are
//! annihilated bottom-up with rotations in planes `(i − 1, i)`, applied
//! two-sidedly. `O(n³)` like Householder but rotation-based — useful
//! because its arithmetic shares nothing with the reflector-based paths.

use tg_householder::givens::make_givens;
use tg_matrix::{Mat, Tridiagonal};

/// Result of [`givens_tridiagonalize`].
pub struct GivensTridiag {
    /// The tridiagonal matrix `T` with `A = Q T Qᵀ`.
    pub tri: Tridiagonal,
    /// The accumulated orthogonal factor.
    pub q: Mat,
}

/// Tridiagonalizes dense symmetric `A` by two-sided Givens rotations.
pub fn givens_tridiagonalize(a: &Mat) -> GivensTridiag {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut m = a.clone();
    m.mirror_lower(); // work on the full symmetric matrix for simplicity
    let mut q = Mat::identity(n);

    for j in 0..n.saturating_sub(2) {
        for i in (j + 2..n).rev() {
            let b = m[(i, j)];
            if b == 0.0 {
                continue;
            }
            let g = make_givens(m[(i - 1, j)], b);
            // two-sided application in the (i−1, i) plane:
            // rows i−1 and i …
            for c in 0..n {
                let (x, y) = g.apply(m[(i - 1, c)], m[(i, c)]);
                m[(i - 1, c)] = x;
                m[(i, c)] = y;
            }
            // … then columns i−1 and i
            for r in 0..n {
                let (x, y) = g.apply(m[(r, i - 1)], m[(r, i)]);
                m[(r, i - 1)] = x;
                m[(r, i)] = y;
            }
            m[(i, j)] = 0.0;
            m[(j, i)] = 0.0;
            // accumulate Q ← Q · G (columns i−1, i)
            for r in 0..n {
                let (x, y) = g.apply(q[(r, i - 1)], q[(r, i)]);
                q[(r, i - 1)] = x;
                q[(r, i)] = y;
            }
        }
    }

    let d = (0..n).map(|i| m[(i, i)]).collect();
    let e = (0..n.saturating_sub(1)).map(|i| m[(i + 1, i)]).collect();
    GivensTridiag {
        tri: Tridiagonal::new(d, e),
        q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual, similarity_residual};

    #[test]
    fn contract_holds() {
        for (n, seed) in [(8usize, 1u64), (17, 2), (30, 3)] {
            let a = gen::random_symmetric(n, seed);
            let r = givens_tridiagonalize(&a);
            assert!(orthogonality_residual(&r.q) < 1e-12, "n={n}");
            assert!(
                similarity_residual(&a, &r.q, &r.tri.to_dense()) < 1e-12,
                "n={n}"
            );
        }
    }

    #[test]
    fn agrees_with_householder_spectrum() {
        let n = 26;
        let a = gen::random_symmetric(n, 9);
        let giv = givens_tridiagonalize(&a);
        let mut w = a.clone();
        let hh = crate::sytrd::sytrd_unblocked(&mut w);
        for &x in &[-3.0, -1.0, 0.0, 0.8, 2.1] {
            assert_eq!(
                giv.tri.sturm_count(x),
                hh.tri.sturm_count(x),
                "Sturm count differs at {x}"
            );
        }
    }

    #[test]
    fn banded_input_fewer_rotations_same_result() {
        let n = 20;
        let b = 3;
        let dense = gen::random_symmetric_band(n, b, 7);
        let giv = givens_tridiagonalize(&dense);
        // cross-check against bulge chasing
        let band = tg_matrix::SymBand::from_dense_lower(&dense, b);
        let bc = crate::bc::bulge_chase_seq(&band);
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert_eq!(giv.tri.sturm_count(x), bc.tri.sturm_count(x));
        }
    }

    #[test]
    fn tiny_sizes() {
        for n in [1usize, 2, 3] {
            let a = gen::random_symmetric(n, 20 + n as u64);
            let r = givens_tridiagonalize(&a);
            assert_eq!(r.tri.n(), n);
            if n >= 2 {
                assert!(similarity_residual(&a, &r.q, &r.tri.to_dense()) < 1e-13);
            }
        }
    }
}
