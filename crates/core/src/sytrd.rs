//! Direct (one-stage) tridiagonalization — the cuSOLVER `Dsytrd` baseline.
//!
//! Implements the classic blocked Householder reduction of Dongarra,
//! Sorensen & Hammarling \[8\]: panels are reduced with `dlatrd`-style
//! delayed updates, the trailing matrix is updated with a rank-`2nb`
//! `syr2k`. Roughly half the flops remain in BLAS-2 `symv`s — the paper's
//! §2.2 explanation of why direct tridiagonalization underuses GPUs.
//!
//! Only the lower triangle of `A` is referenced and overwritten.

use tg_blas::level1::{axpy, dot};
use tg_blas::level2::symv_lower;
use tg_blas::syr2k_blocked;
use tg_householder::{apply_two_sided_lower, make_reflector};
use tg_matrix::{Mat, MatMut, Tridiagonal};

/// Output of the direct tridiagonalization.
pub struct SytrdResult {
    /// The tridiagonal matrix `T` with `A = Q T Qᵀ`.
    pub tri: Tridiagonal,
    /// Explicit reflector matrix: column `i` holds `v_i` (unit entry at row
    /// `i + 1`, zeros at and above row `i`).
    pub v: Mat,
    /// Reflector scalars.
    pub taus: Vec<f64>,
}

impl SytrdResult {
    /// Applies `Q = H₀ H₁ ⋯ H_{n−2}` to `C` from the left (`C ← Q C`)
    /// without materializing `Q` (`dormtr` analogue): reflectors are
    /// grouped `nb` at a time into compact-WY `I − V T Vᵀ` factors applied
    /// directly to `C`, so the cost is `O(n² · ncols)` GEMM-shaped work —
    /// the `ormqr`-style apply the back transformation needs, where
    /// form-`Q`-then-multiply would pay `O(n³)` regardless of `C`'s width.
    pub fn apply_q_left(&self, c: &mut MatMut<'_>, nb: usize) {
        let n = self.tri.n();
        assert_eq!(c.nrows(), n);
        assert!(nb >= 1);
        let total = self.taus.len();
        // Q = B₀ B₁ ⋯ B_p ⇒ apply the block factors right-to-left
        let starts: Vec<usize> = (0..total).step_by(nb).collect();
        for &j in starts.iter().rev() {
            let w = nb.min(total - j);
            let mut v = Mat::zeros(n, w);
            let mut taus = vec![0.0; w];
            for col in 0..w {
                taus[col] = self.taus[j + col];
                for r in 0..n {
                    v[(r, col)] = self.v[(r, j + col)];
                }
            }
            let blk = tg_householder::WyBlock::from_v_taus(v, &taus);
            blk.apply_left(c, false);
        }
    }

    /// Materializes `Q = H₀ H₁ ⋯ H_{n−2}` with blocked compact-WY
    /// application (`dorgtr` analogue): [`SytrdResult::apply_q_left`] on
    /// the identity, so the work is GEMM-shaped instead of rank-1 — the
    /// same BLAS-3 enrichment the paper applies everywhere.
    pub fn form_q_blocked(&self, nb: usize) -> Mat {
        let n = self.tri.n();
        let mut q = Mat::identity(n);
        self.apply_q_left(&mut q.as_mut(), nb);
        q
    }

    /// Materializes `Q = H₀ H₁ ⋯ H_{n−2}` (unblocked reference).
    pub fn form_q(&self) -> Mat {
        let n = self.tri.n();
        let mut q = Mat::identity(n);
        for i in (0..self.taus.len()).rev() {
            let tau = self.taus[i];
            if tau == 0.0 {
                continue;
            }
            let v_tail: Vec<f64> = (i + 2..n).map(|r| self.v[(r, i)]).collect();
            let mut sub = q.view_mut(i + 1, 0, n - i - 1, n);
            tg_householder::apply_left(tau, &v_tail, &mut sub);
        }
        q
    }
}

/// Unblocked reduction (`dsytd2` analogue). Overwrites the lower triangle.
pub fn sytrd_unblocked(a: &mut Mat) -> SytrdResult {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut v = Mat::zeros(n, n.saturating_sub(1));
    let mut taus = vec![0.0; n.saturating_sub(1)];
    for i in 0..n.saturating_sub(1) {
        let (tau, beta, tail) = {
            let col = a.col_mut(i);
            let r = make_reflector(&mut col[i + 1..]);
            (r.tau, r.beta, col[i + 2..].to_vec())
        };
        taus[i] = tau;
        v[(i + 1, i)] = 1.0;
        for (off, &t) in tail.iter().enumerate() {
            v[(i + 2 + off, i)] = t;
        }
        // two-sided update of the trailing block
        if tau != 0.0 {
            let mut trail = a.view_mut(i + 1, i + 1, n - i - 1, n - i - 1);
            apply_two_sided_lower(tau, &tail, &mut trail);
        }
        // store β, zero the annihilated entries
        a[(i + 1, i)] = beta;
        for r in i + 2..n {
            a[(r, i)] = 0.0;
        }
    }
    SytrdResult {
        tri: extract_tridiagonal(a),
        v,
        taus,
    }
}

/// Blocked reduction (`dsytrd` analogue) with panel width `nb`.
pub fn sytrd_blocked(a: &mut Mat, nb: usize) -> SytrdResult {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert!(nb >= 1);
    let _span = tg_trace::span_cat("reduce.sytrd", "stage", Some(("n", n as u64)));
    let mut v = Mat::zeros(n, n.saturating_sub(1));
    let mut taus = vec![0.0; n.saturating_sub(1)];

    let mut i = 0;
    // keep a panel only while a non-trivial trailing matrix remains
    while n - i > nb + 2 && nb > 1 {
        let m = n - i;
        let (vp, wp) = latrd_lower(&mut a.view_mut(i, i, m, m), nb, &mut taus[i..i + nb]);
        // copy panel reflectors into the global V (rows i.., cols i..i+nb)
        for j in 0..nb {
            for r in j + 1..m {
                v[(i + r, i + j)] = vp[(r, j)];
            }
        }
        // trailing update: A[i+nb.., i+nb..] ← A − V₂W₂ᵀ − W₂V₂ᵀ
        let v2 = vp.view(nb, 0, m - nb, nb);
        let w2 = wp.view(nb, 0, m - nb, nb);
        let mut trail = a.view_mut(i + nb, i + nb, m - nb, m - nb);
        syr2k_blocked(-1.0, &v2, &w2, 1.0, &mut trail, 32);
        i += nb;
    }
    // unblocked cleanup
    if n - i > 1 {
        let m = n - i;
        let mut tail_mat = a.view(i, i, m, m).to_mat();
        let rest = sytrd_unblocked(&mut tail_mat);
        a.view_mut(i, i, m, m).copy_from(&tail_mat.as_ref());
        for j in 0..m.saturating_sub(1) {
            taus[i + j] = rest.taus[j];
            for r in 0..m {
                if rest.v[(r, j)] != 0.0 {
                    v[(i + r, i + j)] = rest.v[(r, j)];
                }
            }
        }
    }
    SytrdResult {
        tri: extract_tridiagonal(a),
        v,
        taus,
    }
}

/// `dlatrd` (lower) analogue: reduces the first `nb` columns of the
/// symmetric `m × m` block `a` to tridiagonal form and returns `(V, W)`
/// such that the trailing update is `A ← A − V Wᵀ − W Vᵀ`.
///
/// `V`, `W` are `m × nb`; reflector `j` lives in `V[j+1.., j]`.
fn latrd_lower(a: &mut MatMut<'_>, nb: usize, taus: &mut [f64]) -> (Mat, Mat) {
    let m = a.nrows();
    let mut v = Mat::zeros(m, nb);
    let mut w = Mat::zeros(m, nb);
    for j in 0..nb {
        // bring column j up to date with reflectors 0..j:
        // A[j.., j] ← A[j.., j] − V[j.., :j]·W[j, :j]ᵀ − W[j.., :j]·V[j, :j]ᵀ
        if j > 0 {
            for l in 0..j {
                let wjl = w[(j, l)];
                let vjl = v[(j, l)];
                let col = a.col_mut(j);
                let vl = v.col(l);
                let wl = w.col(l);
                for r in j..m {
                    col[r] -= vl[r] * wjl + wl[r] * vjl;
                }
            }
        }
        // reflector annihilating A[j+2.., j]
        let (tau, beta, tail) = {
            let col = a.col_mut(j);
            let r = make_reflector(&mut col[j + 1..]);
            (r.tau, r.beta, col[j + 2..].to_vec())
        };
        taus[j] = tau;
        v[(j + 1, j)] = 1.0;
        for (off, &t) in tail.iter().enumerate() {
            v[(j + 2 + off, j)] = t;
        }
        // record β and clear the annihilated entries in A
        *a.at_mut(j + 1, j) = beta;
        for r in j + 2..m {
            *a.at_mut(r, j) = 0.0;
        }
        // w_j = τ(A₂₂ v − V (Wᵀv) − W (Vᵀv)) − ½τ²(vᵀ·)v  (A₂₂ = stale trailing)
        if tau != 0.0 {
            let vj: Vec<f64> = (j + 1..m).map(|r| v[(r, j)]).collect();
            let mut wj = vec![0.0; m - j - 1];
            {
                let trail = a.rb().submatrix(j + 1, j + 1, m - j - 1, m - j - 1);
                symv_lower(tau, &trail, &vj, 0.0, &mut wj);
            }
            // corrections from the not-yet-applied rank-2j update
            for l in 0..j {
                let vl: Vec<f64> = (j + 1..m).map(|r| v[(r, l)]).collect();
                let wl: Vec<f64> = (j + 1..m).map(|r| w[(r, l)]).collect();
                let a1 = dot(&wl, &vj);
                axpy(-tau * a1, &vl, &mut wj);
                let a2 = dot(&vl, &vj);
                axpy(-tau * a2, &wl, &mut wj);
            }
            let c = -0.5 * tau * dot(&wj, &vj);
            axpy(c, &vj, &mut wj);
            for (off, &t) in wj.iter().enumerate() {
                w[(j + 1 + off, j)] = t;
            }
        }
    }
    (v, w)
}

fn extract_tridiagonal(a: &Mat) -> Tridiagonal {
    let n = a.nrows();
    let d = (0..n).map(|i| a[(i, i)]).collect();
    let e = (0..n.saturating_sub(1)).map(|i| a[(i + 1, i)]).collect();
    Tridiagonal::new(d, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual, similarity_residual};

    fn check(n: usize, nb: usize, seed: u64, blocked: bool) {
        let a0 = gen::random_symmetric(n, seed);
        let mut a = a0.clone();
        let res = if blocked {
            sytrd_blocked(&mut a, nb)
        } else {
            sytrd_unblocked(&mut a)
        };
        let q = res.form_q();
        assert!(
            orthogonality_residual(&q) < 1e-12,
            "Q not orthogonal (n={n}, nb={nb})"
        );
        let t = res.tri.to_dense();
        let r = similarity_residual(&a0, &q, &t);
        assert!(r < 1e-12, "A ≠ Q T Qᵀ: residual {r} (n={n}, nb={nb})");
    }

    #[test]
    fn unblocked_small() {
        check(2, 0, 1, false);
        check(3, 0, 2, false);
        check(8, 0, 3, false);
        check(17, 0, 4, false);
    }

    #[test]
    fn blocked_matches_contract() {
        check(16, 4, 10, true);
        check(25, 4, 11, true); // ragged
        check(32, 8, 12, true);
        check(10, 16, 13, true); // nb > n: pure unblocked path
        check(30, 1, 14, true); // nb = 1 degenerate
    }

    #[test]
    fn blocked_and_unblocked_same_t_up_to_signs() {
        let n = 20;
        let a0 = gen::random_symmetric(n, 20);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let r1 = sytrd_unblocked(&mut a1);
        let r2 = sytrd_blocked(&mut a2, 5);
        // T is unique up to off-diagonal signs when starting from the same
        // first column; both algorithms use the same elimination order
        let t1 = r1.tri.with_positive_offdiag();
        let t2 = r2.tri.with_positive_offdiag();
        for i in 0..n {
            assert!((t1.d[i] - t2.d[i]).abs() < 1e-10, "d[{i}]");
        }
        for i in 0..n - 1 {
            assert!((t1.e[i] - t2.e[i]).abs() < 1e-10, "e[{i}]");
        }
    }

    #[test]
    fn blocked_q_formation_matches_unblocked() {
        let n = 21;
        let a0 = gen::random_symmetric(n, 60);
        let mut a = a0.clone();
        let res = sytrd_blocked(&mut a, 5);
        let q_ref = res.form_q();
        for nb in [1usize, 3, 8, 64] {
            let q_blk = res.form_q_blocked(nb);
            assert!(tg_matrix::max_abs_diff(&q_ref, &q_blk) < 1e-12, "nb = {nb}");
        }
    }

    #[test]
    fn apply_q_left_matches_form_q_product() {
        let n = 21;
        let a0 = gen::random_symmetric(n, 61);
        let mut a = a0.clone();
        let res = sytrd_blocked(&mut a, 5);
        let q = res.form_q();
        let c0 = gen::random(n, 4, 62);
        let expect = tg_blas::gemm_into(
            1.0,
            &q.as_ref(),
            tg_blas::Op::NoTrans,
            &c0.as_ref(),
            tg_blas::Op::NoTrans,
        );
        for nb in [1usize, 4, 32] {
            let mut c = c0.clone();
            res.apply_q_left(&mut c.as_mut(), nb);
            assert!(
                tg_matrix::max_abs_diff(&expect, &c) < 1e-11,
                "nb = {nb}: {}",
                tg_matrix::max_abs_diff(&expect, &c)
            );
        }
    }

    #[test]
    fn trace_preserved() {
        let n = 24;
        let a0 = gen::random_symmetric(n, 30);
        let tr0: f64 = (0..n).map(|i| a0[(i, i)]).sum();
        let mut a = a0.clone();
        let res = sytrd_blocked(&mut a, 6);
        assert!((res.tri.trace() - tr0).abs() < 1e-10);
    }

    #[test]
    fn already_tridiagonal_is_fixed_point() {
        // a tridiagonal input: reflectors are all trivial, T = input
        let t0 = gen::random_tridiagonal(12, 40);
        let mut a = t0.to_dense();
        let res = sytrd_unblocked(&mut a);
        for i in 0..12 {
            assert!((res.tri.d[i] - t0.d[i]).abs() < 1e-14);
        }
        for i in 0..11 {
            assert!((res.tri.e[i].abs() - t0.e[i].abs()).abs() < 1e-14);
        }
    }

    #[test]
    fn tiny_matrices() {
        let mut a1 = gen::random_symmetric(1, 50);
        let r = sytrd_unblocked(&mut a1);
        assert_eq!(r.tri.n(), 1);
        check(2, 2, 51, true);
    }
}
