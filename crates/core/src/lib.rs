//! # tridiag-core
//!
//! The paper's primary contribution: two-stage symmetric tridiagonalization.
//!
//! * [`sytrd`] — direct blocked tridiagonalization (the cuSOLVER `Dsytrd`
//!   baseline; ~50% BLAS-2 by construction, which is why it is slow on GPUs),
//! * [`sbr`] — single-blocking successive band reduction (the MAGMA
//!   `Dsy2sb` baseline, Figure 2),
//! * [`dbbr`] — **double-blocking band reduction**, Algorithm 1: bandwidth
//!   `b` decoupled from the `syr2k` rank `k`,
//! * [`bc`] — bulge chasing (`Dsb2st`): sequential reference and the
//!   paper's Algorithm-2 pipelined implementation with atomic progress
//!   flags,
//! * [`backtransform`] — assembling `Q` from both stages (conventional
//!   `ormqr` order, the Figure-13 blocked-`W` scheme, and the pooled
//!   panel-parallel production path; see `docs/PERFORMANCE.md`),
//! * [`two_stage`] — end-to-end drivers combining the above.

pub mod backtransform;
pub mod bc;
pub mod dbbr;
pub mod givens_tridiag;
pub mod sbr;
pub mod sytrd;
pub mod two_stage;
pub mod workspace;

pub use backtransform::{PanelPools, PANEL_COLS};
pub use bc::{bulge_chase_pipelined, bulge_chase_seq, BcResult};
pub use dbbr::{dbbr, dbbr_ws, DbbrConfig, DbbrConfigError};
pub use givens_tridiag::givens_tridiagonalize;
pub use sbr::{band_reduce, BandReduction};
pub use sytrd::{sytrd_blocked, sytrd_unblocked, SytrdResult};
pub use two_stage::{tridiagonalize, tridiagonalize_ws, Method, TridiagResult};
pub use workspace::{AllocPool, CachingPool, WorkspacePool};
