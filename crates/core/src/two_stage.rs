//! End-to-end tridiagonalization drivers.
//!
//! Three pipelines, mirroring the paper's comparison:
//!
//! * [`Method::Direct`] — blocked one-stage reduction (cuSOLVER `Dsytrd`),
//! * [`Method::Sbr`] — MAGMA-style two-stage: single-blocking band
//!   reduction + bulge chasing,
//! * [`Method::Dbbr`] — the paper's method: double-blocking band reduction
//!   + pipelined bulge chasing.

use crate::backtransform::{
    apply_q1, apply_q1_blocked, merge_q1_blocked_ws, release_blocks, PanelPools,
};
use crate::bc::{bulge_chase_grouped, bulge_chase_pipelined, bulge_chase_seq, BcResult};
use crate::dbbr::{dbbr_ws, DbbrConfig};
use crate::sbr::band_reduce;
use crate::sytrd::{sytrd_blocked, SytrdResult};
use crate::workspace::{AllocPool, WorkspacePool};
use tg_householder::wblock::WyPair;
use tg_matrix::{Mat, Tridiagonal};

/// Tridiagonalization algorithm selector.
#[derive(Clone, Debug)]
pub enum Method {
    /// Direct blocked reduction with panel width `nb`.
    Direct { nb: usize },
    /// Two-stage with single-blocking SBR (bandwidth `b`) and bulge chasing
    /// with `parallel_sweeps` concurrent sweeps (1 = sequential).
    Sbr { b: usize, parallel_sweeps: usize },
    /// Two-stage with double-blocking band reduction and pipelined bulge
    /// chasing — the paper's proposed pipeline.
    Dbbr {
        cfg: DbbrConfig,
        parallel_sweeps: usize,
    },
    /// Like [`Method::Dbbr`] but with the §5.2 sweep-grouped bulge-chasing
    /// schedule (`workers × group` logical parallel sweeps).
    DbbrGrouped {
        cfg: DbbrConfig,
        workers: usize,
        group: usize,
    },
}

impl Method {
    /// The paper's recommended configuration (`b = 32`, `k = 1024` scaled
    /// down proportionally for small matrices). Stage-1 look-ahead comes
    /// on by default via [`DbbrConfig::new`]; clear `cfg.lookahead` for
    /// the strictly serial schedule (bitwise-identical either way).
    pub fn paper_default(n: usize) -> Method {
        let b = 32.min((n / 8).max(2));
        let k = (b * 8).min(1024);
        Method::Dbbr {
            cfg: DbbrConfig::new(b, k),
            parallel_sweeps: 4,
        }
    }
}

/// Compact-WY group width for the `Direct` pipeline's reflector apply
/// (`dormtr` blocking). 32 matches the panel widths used elsewhere and
/// keeps every apply GEMM's inner dimension wide enough for the packed
/// kernel at production sizes.
const DIRECT_APPLY_NB: usize = 32;

/// How the orthogonal factor is represented, per pipeline.
enum QFactors {
    Direct(SytrdResult),
    TwoStage {
        factors: Vec<(usize, WyPair)>,
        bc: BcResult,
    },
}

/// Result of [`tridiagonalize`]: `A = Q T Qᵀ`.
pub struct TridiagResult {
    /// The tridiagonal matrix.
    pub tri: Tridiagonal,
    /// Matrix order.
    pub n: usize,
    q: QFactors,
}

impl TridiagResult {
    /// `C ← Q C`: maps eigenvectors of `T` to eigenvectors of `A`.
    ///
    /// For the two-stage pipelines `Q = Q₁ Q₂`, so this applies the bulge-
    /// chasing factor first and then the band-reduction factor.
    pub fn apply_q(&self, c: &mut Mat) {
        let _span = tg_trace::span_cat("backtransform", "stage", Some(("n", self.n as u64)));
        match &self.q {
            QFactors::Direct(res) => {
                // ormqr-style: apply the stored reflectors blockwise
                // (O(n²·ncols)); materializing Q first would cost O(n³)
                // no matter how narrow C is. `form_q` stays a test helper.
                res.apply_q_left(&mut c.as_mut(), DIRECT_APPLY_NB);
            }
            QFactors::TwoStage { factors, bc } => {
                bc.apply_q_left(c, false);
                apply_q1(factors, c, false);
            }
        }
    }

    /// Like [`Self::apply_q`] but uses the blocked back transformations:
    /// one block reflector per BC sweep (the §8 future-work optimization,
    /// see [`crate::bc::backward`]) and the Figure-13 blocked `W` for the
    /// band-reduction factor (two-stage only).
    pub fn apply_q_blocked(&self, c: &mut Mat, target_k: usize) {
        match &self.q {
            QFactors::Direct(_) => self.apply_q(c),
            QFactors::TwoStage { factors, bc } => {
                let _span =
                    tg_trace::span_cat("backtransform", "stage", Some(("n", self.n as u64)));
                bc.apply_q_left_blocked(c, false);
                apply_q1_blocked(factors, c, target_k);
            }
        }
    }

    /// The production back transformation (Figure 13 made parallel):
    /// [`Self::apply_q_blocked`] with every temporary pool-backed and the
    /// apply partitioned into eigenvector column panels drained by a
    /// scoped worker pool sized by `tg_blas::threads::worker_threads`.
    ///
    /// The Q₂ sweep blocks and merged width-`target_k` Q₁ blocks are built
    /// **once** from `pool`, shared read-only across all panels, and
    /// released when the apply finishes. Panel boundaries are fixed
    /// ([`crate::backtransform::PANEL_COLS`]), so the result is
    /// bitwise-identical at every thread count; see
    /// [`crate::backtransform::apply_blocks_panels`].
    pub fn apply_q_blocked_ws(&self, c: &mut Mat, target_k: usize, pool: &mut dyn WorkspacePool) {
        // `gemm_threads` is the fan-out budget *right now*: the full
        // `worker_threads` normally, 1 when this apply already runs inside
        // a parallel region (a batch-scheduler worker) — the same nested-
        // fan-out guard the BLAS kernels use. The worker count never
        // changes the result (fixed panel boundaries), only the schedule.
        self.apply_q_blocked_ws_with(
            c,
            target_k,
            pool,
            tg_blas::threads::gemm_threads(),
            &mut PanelPools::new(),
        );
    }

    /// [`Self::apply_q_blocked_ws`] with an explicit worker count and
    /// reusable per-worker panel pools — the entry point for the bench
    /// sweep and the determinism tests, which vary `workers` without
    /// touching `TG_THREADS`.
    pub fn apply_q_blocked_ws_with(
        &self,
        c: &mut Mat,
        target_k: usize,
        pool: &mut dyn WorkspacePool,
        workers: usize,
        panel_pools: &mut PanelPools,
    ) {
        match &self.q {
            QFactors::Direct(_) => self.apply_q(c),
            QFactors::TwoStage { factors, bc } => {
                let _span =
                    tg_trace::span_cat("backtransform", "stage", Some(("n", self.n as u64)));
                // Build the full ordered product Q = Q₁ Q₂ as one block
                // list (Q₁'s merged blocks first — product order), so a
                // single panel pass applies both stages.
                let mut blocks = merge_q1_blocked_ws(factors, target_k, pool);
                blocks.extend(bc.sweep_blocks_ws(pool));
                crate::backtransform::apply_blocks_panels(&blocks, c, workers, panel_pools);
                release_blocks(blocks, pool);
            }
        }
    }

    /// Materializes `Q` (test helper, `O(n³)`).
    pub fn form_q(&self) -> Mat {
        let mut q = Mat::identity(self.n);
        self.apply_q(&mut q);
        q
    }
}

/// Reduces symmetric `A` (lower triangle referenced; destroyed) to
/// tridiagonal form with the selected method.
///
/// ```
/// use tridiag_core::{tridiagonalize, DbbrConfig, Method};
/// use tg_matrix::{gen, orthogonality_residual, similarity_residual};
///
/// let a = gen::random_symmetric(32, 1);
/// let method = Method::Dbbr { cfg: DbbrConfig::new(4, 8), parallel_sweeps: 2 };
/// let red = tridiagonalize(&mut a.clone(), &method);
/// let q = red.form_q();
/// assert!(orthogonality_residual(&q) < 1e-11);
/// assert!(similarity_residual(&a, &q, &red.tri.to_dense()) < 1e-11);
/// ```
pub fn tridiagonalize(a: &mut Mat, method: &Method) -> TridiagResult {
    tridiagonalize_ws(a, method, &mut AllocPool)
}

/// Like [`tridiagonalize`] but draws the reduction's scratch matrices from
/// `pool` (see [`crate::workspace`]). The DBBR pipelines route their
/// per-panel and accumulated `(Z, Y)` buffers through the pool; output is
/// bitwise-identical to [`tridiagonalize`] for any conforming pool.
pub fn tridiagonalize_ws(
    a: &mut Mat,
    method: &Method,
    pool: &mut dyn WorkspacePool,
) -> TridiagResult {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    // The deep tg-check invariants (orthogonality, similarity) need the
    // untouched input — the reduction destroys `a` in place.
    let a0 = tg_check::deep_enabled().then(|| a.clone());
    let mut result = match method {
        Method::Direct { nb } => {
            let res = sytrd_blocked(a, *nb);
            TridiagResult {
                tri: res.tri.clone(),
                n,
                q: QFactors::Direct(res),
            }
        }
        Method::Sbr { b, parallel_sweeps } => {
            let mut red = band_reduce(a, *b, 32);
            tg_check::fault::inject_band("stage1.band", &mut red.band);
            tg_check::stage_band(&red.band, *b);
            let bc = if *parallel_sweeps <= 1 {
                bulge_chase_seq(&red.band)
            } else {
                bulge_chase_pipelined(&red.band, *parallel_sweeps)
            };
            TridiagResult {
                tri: bc.tri.clone(),
                n,
                q: QFactors::TwoStage {
                    factors: red.factors,
                    bc,
                },
            }
        }
        Method::Dbbr {
            cfg,
            parallel_sweeps,
        } => {
            let mut red = dbbr_ws(a, cfg, pool);
            tg_check::fault::inject_band("stage1.band", &mut red.band);
            tg_check::stage_band(&red.band, cfg.b);
            let bc = bulge_chase_pipelined(&red.band, (*parallel_sweeps).max(1));
            TridiagResult {
                tri: bc.tri.clone(),
                n,
                q: QFactors::TwoStage {
                    factors: red.factors,
                    bc,
                },
            }
        }
        Method::DbbrGrouped {
            cfg,
            workers,
            group,
        } => {
            let mut red = dbbr_ws(a, cfg, pool);
            tg_check::fault::inject_band("stage1.band", &mut red.band);
            tg_check::stage_band(&red.band, cfg.b);
            let bc = bulge_chase_grouped(&red.band, (*workers).max(1), (*group).max(1));
            TridiagResult {
                tri: bc.tri.clone(),
                n,
                q: QFactors::TwoStage {
                    factors: red.factors,
                    bc,
                },
            }
        }
    };
    tg_check::fault::inject("bc.tri", &mut result.tri.d);
    tg_check::stage_tridiag(&result.tri);
    if let Some(a0) = a0 {
        let q = result.form_q();
        tg_check::stage_orthogonality(&q);
        tg_check::stage_similarity(&a0, &q, &result.tri.to_dense());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual, similarity_residual};

    fn check_method(n: usize, method: Method, seed: u64) {
        let a0 = gen::random_symmetric(n, seed);
        let mut a = a0.clone();
        let res = tridiagonalize(&mut a, &method);
        let q = res.form_q();
        assert!(
            orthogonality_residual(&q) < 1e-11,
            "{method:?}: Q not orthogonal"
        );
        let t = res.tri.to_dense();
        let r = similarity_residual(&a0, &q, &t);
        assert!(r < 1e-11, "{method:?}: A ≠ Q T Qᵀ ({r})");
    }

    #[test]
    fn direct_pipeline() {
        check_method(24, Method::Direct { nb: 6 }, 1);
    }

    #[test]
    fn sbr_pipeline_seq_and_parallel() {
        check_method(
            24,
            Method::Sbr {
                b: 3,
                parallel_sweeps: 1,
            },
            2,
        );
        check_method(
            24,
            Method::Sbr {
                b: 3,
                parallel_sweeps: 4,
            },
            3,
        );
    }

    #[test]
    fn dbbr_pipeline() {
        check_method(
            26,
            Method::Dbbr {
                cfg: DbbrConfig::new(2, 8),
                parallel_sweeps: 3,
            },
            4,
        );
    }

    #[test]
    fn all_methods_same_spectrum() {
        let n = 22;
        let a0 = gen::random_symmetric(n, 10);
        let methods = [
            Method::Direct { nb: 4 },
            Method::Sbr {
                b: 4,
                parallel_sweeps: 2,
            },
            Method::Dbbr {
                cfg: DbbrConfig::new(2, 4),
                parallel_sweeps: 2,
            },
        ];
        let tris: Vec<Tridiagonal> = methods
            .iter()
            .map(|m| {
                let mut a = a0.clone();
                tridiagonalize(&mut a, m).tri
            })
            .collect();
        // all T's are orthogonally similar ⇒ identical Sturm counts
        for &x in &[-3.0, -1.0, 0.0, 0.5, 1.5, 3.0] {
            let c0 = tris[0].sturm_count(x);
            assert_eq!(tris[1].sturm_count(x), c0, "SBR count differs at {x}");
            assert_eq!(tris[2].sturm_count(x), c0, "DBBR count differs at {x}");
        }
    }

    #[test]
    fn blocked_backtransform_agrees() {
        let n = 20;
        let a0 = gen::random_symmetric(n, 20);
        let mut a = a0.clone();
        let res = tridiagonalize(
            &mut a,
            &Method::Dbbr {
                cfg: DbbrConfig::new(2, 4),
                parallel_sweeps: 2,
            },
        );
        let c0 = gen::random(n, 4, 21);
        let mut c1 = c0.clone();
        res.apply_q(&mut c1);
        let mut c2 = c0.clone();
        res.apply_q_blocked(&mut c2, 8);
        assert!(tg_matrix::max_abs_diff(&c1, &c2) < 1e-11);
    }

    #[test]
    fn pooled_blocked_backtransform_agrees_and_is_worker_invariant() {
        let n = 40;
        let a0 = gen::random_symmetric(n, 22);
        let res = tridiagonalize(
            &mut a0.clone(),
            &Method::Dbbr {
                cfg: DbbrConfig::new(3, 6),
                parallel_sweeps: 2,
            },
        );
        let c0 = gen::random(n, n, 23);
        let mut reference = c0.clone();
        res.apply_q(&mut reference);

        let mut serial = c0.clone();
        res.apply_q_blocked_ws_with(&mut serial, 12, &mut AllocPool, 1, &mut PanelPools::new());
        assert!(
            tg_matrix::max_abs_diff(&reference, &serial) < 1e-11,
            "{}",
            tg_matrix::max_abs_diff(&reference, &serial)
        );
        for workers in [2usize, 4, 7] {
            let mut par = c0.clone();
            res.apply_q_blocked_ws_with(
                &mut par,
                12,
                &mut AllocPool,
                workers,
                &mut PanelPools::new(),
            );
            assert_eq!(serial, par, "workers = {workers}");
        }
    }

    #[test]
    fn direct_apply_q_avoids_forming_q() {
        // The Direct arm now applies reflectors to C; it must still match
        // the dense product with the materialized Q.
        let n = 24;
        let a0 = gen::random_symmetric(n, 24);
        let res = tridiagonalize(&mut a0.clone(), &Method::Direct { nb: 6 });
        let q = res.form_q();
        let c0 = gen::random(n, 5, 25);
        let expect = tg_blas::gemm_into(
            1.0,
            &q.as_ref(),
            tg_blas::Op::NoTrans,
            &c0.as_ref(),
            tg_blas::Op::NoTrans,
        );
        let mut c = c0.clone();
        res.apply_q(&mut c);
        assert!(tg_matrix::max_abs_diff(&expect, &c) < 1e-11);
    }

    #[test]
    fn grouped_method_matches_plain_dbbr() {
        let n = 30;
        let a0 = gen::random_symmetric(n, 40);
        let cfg = DbbrConfig::new(3, 6);
        let t1 = tridiagonalize(
            &mut a0.clone(),
            &Method::Dbbr {
                cfg: cfg.clone(),
                parallel_sweeps: 2,
            },
        )
        .tri;
        let t2 = tridiagonalize(
            &mut a0.clone(),
            &Method::DbbrGrouped {
                cfg,
                workers: 2,
                group: 3,
            },
        )
        .tri;
        assert_eq!(t1.d, t2.d);
        assert_eq!(t1.e, t2.e);
    }

    #[test]
    fn paper_default_runs() {
        check_method(40, Method::paper_default(40), 30);
    }
}
