//! Sequential bulge chasing — the reference `sb2st` implementation.
//!
//! Sweeps run one after another; this is the arithmetic ground truth the
//! pipelined implementation must reproduce bitwise.

use super::kernels::{run_sweep, SharedBand};
use super::BcResult;
use tg_matrix::SymBand;

/// Reduces a symmetric band matrix to tridiagonal form sequentially.
///
/// `band` must have logical bandwidth `kd ≥ 1`; working storage of
/// `2·kd + 1` rows is allocated internally for bulge fill-in.
///
/// ```
/// use tridiag_core::bulge_chase_seq;
/// use tg_matrix::{gen, SymBand};
///
/// let dense = gen::random_symmetric_band(16, 3, 1);
/// let band = SymBand::from_dense_lower(&dense, 3);
/// let res = bulge_chase_seq(&band);
/// assert_eq!(res.tri.n(), 16);
/// // trace is an orthogonal-similarity invariant
/// let tr: f64 = (0..16).map(|i| dense[(i, i)]).sum();
/// assert!((res.tri.trace() - tr).abs() < 1e-10);
/// ```
pub fn bulge_chase_seq(band: &SymBand) -> BcResult {
    let n = band.n();
    let b = band.kd().max(1);
    let mut work = widen_storage(band, b);
    let mut reflectors = Vec::new();
    {
        let _span = tg_trace::span_cat("bc.seq", "stage", Some(("n", n as u64)));
        let shared = SharedBand::new(&mut work);
        if b > 1 && n > 2 {
            for s in 0..n - 2 {
                let _sweep = tg_trace::span_cat("bc.sweep", "sweep", Some(("s", s as u64)));
                // SAFETY: single-threaded — exclusive access trivially holds.
                let swept = unsafe { run_sweep(&shared, b, s, |_| {}) };
                reflectors.push(swept);
            }
        }
    }
    BcResult {
        tri: work.to_tridiagonal(1e-10 * band_scale(band)),
        reflectors,
    }
}

/// Copies the band into storage with room for `2b − 1` fill-in subdiagonals.
pub(crate) fn widen_storage(band: &SymBand, b: usize) -> SymBand {
    let n = band.n();
    let ldab = (2 * b + 1).min(n.max(1));
    let mut work = SymBand::with_storage(n, b, ldab.max(b + 1));
    for j in 0..n {
        for i in j..(j + band.kd() + 1).min(n) {
            *work.at_mut(i, j) = band.at(i, j);
        }
    }
    work
}

pub(crate) fn band_scale(band: &SymBand) -> f64 {
    band.as_slice().iter().fold(1.0f64, |m, &x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, similarity_residual, SymBand};

    fn check(n: usize, b: usize, seed: u64) {
        let dense = gen::random_symmetric_band(n, b, seed);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        // Q orthogonal & similarity: B = Q T Qᵀ
        let q = res.form_q(n);
        assert!(
            tg_matrix::orthogonality_residual(&q) < 1e-12,
            "Q2 not orthogonal (n={n}, b={b})"
        );
        let t = res.tri.to_dense();
        let r = similarity_residual(&dense, &q, &t);
        assert!(r < 1e-12, "B ≠ Q T Qᵀ: {r} (n={n}, b={b})");
    }

    #[test]
    fn reduces_various_bandwidths() {
        check(12, 2, 1);
        check(16, 3, 2);
        check(17, 4, 3);
        check(20, 5, 4);
        check(9, 8, 5); // b ≥ n−1: effectively dense
        check(30, 2, 6);
    }

    #[test]
    fn tridiagonal_input_is_identity_operation() {
        let t0 = gen::random_tridiagonal(10, 10);
        let band = SymBand::from_dense_lower(&t0.to_dense(), 1);
        let res = bulge_chase_seq(&band);
        assert_eq!(res.reflector_count(), 0);
        assert_eq!(res.tri.d, t0.d);
        assert_eq!(res.tri.e, t0.e);
    }

    #[test]
    fn trace_and_frobenius_preserved() {
        let n = 18;
        let b = 3;
        let dense = gen::random_symmetric_band(n, b, 20);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        let tr0: f64 = (0..n).map(|i| dense[(i, i)]).sum();
        assert!((res.tri.trace() - tr0).abs() < 1e-11);
        let f0: f64 = tg_matrix::frob_norm(&dense);
        assert!((res.tri.frob_sq().sqrt() - f0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_preserved_via_sturm() {
        // Sturm counts of T at several shifts must equal counts of the
        // original band matrix (computed via its own tridiagonalization by
        // the dense reference path) — use trace/Gershgorin sampling instead:
        let n = 14;
        let b = 2;
        let dense = gen::random_symmetric_band(n, b, 30);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        // reference T from dense sytrd
        let mut a = dense.clone();
        let direct = crate::sytrd::sytrd_unblocked(&mut a);
        for &x in &[-2.0, -1.0, -0.3, 0.0, 0.4, 1.1, 2.5] {
            assert_eq!(
                res.tri.sturm_count(x),
                direct.tri.sturm_count(x),
                "eigenvalue count differs at shift {x}"
            );
        }
    }

    #[test]
    fn sweep_count_and_reflector_spans() {
        let n = 16;
        let b = 3;
        let dense = gen::random_symmetric_band(n, b, 40);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        assert_eq!(res.reflectors.len(), n - 2);
        for (s, sweep) in res.reflectors.iter().enumerate() {
            for r in sweep {
                assert!(r.v.len() <= b, "reflector longer than bandwidth");
                assert!(r.row0 > r.col, "span starts below the diagonal");
                assert!(r.row0 > s);
            }
        }
    }
}
