//! Bulge-chasing kernels over shared band storage.
//!
//! These are the CPU analogues of the three GPU kernel types of §4.2
//! (Algorithm 2, lines 8–13): reflector generation, left/right application
//! to off-band blocks, and the two-sided update of the diagonal block.
//!
//! [`SharedBand`] is a raw view of a [`SymBand`]'s storage that multiple
//! sweep tasks may access concurrently. Safety relies entirely on the
//! Algorithm-2 progress protocol: at any instant, concurrently running tasks
//! touch index windows at least `2b` apart, hence disjoint storage columns.

use tg_matrix::SymBand;

/// Raw shared view of band storage (`data[c * ldab + (r − c)]` = `A[r][c]`).
///
/// `Sync` is sound only under the caller-enforced disjointness protocol —
/// see module docs. All access is bounds-checked in debug builds.
#[derive(Clone, Copy)]
pub struct SharedBand {
    ptr: *mut f64,
    len: usize,
    pub n: usize,
    pub ldab: usize,
}

unsafe impl Send for SharedBand {}
unsafe impl Sync for SharedBand {}

impl SharedBand {
    /// Wraps the storage of a band matrix. The caller must keep `band`
    /// alive and un-moved for the lifetime of the view.
    pub fn new(band: &mut SymBand) -> Self {
        let n = band.n();
        let ldab = band.ldab();
        let s = band.as_mut_slice();
        SharedBand {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            n,
            ldab,
        }
    }

    /// Reads `A[r][c]` (`r ≥ c`, inside storage band).
    ///
    /// # Safety
    /// Caller must hold exclusive logical access to the index window.
    #[inline]
    pub unsafe fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r >= c && r - c < self.ldab && r < self.n);
        let idx = c * self.ldab + (r - c);
        debug_assert!(idx < self.len);
        *self.ptr.add(idx)
    }

    /// Writes `A[r][c]`.
    ///
    /// # Safety
    /// Caller must hold exclusive logical access to the index window.
    #[inline]
    pub unsafe fn set(&self, r: usize, c: usize, v: f64) {
        debug_assert!(r >= c && r - c < self.ldab && r < self.n);
        let idx = c * self.ldab + (r - c);
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = v;
    }
}

/// Builds a reflector annihilating `A[r0+1..=r1, col]` (keeping `A[r0, col]`)
/// and writes `β` / zeros back into the column. Returns `(τ, v)` with
/// `v[0] = 1`.
///
/// # Safety
/// Exclusive logical access to rows `r0..=r1` of column `col`.
pub unsafe fn reflector_from_col(
    band: &SharedBand,
    col: usize,
    r0: usize,
    r1: usize,
) -> (f64, Vec<f64>) {
    let len = r1 - r0 + 1;
    let mut x = Vec::with_capacity(len);
    for r in r0..=r1 {
        x.push(band.get(r, col));
    }
    let refl = tg_householder::make_reflector(&mut x);
    band.set(r0, col, refl.beta);
    for r in r0 + 1..=r1 {
        band.set(r, col, 0.0);
    }
    let mut v = x;
    v[0] = 1.0;
    (refl.tau, v)
}

/// Left-applies `H = I − τ v vᵀ` (rows `r0..=r1`) to columns `c0..=c1`.
///
/// # Safety
/// Exclusive logical access to the block.
pub unsafe fn left_apply(band: &SharedBand, tau: f64, v: &[f64], r0: usize, c0: usize, c1: usize) {
    if tau == 0.0 || c1 < c0 {
        return;
    }
    debug_assert!(r0 + v.len() <= band.n);
    for c in c0..=c1 {
        let mut w = 0.0;
        for (i, &vi) in v.iter().enumerate() {
            w += vi * band.get(r0 + i, c);
        }
        let tw = tau * w;
        if tw != 0.0 {
            for (i, &vi) in v.iter().enumerate() {
                let r = r0 + i;
                band.set(r, c, band.get(r, c) - tw * vi);
            }
        }
    }
}

/// Right-applies `H` (columns `c0..=c1`, `v.len() == c1−c0+1`) to rows
/// `r0..=r1` of the sub-diagonal block (`r0 > c1`).
///
/// # Safety
/// Exclusive logical access to the block.
pub unsafe fn right_apply(band: &SharedBand, tau: f64, v: &[f64], c0: usize, r0: usize, r1: usize) {
    if tau == 0.0 || r1 < r0 {
        return;
    }
    debug_assert!(r0 > c0 + v.len() - 1, "block must be below the diagonal");
    for r in r0..=r1 {
        let mut w = 0.0;
        for (j, &vj) in v.iter().enumerate() {
            w += vj * band.get(r, c0 + j);
        }
        let tw = tau * w;
        if tw != 0.0 {
            for (j, &vj) in v.iter().enumerate() {
                let c = c0 + j;
                band.set(r, c, band.get(r, c) - tw * vj);
            }
        }
    }
}

/// Two-sided update `A ← H A H` of the symmetric diagonal block spanned by
/// rows/cols `r0..=r1`, touching only the stored lower triangle.
///
/// Uses the rank-2 form: `p = τ A v`, `w = p − ½τ(pᵀv)v`,
/// `A ← A − v wᵀ − w vᵀ`.
///
/// # Safety
/// Exclusive logical access to the block.
pub unsafe fn two_sided_apply(band: &SharedBand, tau: f64, v: &[f64], r0: usize) {
    if tau == 0.0 {
        return;
    }
    let len = v.len();
    // p = τ A v using the lower triangle + symmetry
    let mut p = vec![0.0; len];
    for j in 0..len {
        let c = r0 + j;
        // diagonal
        p[j] += band.get(c, c) * v[j];
        for i in (j + 1)..len {
            let r = r0 + i;
            let a = band.get(r, c);
            p[i] += a * v[j];
            p[j] += a * v[i];
        }
    }
    let mut pv = 0.0;
    for i in 0..len {
        p[i] *= tau;
        pv += p[i] * v[i];
    }
    let half = 0.5 * tau * pv;
    let mut w = p;
    for i in 0..len {
        w[i] -= half * v[i];
    }
    // A ← A − v wᵀ − w vᵀ on the lower triangle
    for j in 0..len {
        let c = r0 + j;
        for i in j..len {
            let r = r0 + i;
            band.set(r, c, band.get(r, c) - v[i] * w[j] - w[i] * v[j]);
        }
    }
}

/// Resumable position of one bulge-chasing sweep: the task sequence of
/// Algorithm 2, one [`run_sweep_task`] call per task.
pub struct SweepCursor {
    n: usize,
    b: usize,
    s: usize,
    state: CursorState,
}

enum CursorState {
    /// Task 0 (kernel type 1) not yet executed.
    Start,
    /// Mid-chase: the previous task's reflector and span.
    Chasing {
        prev_first: usize,
        prev_last: usize,
        prev_tau: f64,
        prev_v: Vec<f64>,
    },
    Done,
}

impl SweepCursor {
    /// Creates a cursor for sweep `s` of an `n × n` band of width `b`.
    pub fn new(n: usize, b: usize, s: usize) -> Self {
        let state = if s + 2 >= n || b <= 1 {
            CursorState::Done // nothing below the first subdiagonal
        } else {
            tg_trace::add(tg_trace::Counter::Sweeps, 1);
            CursorState::Start
        };
        SweepCursor { n, b, s, state }
    }

    /// True once the sweep has chased its bulge off the band.
    pub fn done(&self) -> bool {
        matches!(self.state, CursorState::Done)
    }

    /// The column the *next* task will annihilate (the Algorithm-2 gate
    /// value). Must not be called on a finished cursor.
    pub fn next_col(&self) -> usize {
        match &self.state {
            CursorState::Start => self.s,
            CursorState::Chasing { prev_first, .. } => *prev_first,
            CursorState::Done => unreachable!("next_col on a finished sweep"),
        }
    }
}

/// Executes the cursor's next task; returns its reflector.
///
/// # Safety
/// The caller must hold exclusive logical access to the task's
/// `[next_col, next_col + 2b)` index window (Algorithm-2 protocol).
pub unsafe fn run_sweep_task(
    band: &SharedBand,
    cur: &mut SweepCursor,
) -> Option<super::BcReflector> {
    let (n, b, s) = (cur.n, cur.b, cur.s);
    if !cur.done() {
        tg_trace::add(tg_trace::Counter::BulgeTasks, 1);
    }
    match std::mem::replace(&mut cur.state, CursorState::Done) {
        CursorState::Done => None,
        CursorState::Start => {
            // ── task 0 (kernel type 1): eliminate column s
            let first = s + 1;
            let last = (s + b).min(n - 1);
            let (tau, v) = reflector_from_col(band, s, first, last);
            two_sided_apply(band, tau, &v, first);
            let refl = super::BcReflector {
                col: s,
                row0: first,
                tau,
                v: v.clone(),
            };
            cur.state = if last + 1 > n - 1 {
                CursorState::Done
            } else {
                CursorState::Chasing {
                    prev_first: first,
                    prev_last: last,
                    prev_tau: tau,
                    prev_v: v,
                }
            };
            Some(refl)
        }
        CursorState::Chasing {
            prev_first,
            prev_last,
            prev_tau,
            prev_v,
        } => {
            // ── chase task (kernel types 2 + 3)
            let r0 = prev_last + 1;
            let r1 = (prev_last + b).min(n - 1);
            let col = prev_first;
            // type 2a: right-apply the previous reflector — materializes
            // the bulge
            right_apply(band, prev_tau, &prev_v, prev_first, r0, r1);
            // type 2b: annihilate the bulge's first column
            let (tau, v) = reflector_from_col(band, col, r0, r1);
            // type 2c: left-apply to the rest of the bulge block
            left_apply(band, tau, &v, r0, col + 1, prev_last);
            // type 3: two-sided update of the next diagonal block
            two_sided_apply(band, tau, &v, r0);
            let refl = super::BcReflector {
                col,
                row0: r0,
                tau,
                v: v.clone(),
            };
            cur.state = if r1 + 1 > n - 1 {
                CursorState::Done
            } else {
                CursorState::Chasing {
                    prev_first: r0,
                    prev_last: r1,
                    prev_tau: tau,
                    prev_v: v,
                }
            };
            Some(refl)
        }
    }
}

/// Executes one full sweep `s` of bulge chasing (Algorithm 2 body).
///
/// `gate(col)` is invoked before each task with the task's working column —
/// the pipeline implementation blocks there until the previous sweep is
/// `2b` ahead and then publishes its own progress; the sequential version
/// passes a no-op.
///
/// Returns the reflectors generated by this sweep, in application order.
///
/// # Safety
/// Concurrent callers must uphold the Algorithm-2 spacing protocol through
/// their `gate` implementations.
pub unsafe fn run_sweep(
    band: &SharedBand,
    b: usize,
    s: usize,
    mut gate: impl FnMut(usize),
) -> Vec<super::BcReflector> {
    let mut cur = SweepCursor::new(band.n, b, s);
    let mut out = Vec::new();
    while !cur.done() {
        gate(cur.next_col());
        if let Some(r) = run_sweep_task(band, &mut cur) {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    #[test]
    fn shared_band_get_set_round_trip() {
        let mut band = SymBand::with_storage(6, 2, 5);
        let sb = SharedBand::new(&mut band);
        unsafe {
            sb.set(3, 1, 7.5);
            assert_eq!(sb.get(3, 1), 7.5);
        }
        assert_eq!(band.at(3, 1), 7.5);
    }

    #[test]
    fn two_sided_kernel_matches_dense() {
        // compare the band-storage two-sided kernel against the dense one
        let n = 6;
        let a0 = gen::random_symmetric(n, 5);
        let mut band = SymBand::with_storage(n, n - 1, n);
        for j in 0..n {
            for i in j..n {
                *band.at_mut(i, j) = a0[(i, j)];
            }
        }
        let mut x: Vec<f64> = (0..4).map(|i| 0.5 - i as f64).collect();
        let r = tg_householder::make_reflector(&mut x);
        let mut v = x.clone();
        v[0] = 1.0;
        let sb = SharedBand::new(&mut band);
        unsafe {
            two_sided_apply(&sb, r.tau, &v, 1);
        }
        // dense reference
        let mut dense = a0.clone();
        {
            let mut block = dense.view_mut(1, 1, 4, 4);
            tg_householder::apply_two_sided_lower(r.tau, &v[1..], &mut block);
        }
        for j in 0..n {
            for i in j..n {
                let expect = if (1..5).contains(&i) && (1..5).contains(&j) {
                    dense[(i, j)]
                } else {
                    a0[(i, j)]
                };
                assert!(
                    (band.at(i, j) - expect).abs() < 1e-12,
                    "({i},{j}): {} vs {expect}",
                    band.at(i, j)
                );
            }
        }
    }
}
