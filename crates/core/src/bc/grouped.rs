//! Grouped pipelined bulge chasing — the CPU analogue of §5.2's
//! warp-per-sweep grouping.
//!
//! The plain pipeline assigns one sweep per worker pass; each worker
//! therefore streams over the whole band once per sweep. Grouping `g`
//! adjacent sweeps into one pass interleaves their tasks in wavefront
//! order, so the band region around the active columns is touched `g`
//! times while hot — exactly the L1/shared-memory reuse the paper gets by
//! replacing one-threadblock-per-sweep with one-*warp*-per-sweep plus
//! grouping (§5.2: "we can group several sweeps together and make one warp
//! instead of one threadblock to process one sweep").
//!
//! The inter-group synchronisation is the same Algorithm-2 progress
//! protocol; *within* a group the wavefront order respects the dependency
//! distance by construction. Results remain bitwise identical to the
//! sequential reference.

use super::kernels::{run_sweep_task, SharedBand, SweepCursor};
use super::seq::{band_scale, widen_storage};
use super::{BcReflector, BcResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use tg_matrix::SymBand;

const DONE: usize = usize::MAX / 2;

/// Reduces a symmetric band matrix to tridiagonal form with
/// `workers × group` logical parallel sweeps: each worker owns groups of
/// `group` adjacent sweeps and advances them in wavefront order.
pub fn bulge_chase_grouped(band: &SymBand, workers: usize, group: usize) -> BcResult {
    let n = band.n();
    let b = band.kd().max(1);
    assert!(workers >= 1 && group >= 1);
    let mut work = widen_storage(band, b);
    let n_sweeps = if b > 1 && n > 2 { n - 2 } else { 0 };
    let mut reflectors: Vec<Vec<BcReflector>> = (0..n_sweeps).map(|_| Vec::new()).collect();

    if n_sweeps > 0 {
        let shared = SharedBand::new(&mut work);
        let progress: Vec<AtomicUsize> = (0..n_sweeps).map(AtomicUsize::new).collect();
        let n_groups = n_sweeps.div_ceil(group);
        let workers = workers.min(n_groups);

        let mut results: Vec<(usize, Vec<BcReflector>)> = Vec::with_capacity(n_sweeps);
        // No per-sweep spans here: a worker interleaves its group's sweeps
        // task-by-task, which RAII span nesting cannot represent.
        let _span = tg_trace::span_cat("bc.grouped", "stage", None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let progress = &progress;
                let shared = &shared;
                handles.push(scope.spawn(move || {
                    let mut mine: Vec<(usize, Vec<BcReflector>)> = Vec::new();
                    let mut gidx = w;
                    while gidx < n_groups {
                        let s0 = gidx * group;
                        let s1 = (s0 + group).min(n_sweeps);
                        // cursors for the group's sweeps
                        let mut cursors: Vec<SweepCursor> =
                            (s0..s1).map(|s| SweepCursor::new(shared.n, b, s)).collect();
                        let mut outs: Vec<Vec<BcReflector>> =
                            (s0..s1).map(|_| Vec::new()).collect();
                        let mut live = cursors.iter().filter(|c| !c.done()).count();
                        // wavefront with NON-BLOCKING gates: a sweep whose
                        // Algorithm-2 gate is not yet open simply skips the
                        // round. Blocking here would deadlock — the
                        // predecessor it waits for may be serviced by this
                        // very thread later in the same pass.
                        while live > 0 {
                            let mut advanced = false;
                            for (off, cur) in cursors.iter_mut().enumerate() {
                                if cur.done() {
                                    continue;
                                }
                                let s = s0 + off;
                                let col = cur.next_col();
                                if s > 0 && progress[s - 1].load(Ordering::Acquire) <= col + 2 * b {
                                    continue; // gate closed: retry next round
                                }
                                progress[s].store(col, Ordering::Release);
                                // SAFETY: the open gate gives this task
                                // exclusive access to its 2b index window.
                                if let Some(r) = unsafe { run_sweep_task(shared, cur) } {
                                    outs[off].push(r);
                                }
                                advanced = true;
                                if cur.done() {
                                    progress[s].store(DONE, Ordering::Release);
                                    live -= 1;
                                }
                            }
                            if !advanced {
                                // blocked on another worker's group: yield
                                std::hint::spin_loop();
                                std::thread::yield_now();
                            }
                        }
                        for (off, o) in outs.into_iter().enumerate() {
                            mine.push((s0 + off, o));
                        }
                        gidx += workers;
                    }
                    mine
                }));
            }
            for h in handles {
                results.extend(h.join().expect("grouped BC worker panicked"));
            }
        });

        for (s, swept) in results {
            reflectors[s] = swept;
        }
    }

    BcResult {
        tri: work.to_tridiagonal(1e-10 * band_scale(band)),
        reflectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::bulge_chase_seq;
    use tg_matrix::gen;

    fn band_of(n: usize, b: usize, seed: u64) -> SymBand {
        SymBand::from_dense_lower(&gen::random_symmetric_band(n, b, seed), b)
    }

    #[test]
    fn grouped_matches_sequential_bitwise() {
        for (n, b, seed) in [(24usize, 3usize, 1u64), (33, 4, 2), (17, 2, 3)] {
            let band = band_of(n, b, seed);
            let reference = bulge_chase_seq(&band);
            for workers in [1usize, 2, 4] {
                for group in [1usize, 2, 3, 7] {
                    let r = bulge_chase_grouped(&band, workers, group);
                    assert_eq!(
                        r.tri.d, reference.tri.d,
                        "d differs (n={n},b={b},W={workers},g={group})"
                    );
                    assert_eq!(r.tri.e, reference.tri.e);
                    assert_eq!(r.reflector_count(), reference.reflector_count());
                }
            }
        }
    }

    #[test]
    fn grouped_similarity_contract() {
        let n = 28;
        let b = 3;
        let dense = gen::random_symmetric_band(n, b, 9);
        let band = SymBand::from_dense_lower(&dense, b);
        let r = bulge_chase_grouped(&band, 3, 4);
        let q = r.form_q(n);
        assert!(tg_matrix::orthogonality_residual(&q) < 1e-12);
        assert!(tg_matrix::similarity_residual(&dense, &q, &r.tri.to_dense()) < 1e-12);
    }

    #[test]
    fn degenerate_group_sizes() {
        let band = band_of(10, 2, 20);
        let reference = bulge_chase_seq(&band);
        for (w, g) in [(1usize, 100usize), (100, 1), (8, 8)] {
            let r = bulge_chase_grouped(&band, w, g);
            assert_eq!(r.tri.d, reference.tri.d, "W={w} g={g}");
        }
    }
}
