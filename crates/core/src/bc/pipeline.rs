//! Pipelined bulge chasing — the paper's **Algorithm 2** (§4.2, §5.2).
//!
//! Every sweep is an independent task; sweep `s` may run concurrently with
//! sweep `s − 1` as long as it stays at least `2b` rows behind. On the GPU
//! the paper launches `n − 2` thread blocks that spin on a `volatile`
//! progress array; here a pool of `S` worker threads executes sweeps
//! round-robin (worker `w` runs sweeps `w, w + S, …` in order), spinning on
//! an `AtomicUsize` progress array with acquire/release ordering — the same
//! protocol, with Rust's memory model supplying what CUDA `volatile` + L2
//! supplies on the device.
//!
//! The protocol makes the computation *deterministic*: any interleaving
//! permitted by the gates yields bitwise-identical results to the
//! sequential reference (tasks closer than `2b` are ordered; farther tasks
//! commute exactly because they touch disjoint storage).

use super::kernels::{run_sweep, SharedBand};
use super::seq::{band_scale, widen_storage};
use super::{BcReflector, BcResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use tg_matrix::SymBand;

/// Progress value published by a finished sweep.
const DONE: usize = usize::MAX / 2;

/// Reduces a symmetric band matrix to tridiagonal form using `parallel_sweeps`
/// concurrent sweeps (the paper's `S`).
///
/// `parallel_sweeps = 1` still exercises the gate protocol on one worker.
pub fn bulge_chase_pipelined(band: &SymBand, parallel_sweeps: usize) -> BcResult {
    let n = band.n();
    let b = band.kd().max(1);
    assert!(parallel_sweeps >= 1);
    let mut work = widen_storage(band, b);
    let n_sweeps = if b > 1 && n > 2 { n - 2 } else { 0 };
    let mut reflectors: Vec<Vec<BcReflector>> = (0..n_sweeps).map(|_| Vec::new()).collect();

    if n_sweeps > 0 {
        let _span = tg_trace::span_cat("bc.pipeline", "stage", Some(("n", n as u64)));
        let region = tg_trace::RegionId::fresh();
        let _rspan = tg_trace::span_region(
            "parallel.bc",
            "region",
            Some(("sweeps", n_sweeps as u64)),
            region,
        );
        let shared = SharedBand::new(&mut work);
        // progress[s] = first row/col index sweep s may still write;
        // initialized to the sweep's starting column.
        let progress: Vec<AtomicUsize> = (0..n_sweeps).map(AtomicUsize::new).collect();
        let workers = parallel_sweeps.min(n_sweeps);

        let mut results: Vec<(usize, Vec<BcReflector>)> = Vec::with_capacity(n_sweeps);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let progress = &progress;
                let shared = &shared;
                handles.push(scope.spawn(move || {
                    let mut mine: Vec<(usize, Vec<BcReflector>)> = Vec::new();
                    let mut s = w;
                    while s < n_sweeps {
                        let _sweep = tg_trace::span_region(
                            "bc.sweep",
                            "task",
                            Some(("s", s as u64)),
                            region,
                        );
                        let gate = |col: usize| {
                            if s > 0 {
                                // Algorithm 2 line 5: spin until the previous
                                // sweep is more than 2b rows ahead. A stall is
                                // recorded as a wait span (subtracted from
                                // busy time in utilization analysis); opening
                                // it only after the first failed poll keeps
                                // the uncontended path span-free.
                                if progress[s - 1].load(Ordering::Acquire) <= col + 2 * b {
                                    let _wait = tg_trace::span_region(
                                        "bc.wait",
                                        "wait",
                                        Some(("s", s as u64)),
                                        region,
                                    );
                                    while progress[s - 1].load(Ordering::Acquire) <= col + 2 * b {
                                        std::hint::spin_loop();
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            // Algorithm 2 line 14: publish the working row.
                            progress[s].store(col, Ordering::Release);
                        };
                        // SAFETY: the gate enforces ≥ 2b spacing between
                        // concurrently-running sweeps, so all kernel writes
                        // within a task touch storage no other live task can
                        // touch (tasks write window [col, col + 2b − 1]).
                        let swept = unsafe { run_sweep(shared, b, s, gate) };
                        progress[s].store(DONE, Ordering::Release);
                        mine.push((s, swept));
                        s += workers;
                    }
                    mine
                }));
            }
            for h in handles {
                results.extend(h.join().expect("bulge-chasing worker panicked"));
            }
        });

        for (s, swept) in results {
            reflectors[s] = swept;
        }
    }

    BcResult {
        tri: work.to_tridiagonal(1e-10 * band_scale(band)),
        reflectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::bulge_chase_seq;
    use tg_matrix::{gen, SymBand};

    fn band_of(n: usize, b: usize, seed: u64) -> SymBand {
        SymBand::from_dense_lower(&gen::random_symmetric_band(n, b, seed), b)
    }

    #[test]
    fn pipelined_matches_sequential_bitwise() {
        for (n, b, seed) in [(20usize, 3usize, 1u64), (33, 4, 2), (16, 2, 3)] {
            let band = band_of(n, b, seed);
            let reference = bulge_chase_seq(&band);
            for workers in [1usize, 2, 3, 8] {
                let par = bulge_chase_pipelined(&band, workers);
                assert_eq!(
                    par.tri.d, reference.tri.d,
                    "d differs (n={n},b={b},S={workers})"
                );
                assert_eq!(
                    par.tri.e, reference.tri.e,
                    "e differs (n={n},b={b},S={workers})"
                );
                // reflectors identical too (same τ, same v)
                assert_eq!(par.reflectors.len(), reference.reflectors.len());
                for (rs, ps) in reference.reflectors.iter().zip(&par.reflectors) {
                    assert_eq!(rs.len(), ps.len());
                    for (r, p) in rs.iter().zip(ps) {
                        assert_eq!(r.tau, p.tau);
                        assert_eq!(r.v, p.v);
                        assert_eq!(r.col, p.col);
                        assert_eq!(r.row0, p.row0);
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_similarity_contract() {
        let n = 24;
        let b = 3;
        let dense = gen::random_symmetric_band(n, b, 10);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_pipelined(&band, 4);
        let q = res.form_q(n);
        assert!(tg_matrix::orthogonality_residual(&q) < 1e-12);
        let t = res.tri.to_dense();
        assert!(tg_matrix::similarity_residual(&dense, &q, &t) < 1e-12);
    }

    #[test]
    fn more_workers_than_sweeps() {
        let band = band_of(6, 2, 20);
        let res = bulge_chase_pipelined(&band, 64);
        let reference = bulge_chase_seq(&band);
        assert_eq!(res.tri.d, reference.tri.d);
        assert_eq!(res.tri.e, reference.tri.e);
    }

    #[test]
    fn tridiagonal_passthrough() {
        let t0 = gen::random_tridiagonal(8, 30);
        let band = SymBand::from_dense_lower(&t0.to_dense(), 1);
        let res = bulge_chase_pipelined(&band, 4);
        assert_eq!(res.tri.d, t0.d);
        assert_eq!(res.reflector_count(), 0);
    }
}
