//! Bulge chasing (`Dsb2st`): stage 2 of two-stage tridiagonalization.
//!
//! Reduces a symmetric band matrix (bandwidth `b`) to tridiagonal form with
//! `n − 2` *sweeps*; sweep `s` makes column `s` tridiagonal and chases the
//! resulting bulge off the bottom of the band (Figure 3).
//!
//! * [`seq`] — sequential reference implementation,
//! * [`pipeline`] — the paper's **Algorithm 2**: sweeps run concurrently,
//!   sweep `s` spinning on an atomic progress flag until sweep `s − 1` is at
//!   least `2b` rows ahead. On a GPU each sweep is a thread block; here each
//!   sweep is a task executed by a worker-thread pool, which exercises the
//!   identical synchronisation protocol.
//!
//! Both paths produce **bitwise-identical** results: the dependency protocol
//! makes every task's inputs independent of scheduling.

pub mod backward;
pub mod grouped;
pub mod kernels;
pub mod pipeline;
pub mod seq;

pub use grouped::bulge_chase_grouped;
pub use pipeline::bulge_chase_pipelined;
pub use seq::bulge_chase_seq;

use tg_matrix::{Mat, Tridiagonal};

/// One Householder reflector generated during bulge chasing, acting on
/// global rows `row0 .. row0 + v.len()` (with `v[0] == 1`).
#[derive(Clone, Debug)]
pub struct BcReflector {
    /// Column whose entries the reflector annihilates.
    pub col: usize,
    /// First global row of the reflector span.
    pub row0: usize,
    /// Scaling factor.
    pub tau: f64,
    /// Reflector vector including the leading unit entry.
    pub v: Vec<f64>,
}

/// Output of bulge chasing.
pub struct BcResult {
    /// The tridiagonal matrix `T` with `B = Q₂ T Q₂ᵀ`.
    pub tri: Tridiagonal,
    /// Reflectors grouped by sweep, in within-sweep application order.
    /// `Q₂ = ∏ H` over sweeps ascending, tasks ascending.
    pub reflectors: Vec<Vec<BcReflector>>,
}

impl BcResult {
    /// Total number of reflectors (≈ `n²/b / 2`).
    pub fn reflector_count(&self) -> usize {
        self.reflectors.iter().map(|v| v.len()).sum()
    }

    /// `C ← Q₂ C` (`trans = false`) or `C ← Q₂ᵀ C` (`trans = true`).
    ///
    /// This is the BC part of the back transformation: eigenvectors of `T`
    /// become eigenvectors of the band matrix via `Q₂ · V`.
    pub fn apply_q_left(&self, c: &mut Mat, trans: bool) {
        let n = c.nrows();
        let apply = |c: &mut Mat, r: &BcReflector| {
            if r.tau == 0.0 {
                return;
            }
            let len = r.v.len();
            let mut sub = c.view_mut(r.row0, 0, len, c.ncols());
            tg_householder::apply_left(r.tau, &r.v[1..], &mut sub);
        };
        assert!(self
            .reflectors
            .iter()
            .flatten()
            .all(|r| r.row0 + r.v.len() <= n));
        if trans {
            // Qᵀ C = H_N ⋯ H₁ C: forward order
            for sweep in &self.reflectors {
                for r in sweep {
                    apply(c, r);
                }
            }
        } else {
            // Q C = H₁ ⋯ H_N C: reverse order
            for sweep in self.reflectors.iter().rev() {
                for r in sweep.iter().rev() {
                    apply(c, r);
                }
            }
        }
    }

    /// Materializes `Q₂` (test helper, `O(n³)`).
    pub fn form_q(&self, n: usize) -> Mat {
        let mut q = Mat::identity(n);
        self.apply_q_left(&mut q, false);
        q
    }
}
