//! Blocked bulge-chasing back transformation — the paper's stated future
//! work (§8: the BC back transformation dominates the with-vectors EVD at
//! 61 % of total time; "Future work will focus on optimizing this back
//! transformation process").
//!
//! Observation: within one sweep, consecutive reflectors act on **disjoint,
//! adjacent** row spans (task `t+1` starts at `span_t.end + 1`), so they
//! commute and the whole sweep collapses into a single block reflector
//!
//! ```text
//! ∏_t (I − τ_t v_t v_tᵀ)  =  I − W_s Y_sᵀ,
//! Y_s = [v_0 | v_1 | …]  (block-diagonal), W_s = Y_s · diag(τ)
//! ```
//!
//! with *zero* extra flops. Applying a sweep then costs two GEMMs with
//! inner dimension = tasks-per-sweep (≈ `n/b`) instead of `n/b` rank-1
//! updates — the same shape transformation Figures 13/14 perform for the
//! band-reduction factor.
//!
//! A second level ([`apply_q_blocked_merged`]) merges `g` *adjacent sweeps*
//! with the Algorithm-3 identity (their supports overlap, so this costs
//! extra flops but widens the GEMMs further).

use super::{BcReflector, BcResult};
use crate::workspace::WorkspacePool;
use tg_blas::{gemm, gemm_into, Op};
use tg_householder::wblock::{merge_pair, merge_pair_ws, WyPair};
use tg_matrix::Mat;

/// One sweep's reflectors as an explicit `(offset, W, Y)` block factor.
///
/// Returns `None` for empty sweeps.
pub fn sweep_block(sweep: &[BcReflector]) -> Option<(usize, WyPair)> {
    let active: Vec<&BcReflector> = sweep.iter().filter(|r| r.tau != 0.0).collect();
    if active.is_empty() {
        return None;
    }
    let r0 = active.iter().map(|r| r.row0).min().unwrap();
    let r1 = active.iter().map(|r| r.row0 + r.v.len()).max().unwrap();
    let rows = r1 - r0;
    let k = active.len();
    let mut y = Mat::zeros(rows, k);
    let mut w = Mat::zeros(rows, k);
    for (j, r) in active.iter().enumerate() {
        for (i, &vi) in r.v.iter().enumerate() {
            let row = r.row0 - r0 + i;
            y[(row, j)] = vi;
            w[(row, j)] = r.tau * vi;
        }
    }
    Some((r0, WyPair { w, y }))
}

/// Pool-backed [`sweep_block`]: the `(W, Y)` storage is pool-acquired
/// (caller releases). Bitwise-identical under the zero contract — the
/// block is built by writing entries into zeroed storage either way.
pub fn sweep_block_ws(
    sweep: &[BcReflector],
    pool: &mut dyn WorkspacePool,
) -> Option<(usize, WyPair)> {
    let active: Vec<&BcReflector> = sweep.iter().filter(|r| r.tau != 0.0).collect();
    if active.is_empty() {
        return None;
    }
    let r0 = active.iter().map(|r| r.row0).min().unwrap();
    let r1 = active.iter().map(|r| r.row0 + r.v.len()).max().unwrap();
    let rows = r1 - r0;
    let k = active.len();
    let mut y = pool.acquire(rows, k);
    let mut w = pool.acquire(rows, k);
    for (j, r) in active.iter().enumerate() {
        for (i, &vi) in r.v.iter().enumerate() {
            let row = r.row0 - r0 + i;
            y[(row, j)] = vi;
            w[(row, j)] = r.tau * vi;
        }
    }
    Some((r0, WyPair { w, y }))
}

impl BcResult {
    /// One `(offset, W, Y)` block per non-empty sweep, in ascending sweep
    /// (product) order, with pool-acquired storage — built **once** so the
    /// panel-parallel back transformation can share the blocks read-only
    /// across column panels. Release with
    /// [`crate::backtransform::release_blocks`].
    pub fn sweep_blocks_ws(&self, pool: &mut dyn WorkspacePool) -> Vec<(usize, WyPair)> {
        self.reflectors
            .iter()
            .filter_map(|s| sweep_block_ws(s, pool))
            .collect()
    }
    /// `C ← Q₂ C` (or `Q₂ᵀ C`) using one block reflector per sweep.
    ///
    /// Bitwise this differs from [`BcResult::apply_q_left`] only by
    /// floating-point reassociation; numerically the results agree to
    /// machine precision.
    pub fn apply_q_left_blocked(&self, c: &mut Mat, trans: bool) {
        let blocks: Vec<(usize, WyPair)> = self
            .reflectors
            .iter()
            .filter_map(|s| sweep_block(s))
            .collect();
        apply_blocks(&blocks, c, trans);
    }

    /// Like [`Self::apply_q_left_blocked`] but first merges groups of
    /// `group` adjacent sweeps into wider factors (extra flops, wider
    /// GEMMs — the Figure-13 trade applied to the BC factor).
    pub fn apply_q_blocked_merged(&self, c: &mut Mat, trans: bool, group: usize) {
        assert!(group >= 1);
        let sweeps: Vec<(usize, WyPair)> = self
            .reflectors
            .iter()
            .filter_map(|s| sweep_block(s))
            .collect();
        let mut blocks: Vec<(usize, WyPair)> = Vec::new();
        for chunk in sweeps.chunks(group) {
            let off0 = chunk.iter().map(|(o, _)| *o).min().unwrap();
            let end = chunk.iter().map(|(o, f)| o + f.w.nrows()).max().unwrap();
            let mut merged: Option<WyPair> = None;
            for (o, f) in chunk {
                let padded = pad(f, o - off0, end - off0);
                merged = Some(match merged {
                    None => padded,
                    Some(m) => merge_pair(&m, &padded),
                });
            }
            blocks.push((off0, merged.unwrap()));
        }
        apply_blocks(&blocks, c, trans);
    }

    /// Pool-backed [`Self::apply_q_blocked_merged`]: sweep blocks, padding
    /// and merge scratch all come from `pool` (same arithmetic, so the
    /// result is bitwise-identical under the zero contract).
    pub fn apply_q_blocked_merged_ws(
        &self,
        c: &mut Mat,
        trans: bool,
        group: usize,
        pool: &mut dyn WorkspacePool,
    ) {
        assert!(group >= 1);
        let sweeps: Vec<(usize, WyPair)> = self.sweep_blocks_ws(pool);
        let mut blocks: Vec<(usize, WyPair)> = Vec::new();
        for chunk in sweeps.chunks(group) {
            let off0 = chunk.iter().map(|(o, _)| *o).min().unwrap();
            let end = chunk.iter().map(|(o, f)| o + f.w.nrows()).max().unwrap();
            let mut merged: Option<WyPair> = None;
            for (o, f) in chunk {
                let padded = crate::backtransform::pad_top_ws(f, o - off0, end - off0, pool);
                merged = Some(match merged {
                    None => padded,
                    Some(m) => {
                        let next = merge_pair_ws(&m, &padded, pool);
                        pool.release(m.w);
                        pool.release(m.y);
                        pool.release(padded.w);
                        pool.release(padded.y);
                        next
                    }
                });
            }
            blocks.push((off0, merged.unwrap()));
        }
        crate::backtransform::release_blocks(sweeps, pool);
        apply_blocks(&blocks, c, trans);
        crate::backtransform::release_blocks(blocks, pool);
    }
}

fn pad(f: &WyPair, top: usize, rows: usize) -> WyPair {
    let k = f.width();
    let m = f.w.nrows();
    let mut w = Mat::zeros(rows, k);
    w.view_mut(top, 0, m, k).copy_from(&f.w.as_ref());
    let mut y = Mat::zeros(rows, k);
    y.view_mut(top, 0, m, k).copy_from(&f.y.as_ref());
    WyPair { w, y }
}

/// Applies ordered factors (`Q₂ = F₁F₂⋯`, ascending sweep order).
fn apply_blocks(blocks: &[(usize, WyPair)], c: &mut Mat, trans: bool) {
    let ncols = c.ncols();
    let apply_one = |off: usize, f: &WyPair, c: &mut Mat, trans: bool| {
        let rows = f.w.nrows();
        let mut sub = c.view_mut(off, 0, rows, ncols);
        if trans {
            // (I − W Yᵀ)ᵀ = I − Y Wᵀ
            let x = gemm_into(1.0, &f.w.as_ref(), Op::Trans, &sub.rb(), Op::NoTrans);
            gemm(
                -1.0,
                &f.y.as_ref(),
                Op::NoTrans,
                &x.as_ref(),
                Op::NoTrans,
                1.0,
                &mut sub,
            );
        } else {
            f.apply_left(&mut sub);
        }
    };
    if trans {
        for (off, f) in blocks {
            apply_one(*off, f, c, true);
        }
    } else {
        for (off, f) in blocks.iter().rev() {
            apply_one(*off, f, c, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::bc::bulge_chase_seq;
    use tg_matrix::{gen, max_abs_diff, SymBand};

    fn setup(n: usize, b: usize, seed: u64) -> (SymBand, crate::bc::BcResult) {
        let dense = gen::random_symmetric_band(n, b, seed);
        let band = SymBand::from_dense_lower(&dense, b);
        let res = bulge_chase_seq(&band);
        (band, res)
    }

    #[test]
    fn sweep_block_reproduces_reflector_product() {
        let (_, res) = setup(20, 3, 1);
        let n = 20;
        let c0 = gen::random(n, 4, 2);
        let mut unblocked = c0.clone();
        res.apply_q_left(&mut unblocked, false);
        let mut blocked = c0.clone();
        res.apply_q_left_blocked(&mut blocked, false);
        assert!(
            max_abs_diff(&unblocked, &blocked) < 1e-12,
            "{}",
            max_abs_diff(&unblocked, &blocked)
        );
    }

    #[test]
    fn blocked_trans_inverts() {
        let (_, res) = setup(18, 2, 3);
        let c0 = gen::random(18, 5, 4);
        let mut c = c0.clone();
        res.apply_q_left_blocked(&mut c, false);
        res.apply_q_left_blocked(&mut c, true);
        assert!(max_abs_diff(&c, &c0) < 1e-12);
    }

    #[test]
    fn merged_groups_match_for_all_group_sizes() {
        let (_, res) = setup(24, 3, 5);
        let c0 = gen::random(24, 6, 6);
        let mut reference = c0.clone();
        res.apply_q_left(&mut reference, false);
        for group in [1usize, 2, 3, 5, 100] {
            let mut c = c0.clone();
            res.apply_q_blocked_merged(&mut c, false, group);
            assert!(
                max_abs_diff(&reference, &c) < 1e-11,
                "group = {group}: {}",
                max_abs_diff(&reference, &c)
            );
        }
    }

    #[test]
    fn sweep_blocks_ws_is_bitwise_identical() {
        let (_, res) = setup(20, 3, 11);
        let mut pool = crate::workspace::AllocPool;
        let pooled = res.sweep_blocks_ws(&mut pool);
        let plain: Vec<(usize, super::WyPair)> = res
            .reflectors
            .iter()
            .filter_map(|s| super::sweep_block(s))
            .collect();
        assert_eq!(plain.len(), pooled.len());
        for ((po, pf), (qo, qf)) in plain.iter().zip(&pooled) {
            assert_eq!(po, qo);
            assert_eq!(pf.w, qf.w);
            assert_eq!(pf.y, qf.y);
        }
        crate::backtransform::release_blocks(pooled, &mut pool);
    }

    #[test]
    fn merged_ws_matches_allocating_merged() {
        let (_, res) = setup(24, 3, 12);
        let c0 = gen::random(24, 6, 13);
        for group in [1usize, 2, 3, 100] {
            let mut plain = c0.clone();
            res.apply_q_blocked_merged(&mut plain, false, group);
            let mut pooled = c0.clone();
            res.apply_q_blocked_merged_ws(
                &mut pooled,
                false,
                group,
                &mut crate::workspace::AllocPool,
            );
            assert_eq!(plain, pooled, "group = {group}");
        }
    }

    #[test]
    fn blocked_q_is_orthogonal() {
        let (_, res) = setup(22, 4, 7);
        let mut q = tg_matrix::Mat::identity(22);
        res.apply_q_left_blocked(&mut q, false);
        assert!(tg_matrix::orthogonality_residual(&q) < 1e-12);
    }

    #[test]
    fn trivial_no_reflectors() {
        // tridiagonal input ⇒ no reflectors ⇒ identity application
        let t = gen::random_tridiagonal(8, 8);
        let band = SymBand::from_dense_lower(&t.to_dense(), 1);
        let res = bulge_chase_seq(&band);
        let c0 = gen::random(8, 3, 9);
        let mut c = c0.clone();
        res.apply_q_left_blocked(&mut c, false);
        assert_eq!(c, c0);
    }
}
