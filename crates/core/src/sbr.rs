//! Successive band reduction (SBR) — stage 1 of two-stage
//! tridiagonalization; the MAGMA `Dsy2sb` baseline (Figure 2).
//!
//! Each step QR-factorizes the panel `A[j+b .. n, j .. j+b]`, yielding
//! `Q = I − W Yᵀ`; the symmetric trailing matrix is then updated with the
//! ZY-representation rank-`2b` `syr2k` of Equation 1. The result is a
//! symmetric band matrix of bandwidth `b`, plus the `(W, Y)` factors needed
//! for the back transformation.

use tg_blas::syr2k_blocked;
use tg_householder::panel::panel_qr;
use tg_householder::wblock::WyPair;
use tg_householder::zy::compute_z;
use tg_matrix::{Mat, SymBand};

/// Output of [`band_reduce`] (and of [`crate::dbbr::dbbr`]).
pub struct BandReduction {
    /// The band matrix `B` with `A = Q B Qᵀ`, bandwidth `b`.
    pub band: SymBand,
    /// Orthogonal factors in application order: `Q = ∏ᵢ (I − WᵢYᵢᵀ)` where
    /// factor `i` acts on global rows `offsets[i] ..`.
    pub factors: Vec<(usize, WyPair)>,
    /// Bandwidth.
    pub b: usize,
}

impl BandReduction {
    /// Materializes `Q` (test/debug helper; `O(n³)`).
    pub fn form_q(&self, n: usize) -> Mat {
        let mut q = Mat::identity(n);
        // Q = F₁ F₂ ⋯ F_p : accumulate right-to-left so each factor is
        // applied to the identity-extended tail block only.
        for (off, f) in self.factors.iter().rev() {
            let m = f.w.nrows();
            let mut sub = q.view_mut(*off, 0, m, n);
            f.apply_left(&mut sub);
        }
        q
    }
}

/// Single-blocking successive band reduction: reduces symmetric `A` (lower
/// triangle referenced) to bandwidth `b`. `nb_syr2k` is the internal
/// blocking of the trailing `syr2k`.
///
/// ```
/// use tridiag_core::band_reduce;
/// use tg_matrix::gen;
///
/// let mut a = gen::random_symmetric(20, 7);
/// let red = band_reduce(&mut a, 3, 8);
/// assert!(red.band.is_band_within(3, 1e-12));
/// assert_eq!(red.band.kd(), 3);
/// ```
pub fn band_reduce(a: &mut Mat, b: usize, nb_syr2k: usize) -> BandReduction {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert!(b >= 1);
    let _span = tg_trace::span_cat("reduce.sbr", "stage", Some(("n", n as u64)));
    let mut factors: Vec<(usize, WyPair)> = Vec::new();

    let mut j = 0;
    while j + b + 1 < n {
        let m = n - j - b;
        let bc = b.min(n - j); // panel width (always b here since j+b+1 < n)
                               // QR factorize the panel A[j+b .. n, j .. j+bc]
        let pq = {
            let mut panel = a.view_mut(j + b, j, m, bc);
            panel_qr(&mut panel)
        };
        // zero out the annihilated part explicitly (keep R's triangle)
        for c in 0..bc {
            for r in (c + 1)..m {
                a[(j + b + r, j + c)] = 0.0;
            }
        }
        let y = pq.block.v.clone(); // m × kr
        let w = pq.block.w(); // m × kr
                              // two-sided trailing update: A₂ ← A₂ − Z Yᵀ − Y Zᵀ (Equation 1)
        {
            let trail = a.view(j + b, j + b, m, m);
            let z = compute_z(&trail, &w.as_ref(), &y.as_ref());
            let mut trail_mut = a.view_mut(j + b, j + b, m, m);
            syr2k_blocked(
                -1.0,
                &z.as_ref(),
                &y.as_ref(),
                1.0,
                &mut trail_mut,
                nb_syr2k,
            );
        }
        factors.push((j + b, WyPair { w, y }));
        j += b;
    }

    BandReduction {
        band: SymBand::from_dense_lower(a, b),
        factors,
        b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, orthogonality_residual, similarity_residual};

    pub(crate) fn check_band_reduction(a0: &Mat, red: &BandReduction, b: usize, tol: f64) {
        let n = a0.nrows();
        // band structure: entries beyond bandwidth b are exactly zero
        assert!(red.band.is_band_within(b, 1e-13), "not band-{b}");
        // orthogonality + similarity
        let q = red.form_q(n);
        assert!(
            orthogonality_residual(&q) < tol,
            "Q not orthogonal: {}",
            orthogonality_residual(&q)
        );
        let bd = red.band.to_dense();
        let r = similarity_residual(a0, &q, &bd);
        assert!(r < tol, "A ≠ Q B Qᵀ: residual {r}");
    }

    #[test]
    fn reduces_to_band_various() {
        for (n, b, seed) in [
            (12usize, 2usize, 1u64),
            (20, 4, 2),
            (21, 4, 3),
            (16, 8, 4),
            (30, 3, 5),
        ] {
            let a0 = gen::random_symmetric(n, seed);
            let mut a = a0.clone();
            let red = band_reduce(&mut a, b, 8);
            check_band_reduction(&a0, &red, b, 1e-12);
        }
    }

    #[test]
    fn band_1_is_full_tridiagonalization() {
        let n = 14;
        let a0 = gen::random_symmetric(n, 10);
        let mut a = a0.clone();
        let red = band_reduce(&mut a, 1, 8);
        check_band_reduction(&a0, &red, 1, 1e-12);
        let t = red.band.to_tridiagonal(1e-13);
        // eigen-invariant: trace
        let tr0: f64 = (0..n).map(|i| a0[(i, i)]).sum();
        assert!((t.trace() - tr0).abs() < 1e-10);
    }

    #[test]
    fn wide_band_no_op() {
        // b ≥ n−1: nothing to eliminate, no factors
        let n = 8;
        let a0 = gen::random_symmetric(n, 20);
        let mut a = a0.clone();
        let red = band_reduce(&mut a, n - 1, 8);
        assert!(red.factors.is_empty());
        assert_eq!(red.band.to_dense(), {
            let mut s = a0.clone();
            s.mirror_lower();
            s
        });
    }

    #[test]
    fn band_input_stays_similar() {
        // input already banded wider than target: still reduces correctly
        let n = 18;
        let a0 = gen::random_symmetric_band(n, 6, 30);
        let mut a = a0.clone();
        let red = band_reduce(&mut a, 2, 4);
        check_band_reduction(&a0, &red, 2, 1e-12);
    }

    #[test]
    fn factor_count_and_shapes() {
        let n = 24;
        let b = 4;
        let a0 = gen::random_symmetric(n, 40);
        let mut a = a0.clone();
        let red = band_reduce(&mut a, b, 8);
        // panels at j = 0, 4, 8, 12, 16 (j + b + 1 < 24 ⇒ j < 19)
        assert_eq!(red.factors.len(), 5);
        for (i, (off, f)) in red.factors.iter().enumerate() {
            assert_eq!(*off, (i + 1) * b);
            assert_eq!(f.w.nrows(), n - off);
        }
    }
}
