//! Fault-injection coverage of the arena's bitwise-zero acquire contract:
//! a `SkipZero` fault at `arena.acquire` leaks the previous tenant's buffer
//! (NaN-poisoned in debug builds) and the `workspace_zero` checker must
//! catch it on the very acquire that skipped the scrub.

use tg_batch::{ShapeClass, WorkspaceArena};
use tg_check::fault::{FaultKind, FaultPlan};
use tg_check::{CheckConfig, CheckSession};
use tridiag_core::WorkspacePool;

#[test]
fn skipped_scrub_of_poisoned_buffer_is_detected() {
    let mut arena = WorkspaceArena::new();
    arena.begin_problem(ShapeClass { n: 16, b: 4, k: 8 });

    // Park a dirty buffer in the free list. In debug builds `release`
    // NaN-poisons it; in release builds the written payload itself is the
    // stale data the skipped scrub would leak.
    let mut m = arena.acquire(6, 6);
    m.fill(3.25);
    arena.release(m);

    let session = CheckSession::begin(CheckConfig::strict().with_faults(FaultPlan::single(
        "arena.acquire",
        FaultKind::SkipZero,
        0,
    )));
    let _leaked = arena.acquire(6, 6);
    let report = session.finish();

    assert_eq!(report.faults_fired.len(), 1, "{}", report.render());
    assert_eq!(report.faults_fired[0].site, "arena.acquire");
    let ws: Vec<_> = report
        .records
        .iter()
        .filter(|r| r.checker == "workspace_zero")
        .collect();
    assert!(!ws.is_empty(), "workspace checker never ran");
    assert!(
        ws.iter().any(|r| !r.pass),
        "leaked buffer not detected: {}",
        report.render()
    );
    #[cfg(debug_assertions)]
    assert!(
        report
            .records
            .iter()
            .any(|r| !r.pass && r.value.is_infinite()),
        "debug poison should surface as a non-finite entry: {}",
        report.render()
    );
}

#[test]
fn clean_acquires_pass_the_workspace_checker() {
    let mut arena = WorkspaceArena::new();
    arena.begin_problem(ShapeClass { n: 16, b: 4, k: 8 });
    let mut m = arena.acquire(5, 5);
    m.fill(7.0);
    arena.release(m);

    let session = CheckSession::begin(CheckConfig::strict());
    let _clean = arena.acquire(5, 5);
    let report = session.finish();
    assert!(report.passed(), "{}", report.render());
    assert!(report.faults_fired.is_empty());
    assert!(
        report.records.iter().any(|r| r.checker == "workspace_zero"),
        "hit-path acquire must run the workspace checker: {}",
        report.render()
    );
}
