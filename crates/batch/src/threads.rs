//! Worker-thread count convention — re-exported from [`tg_blas::threads`].
//!
//! The helper was born here in the batching PR, but the BLAS parallel
//! dispatch now needs it too and `tg-batch` already depends on `tg-blas`
//! (through `tridiag-core`), so the single source of truth moved down the
//! dependency graph. Existing `tg_batch::worker_threads()` callers keep
//! working unchanged; see `docs/BATCHING.md` for how `TG_THREADS` interacts
//! with rayon's pool.

pub use tg_blas::threads::{
    describe, parse_tg_threads, try_worker_threads, worker_threads, ThreadsConfigError,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_thread_count() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn describe_mentions_count() {
        let d = describe();
        assert!(d.contains(&worker_threads().to_string()), "{d}");
    }
}
