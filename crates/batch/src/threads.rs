//! The workspace's single source of truth for worker-thread counts.
//!
//! Everything that sizes a worker pool or *reports* a thread count — the
//! [`crate::BatchScheduler`] default, `tridiag info`/`tridiag batch`, the
//! benches — goes through [`worker_threads`] instead of reading
//! `rayon::current_num_threads` (or `available_parallelism`) ad hoc, so a
//! single `TG_THREADS` override steers every component consistently.

/// Number of worker threads to use by default.
///
/// Resolution order:
/// 1. the `TG_THREADS` environment variable, if set to a positive integer;
/// 2. the runtime's thread count (`rayon::current_num_threads`, which the
///    offline shim backs with `available_parallelism`).
pub fn worker_threads() -> usize {
    std::env::var("TG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(rayon::current_num_threads)
}

/// One-line human-readable description for CLI/bench headers, e.g.
/// `"4 (TG_THREADS)"` or `"8 (auto)"`.
pub fn describe() -> String {
    let n = worker_threads();
    let source = if std::env::var("TG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .is_some()
    {
        "TG_THREADS"
    } else {
        "auto"
    };
    format!("{n} ({source})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_thread_count() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn describe_mentions_count() {
        let d = describe();
        assert!(d.contains(&worker_threads().to_string()), "{d}");
    }
}
