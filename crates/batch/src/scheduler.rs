//! Worker-pool scheduler for batched EVD / tridiagonalization.
//!
//! The scheduler owns nothing between calls: each call spawns `workers`
//! scoped threads, hands out problem indices through one atomic counter
//! (dynamic work stealing — cheap and fair for uneven problem times), and
//! gives every worker its own [`WorkspaceArena`]. Results land in
//! per-problem slots, so output order always matches input order no matter
//! which worker ran what.
//!
//! # Determinism contract
//!
//! Every problem is computed *exactly* as the single-problem path computes
//! it: same kernels, same operation order, with scratch matrices that the
//! arena guarantees are bitwise-zero on acquisition (see
//! [`tridiag_core::workspace`]). A problem's result therefore depends only
//! on its own input — never on which worker picked it up, how many workers
//! there are, or what ran before it on the same arena. This is asserted
//! bitwise by the tests here and in `tests/batching.rs`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tg_eigen::{syevd_ws, EigenError, Evd, EvdMethod};
use tg_matrix::Mat;
use tridiag_core::{tridiagonalize_ws, Method, TridiagResult};

use crate::arena::{ArenaStats, ShapeClass, WorkspaceArena};

/// Execution statistics for one batch call.
#[derive(Clone, Copy, Debug)]
pub struct BatchStats {
    /// Problems solved.
    pub problems: usize,
    /// Workers actually spawned (≤ the scheduler's configured count, never
    /// more than the number of problems).
    pub workers: usize,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Workspace-arena hit/miss counts summed over all workers.
    pub arena: ArenaStats,
}

impl BatchStats {
    /// Problems per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.problems as f64 / secs
        } else {
            0.0
        }
    }
}

/// Results of a batch call: per-problem outputs in input order, plus
/// [`BatchStats`].
#[derive(Debug)]
pub struct BatchResult<T> {
    /// `results[i]` is the output for `problems[i]`.
    pub results: Vec<T>,
    /// Scheduling / arena statistics.
    pub stats: BatchStats,
}

/// Cooperative cancellation handle for batched work items.
///
/// Cancellation is observed at work-item granularity: a worker finishes the
/// problem it is computing, then stops claiming new indices. Clones share
/// one flag, so the submitting side keeps a copy and hands another to the
/// scheduler (or to a `tg-serve` job, which checks it between retry
/// attempts). Once cancelled, a token stays cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, takes effect at the next check).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Runs `syevd`/`tridiagonalize` over slices of problems on a worker pool.
#[derive(Clone, Copy, Debug)]
pub struct BatchScheduler {
    workers: usize,
}

impl BatchScheduler {
    /// Scheduler with an explicit worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        BatchScheduler {
            workers: workers.max(1),
        }
    }

    /// Scheduler sized by [`crate::worker_threads`] (honours `TG_THREADS`).
    pub fn with_default_workers() -> Self {
        Self::new(crate::threads::worker_threads())
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Solves the symmetric EVD of every matrix in `problems`.
    ///
    /// Inputs are not destroyed (each worker clones its problem into the
    /// reduction, as [`tg_eigen::syevd_batched`] does). Results are
    /// bitwise-identical to calling [`tg_eigen::syevd`] per problem. The
    /// first error aborts the whole batch.
    pub fn syevd(
        &self,
        problems: &[Mat],
        method: &EvdMethod,
        want_vectors: bool,
    ) -> Result<BatchResult<Evd>, EigenError> {
        let (raw, stats) = self.run(problems.len(), None, |i, arena| {
            arena.begin_problem(ShapeClass::for_evd(problems[i].nrows(), method));
            let mut a = problems[i].clone();
            syevd_ws(&mut a, method, want_vectors, arena)
        });
        let results = raw
            .into_iter()
            .map(|slot| slot.expect("no token: every slot filled"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchResult { results, stats })
    }

    /// [`syevd`](BatchScheduler::syevd) with cooperative cancellation:
    /// workers stop claiming new problems once `token` is cancelled, and
    /// unstarted slots come back as `None` (finished ones keep their
    /// bitwise-deterministic results — cancellation changes *which*
    /// problems run, never what any individual result contains). The first
    /// solver error still aborts the whole batch.
    pub fn syevd_cancellable(
        &self,
        problems: &[Mat],
        method: &EvdMethod,
        want_vectors: bool,
        token: &CancelToken,
    ) -> Result<BatchResult<Option<Evd>>, EigenError> {
        let (raw, stats) = self.run(problems.len(), Some(token), |i, arena| {
            arena.begin_problem(ShapeClass::for_evd(problems[i].nrows(), method));
            let mut a = problems[i].clone();
            syevd_ws(&mut a, method, want_vectors, arena)
        });
        let results = raw
            .into_iter()
            .map(|slot| slot.transpose())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchResult { results, stats })
    }

    /// Tridiagonalizes every matrix in `problems` (inputs preserved).
    pub fn tridiagonalize(&self, problems: &[Mat], method: &Method) -> BatchResult<TridiagResult> {
        let (raw, stats) = self.run(problems.len(), None, |i, arena| {
            arena.begin_problem(ShapeClass::for_method(problems[i].nrows(), method));
            let mut a = problems[i].clone();
            tridiagonalize_ws(&mut a, method, arena)
        });
        let results = raw
            .into_iter()
            .map(|slot| slot.expect("no token: every slot filled"))
            .collect();
        BatchResult { results, stats }
    }

    /// Generic work loop: pulls indices `0..count` off a shared atomic
    /// queue, runs `f(i, arena)` under a `batch.problem` span, and returns
    /// results in index order plus merged stats. With a `token`, workers
    /// stop claiming indices once it is cancelled and the unclaimed slots
    /// come back `None`; without one every slot is `Some`.
    fn run<T, F>(
        &self,
        count: usize,
        token: Option<&CancelToken>,
        f: F,
    ) -> (Vec<Option<T>>, BatchStats)
    where
        T: Send,
        F: Fn(usize, &mut WorkspaceArena) -> T + Sync,
    {
        let start = Instant::now();
        let workers = self.workers.min(count.max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let merged = Mutex::new(ArenaStats::default());
        let region = tg_trace::RegionId::fresh();
        let _rspan = tg_trace::span_region(
            "parallel.batch",
            "region",
            Some(("problems", count as u64)),
            region,
        );
        std::thread::scope(|s| {
            for w in 0..workers {
                let (next, slots, merged, f) = (&next, &slots, &merged, &f);
                s.spawn(move || {
                    // With several workers the parallelism budget is spent
                    // across problems: mark the region so the BLAS kernels
                    // inside each problem stay serial (bitwise-identical
                    // either way) instead of nesting a second fan-out. A
                    // single worker keeps intra-kernel parallelism.
                    let _region = (workers > 1).then(tg_blas::threads::enter_parallel_region);
                    // Worker-loop marker span: gives each worker a visible
                    // lane in the timeline without double counting the
                    // nested per-problem task spans.
                    let _wspan = tg_trace::span_region(
                        "batch.worker",
                        "worker",
                        Some(("w", w as u64)),
                        region,
                    );
                    let mut arena = WorkspaceArena::new();
                    loop {
                        if token.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let out = {
                            let _span = tg_trace::span_region(
                                "batch.problem",
                                "task",
                                Some(("problem", i as u64)),
                                region,
                            );
                            f(i, &mut arena)
                        };
                        *slots[i].lock().unwrap() = Some(out);
                    }
                    merged.lock().unwrap().merge(&arena.stats());
                });
            }
        });
        let results = slots.into_iter().map(|m| m.into_inner().unwrap()).collect();
        let stats = BatchStats {
            problems: count,
            workers,
            wall: start.elapsed(),
            arena: *merged.lock().unwrap(),
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_eigen::{syevd, syevd_batched};
    use tg_matrix::gen;

    fn problems(count: usize, n: usize) -> Vec<Mat> {
        (0..count)
            .map(|s| gen::random_symmetric(n, 1000 + s as u64))
            .collect()
    }

    #[test]
    fn evd_bitwise_identical_to_single_problem_path() {
        let n = 24;
        let probs = problems(6, n);
        let method = EvdMethod::proposed_default(n);
        let batch = BatchScheduler::new(3).syevd(&probs, &method, true).unwrap();
        assert_eq!(batch.results.len(), probs.len());
        let serial = syevd_batched(&probs, &method, true).unwrap();
        for ((a, got), reference) in probs.iter().zip(&batch.results).zip(&serial) {
            let single = syevd(&mut a.clone(), &method, true).unwrap();
            assert_eq!(got.eigenvalues, single.eigenvalues, "vs single syevd");
            assert_eq!(got.eigenvectors, single.eigenvectors, "vs single syevd");
            assert_eq!(got.eigenvalues, reference.eigenvalues, "vs serial batch");
            assert_eq!(got.eigenvectors, reference.eigenvectors, "vs serial batch");
        }
    }

    #[test]
    fn evd_worker_count_does_not_change_results() {
        let n = 20;
        let probs = problems(5, n);
        let method = EvdMethod::proposed_default(n);
        let one = BatchScheduler::new(1).syevd(&probs, &method, true).unwrap();
        let four = BatchScheduler::new(4).syevd(&probs, &method, true).unwrap();
        for (a, b) in one.results.iter().zip(&four.results) {
            assert_eq!(a.eigenvalues, b.eigenvalues);
            assert_eq!(a.eigenvectors, b.eigenvectors);
        }
        assert_eq!(one.stats.workers, 1);
        assert!(four.stats.workers <= 4);
    }

    #[test]
    fn tridiag_batch_matches_single() {
        let n = 28;
        let probs = problems(4, n);
        let method = Method::paper_default(n);
        let batch = BatchScheduler::new(2).tridiagonalize(&probs, &method);
        for (a, got) in probs.iter().zip(&batch.results) {
            let single = tridiag_core::tridiagonalize(&mut a.clone(), &method);
            assert_eq!(got.tri.d, single.tri.d);
            assert_eq!(got.tri.e, single.tri.e);
            // Q factors are private; compare them through their action.
            let mut c1 = Mat::identity(n);
            let mut c2 = Mat::identity(n);
            got.apply_q(&mut c1);
            single.apply_q(&mut c2);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn arena_stats_match_trace_counters() {
        let n = 24;
        let probs = problems(4, n);
        let method = EvdMethod::proposed_default(n);
        let session = tg_trace::TraceSession::begin();
        let batch = BatchScheduler::new(2)
            .syevd(&probs, &method, false)
            .unwrap();
        let trace = session.finish();
        assert_eq!(
            batch.stats.arena.hits,
            trace.total(tg_trace::Counter::ArenaHit),
            "arena hit count must agree with the trace counter"
        );
        assert_eq!(
            batch.stats.arena.misses,
            trace.total(tg_trace::Counter::ArenaMiss),
            "arena miss count must agree with the trace counter"
        );
        assert_eq!(batch.stats.problems, probs.len());
    }

    #[test]
    fn uniform_batch_hit_rate_exceeds_90_percent() {
        // One worker, 16 identical-shape problems: after the first (all-
        // miss) problem every workspace request is served from the cache.
        let n = 32;
        let probs = problems(16, n);
        let method = EvdMethod::proposed_default(n);
        let batch = BatchScheduler::new(1)
            .syevd(&probs, &method, false)
            .unwrap();
        let stats = batch.stats.arena;
        assert!(stats.hits + stats.misses > 0, "arena unused");
        assert!(
            stats.hit_rate() > 0.9,
            "uniform-shape batch should be >90% hits, got {:.1}% ({stats:?})",
            100.0 * stats.hit_rate()
        );
    }

    #[test]
    fn cancelled_token_before_start_runs_nothing() {
        let n = 16;
        let probs = problems(4, n);
        let method = EvdMethod::proposed_default(n);
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let batch = BatchScheduler::new(2)
            .syevd_cancellable(&probs, &method, true, &token)
            .unwrap();
        assert_eq!(batch.results.len(), probs.len());
        assert!(batch.results.iter().all(Option::is_none));
    }

    #[test]
    fn cancellation_never_changes_finished_results() {
        let n = 20;
        let probs = problems(6, n);
        let method = EvdMethod::proposed_default(n);
        let reference = syevd_batched(&probs, &method, true).unwrap();
        // Cancel from another thread mid-batch: *which* problems finish is
        // timing-dependent, but every finished slot must be bitwise equal
        // to the reference.
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(2));
                token.cancel();
            })
        };
        let batch = BatchScheduler::new(2)
            .syevd_cancellable(&probs, &method, true, &token)
            .unwrap();
        canceller.join().unwrap();
        for (got, want) in batch.results.iter().zip(&reference) {
            if let Some(got) = got {
                assert_eq!(got.eigenvalues, want.eigenvalues);
                assert_eq!(got.eigenvectors, want.eigenvectors);
            }
        }
        // an un-cancelled token fills every slot
        let full = BatchScheduler::new(2)
            .syevd_cancellable(&probs, &method, true, &CancelToken::new())
            .unwrap();
        assert!(full.results.iter().all(Option::is_some));
    }

    #[test]
    fn empty_batch() {
        let method = EvdMethod::proposed_default(8);
        let batch = BatchScheduler::new(4).syevd(&[], &method, true).unwrap();
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats.problems, 0);
    }
}
