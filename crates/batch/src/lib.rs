//! # tg-batch
//!
//! Batched multi-problem EVD / tridiagonalization.
//!
//! GPU eigensolver workloads frequently solve *many* moderate-size
//! problems rather than one huge one (cuSOLVER ships `syevjBatched`; the
//! paper's single-problem pipeline is the building block). This crate adds
//! that batched layer on top of `tg-eigen`:
//!
//! * [`BatchScheduler`] — runs `syevd` / `tridiagonalize` over a slice of
//!   problems on a pool of worker threads, handing out work through an
//!   atomic index queue,
//! * [`WorkspaceArena`] — a per-worker [`tridiag_core::WorkspacePool`]
//!   that caches reduction/backtransform scratch buffers across problems,
//!   keyed by [`ShapeClass`] `(n, b, k)`, with hit/miss counters mirrored
//!   into `tg-trace`,
//! * [`BatchResult`] / [`BatchStats`] — per-problem outputs in input
//!   order plus scheduling and arena statistics.
//!
//! The headline contract is **per-problem determinism**: every batched
//! result is bitwise-identical to the single-problem `syevd`/
//! `tridiagonalize` output, independent of worker count and scheduling
//! order. See `docs/BATCHING.md` for how the arena's zero-fill contract
//! makes that hold.
//!
//! ```
//! use tg_batch::BatchScheduler;
//! use tg_eigen::EvdMethod;
//! use tg_matrix::gen;
//!
//! let problems: Vec<_> = (0..4).map(|s| gen::random_symmetric(16, s)).collect();
//! let method = EvdMethod::proposed_default(16);
//! let batch = BatchScheduler::new(2).syevd(&problems, &method, true).unwrap();
//! assert_eq!(batch.results.len(), 4);
//! assert!(batch.stats.arena.hit_rate() > 0.0);
//! ```

pub mod arena;
pub mod scheduler;
pub mod threads;

pub use arena::{ArenaStats, ShapeClass, WorkspaceArena, WorkspaceLease};
pub use scheduler::{BatchResult, BatchScheduler, BatchStats, CancelToken};
pub use threads::worker_threads;
