//! Per-worker workspace arena: caches reduction/backtransform scratch
//! buffers across the problems of a batch.
//!
//! The arena implements [`tridiag_core::WorkspacePool`], so it plugs
//! directly into `dbbr_ws`/`tridiagonalize_ws`/`syevd_ws`. Its contract
//! (inherited from the trait) is that [`acquire`](WorkspaceArena::acquire)
//! always returns a **bitwise-zero** buffer, exactly like `Mat::zeros` —
//! that is what makes batched results bitwise-identical to the
//! single-problem path regardless of which buffers get recycled.
//!
//! Buffers are cached per *shape class* `(n, b, k)` ([`ShapeClass`]): every
//! problem of the same class requests the same sequence of buffer sizes, so
//! after the first (all-miss) problem the free lists serve every later
//! request from cache. Switching classes drops the cache — mixed-shape
//! batches degrade to allocation, they never corrupt.
//!
//! In debug builds, released buffers are poisoned with NaN before they
//! reach the free lists. Zeroing on `acquire` overwrites the poison; any
//! future fast path that skips the zeroing (or reads a buffer after
//! releasing it) surfaces immediately as NaN in results rather than as a
//! silent stale-data reuse.

use std::collections::BTreeMap;

use tg_matrix::Mat;
use tg_trace::Counter;
use tridiag_core::{Method, WorkspacePool};

/// Cache key for arena buffers: problems with equal `ShapeClass` request
/// identical buffer-size sequences from the reduction, so their workspaces
/// are interchangeable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeClass {
    /// Matrix dimension.
    pub n: usize,
    /// Bandwidth (panel width `nb` for the direct method).
    pub b: usize,
    /// `syr2k` accumulation width (0 for single-blocking methods).
    pub k: usize,
}

impl ShapeClass {
    /// Shape class of an `n × n` problem reduced with `method`.
    pub fn for_method(n: usize, method: &Method) -> ShapeClass {
        match method {
            Method::Direct { nb } => ShapeClass { n, b: *nb, k: 0 },
            Method::Sbr { b, .. } => ShapeClass { n, b: *b, k: 0 },
            Method::Dbbr { cfg, .. } | Method::DbbrGrouped { cfg, .. } => ShapeClass {
                n,
                b: cfg.b,
                k: cfg.k,
            },
        }
    }

    /// Shape class of an `n × n` problem solved with an EVD `method`.
    pub fn for_evd(n: usize, method: &tg_eigen::EvdMethod) -> ShapeClass {
        use tg_eigen::EvdMethod;
        match method {
            EvdMethod::CusolverLike { nb } => ShapeClass { n, b: *nb, k: 0 },
            EvdMethod::MagmaLike { b } => ShapeClass { n, b: *b, k: 0 },
            EvdMethod::Proposed { b, k, .. } => ShapeClass { n, b: *b, k: *k },
        }
    }
}

/// Hit/miss accounting for one arena (or, summed, for a whole batch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// `acquire` calls served from the free lists.
    pub hits: u64,
    /// `acquire` calls that had to allocate.
    pub misses: u64,
    /// High-water mark of simultaneously acquired workspace bytes. Merged
    /// stats sum the per-worker peaks — an upper bound on the batch-wide
    /// simultaneous peak (exact when workers peak together, which a
    /// uniform-shape batch does on its first problems).
    pub peak_live_bytes: u64,
}

impl ArenaStats {
    /// `hits / (hits + misses)`, or 0 if the arena was never used.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another arena's counts (used to merge per-worker stats).
    pub fn merge(&mut self, other: &ArenaStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.peak_live_bytes += other.peak_live_bytes;
    }
}

/// A recycling [`WorkspacePool`] keyed by buffer length, valid for one
/// [`ShapeClass`] at a time.
#[derive(Debug, Default)]
pub struct WorkspaceArena {
    class: Option<ShapeClass>,
    /// Free lists: buffer length → stack of retired buffers of that length.
    free: BTreeMap<usize, Vec<Vec<f64>>>,
    stats: ArenaStats,
    /// Bytes currently acquired (checked out and not yet released).
    live_bytes: u64,
    /// Peak `live_bytes` observed per shape class.
    class_peaks: BTreeMap<ShapeClass, u64>,
}

impl WorkspaceArena {
    /// Creates an empty arena (no class bound yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the shape class of the next problem. A class change drops
    /// every cached buffer (their sizes no longer match the request
    /// sequence); repeating the current class keeps the cache warm.
    pub fn begin_problem(&mut self, class: ShapeClass) {
        if self.class != Some(class) {
            self.free.clear();
            self.class = Some(class);
        }
    }

    /// Hit/miss counts so far. These are exactly the values the arena also
    /// reports to `tg-trace` (`Counter::ArenaHit` / `Counter::ArenaMiss`).
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Number of buffers currently parked in the free lists.
    pub fn cached_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Bytes currently checked out (acquired and not yet released).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of simultaneously acquired bytes over the arena's
    /// lifetime (also mirrored into `Counter::ArenaLiveBytes`).
    pub fn peak_live_bytes(&self) -> u64 {
        self.stats.peak_live_bytes
    }

    /// Peak live bytes observed while each shape class was active, largest
    /// first. Acquisitions before the first `begin_problem` are counted in
    /// the overall peak only.
    pub fn class_peaks(&self) -> Vec<(ShapeClass, u64)> {
        let mut v: Vec<(ShapeClass, u64)> =
            self.class_peaks.iter().map(|(c, &p)| (*c, p)).collect();
        v.sort_by_key(|&(_, p)| std::cmp::Reverse(p));
        v
    }

    fn track_acquire(&mut self, bytes: u64) {
        self.live_bytes += bytes;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.live_bytes);
        if let Some(class) = self.class {
            let peak = self.class_peaks.entry(class).or_insert(0);
            *peak = (*peak).max(self.live_bytes);
        }
        tg_trace::gauge_add(Counter::ArenaLiveBytes, bytes);
    }

    fn track_release(&mut self, bytes: u64) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
        tg_trace::gauge_sub(Counter::ArenaLiveBytes, bytes);
    }

    /// Drops every cached buffer. The free lists rebuild on the next
    /// problem (all misses); nothing the previous tenant touched survives.
    /// `tg-serve` scrubs a worker's arena after any failed job attempt so
    /// a buffer corrupted by an injected fault (e.g. a skipped zero-fill)
    /// can never leak into a later job.
    pub fn scrub(&mut self) {
        self.free.clear();
    }

    /// Leases the arena to one job: declares its [`ShapeClass`] (exactly
    /// like [`begin_problem`](WorkspaceArena::begin_problem)) and returns a
    /// guard that restores the arena to a rentable state however the job
    /// ends. If the job unwinds mid-attempt, its acquired buffers are
    /// dropped by the panic instead of released back — the guard detects
    /// the unbalanced live-byte count, repairs the accounting (including
    /// the `ArenaLiveBytes` trace gauge), and scrubs the cache so the next
    /// tenant starts from a clean arena.
    pub fn lease(&mut self, class: ShapeClass) -> WorkspaceLease<'_> {
        self.begin_problem(class);
        let entry_live = self.live_bytes;
        WorkspaceLease {
            arena: self,
            entry_live,
        }
    }

    #[cfg(test)]
    fn peek_free(&self, len: usize) -> Option<&Vec<f64>> {
        self.free.get(&len).and_then(|v| v.last())
    }
}

/// Per-job arena lease from [`WorkspaceArena::lease`]. Derefs to the
/// arena, so it can be passed anywhere a [`WorkspacePool`] is expected.
#[derive(Debug)]
pub struct WorkspaceLease<'a> {
    arena: &'a mut WorkspaceArena,
    entry_live: u64,
}

impl WorkspaceLease<'_> {
    /// True while every buffer acquired under this lease has been released
    /// back (the steady state between operations, and the required state
    /// at the end of a successful job).
    pub fn balanced(&self) -> bool {
        self.arena.live_bytes == self.entry_live
    }
}

impl std::ops::Deref for WorkspaceLease<'_> {
    type Target = WorkspaceArena;
    fn deref(&self) -> &WorkspaceArena {
        self.arena
    }
}

impl std::ops::DerefMut for WorkspaceLease<'_> {
    fn deref_mut(&mut self) -> &mut WorkspaceArena {
        self.arena
    }
}

impl Drop for WorkspaceLease<'_> {
    fn drop(&mut self) {
        if self.arena.live_bytes != self.entry_live {
            // The tenant unwound with buffers checked out: those Mats were
            // dropped by the panic, not released, so the bytes can never
            // come back. Repair the book-keeping and drop the cache.
            let leaked = self.arena.live_bytes.saturating_sub(self.entry_live);
            self.arena.live_bytes = self.entry_live;
            tg_trace::gauge_sub(Counter::ArenaLiveBytes, leaked);
            self.arena.scrub();
        }
    }
}

impl WorkspacePool for WorkspaceArena {
    fn acquire(&mut self, rows: usize, cols: usize) -> Mat {
        let len = rows * cols;
        self.track_acquire(8 * len as u64);
        if let Some(mut buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.stats.hits += 1;
            tg_trace::add(Counter::ArenaHit, 1);
            // Zeroing (not just clearing debug poison) is what upholds the
            // WorkspacePool bitwise contract: recycled buffers must be
            // indistinguishable from Mat::zeros. The `arena.acquire` fault
            // site skips exactly this scrub, leaking the previous tenant's
            // data (NaN poison in debug) for the checker to catch. The
            // fault only claims buffers that actually hold stale bits —
            // skipping the scrub of an already-zero buffer would be
            // undetectable because it violates nothing.
            let skip = tg_check::enabled()
                && buf.iter().any(|&x| x.to_bits() != 0)
                && tg_check::fault::skip_zero("arena.acquire");
            if !skip {
                buf.fill(0.0);
            }
            tg_check::workspace_clean(&buf);
            Mat::from_col_major(rows, cols, buf)
        } else {
            self.stats.misses += 1;
            tg_trace::add(Counter::ArenaMiss, 1);
            Mat::zeros(rows, cols)
        }
    }

    fn release(&mut self, m: Mat) {
        let mut buf = m.into_col_major();
        self.track_release(8 * buf.len() as u64);
        if cfg!(debug_assertions) {
            buf.fill(f64::NAN);
        }
        self.free.entry(buf.len()).or_default().push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::DbbrConfig;

    #[test]
    fn reuse_zeroes_and_counts() {
        let mut arena = WorkspaceArena::new();
        arena.begin_problem(ShapeClass { n: 8, b: 2, k: 4 });

        let mut m = arena.acquire(4, 3);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        m.fill(7.0);
        arena.release(m);
        assert_eq!(arena.cached_buffers(), 1);

        // Same length → served from cache, and scrubbed back to zeros.
        let m2 = arena.acquire(3, 4);
        assert!(m2.as_slice().iter().all(|&x| x == 0.0), "stale data leaked");
        assert_eq!((arena.stats().hits, arena.stats().misses), (1, 1));

        // Different length → miss.
        let m3 = arena.acquire(5, 5);
        assert_eq!((arena.stats().hits, arena.stats().misses), (1, 2));
        arena.release(m2);
        arena.release(m3);
        assert_eq!(arena.cached_buffers(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn released_buffers_are_poisoned() {
        let mut arena = WorkspaceArena::new();
        let mut m = arena.acquire(3, 3);
        m.fill(1.5);
        arena.release(m);
        let parked = arena.peek_free(9).expect("buffer parked");
        assert!(
            parked.iter().all(|x| x.is_nan()),
            "debug release must NaN-poison: {parked:?}"
        );
    }

    #[test]
    fn class_change_drops_cache() {
        let mut arena = WorkspaceArena::new();
        let c1 = ShapeClass { n: 16, b: 4, k: 8 };
        let c2 = ShapeClass { n: 16, b: 4, k: 16 };
        arena.begin_problem(c1);
        let m = arena.acquire(4, 4);
        arena.release(m);
        assert_eq!(arena.cached_buffers(), 1);

        arena.begin_problem(c1); // same class: cache survives
        assert_eq!(arena.cached_buffers(), 1);

        arena.begin_problem(c2); // class change: cache dropped
        assert_eq!(arena.cached_buffers(), 0);
        let _ = arena.acquire(4, 4);
        assert_eq!((arena.stats().hits, arena.stats().misses), (0, 2));
    }

    #[test]
    fn live_bytes_track_high_water_and_class_peaks() {
        let mut arena = WorkspaceArena::new();
        let c1 = ShapeClass { n: 8, b: 2, k: 4 };
        arena.begin_problem(c1);
        let a = arena.acquire(4, 4); // 128 B live
        let b = arena.acquire(2, 4); // 192 B live — peak
        assert_eq!(arena.live_bytes(), 192);
        arena.release(a); // 64 B live
        assert_eq!(arena.live_bytes(), 64);
        let c = arena.acquire(4, 4); // 192 B again (cache hit)
        assert_eq!(arena.peak_live_bytes(), 192);
        arena.release(b);
        arena.release(c);
        assert_eq!(arena.live_bytes(), 0);

        let c2 = ShapeClass { n: 16, b: 2, k: 4 };
        arena.begin_problem(c2);
        let d = arena.acquire(16, 16); // 2048 B — new overall peak
        arena.release(d);
        assert_eq!(arena.peak_live_bytes(), 2048);
        let peaks = arena.class_peaks();
        assert_eq!(peaks[0], (c2, 2048));
        assert_eq!(peaks[1], (c1, 192));

        // merged stats sum per-worker peaks
        let mut merged = ArenaStats::default();
        merged.merge(&arena.stats());
        merged.merge(&ArenaStats {
            hits: 0,
            misses: 1,
            peak_live_bytes: 1000,
        });
        assert_eq!(merged.peak_live_bytes, 3048);
    }

    #[test]
    fn zero_length_buffers_recycle() {
        let mut arena = WorkspaceArena::new();
        let m = arena.acquire(5, 0);
        assert_eq!((m.nrows(), m.ncols()), (5, 0));
        arena.release(m);
        let m2 = arena.acquire(0, 3);
        assert_eq!((m2.nrows(), m2.ncols()), (0, 3));
        assert_eq!((arena.stats().hits, arena.stats().misses), (1, 1));
    }

    #[test]
    fn lease_tracks_balance_and_scrub_drops_cache() {
        let class = ShapeClass { n: 8, b: 2, k: 4 };
        let mut arena = WorkspaceArena::new();
        {
            let mut lease = arena.lease(class);
            assert!(lease.balanced());
            let m = lease.acquire(4, 4);
            assert!(!lease.balanced());
            lease.release(m);
            assert!(lease.balanced());
        }
        assert_eq!(arena.cached_buffers(), 1);
        arena.scrub();
        assert_eq!(arena.cached_buffers(), 0);
        assert_eq!(arena.live_bytes(), 0);
    }

    #[test]
    fn lease_repairs_arena_after_unwind() {
        let class = ShapeClass { n: 8, b: 2, k: 4 };
        let mut arena = WorkspaceArena::new();
        // park one clean buffer so there is a cache to scrub
        let m = arena.acquire(4, 4);
        arena.release(m);
        assert_eq!(arena.cached_buffers(), 1);

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut lease = arena.lease(class);
            let _held = lease.acquire(4, 4);
            panic!("tenant died mid-attempt");
        }));
        assert!(result.is_err());
        // the lease guard ran during unwind: live bytes repaired, cache
        // scrubbed, arena immediately rentable again
        assert_eq!(arena.live_bytes(), 0);
        assert_eq!(arena.cached_buffers(), 0);
        let m = arena.acquire(4, 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        arena.release(m);
    }

    #[test]
    fn shape_class_mapping() {
        let m = Method::Dbbr {
            cfg: DbbrConfig::new(4, 16),
            parallel_sweeps: 2,
        };
        assert_eq!(
            ShapeClass::for_method(32, &m),
            ShapeClass { n: 32, b: 4, k: 16 }
        );
        let e = tg_eigen::EvdMethod::proposed_default(256);
        let c = ShapeClass::for_evd(256, &e);
        assert_eq!(c.n, 256);
        assert!(c.b > 0 && c.k.is_multiple_of(c.b));
    }
}
