//! BLAS level-2: matrix-vector kernels.
#![allow(clippy::needless_range_loop)] // index loops mirror the BLAS reference formulations
//!
//! Everything is column-major; the `N`-transpose kernels therefore iterate
//! over columns and use `axpy` on contiguous slices, while the `T` kernels
//! use `dot` per column — both access memory with unit stride.

use crate::level1::{axpy, dot};
use tg_matrix::{MatMut, MatRef};

/// `y ← α A x + β y` (`A` not transposed, `m × n`).
pub fn gemv_n(alpha: f64, a: &MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), m);
    if beta != 1.0 {
        for yi in y.iter_mut() {
            *yi *= beta;
        }
    }
    for j in 0..n {
        axpy(alpha * x[j], a.col(j), y);
    }
}

/// `y ← α Aᵀ x + β y` (`A` is `m × n`, result length `n`).
pub fn gemv_t(alpha: f64, a: &MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(x.len(), m);
    assert_eq!(y.len(), n);
    for j in 0..n {
        let s = dot(a.col(j), x);
        y[j] = alpha * s + beta * y[j];
    }
}

/// Rank-1 update `A ← A + α x yᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut MatMut<'_>) {
    let (m, n) = (a.nrows(), a.ncols());
    assert_eq!(x.len(), m);
    assert_eq!(y.len(), n);
    for j in 0..n {
        axpy(alpha * y[j], x, a.col_mut(j));
    }
}

/// Symmetric matrix-vector product using only the **lower** triangle of `A`:
/// `y ← α A x + β y`.
pub fn symv_lower(alpha: f64, a: &MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    if beta != 1.0 {
        for yi in y.iter_mut() {
            *yi *= beta;
        }
    }
    for j in 0..n {
        let col = a.col(j);
        // diagonal
        y[j] += alpha * col[j] * x[j];
        // strictly-lower part of column j contributes to y[j+1..] (as A[i][j])
        // and to y[j] (as A[j][i] via symmetry).
        let xj = alpha * x[j];
        let mut s = 0.0;
        let (ylo, xlo) = (&mut y[j + 1..], &x[j + 1..]);
        let clo = &col[j + 1..];
        for i in 0..clo.len() {
            ylo[i] += xj * clo[i];
            s += clo[i] * xlo[i];
        }
        y[j] += alpha * s;
    }
}

/// Symmetric rank-2 update on the **lower** triangle:
/// `A ← A + α (x yᵀ + y xᵀ)` (only `i ≥ j` entries touched).
pub fn syr2_lower(alpha: f64, x: &[f64], y: &[f64], a: &mut MatMut<'_>) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    for j in 0..n {
        let (cx, cy) = (alpha * y[j], alpha * x[j]);
        let col = a.col_mut(j);
        let (xs, ys) = (&x[j..], &y[j..]);
        let cs = &mut col[j..];
        for i in 0..cs.len() {
            cs[i] += cx * xs[i] + cy * ys[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;
    use tg_matrix::Mat;

    fn dense_mv(a: &Mat, x: &[f64], trans: bool) -> Vec<f64> {
        let (m, n) = (a.nrows(), a.ncols());
        if !trans {
            (0..m)
                .map(|i| (0..n).map(|j| a[(i, j)] * x[j]).sum())
                .collect()
        } else {
            (0..n)
                .map(|j| (0..m).map(|i| a[(i, j)] * x[i]).sum())
                .collect()
        }
    }

    #[test]
    fn gemv_n_matches_dense() {
        let a = gen::random(7, 5, 1);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let mut y = vec![1.0; 7];
        let expect: Vec<f64> = dense_mv(&a, &x, false)
            .iter()
            .map(|v| 2.0 * v + 3.0)
            .collect();
        gemv_n(2.0, &a.as_ref(), &x, 3.0, &mut y);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_t_matches_dense() {
        let a = gen::random(7, 5, 2);
        let x: Vec<f64> = (0..7).map(|i| (i as f64).cos()).collect();
        let mut y = vec![0.5; 5];
        let expect: Vec<f64> = dense_mv(&a, &x, true)
            .iter()
            .zip(&y)
            .map(|(v, y0)| -1.0 * v + 2.0 * y0)
            .collect();
        gemv_t(-1.0, &a.as_ref(), &x, 2.0, &mut y);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::zeros(3, 2);
        let x = [1.0, 2.0, 3.0];
        let y = [10.0, 100.0];
        ger(1.0, &x, &y, &mut a.as_mut());
        assert_eq!(a[(2, 1)], 300.0);
        assert_eq!(a[(0, 0)], 10.0);
    }

    #[test]
    fn symv_lower_matches_full() {
        let n = 9;
        let full = gen::random_symmetric(n, 3);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let expect = dense_mv(&full, &x, false);
        // blank the upper triangle to prove only lower is read
        let mut lower = full.clone();
        for j in 0..n {
            for i in 0..j {
                lower[(i, j)] = f64::NAN;
            }
        }
        let mut y = vec![0.0; n];
        symv_lower(1.0, &lower.as_ref(), &x, 0.0, &mut y);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn syr2_lower_matches_full_update() {
        let n = 6;
        let base = gen::random_symmetric(n, 4);
        let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut a = base.clone();
        syr2_lower(0.5, &x, &y, &mut a.as_mut());
        for j in 0..n {
            for i in j..n {
                let expect = base[(i, j)] + 0.5 * (x[i] * y[j] + y[i] * x[j]);
                assert!((a[(i, j)] - expect).abs() < 1e-13);
            }
        }
        // upper triangle untouched
        for j in 1..n {
            for i in 0..j {
                assert_eq!(a[(i, j)], base[(i, j)]);
            }
        }
    }
}
