//! BLAS level-1: vector-vector kernels on plain slices.

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    // 4-way unrolled accumulation: keeps dependent-add chains short, which
    // both speeds the loop up and slightly improves rounding behaviour.
    let mut acc = [0.0f64; 4];
    let chunks = n / 4;
    for c in 0..chunks {
        let i = 4 * c;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in 4 * chunks..n {
        s += x[i] * y[i];
    }
    s
}

/// `y ← y + αx`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if alpha == 0.0 {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← αx`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm, computed with scaling to avoid overflow/underflow
/// (LAPACK `dnrm2` style).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                let r = scale / a;
                ssq = 1.0 + ssq * r * r;
                scale = a;
            } else {
                let r = a / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

/// Index of the element with the largest absolute value (0 for empty input).
pub fn iamax(x: &[f64]) -> usize {
    let mut best = 0;
    let mut bv = 0.0f64;
    for (i, &xi) in x.iter().enumerate() {
        if xi.abs() > bv {
            bv = xi.abs();
            best = i;
        }
    }
    best
}

/// `x ↔ y`.
pub fn swap(x: &mut [f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(xi, yi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.5 - 3.0).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-10 * naive.abs().max(1.0));
    }

    #[test]
    fn dot_empty_and_short() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0]), 6.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn nrm2_overflow_safe() {
        let big = 1e300;
        assert!((nrm2(&[big, big]) - big * std::f64::consts::SQRT_2).abs() < 1e287);
        let tiny = 1e-300;
        let r = nrm2(&[tiny, tiny]);
        assert!((r - tiny * std::f64::consts::SQRT_2).abs() < 1e-313);
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        assert_eq!(nrm2(&[]), 0.0);
    }

    #[test]
    fn iamax_picks_largest_abs() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(iamax(&[]), 0);
    }

    #[test]
    fn swap_exchanges() {
        let mut x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        swap(&mut x, &mut y);
        assert_eq!(x, [3.0, 4.0]);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0, 4.0];
        scal(-0.5, &mut x);
        assert_eq!(x, [-0.5, 1.0, -2.0]);
    }
}
