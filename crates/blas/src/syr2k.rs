//! Blocked symmetric rank-2k updates — the kernel the paper re-engineers.
//!
//! `syr2k` computes `C ← β·C + α·(A Bᵀ + B Aᵀ)` on the lower triangle of an
//! `n × n` matrix `C`, with `A, B ∈ ℝ^{n×k}`. In SBR/DBBR this is the
//! trailing-matrix update `A₂ ← A₂ − Z Yᵀ − Y Zᵀ` (Equation 1), and its
//! throughput decides the throughput of the whole band reduction (§3.2).
//!
//! Two blockings are provided:
//!
//! * [`syr2k_blocked`] — the conventional scheme (cf. \[23\] in the paper):
//!   walk column panels of width `nb`; each panel contributes one small
//!   triangular block plus one **tall skinny** `(n−j) × nb` GEMM. Tall
//!   skinny shapes are exactly what underutilizes wide GPUs.
//! * [`syr2k_square`] — the paper's Figure-7 scheme: partition `C` into an
//!   `sb × sb` super-block grid (`sb = g·nb`); diagonal super-blocks first,
//!   then the off-diagonal super-blocks, each of which is a **square**
//!   `sb × sb` GEMM pair. All off-diagonal blocks are independent, so they
//!   are dispatched to rayon.

use crate::level3::{gemm, syr2k_ref, Op};
use rayon::prelude::*;
use tg_matrix::{MatMut, MatRef};

fn check_shapes(a: &MatRef<'_>, b: &MatRef<'_>, c: &MatMut<'_>) -> (usize, usize) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "C must be square");
    assert_eq!(a.nrows(), n, "A rows");
    assert_eq!(b.nrows(), n, "B rows");
    assert_eq!(a.ncols(), b.ncols(), "A/B rank");
    (n, a.ncols())
}

/// Conventional column-panel blocking (tall-skinny strips).
///
/// Only the lower triangle of `C` is referenced and updated.
pub fn syr2k_blocked(
    alpha: f64,
    a: &MatRef<'_>,
    b: &MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
    nb: usize,
) {
    let n = c.nrows();
    syr2k_blocked_head(alpha, a, b, beta, c, nb, n);
}

/// Head-bounded variant of [`syr2k_blocked`]: updates only the first
/// `head_cols` column panels of `C`'s lower triangle (rows still run all
/// the way to the bottom, so the updated region is the full-height strip
/// `C[.., ..head_cols]` below the diagonal).
///
/// `head_cols` must equal `n` or be a multiple of `nb`, so the head call's
/// panel boundaries coincide with those of a single unsplit call. Under
/// that alignment, a head call followed by a plain [`syr2k_blocked`] on the
/// square trailing subview `C[head.., head..]` (with `A`/`B` row-offset by
/// `head`) touches every lower-triangle element exactly once, via the same
/// panel task and the same serial inner arithmetic as the unsplit call —
/// the split is therefore **bitwise-identical** to one full call. This is
/// the contract DBBR's stage-1 look-ahead relies on.
pub fn syr2k_blocked_head(
    alpha: f64,
    a: &MatRef<'_>,
    b: &MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
    nb: usize,
    head_cols: usize,
) {
    let (n, _k) = check_shapes(a, b, c);
    assert!(nb > 0);
    assert!(
        head_cols <= n && (head_cols == n || head_cols.is_multiple_of(nb)),
        "head_cols must be n or nb-aligned for the bitwise split contract"
    );
    let _span = tg_trace::span_cat("blas.syr2k_blocked", "kernel", Some(("n", n as u64)));
    let mut j = 0;
    while j < head_cols {
        let w = nb.min(n - j);
        // diagonal block (triangular part)
        {
            let aj = a.submatrix(j, 0, w, a.ncols());
            let bj = b.submatrix(j, 0, w, b.ncols());
            let mut cd = c.rb_mut().submatrix_mut(j, j, w, w);
            syr2k_ref(alpha, &aj, &bj, beta, &mut cd);
        }
        // sub-diagonal strip: C[j+w.., j..j+w] — a tall skinny GEMM pair
        if j + w < n {
            let m = n - j - w;
            let ai = a.submatrix(j + w, 0, m, a.ncols());
            let bi = b.submatrix(j + w, 0, m, b.ncols());
            let aj = a.submatrix(j, 0, w, a.ncols());
            let bj = b.submatrix(j, 0, w, b.ncols());
            let mut cs = c.rb_mut().submatrix_mut(j + w, j, m, w);
            gemm(alpha, &ai, Op::NoTrans, &bj, Op::Trans, beta, &mut cs);
            gemm(alpha, &bi, Op::NoTrans, &aj, Op::Trans, 1.0, &mut cs);
        }
        j += w;
    }
    if head_cols > 0 {
        inject_output_fault(c);
    }
}

/// tg-check fault hook (site `blas.syr2k`): corrupts one lower-triangle
/// element of the freshly computed update. The planned flat index is
/// mapped into the packed lower triangle so the corruption always lands
/// on an element the update actually owns (the upper triangle is
/// untouched by contract). Inert without a live check session.
fn inject_output_fault(c: &mut MatMut<'_>) {
    let Some((index, kind)) = tg_check::fault::claim("blas.syr2k") else {
        return;
    };
    let n = c.nrows();
    if n == 0 {
        return;
    }
    let tri = n * (n + 1) / 2;
    let mut k = index % tri;
    let mut j = 0;
    while k >= n - j {
        k -= n - j;
        j += 1;
    }
    let i = j + k;
    tg_check::fault::apply(kind, &mut c.rb_mut().col_mut(j)[i]);
    tg_check::fault::record_fired("blas.syr2k", kind, j * n + i);
}

/// Figure-7 square-block scheme.
///
/// `nb` is the base block size; `g` merges `g × g` base blocks into one
/// square super-block GEMM. `g = 1` degenerates to per-block updates;
/// the paper's figure corresponds to pairing blocks (`g = 2`).
///
/// ```
/// use tg_blas::syr2k_square;
/// use tg_matrix::{gen, Mat};
///
/// let (n, k) = (12, 4);
/// let z = gen::random(n, k, 1);
/// let y = gen::random(n, k, 2);
/// let mut c = gen::random_symmetric(n, 3);
/// // the Equation-1 trailing update: C ← C − Z Yᵀ − Y Zᵀ (lower triangle)
/// syr2k_square(-1.0, &z.as_ref(), &y.as_ref(), 1.0, &mut c.as_mut(), 4, 2);
/// ```
pub fn syr2k_square(
    alpha: f64,
    a: &MatRef<'_>,
    b: &MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
    nb: usize,
    g: usize,
) {
    let n = c.nrows();
    syr2k_square_head(alpha, a, b, beta, c, nb, g, n);
}

/// Head-bounded variant of [`syr2k_square`]: processes only the column
/// super-blocks anchored at `j0 < head_cols` (with their full row extent),
/// i.e. the full-height strip `C[.., ..head_cols]` below the diagonal.
///
/// `head_cols` must equal `n` or be a multiple of the super-block size
/// `sb = nb·g`. Because the Figure-7 grid is anchored at `C`'s origin, an
/// sb-aligned head keeps every super-block boundary where the unsplit call
/// would put it, and a follow-up [`syr2k_square`] on the trailing subview
/// `C[head.., head..]` (with `A`/`B` row-offset by `head`) re-creates the
/// remaining tasks of the same grid exactly. Each element is computed by
/// the same task with the same serial inner arithmetic either way, so
/// head + tail is **bitwise-identical** to one full call — the contract
/// DBBR's stage-1 look-ahead relies on.
#[allow(clippy::too_many_arguments)] // the BLAS-style signature plus the split point
pub fn syr2k_square_head(
    alpha: f64,
    a: &MatRef<'_>,
    b: &MatRef<'_>,
    beta: f64,
    c: &mut MatMut<'_>,
    nb: usize,
    g: usize,
    head_cols: usize,
) {
    let (n, _k) = check_shapes(a, b, c);
    assert!(nb > 0 && g > 0);
    let _span = tg_trace::span_cat("blas.syr2k_square", "kernel", Some(("n", n as u64)));
    let sb = nb * g;
    assert!(
        head_cols <= n && (head_cols == n || head_cols.is_multiple_of(sb)),
        "head_cols must be n or sb-aligned for the bitwise split contract"
    );

    // Carve the lower triangle into a 2D grid of element-disjoint mutable
    // super-blocks: per column super-block, split off the (untouched) rows
    // above the diagonal, then the square diagonal block, then sb-row
    // off-diagonal blocks. Every task in the grid is independent — this is
    // the full Figure-7 task set, not just its column strips.
    let mut tasks: Vec<SuperBlock<'_>> = Vec::new();
    {
        let mut rest = c.rb_mut();
        let mut j0 = 0;
        while j0 < head_cols {
            let w = sb.min(n - j0);
            let (colblk, tail) = rest.split_at_col(w);
            rest = tail;
            let (_above_diag, lower) = colblk.split_at_row(j0);
            let (diag, mut below) = lower.split_at_row(w);
            tasks.push(SuperBlock {
                i0: j0,
                j0,
                blk: diag,
            });
            let mut i0 = j0 + w;
            while i0 < n {
                let h = sb.min(n - i0);
                let (blk, rest_rows) = below.split_at_row(h);
                below = rest_rows;
                tasks.push(SuperBlock { i0, j0, blk });
                i0 += h;
            }
            j0 += w;
        }
    }

    let run = |task: SuperBlock<'_>| {
        let SuperBlock { i0, j0, mut blk } = task;
        let k = a.ncols();
        let w = blk.ncols();
        let aj = a.submatrix(j0, 0, w, k);
        let bj = b.submatrix(j0, 0, w, k);
        if i0 == j0 {
            // Diagonal super-block (left graph of Fig. 7), computed with
            // fine blocking so only the triangle is touched.
            syr2k_blocked(alpha, &aj, &bj, beta, &mut blk, nb);
        } else {
            // Square off-diagonal super-block (middle/right graphs): a
            // pair of square GEMMs.
            let h = blk.nrows();
            let ai = a.submatrix(i0, 0, h, k);
            let bi = b.submatrix(i0, 0, h, k);
            gemm(alpha, &ai, Op::NoTrans, &bj, Op::Trans, beta, &mut blk);
            gemm(alpha, &bi, Op::NoTrans, &aj, Op::Trans, 1.0, &mut blk);
        }
    };

    // Tasks write disjoint blocks and each element is computed by exactly
    // one task with serial inner arithmetic, so the execution order — and
    // therefore the thread count — never changes a bit of the result.
    if tasks.len() <= 1 || crate::threads::gemm_threads() <= 1 {
        for task in tasks {
            run(task);
        }
    } else {
        let region = tg_trace::RegionId::fresh();
        let _rspan =
            tg_trace::span_region("parallel.syr2k", "region", Some(("n", n as u64)), region);
        tasks.into_par_iter().for_each(|task| {
            let _g = crate::threads::enter_parallel_region();
            let _t = tg_trace::span_region(
                "task.syr2k_block",
                "task",
                Some(("i0", task.i0 as u64)),
                region,
            );
            run(task);
        });
    }
}

/// One element-disjoint task of the Figure-7 grid: the super-block of `C`
/// anchored at `(i0, j0)` (diagonal when `i0 == j0`).
struct SuperBlock<'a> {
    i0: usize,
    j0: usize,
    blk: MatMut<'a>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::syr2k_ref;
    use tg_matrix::{gen, Mat};

    fn check_matches_ref(n: usize, k: usize, nb: usize, g: usize, seed: u64) {
        let a = gen::random(n, k, seed);
        let b = gen::random(n, k, seed + 1);
        let c0 = gen::random_symmetric(n, seed + 2);

        let mut c_ref = c0.clone();
        syr2k_ref(-1.0, &a.as_ref(), &b.as_ref(), 0.75, &mut c_ref.as_mut());

        let mut c_blk = c0.clone();
        syr2k_blocked(
            -1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.75,
            &mut c_blk.as_mut(),
            nb,
        );

        let mut c_sq = c0.clone();
        syr2k_square(
            -1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.75,
            &mut c_sq.as_mut(),
            nb,
            g,
        );

        for j in 0..n {
            for i in j..n {
                assert!(
                    (c_blk[(i, j)] - c_ref[(i, j)]).abs() < 1e-10,
                    "blocked mismatch at ({i},{j}) n={n} k={k} nb={nb}"
                );
                assert!(
                    (c_sq[(i, j)] - c_ref[(i, j)]).abs() < 1e-10,
                    "square mismatch at ({i},{j}) n={n} k={k} nb={nb} g={g}"
                );
            }
            // upper triangle untouched by all three
            for i in 0..j {
                assert_eq!(c_blk[(i, j)], c0[(i, j)]);
                assert_eq!(c_sq[(i, j)], c0[(i, j)]);
            }
        }
    }

    #[test]
    fn matches_reference_various_shapes() {
        check_matches_ref(16, 4, 4, 2, 100);
        check_matches_ref(17, 5, 4, 2, 101); // ragged edges
        check_matches_ref(31, 8, 8, 2, 102);
        check_matches_ref(12, 3, 16, 2, 103); // nb > n
        check_matches_ref(24, 6, 4, 3, 104); // g = 3
        check_matches_ref(9, 2, 3, 1, 105); // g = 1 degenerate
        check_matches_ref(1, 1, 4, 2, 106); // trivial
    }

    /// The look-ahead contract: an aligned head call plus a plain call on
    /// the square trailing subview must be bitwise-identical to one full
    /// call, for both blockings and across ragged shapes.
    #[test]
    fn head_plus_tail_is_bitwise_identical_to_full() {
        for &(n, k, nb, g, head, seed) in &[
            (24usize, 4usize, 4usize, 2usize, 8usize, 400u64),
            (29, 5, 4, 2, 16, 401), // ragged bottom edge
            (17, 3, 4, 1, 4, 402),
            (33, 6, 8, 2, 16, 403),
            (16, 4, 4, 2, 0, 404),  // empty head: tail call does everything
            (16, 4, 4, 2, 16, 405), // full head: tail is empty
        ] {
            let a = gen::random(n, k, seed);
            let b = gen::random(n, k, seed + 1);
            let c0 = gen::random_symmetric(n, seed + 2);

            for square in [false, true] {
                let mut full = c0.clone();
                let mut split = c0.clone();
                if square {
                    syr2k_square(
                        -1.0,
                        &a.as_ref(),
                        &b.as_ref(),
                        1.0,
                        &mut full.as_mut(),
                        nb,
                        g,
                    );
                    syr2k_square_head(
                        -1.0,
                        &a.as_ref(),
                        &b.as_ref(),
                        1.0,
                        &mut split.as_mut(),
                        nb,
                        g,
                        head,
                    );
                } else {
                    syr2k_blocked(-1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut full.as_mut(), nb);
                    syr2k_blocked_head(
                        -1.0,
                        &a.as_ref(),
                        &b.as_ref(),
                        1.0,
                        &mut split.as_mut(),
                        nb,
                        head,
                    );
                }
                if head < n {
                    let m = n - head;
                    let at = a.view(head, 0, m, k);
                    let bt = b.view(head, 0, m, k);
                    let mut tail = split.view_mut(head, head, m, m);
                    if square {
                        syr2k_square(-1.0, &at, &bt, 1.0, &mut tail, nb, g);
                    } else {
                        syr2k_blocked(-1.0, &at, &bt, 1.0, &mut tail, nb);
                    }
                }
                for j in 0..n {
                    for i in j..n {
                        assert_eq!(
                            split[(i, j)].to_bits(),
                            full[(i, j)].to_bits(),
                            "split differs at ({i},{j}) n={n} head={head} square={square}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rank_zero_update_scales_only() {
        // k = 0: C ← βC
        let n = 6;
        let c0 = gen::random_symmetric(n, 200);
        let a = Mat::zeros(n, 0);
        let b = Mat::zeros(n, 0);
        let mut c = c0.clone();
        syr2k_blocked(2.0, &a.as_ref(), &b.as_ref(), 0.5, &mut c.as_mut(), 4);
        for j in 0..n {
            for i in j..n {
                assert!((c[(i, j)] - 0.5 * c0[(i, j)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn symmetric_result_when_mirrored() {
        // applying the update to the lower triangle and mirroring equals the
        // full dense A Bᵀ + B Aᵀ
        let n = 10;
        let k = 3;
        let a = gen::random(n, k, 300);
        let b = gen::random(n, k, 301);
        let mut c = Mat::zeros(n, n);
        syr2k_square(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut(), 4, 2);
        c.mirror_lower();
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a[(i, l)] * b[(j, l)] + b[(i, l)] * a[(j, l)];
                }
                assert!((c[(i, j)] - s).abs() < 1e-12);
            }
        }
    }
}
