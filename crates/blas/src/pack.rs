//! Packed, register-blocked GEMM — serial and multithreaded.
//!
//! The column-oriented kernel in [`crate::level3`] is simple and correct
//! but leaves register reuse on the table. This module implements the
//! classic three-loop blocked GEMM with operand packing (Goto-style):
//! `A` panels are packed into row-major micro-panels of height `MR`, `B`
//! panels into column-major micro-panels of width `NR`, and a `MR × NR`
//! micro-kernel accumulates into registers. On typical x86-64 this runs
//! 2–4× faster than the naive kernel at large sizes (see
//! `benches/gemm.rs`).
//!
//! Multithreading follows the BLIS decomposition (see
//! `docs/PERFORMANCE.md`): for each `(jc, pc)` macro-block the `B` panel is
//! packed **once** and shared read-only across workers; each worker packs
//! its own `A` micro-panels into a thread-local scratch buffer (reused
//! across blocks, never reallocated per block) and owns a disjoint `MC`-row
//! strip of `C` obtained with [`MatMut::split_at_row`]. Work is partitioned
//! over the `ic` loop only — never over `pc` — so every `C` element
//! accumulates its k-blocks in the same fixed order as the serial kernel
//! and the parallel result is **bitwise-identical** to the serial one.
//!
//! All four transpose combinations are supported with the same inner
//! kernel: packing transposes during the copy.

#![allow(clippy::too_many_arguments)] // kernel plumbing mirrors the BLIS decomposition

use crate::level3::Op;
use rayon::prelude::*;
use std::cell::RefCell;
use tg_matrix::{MatMut, MatRef};

/// Micro-kernel rows.
const MR: usize = 8;
/// Micro-kernel columns.
const NR: usize = 4;
/// k-block size. **Fixed by the determinism contract**: `KC` decides how a
/// dot product over `k` splits into partial sums, so changing it changes
/// the bits of every result (and would invalidate the golden corpus).
const KC: usize = 256;
/// Row block: one parallel work unit (a multiple of `MR`; small enough
/// that an `m = 1024` update yields 8 strips of parallel slack, large
/// enough that a strip's A-panel fills the L2).
const MC: usize = 128;
/// Column block sized for the shared packed-B panel (`NC·KC` doubles ≈ 1 MiB).
const NC: usize = 512;

thread_local! {
    /// Per-worker scratch for packed `A` micro-panels. Lives as long as the
    /// worker thread, so repeated GEMMs (and every `(jc, pc)` block within
    /// one GEMM) reuse the same allocation.
    static APACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// `C ← α·op(A)·op(B) + β·C` with operand packing and a register-blocked
/// micro-kernel. Semantics identical to [`crate::gemm`].
///
/// Fans out to [`crate::threads::gemm_threads`] workers; inside a parallel
/// region (a `syr2k` super-block task, a batch worker) it runs serially.
/// Either way the result is bitwise-identical.
pub fn gemm_packed(
    alpha: f64,
    a: &MatRef<'_>,
    op_a: Op,
    b: &MatRef<'_>,
    op_b: Op,
    beta: f64,
    c: &mut MatMut<'_>,
) {
    gemm_packed_with_threads(
        alpha,
        a,
        op_a,
        b,
        op_b,
        beta,
        c,
        crate::threads::gemm_threads(),
    );
}

/// [`gemm_packed`] with an explicit worker-thread count (`threads <= 1`
/// forces the serial driver). The thread count never changes the result —
/// this entry point exists so benches and determinism tests can pin it.
pub fn gemm_packed_with_threads(
    alpha: f64,
    a: &MatRef<'_>,
    op_a: Op,
    b: &MatRef<'_>,
    op_b: Op,
    beta: f64,
    c: &mut MatMut<'_>,
    threads: usize,
) {
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    let n = op_b.cols(b);
    assert_eq!(op_b.rows(b), k, "inner dimensions disagree");
    assert_eq!(c.nrows(), m);
    assert_eq!(c.ncols(), n);

    if beta != 1.0 {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // shared packed-B panel, reused across (jc, pc) blocks
    let mut bpack = vec![0.0f64; NC.div_ceil(NR) * NR * KC];

    // With one worker, or a single row strip, the fan-out is pure overhead.
    if threads <= 1 || m <= MC {
        APACK.with(|buf| {
            let mut apack = buf.borrow_mut();
            ensure_len(&mut apack, MC.div_ceil(MR) * MR * KC);
            let mut jc = 0;
            while jc < n {
                let nc = NC.min(n - jc);
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    pack_b(b, op_b, pc, jc, kc, nc, &mut bpack);
                    let mut ic = 0;
                    while ic < m {
                        let mc = MC.min(m - ic);
                        pack_a(a, op_a, ic, pc, mc, kc, alpha, &mut apack);
                        let mut cblk = c.rb_mut().submatrix_mut(ic, jc, mc, nc);
                        macro_kernel(&apack, &bpack, mc, nc, kc, &mut cblk);
                        ic += mc;
                    }
                    pc += kc;
                }
                jc += nc;
            }
        });
        return;
    }

    // Parallel driver. The pc loop stays serial with a barrier after every
    // k-block (the par_iter joins before the next pc overwrites bpack), so
    // per-element accumulation order is exactly the serial order.
    let region = tg_trace::RegionId::fresh();
    let _rspan = tg_trace::span_region(
        "parallel.gemm_packed",
        "region",
        Some(("m", m as u64)),
        region,
    );
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, op_b, pc, jc, kc, nc, &mut bpack);
            let bshared: &[f64] = &bpack;
            // Disjoint MC-row strips of C[:, jc..jc+nc] — the ic partition.
            let mut strips: Vec<(usize, MatMut<'_>)> = Vec::with_capacity(m.div_ceil(MC));
            let mut rest = c.rb_mut().submatrix_mut(0, jc, m, nc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                let (head, tail) = rest.split_at_row(mc);
                strips.push((ic, head));
                rest = tail;
                ic += mc;
            }
            strips.into_par_iter().for_each(|(ic, mut strip)| {
                let _g = crate::threads::enter_parallel_region();
                let _t = tg_trace::span_region(
                    "task.gemm_strip",
                    "task",
                    Some(("ic", ic as u64)),
                    region,
                );
                APACK.with(|buf| {
                    let mut apack = buf.borrow_mut();
                    ensure_len(&mut apack, MC.div_ceil(MR) * MR * KC);
                    let mc = strip.nrows();
                    pack_a(a, op_a, ic, pc, mc, kc, alpha, &mut apack);
                    macro_kernel(&apack, bshared, mc, nc, kc, &mut strip);
                });
            });
            pc += kc;
        }
        jc += nc;
    }
}

fn ensure_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Packs `α·op(A)[ic..ic+mc, pc..pc+kc]` into micro-panels of `MR` rows:
/// panel `p` holds rows `p·MR..` in k-major order (`MR` consecutive
/// elements per k).
fn pack_a(
    a: &MatRef<'_>,
    op_a: Op,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    alpha: f64,
    out: &mut [f64],
) {
    let mut idx = 0;
    let mut p = 0;
    while p < mc {
        let h = MR.min(mc - p);
        for l in 0..kc {
            for r in 0..MR {
                out[idx] = if r < h {
                    alpha
                        * match op_a {
                            Op::NoTrans => a.at(ic + p + r, pc + l),
                            Op::Trans => a.at(pc + l, ic + p + r),
                        }
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        p += MR;
    }
    if tg_trace::enabled() {
        tg_trace::add(tg_trace::Counter::PackBytes, 8 * idx as u64);
    }
}

/// Packs `op(B)[pc..pc+kc, jc..jc+nc]` into micro-panels of `NR` columns.
fn pack_b(b: &MatRef<'_>, op_b: Op, pc: usize, jc: usize, kc: usize, nc: usize, out: &mut [f64]) {
    let mut idx = 0;
    let mut p = 0;
    while p < nc {
        let w = NR.min(nc - p);
        for l in 0..kc {
            for cidx in 0..NR {
                out[idx] = if cidx < w {
                    match op_b {
                        Op::NoTrans => b.at(pc + l, jc + p + cidx),
                        Op::Trans => b.at(jc + p + cidx, pc + l),
                    }
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        p += NR;
    }
    if tg_trace::enabled() {
        tg_trace::add(tg_trace::Counter::PackBytes, 8 * idx as u64);
    }
}

/// Runs the micro-kernel over all `(MR, NR)` tiles of one macro block.
/// `cblk` is the `mc × nc` block of `C` the packed panels cover.
fn macro_kernel(
    apack: &[f64],
    bpack: &[f64],
    mc: usize,
    nc: usize,
    kc: usize,
    cblk: &mut MatMut<'_>,
) {
    let mut jr = 0;
    while jr < nc {
        let w = NR.min(nc - jr);
        let bpanel = &bpack[(jr / NR) * NR * kc..];
        let mut ir = 0;
        while ir < mc {
            let h = MR.min(mc - ir);
            let apanel = &apack[(ir / MR) * MR * kc..];
            micro_kernel(apanel, bpanel, kc, h, w, ir, jr, cblk);
            ir += MR;
        }
        jr += NR;
    }
}

/// `MR × NR` register-blocked inner product over `kc`, fully unrolled so
/// the 32 accumulators stay in registers and every update is an FMA
/// candidate. `acc[j][i]` accumulates `C[ci+i, cj+j]`; the per-element sum
/// order over `l` is what the determinism contract fixes (the tile shape
/// itself is bitwise-neutral — each `C` element has exactly one
/// accumulator regardless of `MR`/`NR`).
#[inline]
fn micro_kernel(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    h: usize,
    w: usize,
    ci: usize,
    cj: usize,
    c: &mut MatMut<'_>,
) {
    let mut acc = [[0.0f64; MR]; NR];
    let a = &apanel[..kc * MR];
    let b = &bpanel[..kc * NR];
    for l in 0..kc {
        let ap: &[f64; MR] = a[l * MR..l * MR + MR].try_into().unwrap();
        let bp: &[f64; NR] = b[l * NR..l * NR + NR].try_into().unwrap();
        for (accj, &bj) in acc.iter_mut().zip(bp.iter()) {
            for (accij, &ai) in accj.iter_mut().zip(ap.iter()) {
                *accij += ai * bj;
            }
        }
    }
    for (jj, accj) in acc.iter().enumerate().take(w) {
        let col = &mut c.col_mut(cj + jj)[ci..ci + h];
        for (cij, &accij) in col.iter_mut().zip(accj.iter()) {
            *cij += accij;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::gemm;
    use tg_matrix::{gen, Mat};

    fn check(m: usize, n: usize, k: usize, op_a: Op, op_b: Op, seed: u64) {
        let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
        let a = gen::random(ar, ac, seed);
        let b = gen::random(br, bc, seed + 1);
        let c0 = gen::random(m, n, seed + 2);
        let mut c_ref = c0.clone();
        gemm(
            1.3,
            &a.as_ref(),
            op_a,
            &b.as_ref(),
            op_b,
            -0.5,
            &mut c_ref.as_mut(),
        );
        let mut c_pk = c0.clone();
        gemm_packed(
            1.3,
            &a.as_ref(),
            op_a,
            &b.as_ref(),
            op_b,
            -0.5,
            &mut c_pk.as_mut(),
        );
        assert!(
            tg_matrix::max_abs_diff(&c_ref, &c_pk) < 1e-10,
            "mismatch {m}x{n}x{k} {op_a:?}{op_b:?}: {}",
            tg_matrix::max_abs_diff(&c_ref, &c_pk)
        );
    }

    #[test]
    fn matches_reference_all_ops() {
        for (op_a, op_b) in [
            (Op::NoTrans, Op::NoTrans),
            (Op::NoTrans, Op::Trans),
            (Op::Trans, Op::NoTrans),
            (Op::Trans, Op::Trans),
        ] {
            check(7, 9, 5, op_a, op_b, 1);
            check(16, 16, 16, op_a, op_b, 2);
        }
    }

    #[test]
    fn ragged_tile_edges() {
        // sizes chosen to exercise every partial-tile branch
        check(1, 1, 1, Op::NoTrans, Op::NoTrans, 10);
        check(5, 3, 2, Op::NoTrans, Op::NoTrans, 11);
        check(MR + 1, NR + 3, KC + 7, Op::NoTrans, Op::NoTrans, 12);
        check(MC + 5, NR, 3, Op::Trans, Op::NoTrans, 13);
    }

    #[test]
    fn crosses_cache_blocks() {
        check(MC + 17, NC / 4 + 9, KC + 31, Op::NoTrans, Op::Trans, 20);
    }

    #[test]
    fn views_with_offsets() {
        let big_a = gen::random(40, 40, 30);
        let big_b = gen::random(40, 40, 31);
        let a = big_a.view(3, 5, 20, 12);
        let b = big_b.view(1, 2, 12, 18);
        let mut c1 = Mat::zeros(20, 18);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c1.as_mut());
        let mut c2 = Mat::zeros(20, 18);
        gemm_packed(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c2.as_mut());
        assert!(tg_matrix::max_abs_diff(&c1, &c2) < 1e-11);
    }

    #[test]
    fn alpha_beta_special_cases() {
        let a = gen::random(8, 8, 40);
        let b = gen::random(8, 8, 41);
        let c0 = gen::random(8, 8, 42);
        // alpha = 0 ⇒ C = beta·C
        let mut c = c0.clone();
        gemm_packed(
            0.0,
            &a.as_ref(),
            Op::NoTrans,
            &b.as_ref(),
            Op::NoTrans,
            2.0,
            &mut c.as_mut(),
        );
        for j in 0..8 {
            for i in 0..8 {
                assert!((c[(i, j)] - 2.0 * c0[(i, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn parallel_bitwise_matches_serial() {
        // the core contract: thread count never changes a single bit
        for (m, n, k, seed) in [
            (MC * 3 + 17, 97, KC + 31, 500u64),
            (MC + 1, NC / 2 + 3, 64, 501),
            (257, 33, 2 * KC + 5, 502),
        ] {
            let a = gen::random(m, k, seed);
            let b = gen::random(k, n, seed + 1);
            let c0 = gen::random(m, n, seed + 2);
            let mut c_serial = c0.clone();
            gemm_packed_with_threads(
                1.1,
                &a.as_ref(),
                Op::NoTrans,
                &b.as_ref(),
                Op::NoTrans,
                0.3,
                &mut c_serial.as_mut(),
                1,
            );
            for t in [2, 4, 7] {
                let mut c_par = c0.clone();
                gemm_packed_with_threads(
                    1.1,
                    &a.as_ref(),
                    Op::NoTrans,
                    &b.as_ref(),
                    Op::NoTrans,
                    0.3,
                    &mut c_par.as_mut(),
                    t,
                );
                for j in 0..n {
                    for i in 0..m {
                        assert_eq!(
                            c_serial[(i, j)].to_bits(),
                            c_par[(i, j)].to_bits(),
                            "bit mismatch at ({i},{j}) with {t} threads, {m}x{n}x{k}"
                        );
                    }
                }
            }
        }
    }
}
