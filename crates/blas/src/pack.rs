//! Packed, register-blocked GEMM.
//!
//! The column-oriented kernel in [`crate::level3`] is simple and correct
//! but leaves register reuse on the table. This module implements the
//! classic three-loop blocked GEMM with operand packing (Goto-style):
//! `A` panels are packed into row-major micro-panels of height `MR`, `B`
//! panels into column-major micro-panels of width `NR`, and a `MR × NR`
//! micro-kernel accumulates into registers. On typical x86-64 this runs
//! 2–4× faster than the naive kernel at large sizes (see
//! `benches/gemm.rs`).
//!
//! Only the `NoTrans × NoTrans` case is implemented natively; the public
//! [`gemm_packed`] entry packs transposed operands during the copy, so all
//! four combinations are supported with the same inner kernel.

#![allow(clippy::too_many_arguments)] // kernel plumbing mirrors the BLIS decomposition

use crate::level3::Op;
use tg_matrix::{MatMut, MatRef};

/// Micro-kernel rows.
const MR: usize = 4;
/// Micro-kernel columns.
const NR: usize = 4;
/// Cache-block sizes (L1-ish for KC, L2-ish for MC/NC at f64).
const KC: usize = 256;
const MC: usize = 128;
const NC: usize = 512;

/// `C ← α·op(A)·op(B) + β·C` with operand packing and a register-blocked
/// micro-kernel. Semantics identical to [`crate::gemm`].
pub fn gemm_packed(
    alpha: f64,
    a: &MatRef<'_>,
    op_a: Op,
    b: &MatRef<'_>,
    op_b: Op,
    beta: f64,
    c: &mut MatMut<'_>,
) {
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    let n = op_b.cols(b);
    assert_eq!(op_b.rows(b), k, "inner dimensions disagree");
    assert_eq!(c.nrows(), m);
    assert_eq!(c.ncols(), n);

    if beta != 1.0 {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // packing buffers, reused across blocks
    let mut apack = vec![0.0f64; MC.div_ceil(MR) * MR * KC];
    let mut bpack = vec![0.0f64; NC.div_ceil(NR) * NR * KC];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, op_b, pc, jc, kc, nc, &mut bpack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(a, op_a, ic, pc, mc, kc, alpha, &mut apack);
                macro_kernel(&apack, &bpack, mc, nc, kc, ic, jc, c);
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Packs `α·op(A)[ic..ic+mc, pc..pc+kc]` into micro-panels of `MR` rows:
/// panel `p` holds rows `p·MR..` in k-major order (`MR` consecutive
/// elements per k).
fn pack_a(
    a: &MatRef<'_>,
    op_a: Op,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    alpha: f64,
    out: &mut [f64],
) {
    let mut idx = 0;
    let mut p = 0;
    while p < mc {
        let h = MR.min(mc - p);
        for l in 0..kc {
            for r in 0..MR {
                out[idx] = if r < h {
                    alpha
                        * match op_a {
                            Op::NoTrans => a.at(ic + p + r, pc + l),
                            Op::Trans => a.at(pc + l, ic + p + r),
                        }
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        p += MR;
    }
}

/// Packs `op(B)[pc..pc+kc, jc..jc+nc]` into micro-panels of `NR` columns.
fn pack_b(b: &MatRef<'_>, op_b: Op, pc: usize, jc: usize, kc: usize, nc: usize, out: &mut [f64]) {
    let mut idx = 0;
    let mut p = 0;
    while p < nc {
        let w = NR.min(nc - p);
        for l in 0..kc {
            for cidx in 0..NR {
                out[idx] = if cidx < w {
                    match op_b {
                        Op::NoTrans => b.at(pc + l, jc + p + cidx),
                        Op::Trans => b.at(jc + p + cidx, pc + l),
                    }
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        p += NR;
    }
}

/// Runs the micro-kernel over all `(MR, NR)` tiles of the macro block.
fn macro_kernel(
    apack: &[f64],
    bpack: &[f64],
    mc: usize,
    nc: usize,
    kc: usize,
    ic: usize,
    jc: usize,
    c: &mut MatMut<'_>,
) {
    let mut jr = 0;
    while jr < nc {
        let w = NR.min(nc - jr);
        let bpanel = &bpack[(jr / NR) * NR * kc..];
        let mut ir = 0;
        while ir < mc {
            let h = MR.min(mc - ir);
            let apanel = &apack[(ir / MR) * MR * kc..];
            micro_kernel(apanel, bpanel, kc, h, w, ic + ir, jc + jr, c);
            ir += MR;
        }
        jr += NR;
    }
}

/// `MR × NR` register-blocked inner product over `kc`.
#[inline]
fn micro_kernel(
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    h: usize,
    w: usize,
    ci: usize,
    cj: usize,
    c: &mut MatMut<'_>,
) {
    let mut acc = [[0.0f64; NR]; MR];
    let a = &apanel[..kc * MR];
    let b = &bpanel[..kc * NR];
    for l in 0..kc {
        let av = [a[l * MR], a[l * MR + 1], a[l * MR + 2], a[l * MR + 3]];
        let bv = [b[l * NR], b[l * NR + 1], b[l * NR + 2], b[l * NR + 3]];
        for (ai, accr) in av.iter().zip(acc.iter_mut()) {
            accr[0] += ai * bv[0];
            accr[1] += ai * bv[1];
            accr[2] += ai * bv[2];
            accr[3] += ai * bv[3];
        }
    }
    for jj in 0..w {
        let col = c.col_mut(cj + jj);
        for (ii, accr) in acc.iter().enumerate().take(h) {
            col[ci + ii] += accr[jj];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level3::gemm;
    use tg_matrix::{gen, Mat};

    fn check(m: usize, n: usize, k: usize, op_a: Op, op_b: Op, seed: u64) {
        let (ar, ac) = if op_a == Op::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if op_b == Op::NoTrans { (k, n) } else { (n, k) };
        let a = gen::random(ar, ac, seed);
        let b = gen::random(br, bc, seed + 1);
        let c0 = gen::random(m, n, seed + 2);
        let mut c_ref = c0.clone();
        gemm(
            1.3,
            &a.as_ref(),
            op_a,
            &b.as_ref(),
            op_b,
            -0.5,
            &mut c_ref.as_mut(),
        );
        let mut c_pk = c0.clone();
        gemm_packed(
            1.3,
            &a.as_ref(),
            op_a,
            &b.as_ref(),
            op_b,
            -0.5,
            &mut c_pk.as_mut(),
        );
        assert!(
            tg_matrix::max_abs_diff(&c_ref, &c_pk) < 1e-10,
            "mismatch {m}x{n}x{k} {op_a:?}{op_b:?}: {}",
            tg_matrix::max_abs_diff(&c_ref, &c_pk)
        );
    }

    #[test]
    fn matches_reference_all_ops() {
        for (op_a, op_b) in [
            (Op::NoTrans, Op::NoTrans),
            (Op::NoTrans, Op::Trans),
            (Op::Trans, Op::NoTrans),
            (Op::Trans, Op::Trans),
        ] {
            check(7, 9, 5, op_a, op_b, 1);
            check(16, 16, 16, op_a, op_b, 2);
        }
    }

    #[test]
    fn ragged_tile_edges() {
        // sizes chosen to exercise every partial-tile branch
        check(1, 1, 1, Op::NoTrans, Op::NoTrans, 10);
        check(5, 3, 2, Op::NoTrans, Op::NoTrans, 11);
        check(MR + 1, NR + 3, KC + 7, Op::NoTrans, Op::NoTrans, 12);
        check(MC + 5, NR, 3, Op::Trans, Op::NoTrans, 13);
    }

    #[test]
    fn crosses_cache_blocks() {
        check(MC + 17, NC / 4 + 9, KC + 31, Op::NoTrans, Op::Trans, 20);
    }

    #[test]
    fn views_with_offsets() {
        let big_a = gen::random(40, 40, 30);
        let big_b = gen::random(40, 40, 31);
        let a = big_a.view(3, 5, 20, 12);
        let b = big_b.view(1, 2, 12, 18);
        let mut c1 = Mat::zeros(20, 18);
        gemm(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c1.as_mut());
        let mut c2 = Mat::zeros(20, 18);
        gemm_packed(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c2.as_mut());
        assert!(tg_matrix::max_abs_diff(&c1, &c2) < 1e-11);
    }

    #[test]
    fn alpha_beta_special_cases() {
        let a = gen::random(8, 8, 40);
        let b = gen::random(8, 8, 41);
        let c0 = gen::random(8, 8, 42);
        // alpha = 0 ⇒ C = beta·C
        let mut c = c0.clone();
        gemm_packed(
            0.0,
            &a.as_ref(),
            Op::NoTrans,
            &b.as_ref(),
            Op::NoTrans,
            2.0,
            &mut c.as_mut(),
        );
        for j in 0..8 {
            for i in 0..8 {
                assert!((c[(i, j)] - 2.0 * c0[(i, j)]).abs() < 1e-14);
            }
        }
    }
}
