//! BLAS level-3: general matrix-matrix multiply.
#![allow(clippy::needless_range_loop)] // index loops mirror the blocked-GEMM formulation
//!
//! [`gemm`] has a single dispatch at every thread count (see
//! `docs/PERFORMANCE.md` for the decision tree): compute-bound shapes go to
//! the packed register-blocked kernel in [`crate::pack`], which handles its
//! own `ic`-strip parallelism; only degenerate/skinny shapes fall back to
//! the column-oriented axpy kernel here, whose hot loops run over
//! contiguous column slices so bounds checks vanish (Rust Performance Book
//! guidance), with a rayon fan-out over output-column blocks above a size
//! threshold.

use rayon::prelude::*;
use tg_matrix::{Mat, MatMut, MatRef};

/// Transpose selector for [`gemm`] operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl Op {
    /// Rows of `op(A)` given the stored shape.
    #[inline]
    pub fn rows(self, a: &MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.nrows(),
            Op::Trans => a.ncols(),
        }
    }

    /// Columns of `op(A)` given the stored shape.
    #[inline]
    pub fn cols(self, a: &MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.ncols(),
            Op::Trans => a.nrows(),
        }
    }
}

/// Minimum output element count before the kernel fans out to rayon.
const PAR_THRESHOLD: usize = 128 * 128;

/// FLOP/byte accounting for one logical GEMM (`2mnk` flops; operands read
/// once, `C` read and written once). Counted at the leaf kernels only, so
/// blocked drivers that decompose into GEMM calls are not double-counted,
/// and the totals match the `gpu-sim` analytic formulas exactly.
#[inline]
fn count_gemm(m: usize, n: usize, k: usize) {
    if tg_trace::enabled() {
        tg_trace::add(tg_trace::Counter::Flops, 2 * (m * n * k) as u64);
        tg_trace::add(
            tg_trace::Counter::BytesRead,
            8 * (m * k + k * n + m * n) as u64,
        );
        tg_trace::add(tg_trace::Counter::BytesWritten, 8 * (m * n) as u64);
    }
}

/// Column-block width processed per parallel task.
const JB: usize = 64;

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Shapes: `op(A)` is `m × k`, `op(B)` is `k × n`, `C` is `m × n`.
pub fn gemm(
    alpha: f64,
    a: &MatRef<'_>,
    op_a: Op,
    b: &MatRef<'_>,
    op_b: Op,
    beta: f64,
    c: &mut MatMut<'_>,
) {
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    let n = op_b.cols(b);
    assert_eq!(op_b.rows(b), k, "inner dimensions disagree");
    assert_eq!(c.nrows(), m, "C row count");
    assert_eq!(c.ncols(), n, "C column count");

    if beta != 1.0 {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    count_gemm(m, n, k);

    // Compute-bound shapes go to the packed register-blocked kernel, which
    // parallelizes internally over ic strips; the thresholds keep tiny and
    // degenerate/skinny problems (where packing traffic would dominate) on
    // the column kernel. Trans×Trans always packs: pack_a/pack_b transpose
    // during the copy, so no op(A) materialization is needed.
    let work = m * n * k;
    if (work >= 32 * 32 * 32 && m.min(n).min(k) >= 8) || (op_a == Op::Trans && op_b == Op::Trans) {
        return crate::pack::gemm_packed(alpha, a, op_a, b, op_b, 1.0, c);
    }

    let elems = m * n;
    if elems >= PAR_THRESHOLD && crate::threads::gemm_threads() > 1 {
        // Split C into disjoint column blocks and process them in parallel.
        let region = tg_trace::RegionId::fresh();
        let _rspan = tg_trace::span_region(
            "parallel.gemm_cols",
            "region",
            Some(("n", n as u64)),
            region,
        );
        let blocks = par_col_blocks(c, JB);
        blocks.into_par_iter().for_each(|(j0, mut cb)| {
            let _g = crate::threads::enter_parallel_region();
            let _t =
                tg_trace::span_region("task.gemm_cols", "task", Some(("j0", j0 as u64)), region);
            gemm_block(alpha, a, op_a, b, op_b, j0, &mut cb);
        });
    } else {
        let j0 = 0;
        gemm_block(alpha, a, op_a, b, op_b, j0, c);
    }
}

/// The serial column-oriented axpy kernel, without trace counting: the
/// naive baseline `repro gemm_sweep` measures the packed kernel against.
/// Supports the three op combinations the column kernel implements
/// natively (everything except `Trans × Trans`).
pub fn gemm_axpy(
    alpha: f64,
    a: &MatRef<'_>,
    op_a: Op,
    b: &MatRef<'_>,
    op_b: Op,
    beta: f64,
    c: &mut MatMut<'_>,
) {
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    let n = op_b.cols(b);
    assert_eq!(op_b.rows(b), k, "inner dimensions disagree");
    assert_eq!(c.nrows(), m, "C row count");
    assert_eq!(c.ncols(), n, "C column count");
    if beta != 1.0 {
        for j in 0..n {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    gemm_block(alpha, a, op_a, b, op_b, 0, c);
}

/// Splits a mutable view into `(start_col, block)` pairs of width ≤ `jb`.
fn par_col_blocks<'a>(c: &'a mut MatMut<'_>, jb: usize) -> Vec<(usize, MatMut<'a>)> {
    let n = c.ncols();
    let mut out = Vec::with_capacity(n.div_ceil(jb));
    let mut rest = c.rb_mut();
    let mut j0 = 0;
    while j0 < n {
        let w = jb.min(n - j0);
        let (head, tail) = rest.split_at_col(w);
        out.push((j0, head));
        rest = tail;
        j0 += w;
    }
    out
}

/// Computes `C_block += α·op(A)·op(B)[:, j0..j0+nb]` where `cb` is the block
/// of `C` starting at global column `j0`.
fn gemm_block(
    alpha: f64,
    a: &MatRef<'_>,
    op_a: Op,
    b: &MatRef<'_>,
    op_b: Op,
    j0: usize,
    cb: &mut MatMut<'_>,
) {
    let m = cb.nrows();
    let nb = cb.ncols();
    let k = op_a.cols(a);
    match (op_a, op_b) {
        (Op::NoTrans, Op::NoTrans) => {
            // C[:,j] += α Σ_l A[:,l] · B[l,j]  — axpy per (l, j)
            for jj in 0..nb {
                let j = j0 + jj;
                let bj = b.col(j);
                let cj = cb.col_mut(jj);
                for l in 0..k {
                    let s = alpha * bj[l];
                    if s != 0.0 {
                        let al = a.col(l);
                        for i in 0..m {
                            cj[i] += s * al[i];
                        }
                    }
                }
            }
        }
        (Op::NoTrans, Op::Trans) => {
            // op(B)[l,j] = B[j,l]: same axpy pattern, B indexed by row.
            for jj in 0..nb {
                let j = j0 + jj;
                let cj = cb.col_mut(jj);
                for l in 0..k {
                    let s = alpha * b.at(j, l);
                    if s != 0.0 {
                        let al = a.col(l);
                        for i in 0..m {
                            cj[i] += s * al[i];
                        }
                    }
                }
            }
        }
        (Op::Trans, Op::NoTrans) => {
            // C[i,j] += α · dot(A[:,i], B[:,j]) — both unit stride.
            for jj in 0..nb {
                let j = j0 + jj;
                let bj = b.col(j);
                let cj = cb.col_mut(jj);
                for i in 0..m {
                    cj[i] += alpha * crate::level1::dot(a.col(i), bj);
                }
            }
        }
        (Op::Trans, Op::Trans) => unreachable!("TT dispatches to the packed kernel in gemm()"),
    }
}

/// Convenience: allocates and returns `α·op(A)·op(B)`.
pub fn gemm_into(alpha: f64, a: &MatRef<'_>, op_a: Op, b: &MatRef<'_>, op_b: Op) -> Mat {
    let m = op_a.rows(a);
    let n = op_b.cols(b);
    let mut c = Mat::zeros(m, n);
    gemm(alpha, a, op_a, b, op_b, 0.0, &mut c.as_mut());
    c
}

/// Reference triple-loop symmetric rank-2k update on the lower triangle:
/// `C ← β·C + α·(A Bᵀ + B Aᵀ)` where `A`, `B` are `n × k`.
///
/// Used to validate the blocked implementations in [`crate::syr2k`].
pub fn syr2k_ref(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, beta: f64, c: &mut MatMut<'_>) {
    let n = c.nrows();
    let k = a.ncols();
    assert_eq!(c.ncols(), n);
    assert_eq!(a.nrows(), n);
    assert_eq!(b.nrows(), n);
    assert_eq!(b.ncols(), k);
    if tg_trace::enabled() {
        // 4 flops per (lower-tri element, rank index): 2kn(n+1) total —
        // the same convention as `gpu-sim`'s syr2k_flops.
        tg_trace::add(tg_trace::Counter::Flops, 2 * (k * n * (n + 1)) as u64);
        tg_trace::add(
            tg_trace::Counter::BytesRead,
            8 * (2 * k * n * (n + 1) + n * (n + 1) / 2) as u64,
        );
        tg_trace::add(
            tg_trace::Counter::BytesWritten,
            8 * (n * (n + 1) / 2) as u64,
        );
    }
    for j in 0..n {
        for i in j..n {
            let mut s = 0.0;
            for l in 0..k {
                s += a.at(i, l) * b.at(j, l) + b.at(i, l) * a.at(j, l);
            }
            let v = c.at(i, j);
            *c.at_mut(i, j) = beta * v + alpha * s;
        }
    }
}

/// Symmetric-matrix × dense-matrix product using only the **lower** triangle
/// of `A`: `C ← α·A·B + β·C` with `A` symmetric `n × n`, `B`, `C` `n × k`.
pub fn symm_lower(alpha: f64, a: &MatRef<'_>, b: &MatRef<'_>, beta: f64, c: &mut MatMut<'_>) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(b.nrows(), n);
    assert_eq!(c.nrows(), n);
    assert_eq!(b.ncols(), c.ncols());
    if tg_trace::enabled() {
        let cols = c.ncols();
        tg_trace::add(tg_trace::Counter::Flops, 2 * (n * n * cols) as u64);
        tg_trace::add(
            tg_trace::Counter::BytesRead,
            8 * (cols * (n * n + 2 * n)) as u64,
        );
        tg_trace::add(tg_trace::Counter::BytesWritten, 8 * (cols * n) as u64);
    }
    for j in 0..c.ncols() {
        crate::level2::symv_lower(alpha, a, b.col(j), beta, c.col_mut(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    fn naive_gemm(a: &Mat, op_a: Op, b: &Mat, op_b: Op) -> Mat {
        let av = a.as_ref();
        let bv = b.as_ref();
        let m = op_a.rows(&av);
        let k = op_a.cols(&av);
        let n = op_b.cols(&bv);
        Mat::from_fn(m, n, |i, j| {
            (0..k)
                .map(|l| {
                    let x = match op_a {
                        Op::NoTrans => a[(i, l)],
                        Op::Trans => a[(l, i)],
                    };
                    let y = match op_b {
                        Op::NoTrans => b[(l, j)],
                        Op::Trans => b[(j, l)],
                    };
                    x * y
                })
                .sum()
        })
    }

    fn check_all_ops(m: usize, n: usize, k: usize, seed: u64) {
        for (op_a, sa) in [(Op::NoTrans, (m, k)), (Op::Trans, (k, m))] {
            for (op_b, sb) in [(Op::NoTrans, (k, n)), (Op::Trans, (n, k))] {
                let a = gen::random(sa.0, sa.1, seed);
                let b = gen::random(sb.0, sb.1, seed + 1);
                let c0 = gen::random(m, n, seed + 2);
                let mut c = c0.clone();
                gemm(
                    1.5,
                    &a.as_ref(),
                    op_a,
                    &b.as_ref(),
                    op_b,
                    0.5,
                    &mut c.as_mut(),
                );
                let p = naive_gemm(&a, op_a, &b, op_b);
                for j in 0..n {
                    for i in 0..m {
                        let expect = 1.5 * p[(i, j)] + 0.5 * c0[(i, j)];
                        assert!(
                            (c[(i, j)] - expect).abs() < 1e-11,
                            "op=({op_a:?},{op_b:?}) at ({i},{j}): {} vs {expect}",
                            c[(i, j)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_all_transpose_combos_small() {
        check_all_ops(5, 7, 4, 10);
        check_all_ops(1, 1, 1, 11);
        check_all_ops(8, 3, 9, 12);
    }

    #[test]
    fn gemm_rectangular_medium() {
        check_all_ops(33, 17, 21, 20);
    }

    #[test]
    fn gemm_parallel_path_matches() {
        // large enough to cross PAR_THRESHOLD
        let m = 150;
        let n = 150;
        let k = 40;
        let a = gen::random(m, k, 30);
        let b = gen::random(k, n, 31);
        let mut c = Mat::zeros(m, n);
        gemm(
            1.0,
            &a.as_ref(),
            Op::NoTrans,
            &b.as_ref(),
            Op::NoTrans,
            0.0,
            &mut c.as_mut(),
        );
        let p = naive_gemm(&a, Op::NoTrans, &b, Op::NoTrans);
        for j in 0..n {
            for i in 0..m {
                assert!((c[(i, j)] - p[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_on_views() {
        // multiply sub-blocks of larger matrices
        let big_a = gen::random(10, 10, 40);
        let big_b = gen::random(10, 10, 41);
        let a = big_a.view(2, 3, 4, 5);
        let b = big_b.view(1, 2, 5, 3);
        let c = gemm_into(1.0, &a, Op::NoTrans, &b, Op::NoTrans);
        for i in 0..4 {
            for j in 0..3 {
                let mut s = 0.0;
                for l in 0..5 {
                    s += big_a[(2 + i, 3 + l)] * big_b[(1 + l, 2 + j)];
                }
                assert!((c[(i, j)] - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN-initialized output … the classic
        // BLAS contract is beta==0 ⇒ C never read. Our kernel multiplies by
        // beta, so pre-fill with zeros in callers; here we check plain zeros.
        let a = gen::random(3, 3, 50);
        let b = gen::random(3, 3, 51);
        let mut c = Mat::zeros(3, 3);
        gemm(
            2.0,
            &a.as_ref(),
            Op::NoTrans,
            &b.as_ref(),
            Op::NoTrans,
            0.0,
            &mut c.as_mut(),
        );
        let p = naive_gemm(&a, Op::NoTrans, &b, Op::NoTrans);
        for j in 0..3 {
            for i in 0..3 {
                assert!((c[(i, j)] - 2.0 * p[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symm_lower_matches_dense() {
        let n = 8;
        let k = 3;
        let full = gen::random_symmetric(n, 70);
        let b = gen::random(n, k, 71);
        // blank upper triangle to prove it is never read
        let mut low = full.clone();
        for j in 0..n {
            for i in 0..j {
                low[(i, j)] = f64::NAN;
            }
        }
        let mut c = Mat::zeros(n, k);
        symm_lower(1.0, &low.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut());
        let expect = naive_gemm(&full, Op::NoTrans, &b, Op::NoTrans);
        for j in 0..k {
            for i in 0..n {
                assert!((c[(i, j)] - expect[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn syr2k_ref_rank2_identity() {
        // with k=1, syr2k is a rank-2 update: C = α(a bᵀ + b aᵀ)
        let n = 5;
        let a = gen::random(n, 1, 60);
        let b = gen::random(n, 1, 61);
        let mut c = Mat::zeros(n, n);
        syr2k_ref(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut());
        for j in 0..n {
            for i in j..n {
                let expect = a[(i, 0)] * b[(j, 0)] + b[(i, 0)] * a[(j, 0)];
                assert!((c[(i, j)] - expect).abs() < 1e-14);
            }
        }
    }
}
