//! # tg-blas
//!
//! Pure-Rust BLAS level 1/2/3 kernels over [`tg_matrix`] types.
//!
//! The level-3 module contains three `syr2k` implementations because the
//! paper's §5.1 contribution is precisely a re-blocked `syr2k`:
//!
//! * [`level3::syr2k_ref`] — triple-loop reference (used to validate the rest),
//! * [`syr2k::syr2k_blocked`] — conventional rectangular-strip blocking
//!   (what cuBLAS-style implementations do, per \[23\] in the paper),
//! * [`syr2k::syr2k_square`] — the paper's Figure-7 scheme: diagonal blocks
//!   first, then *paired* off-diagonal blocks merged into square GEMMs.
//!
//! All kernels operate on `f64` and follow LAPACK lower-triangle conventions
//! for symmetric updates.

pub mod batched;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod pack;
pub mod syr2k;
pub mod threads;
pub mod triangular;

pub use level3::{gemm, gemm_axpy, gemm_into, Op};
pub use pack::{gemm_packed, gemm_packed_with_threads};
pub use syr2k::{syr2k_blocked, syr2k_blocked_head, syr2k_square, syr2k_square_head};
pub use threads::{parse_tg_threads, try_worker_threads, worker_threads, ThreadsConfigError};
pub use triangular::potrf_lower;

/// Floating-point operation counts for the kernels in this crate, used by
/// the benchmark harness to report TFLOP-style rates consistently with the
/// paper (which counts a fused multiply-add as 2 flops).
pub mod flops {
    /// `C ← α·op(A)op(B) + β·C` with result `m × n` and inner dimension `k`.
    pub fn gemm(m: usize, n: usize, k: usize) -> u64 {
        2 * m as u64 * n as u64 * k as u64
    }

    /// Rank-2k symmetric update of an `n × n` matrix: `C ← C − Z Yᵀ − Y Zᵀ`.
    /// Only the referenced triangle is computed.
    pub fn syr2k(n: usize, k: usize) -> u64 {
        2 * k as u64 * n as u64 * (n as u64 + 1)
    }

    /// Full dense tridiagonalization of an `n × n` symmetric matrix.
    pub fn sytrd(n: usize) -> u64 {
        4 * (n as u64).pow(3) / 3
    }
}
