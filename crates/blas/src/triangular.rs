//! Triangular factorization and solves: Cholesky (`dpotrf`) and the `trsm`
//! variants the generalized eigenproblem reduction needs.

use tg_matrix::{Mat, MatMut};

/// Error from [`potrf_lower`]: the leading minor of this order is not
/// positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// 0-based index of the failing pivot.
    pub at: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.at)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix; the lower triangle of `a` is overwritten with `L` (the strict
/// upper triangle is left untouched).
pub fn potrf_lower(a: &mut Mat) -> Result<(), NotPositiveDefinite> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    for j in 0..n {
        // d = A[j][j] − Σ_k L[j][k]²
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= a[(j, k)] * a[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { at: j });
        }
        let ljj = d.sqrt();
        a[(j, j)] = ljj;
        // column update: L[i][j] = (A[i][j] − Σ_k L[i][k] L[j][k]) / L[j][j]
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = s / ljj;
        }
    }
    Ok(())
}

/// Solves `L X = B` in place (`L` lower triangular, unit or not by its own
/// diagonal): forward substitution, column by column of `B`.
pub fn trsm_lower_left(l: &Mat, b: &mut MatMut<'_>) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.nrows(), n);
    for j in 0..b.ncols() {
        let col = b.col_mut(j);
        for i in 0..n {
            let mut s = col[i];
            for k in 0..i {
                s -= l[(i, k)] * col[k];
            }
            col[i] = s / l[(i, i)];
        }
    }
}

/// Solves `Lᵀ X = B` in place: backward substitution.
pub fn trsm_lower_trans_left(l: &Mat, b: &mut MatMut<'_>) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.nrows(), n);
    for j in 0..b.ncols() {
        let col = b.col_mut(j);
        for i in (0..n).rev() {
            let mut s = col[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * col[k];
            }
            col[i] = s / l[(i, i)];
        }
    }
}

/// Solves `X Lᵀ = B` in place (rows of `B`): equivalent to solving
/// `L Xᵀ = Bᵀ` — forward substitution along the columns of `Bᵀ`.
pub fn trsm_lower_trans_right(l: &Mat, b: &mut MatMut<'_>) {
    let n = l.nrows();
    assert_eq!(l.ncols(), n);
    assert_eq!(b.ncols(), n);
    let m = b.nrows();
    // process column-index order j: X[:, j] = (B[:, j] − Σ_{k<j} X[:,k] L[j,k]) / L[j,j]
    for j in 0..n {
        let ljj = l[(j, j)];
        for i in 0..m {
            let mut s = b.at(i, j);
            for k in 0..j {
                s -= b.at(i, k) * l[(j, k)];
            }
            *b.at_mut(i, j) = s / ljj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, Op};
    use tg_matrix::{gen, max_abs_diff};

    #[test]
    fn cholesky_reconstructs() {
        let n = 12;
        let a0 = gen::random_spd(n, 1);
        let mut l = a0.clone();
        potrf_lower(&mut l).unwrap();
        // zero the upper part before L Lᵀ
        let lclean = mat_lower(&l);
        let mut llt = tg_matrix::Mat::zeros(n, n);
        gemm(
            1.0,
            &lclean.as_ref(),
            Op::NoTrans,
            &lclean.as_ref(),
            Op::Trans,
            0.0,
            &mut llt.as_mut(),
        );
        assert!(max_abs_diff(&llt, &a0) < 1e-10 * n as f64);
    }

    fn mat_lower(a: &tg_matrix::Mat) -> tg_matrix::Mat {
        let n = a.nrows();
        tg_matrix::Mat::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { 0.0 })
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = tg_matrix::Mat::identity(4);
        a[(2, 2)] = -1.0;
        let e = potrf_lower(&mut a).unwrap_err();
        assert_eq!(e.at, 2);
    }

    #[test]
    fn solves_invert_each_other() {
        let n = 10;
        let mut spd = gen::random_spd(n, 5);
        potrf_lower(&mut spd).unwrap();
        let l = mat_lower(&spd);
        let x0 = gen::random(n, 4, 6);
        // L (L⁻¹ X) == X
        let mut y = x0.clone();
        trsm_lower_left(&l, &mut y.as_mut());
        let ly = crate::gemm_into(1.0, &l.as_ref(), Op::NoTrans, &y.as_ref(), Op::NoTrans);
        assert!(max_abs_diff(&ly, &x0) < 1e-10);
        // Lᵀ (L⁻ᵀ X) == X
        let mut z = x0.clone();
        trsm_lower_trans_left(&l, &mut z.as_mut());
        let ltz = crate::gemm_into(1.0, &l.as_ref(), Op::Trans, &z.as_ref(), Op::NoTrans);
        assert!(max_abs_diff(&ltz, &x0) < 1e-10);
        // (X L⁻ᵀ) Lᵀ == X
        let w0 = gen::random(3, n, 7);
        let mut w = w0.clone();
        trsm_lower_trans_right(&l, &mut w.as_mut());
        let wlt = crate::gemm_into(1.0, &w.as_ref(), Op::NoTrans, &l.as_ref(), Op::Trans);
        assert!(max_abs_diff(&wlt, &w0) < 1e-10);
    }
}
