//! Batched GEMM — many independent small multiplies dispatched together.
//!
//! The paper's Figure-13 back transformation forms progressively larger `W`
//! blocks by merging pairs in parallel with batched GEMM; this module is the
//! CPU analogue of that cuBLAS batched call.

use crate::level3::{gemm, Op};
use rayon::prelude::*;
use tg_matrix::Mat;

/// One GEMM problem in a batch: `C ← α·op(A)·op(B) + β·C`.
pub struct GemmJob<'a> {
    pub alpha: f64,
    pub a: &'a Mat,
    pub op_a: Op,
    pub b: &'a Mat,
    pub op_b: Op,
    pub beta: f64,
    pub c: &'a mut Mat,
}

/// Executes every job in the batch, in parallel when the batch is non-trivial.
///
/// Jobs run inside a parallel region (see [`crate::threads`]), so the GEMM
/// inside each job stays serial — the parallelism budget is spent across
/// the batch, not inside one member. A single-job "batch" runs inline and
/// keeps the full intra-GEMM fan-out.
pub fn gemm_batched(jobs: Vec<GemmJob<'_>>) {
    if jobs.len() <= 1 {
        for j in jobs {
            run(j);
        }
    } else {
        let region = tg_trace::RegionId::fresh();
        let _rspan = tg_trace::span_region(
            "parallel.gemm_batched",
            "region",
            Some(("jobs", jobs.len() as u64)),
            region,
        );
        jobs.into_par_iter().enumerate().for_each(|(i, j)| {
            let _g = crate::threads::enter_parallel_region();
            let _t =
                tg_trace::span_region("task.gemm_job", "task", Some(("job", i as u64)), region);
            run(j);
        });
    }
}

fn run(j: GemmJob<'_>) {
    let GemmJob {
        alpha,
        a,
        op_a,
        b,
        op_b,
        beta,
        c,
    } = j;
    gemm(
        alpha,
        &a.as_ref(),
        op_a,
        &b.as_ref(),
        op_b,
        beta,
        &mut c.as_mut(),
    );
}

/// Uniform batched GEMM over parallel slices:
/// `C[i] ← α·op(A[i])·op(B[i]) + β·C[i]` for every `i`.
pub fn gemm_batched_uniform(
    alpha: f64,
    a: &[Mat],
    op_a: Op,
    b: &[Mat],
    op_b: Op,
    beta: f64,
    c: &mut [Mat],
) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let region = tg_trace::RegionId::fresh();
    let _rspan = tg_trace::span_region(
        "parallel.gemm_batched",
        "region",
        Some(("jobs", c.len() as u64)),
        region,
    );
    c.par_iter_mut().enumerate().for_each(|(i, ci)| {
        let _g = crate::threads::enter_parallel_region();
        let _t = tg_trace::span_region("task.gemm_job", "task", Some(("job", i as u64)), region);
        gemm(
            alpha,
            &a[i].as_ref(),
            op_a,
            &b[i].as_ref(),
            op_b,
            beta,
            &mut ci.as_mut(),
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::gen;

    #[test]
    fn uniform_batch_matches_singles() {
        let batch = 5;
        let a: Vec<Mat> = (0..batch).map(|i| gen::random(4, 3, i as u64)).collect();
        let b: Vec<Mat> = (0..batch)
            .map(|i| gen::random(3, 6, 100 + i as u64))
            .collect();
        let mut c: Vec<Mat> = (0..batch).map(|_| Mat::zeros(4, 6)).collect();
        gemm_batched_uniform(1.0, &a, Op::NoTrans, &b, Op::NoTrans, 0.0, &mut c);
        for i in 0..batch {
            let expect = crate::level3::gemm_into(
                1.0,
                &a[i].as_ref(),
                Op::NoTrans,
                &b[i].as_ref(),
                Op::NoTrans,
            );
            for jj in 0..6 {
                for ii in 0..4 {
                    assert!((c[i][(ii, jj)] - expect[(ii, jj)]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn heterogeneous_jobs() {
        let a1 = gen::random(2, 2, 1);
        let b1 = gen::random(2, 2, 2);
        let mut c1 = Mat::zeros(2, 2);
        let a2 = gen::random(5, 3, 3);
        let b2 = gen::random(5, 3, 4);
        let mut c2 = Mat::zeros(3, 3);
        gemm_batched(vec![
            GemmJob {
                alpha: 1.0,
                a: &a1,
                op_a: Op::NoTrans,
                b: &b1,
                op_b: Op::NoTrans,
                beta: 0.0,
                c: &mut c1,
            },
            GemmJob {
                alpha: 2.0,
                a: &a2,
                op_a: Op::Trans,
                b: &b2,
                op_b: Op::NoTrans,
                beta: 0.0,
                c: &mut c2,
            },
        ]);
        let e1 =
            crate::level3::gemm_into(1.0, &a1.as_ref(), Op::NoTrans, &b1.as_ref(), Op::NoTrans);
        let e2 = crate::level3::gemm_into(2.0, &a2.as_ref(), Op::Trans, &b2.as_ref(), Op::NoTrans);
        for j in 0..2 {
            for i in 0..2 {
                assert!((c1[(i, j)] - e1[(i, j)]).abs() < 1e-13);
            }
        }
        for j in 0..3 {
            for i in 0..3 {
                assert!((c2[(i, j)] - e2[(i, j)]).abs() < 1e-13);
            }
        }
    }
}
