//! The workspace's single source of truth for worker-thread counts, plus
//! the nested-parallelism guard used by every parallel kernel in this crate.
//!
//! Everything that sizes a worker pool or *reports* a thread count — the
//! packed-GEMM driver, the `syr2k` super-block grid, `tg_batch`'s
//! `BatchScheduler` default, `tridiag info`/`tridiag batch`, the benches —
//! goes through [`worker_threads`] instead of reading
//! `rayon::current_num_threads` (or `available_parallelism`) ad hoc, so a
//! single `TG_THREADS` override steers every component consistently. (The
//! helper lives here rather than in `tg-batch`, where it was born, because
//! the BLAS dispatch needs it and `tg-batch` already depends on `tg-blas`;
//! `tg_batch::worker_threads` re-exports this one.)
//!
//! The region guard exists because parallel kernels compose: a batched-EVD
//! worker calls `syr2k_square`, whose super-block tasks call `gemm`. Letting
//! every layer fan out multiplies thread counts (workers × blocks × GEMM
//! strips) without adding parallelism — the machine has the same number of
//! cores. Each parallel driver therefore marks its worker closures with
//! [`enter_parallel_region`]; inner kernels consult [`in_parallel_region`]
//! and run serially. This is purely a scheduling decision: the serial and
//! parallel code paths of every kernel in this crate are bitwise-identical.

use std::cell::Cell;

/// Rejected `TG_THREADS` configuration.
///
/// The kernels themselves tolerate a garbage `TG_THREADS` (they fall back
/// to the auto thread count — see [`worker_threads`]), but a long-running
/// service must not silently run with a config the operator mistyped:
/// `tg-serve` calls [`try_worker_threads`] at startup and refuses to start
/// on `Err`, turning the typo into a clean boot-time error instead of a
/// surprise thread count mid-request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadsConfigError {
    /// `TG_THREADS` was set but did not parse as an unsigned integer.
    NotANumber { value: String },
    /// `TG_THREADS=0`: a worker pool needs at least one thread.
    Zero,
}

impl std::fmt::Display for ThreadsConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadsConfigError::NotANumber { value } => {
                write!(f, "TG_THREADS={value:?} is not a positive integer")
            }
            ThreadsConfigError::Zero => {
                write!(
                    f,
                    "TG_THREADS=0 is invalid: a worker pool needs at least one thread"
                )
            }
        }
    }
}

impl std::error::Error for ThreadsConfigError {}

/// Parses a raw `TG_THREADS` value. `None` (unset) and empty/whitespace
/// strings mean "no override" (`Ok(None)`); anything else must be a
/// positive integer (surrounding whitespace tolerated).
pub fn parse_tg_threads(raw: Option<&str>) -> Result<Option<usize>, ThreadsConfigError> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(ThreadsConfigError::Zero),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(ThreadsConfigError::NotANumber {
            value: raw.to_string(),
        }),
    }
}

/// Worker-thread count with *strict* `TG_THREADS` handling: a set-but-
/// invalid override is a typed error rather than a silent fallback.
/// Startup-validated components (the `tg-serve` job service) use this;
/// ad-hoc kernels keep the lenient [`worker_threads`].
pub fn try_worker_threads() -> Result<usize, ThreadsConfigError> {
    let var = std::env::var("TG_THREADS").ok();
    Ok(parse_tg_threads(var.as_deref())?.unwrap_or_else(rayon::current_num_threads))
}

/// Number of worker threads to use by default.
///
/// Resolution order:
/// 1. the `TG_THREADS` environment variable, if set to a positive integer;
/// 2. the runtime's thread count (`rayon::current_num_threads`, which the
///    offline shim backs with `available_parallelism`).
///
/// Invalid overrides fall back to (2); use [`try_worker_threads`] to
/// reject them instead.
pub fn worker_threads() -> usize {
    try_worker_threads().unwrap_or_else(|_| rayon::current_num_threads())
}

/// One-line human-readable description for CLI/bench headers, e.g.
/// `"4 (TG_THREADS)"` or `"8 (auto)"`.
pub fn describe() -> String {
    let n = worker_threads();
    let var = std::env::var("TG_THREADS").ok();
    let source = match parse_tg_threads(var.as_deref()) {
        Ok(Some(_)) => "TG_THREADS",
        _ => "auto",
    };
    format!("{n} ({source})")
}

thread_local! {
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is already executing inside a parallel
/// worker closure (a `syr2k` super-block task, a batched-GEMM job, a batch
/// scheduler worker). Parallel drivers check this and run serially instead
/// of fanning out a second level of threads.
#[inline]
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|f| f.get())
}

/// Marks the current thread as inside a parallel worker for the lifetime of
/// the returned guard. Nested guards are fine: the flag is restored to its
/// previous value on drop.
pub fn enter_parallel_region() -> RegionGuard {
    let prev = IN_PARALLEL_REGION.with(|f| f.replace(true));
    RegionGuard { prev }
}

/// RAII token from [`enter_parallel_region`].
pub struct RegionGuard {
    prev: bool,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        IN_PARALLEL_REGION.with(|f| f.set(self.prev));
    }
}

/// Thread count the GEMM/syr2k drivers should fan out to *right now*:
/// [`worker_threads`] normally, `1` when already inside a parallel region.
#[inline]
pub fn gemm_threads() -> usize {
    if in_parallel_region() {
        1
    } else {
        worker_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_thread_count() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn describe_mentions_count() {
        let d = describe();
        assert!(d.contains(&worker_threads().to_string()), "{d}");
    }

    #[test]
    fn parse_edge_cases() {
        // unset / blank → no override
        assert_eq!(parse_tg_threads(None), Ok(None));
        assert_eq!(parse_tg_threads(Some("")), Ok(None));
        assert_eq!(parse_tg_threads(Some("   ")), Ok(None));
        // valid values, with surrounding whitespace tolerated
        assert_eq!(parse_tg_threads(Some("1")), Ok(Some(1)));
        assert_eq!(parse_tg_threads(Some(" 8 ")), Ok(Some(8)));
        // zero is a typed error, not a silent fallback
        assert_eq!(parse_tg_threads(Some("0")), Err(ThreadsConfigError::Zero));
        assert_eq!(parse_tg_threads(Some(" 0 ")), Err(ThreadsConfigError::Zero));
        // garbage is a typed error carrying the offending value
        for bad in ["abc", "-1", "1.5", "4x", "0x10", "١٢"] {
            assert_eq!(
                parse_tg_threads(Some(bad)),
                Err(ThreadsConfigError::NotANumber {
                    value: bad.to_string()
                }),
                "input {bad:?}"
            );
        }
        // errors render something an operator can act on
        let e = parse_tg_threads(Some("abc")).unwrap_err();
        assert!(e.to_string().contains("abc"), "{e}");
        assert!(ThreadsConfigError::Zero.to_string().contains('0'));
    }

    #[test]
    fn try_worker_threads_matches_lenient_when_env_is_sane() {
        // Without mutating process env (parallel tests), only check the
        // two resolvers agree whenever the strict one succeeds.
        if let Ok(n) = try_worker_threads() {
            assert_eq!(n, worker_threads());
            assert!(n >= 1);
        }
    }

    #[test]
    fn region_guard_nests_and_restores() {
        assert!(!in_parallel_region());
        {
            let _g1 = enter_parallel_region();
            assert!(in_parallel_region());
            assert_eq!(gemm_threads(), 1);
            {
                let _g2 = enter_parallel_region();
                assert!(in_parallel_region());
            }
            assert!(in_parallel_region());
        }
        assert!(!in_parallel_region());
    }

    #[test]
    fn region_flag_is_per_thread() {
        let _g = enter_parallel_region();
        std::thread::spawn(|| assert!(!in_parallel_region()))
            .join()
            .unwrap();
    }
}
