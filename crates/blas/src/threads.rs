//! The workspace's single source of truth for worker-thread counts, plus
//! the nested-parallelism guard used by every parallel kernel in this crate.
//!
//! Everything that sizes a worker pool or *reports* a thread count — the
//! packed-GEMM driver, the `syr2k` super-block grid, `tg_batch`'s
//! `BatchScheduler` default, `tridiag info`/`tridiag batch`, the benches —
//! goes through [`worker_threads`] instead of reading
//! `rayon::current_num_threads` (or `available_parallelism`) ad hoc, so a
//! single `TG_THREADS` override steers every component consistently. (The
//! helper lives here rather than in `tg-batch`, where it was born, because
//! the BLAS dispatch needs it and `tg-batch` already depends on `tg-blas`;
//! `tg_batch::worker_threads` re-exports this one.)
//!
//! The region guard exists because parallel kernels compose: a batched-EVD
//! worker calls `syr2k_square`, whose super-block tasks call `gemm`. Letting
//! every layer fan out multiplies thread counts (workers × blocks × GEMM
//! strips) without adding parallelism — the machine has the same number of
//! cores. Each parallel driver therefore marks its worker closures with
//! [`enter_parallel_region`]; inner kernels consult [`in_parallel_region`]
//! and run serially. This is purely a scheduling decision: the serial and
//! parallel code paths of every kernel in this crate are bitwise-identical.

use std::cell::Cell;

/// Number of worker threads to use by default.
///
/// Resolution order:
/// 1. the `TG_THREADS` environment variable, if set to a positive integer;
/// 2. the runtime's thread count (`rayon::current_num_threads`, which the
///    offline shim backs with `available_parallelism`).
pub fn worker_threads() -> usize {
    std::env::var("TG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(rayon::current_num_threads)
}

/// One-line human-readable description for CLI/bench headers, e.g.
/// `"4 (TG_THREADS)"` or `"8 (auto)"`.
pub fn describe() -> String {
    let n = worker_threads();
    let source = if std::env::var("TG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .is_some()
    {
        "TG_THREADS"
    } else {
        "auto"
    };
    format!("{n} ({source})")
}

thread_local! {
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is already executing inside a parallel
/// worker closure (a `syr2k` super-block task, a batched-GEMM job, a batch
/// scheduler worker). Parallel drivers check this and run serially instead
/// of fanning out a second level of threads.
#[inline]
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(|f| f.get())
}

/// Marks the current thread as inside a parallel worker for the lifetime of
/// the returned guard. Nested guards are fine: the flag is restored to its
/// previous value on drop.
pub fn enter_parallel_region() -> RegionGuard {
    let prev = IN_PARALLEL_REGION.with(|f| f.replace(true));
    RegionGuard { prev }
}

/// RAII token from [`enter_parallel_region`].
pub struct RegionGuard {
    prev: bool,
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        IN_PARALLEL_REGION.with(|f| f.set(self.prev));
    }
}

/// Thread count the GEMM/syr2k drivers should fan out to *right now*:
/// [`worker_threads`] normally, `1` when already inside a parallel region.
#[inline]
pub fn gemm_threads() -> usize {
    if in_parallel_region() {
        1
    } else {
        worker_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_thread_count() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn describe_mentions_count() {
        let d = describe();
        assert!(d.contains(&worker_threads().to_string()), "{d}");
    }

    #[test]
    fn region_guard_nests_and_restores() {
        assert!(!in_parallel_region());
        {
            let _g1 = enter_parallel_region();
            assert!(in_parallel_region());
            assert_eq!(gemm_threads(), 1);
            {
                let _g2 = enter_parallel_region();
                assert!(in_parallel_region());
            }
            assert!(in_parallel_region());
        }
        assert!(!in_parallel_region());
    }

    #[test]
    fn region_flag_is_per_thread() {
        let _g = enter_parallel_region();
        std::thread::spawn(|| assert!(!in_parallel_region()))
            .join()
            .unwrap();
    }
}
