//! Panel QR factorization — the `PanelQR` step of Figure 2 / Algorithm 1.
//!
//! [`geqr2`] is the unblocked in-place factorization (LAPACK `dgeqr2`);
//! [`panel_qr`] wraps it and returns the compact-WY block, leaving `R` in
//! the panel's upper triangle; [`geqrf_blocked`] is a full blocked QR used
//! in tests to validate WY application machinery end-to-end.

use crate::reflector::{apply_left, make_reflector};
use crate::wy::WyBlock;
use tg_matrix::{Mat, MatMut};

/// Unblocked in-place QR of an `m × k` panel (`m ≥ k`): on return the upper
/// triangle holds `R`, the strict lower trapezoid holds the reflector tails,
/// and `taus` holds the `τ`s.
pub fn geqr2(a: &mut MatMut<'_>, taus: &mut [f64]) {
    let m = a.nrows();
    let k = a.ncols();
    let kr = m.min(k); // number of reflectors (wide panels allowed)
    assert_eq!(taus.len(), kr);
    for j in 0..kr {
        // reflector from A[j.., j]
        let r = {
            let col = a.col_mut(j);
            make_reflector(&mut col[j..])
        };
        taus[j] = r.tau;
        if j + 1 < k {
            // apply to trailing columns A[j.., j+1..]
            // (split borrows: copy the tail of v out — length ≤ m, panel-local)
            let v_tail: Vec<f64> = a.col(j)[j + 1..].to_vec();
            let mut trail = a.rb_mut().submatrix_mut(j, j + 1, m - j, k - j - 1);
            apply_left(r.tau, &v_tail, &mut trail);
        }
        *a.at_mut(j, j) = r.beta;
    }
}

/// Result of [`panel_qr`].
pub struct PanelQr {
    /// Compact-WY block for `Q = H₁⋯H_kr = I − V T Vᵀ`
    /// (`kr = min(m, k)` reflectors).
    pub block: WyBlock,
    /// The `kr × k` upper-trapezoidal `R` factor.
    pub r: Mat,
}

/// QR-factorizes the panel in place and returns the WY block plus `R`.
///
/// The panel is overwritten like `dgeqrf` (R above, reflectors below);
/// the returned `V` is an explicit unit-lower-trapezoidal copy. Wide panels
/// (`m < k`) produce `m` reflectors and an upper-trapezoidal `R`.
pub fn panel_qr(panel: &mut MatMut<'_>) -> PanelQr {
    let m = panel.nrows();
    let k = panel.ncols();
    let kr = m.min(k);
    let mut taus = vec![0.0; kr];
    geqr2(panel, &mut taus);
    // explicit V
    let mut v = Mat::zeros(m, kr);
    for j in 0..kr {
        v[(j, j)] = 1.0;
        let col = panel.col(j);
        for i in (j + 1)..m {
            v[(i, j)] = col[i];
        }
    }
    let mut r = Mat::zeros(kr, k);
    for j in 0..k {
        for i in 0..=j.min(kr - 1) {
            r[(i, j)] = panel.at(i, j);
        }
    }
    PanelQr {
        block: WyBlock::from_v_taus(v, &taus),
        r,
    }
}

/// Blocked QR of a full `m × n` matrix (`m ≥ n`), returning one WY block per
/// panel. Block `i` acts on rows `i·nb ..` of the matrix.
pub fn geqrf_blocked(a: &mut Mat, nb: usize) -> Vec<WyBlock> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n);
    let mut blocks = Vec::with_capacity(n.div_ceil(nb));
    let mut j = 0;
    while j < n {
        let w = nb.min(n - j);
        let pq = {
            let mut panel = a.view_mut(j, j, m - j, w);
            panel_qr(&mut panel)
        };
        if j + w < n {
            let mut trail = a.view_mut(j, j + w, m - j, n - j - w);
            pq.block.apply_left(&mut trail, true); // C ← Qᵀ C
        }
        blocks.push(pq.block);
        j += w;
    }
    blocks
}

/// Materializes `Q` from the blocks of [`geqrf_blocked`] (`Q = Q₁ Q₂ ⋯`).
pub fn form_q(m: usize, blocks: &[WyBlock], nb: usize) -> Mat {
    let mut q = Mat::identity(m);
    for (i, blk) in blocks.iter().enumerate().rev() {
        let off = i * nb;
        let mut sub = q.view_mut(off, 0, m - off, m);
        blk.apply_left(&mut sub, false);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_blas::{gemm, Op};
    use tg_matrix::{gen, max_abs_diff, orthogonality_residual};

    fn check_qr(m: usize, n: usize, nb: usize, seed: u64) {
        let a0 = gen::random(m, n, seed);
        let mut a = a0.clone();
        let blocks = geqrf_blocked(&mut a, nb);
        let q = form_q(m, &blocks, nb);
        assert!(orthogonality_residual(&q) < 1e-13, "Q orthogonality");
        // R = upper triangle of the factored matrix
        let r = Mat::from_fn(m, n, |i, j| if i <= j { a[(i, j)] } else { 0.0 });
        // A ?= Q R
        let mut qr = Mat::zeros(m, n);
        gemm(
            1.0,
            &q.as_ref(),
            Op::NoTrans,
            &r.as_ref(),
            Op::NoTrans,
            0.0,
            &mut qr.as_mut(),
        );
        assert!(
            max_abs_diff(&qr, &a0) < 1e-12 * (m as f64),
            "A = QR failed for {m}x{n} nb={nb}"
        );
    }

    #[test]
    fn unblocked_panel_reconstructs() {
        let m = 9;
        let k = 4;
        let a0 = gen::random(m, k, 21);
        let mut a = a0.clone();
        let pq = {
            let mut v = a.as_mut();
            panel_qr(&mut v)
        };
        // A = Q [R; 0]
        let q = pq.block.to_q();
        let mut rfull = Mat::zeros(m, k);
        for j in 0..k {
            for i in 0..=j {
                rfull[(i, j)] = pq.r[(i, j)];
            }
        }
        let mut qr = Mat::zeros(m, k);
        gemm(
            1.0,
            &q.as_ref(),
            Op::NoTrans,
            &rfull.as_ref(),
            Op::NoTrans,
            0.0,
            &mut qr.as_mut(),
        );
        assert!(max_abs_diff(&qr, &a0) < 1e-12);
    }

    #[test]
    fn blocked_qr_various_shapes() {
        check_qr(12, 12, 4, 30);
        check_qr(20, 8, 3, 31); // ragged blocks
        check_qr(15, 15, 16, 32); // single block
        check_qr(7, 1, 2, 33); // single column
    }

    #[test]
    fn r_is_upper_triangular_with_expected_norms() {
        // QR of an orthogonal matrix gives R = diag(±1)
        let q0 = gen::random_orthogonal(8, 40);
        let mut a = q0.clone();
        let _ = geqrf_blocked(&mut a, 3);
        for j in 0..8 {
            assert!((a[(j, j)].abs() - 1.0).abs() < 1e-12, "diag {j}");
            // below-diagonal holds reflector tails, not R — only check above
            for i in 0..j {
                // R's strictly-upper part of an orthogonal input ~ 0
                assert!(a[(i, j)].abs() < 1e-12, "upper ({i},{j})");
            }
        }
    }

    #[test]
    fn wide_panel_qr() {
        // m < k: kr = m reflectors, R upper-trapezoidal, A = Q [R]
        let m = 3;
        let k = 5;
        let a0 = gen::random(m, k, 90);
        let mut a = a0.clone();
        let pq = {
            let mut v = a.as_mut();
            panel_qr(&mut v)
        };
        assert_eq!(pq.block.k(), m);
        assert_eq!(pq.r.nrows(), m);
        assert_eq!(pq.r.ncols(), k);
        let q = pq.block.to_q();
        assert!(orthogonality_residual(&q) < 1e-13);
        let mut qr = Mat::zeros(m, k);
        gemm(
            1.0,
            &q.as_ref(),
            Op::NoTrans,
            &pq.r.as_ref(),
            Op::NoTrans,
            0.0,
            &mut qr.as_mut(),
        );
        assert!(max_abs_diff(&qr, &a0) < 1e-12);
    }

    #[test]
    fn qr_of_rank_deficient_panel_is_stable() {
        // two identical columns: R[1,1] ≈ 0, no NaNs
        let m = 6;
        let mut a = Mat::zeros(m, 2);
        for i in 0..m {
            a[(i, 0)] = (i + 1) as f64;
            a[(i, 1)] = (i + 1) as f64;
        }
        let pq = {
            let mut v = a.as_mut();
            panel_qr(&mut v)
        };
        assert!(pq.r[(1, 1)].abs() < 1e-12);
        assert!(pq.block.to_q().as_slice().iter().all(|x| x.is_finite()));
    }
}
