//! The workspace-pool trait used by every `_ws` kernel variant.
//!
//! The trait was born in `tridiag-core::workspace` (PR 2) next to the
//! band-reduction kernels that first consumed it, but the blocked back
//! transformation pushed pooled scratch *below* the core crate: the
//! [`crate::wblock`] merge/apply kernels need their `S`, `W₂'` and `WᵀC`
//! intermediates from the pool too, and `tg-householder` sits underneath
//! `tridiag-core` in the dependency graph. The trait therefore lives here —
//! the lowest crate that needs it — and `tridiag_core::WorkspacePool`
//! re-exports it, so existing callers and implementors (`AllocPool`, the
//! `tg-batch` arena) are unaffected.
//!
//! **Determinism contract:** a pool must return buffers that are
//! *bitwise-zero*, exactly like `Mat::zeros`. Under that contract the
//! workspace-taking variants perform the identical floating-point
//! operations as the allocating ones, so their outputs are
//! bitwise-identical regardless of which pool is used.

use tg_matrix::Mat;

/// Supplies zeroed scratch matrices and accepts them back for reuse.
///
/// Implementations must return buffers indistinguishable from
/// `Mat::zeros(rows, cols)`; everything else (caching policy, accounting,
/// debug poisoning) is up to the pool.
pub trait WorkspacePool {
    /// Returns a zero-filled `rows × cols` matrix.
    fn acquire(&mut self, rows: usize, cols: usize) -> Mat;

    /// Hands a no-longer-needed buffer back to the pool. The pool may
    /// recycle or drop it; the contents are dead.
    fn release(&mut self, m: Mat);
}
