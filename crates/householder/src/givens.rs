//! Givens plane rotations (`dlartg` analogue).
//!
//! The rotation `G = [[c, s], [−s, c]]` is chosen so that
//! `Gᵀ [a, b]ᵀ = [r, 0]ᵀ`. Used by the Givens tridiagonalization baseline
//! and available to downstream band algorithms.

/// A plane rotation: `c = cos θ`, `s = sin θ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Givens {
    pub c: f64,
    pub s: f64,
    /// `r = ±√(a² + b²)`, the value that replaces `a`.
    pub r: f64,
}

/// Computes the rotation annihilating `b` against `a` (overflow-safe).
pub fn make_givens(a: f64, b: f64) -> Givens {
    if b == 0.0 {
        return Givens {
            c: 1.0,
            s: 0.0,
            r: a,
        };
    }
    if a == 0.0 {
        return Givens {
            c: 0.0,
            s: 1.0,
            r: b,
        };
    }
    let scale = a.abs().max(b.abs());
    let (an, bn) = (a / scale, b / scale);
    let r = scale * (an * an + bn * bn).sqrt() * a.signum();
    Givens {
        c: a / r,
        s: b / r,
        r,
    }
}

impl Givens {
    /// Applies `Gᵀ` to the element pair `(x, y)`:
    /// `(c·x + s·y, −s·x + c·y)`.
    #[inline]
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x + self.s * y, -self.s * x + self.c * y)
    }

    /// Applies the rotation to two rows of equal-length slices.
    pub fn apply_rows(&self, x: &mut [f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
            let (nx, ny) = self.apply(*xi, *yi);
            *xi = nx;
            *yi = ny;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annihilates_second_component() {
        for (a, b) in [
            (3.0, 4.0),
            (-1.0, 2.0),
            (1e-300, 1e-300),
            (5.0, 0.0),
            (0.0, 2.0),
        ] {
            let g = make_givens(a, b);
            let (r, z) = g.apply(a, b);
            assert!(
                (r - g.r).abs() <= 1e-12 * g.r.abs().max(1e-300),
                "r for ({a},{b})"
            );
            assert!(z.abs() <= 1e-12 * g.r.abs().max(1e-300), "z for ({a},{b})");
            // orthogonality: c² + s² = 1
            assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn preserves_norms() {
        let g = make_givens(0.3, -0.7);
        let (x, y) = (1.5, -2.5);
        let (nx, ny) = g.apply(x, y);
        assert!((nx * nx + ny * ny - (x * x + y * y)).abs() < 1e-12);
    }

    #[test]
    fn overflow_safe() {
        let g = make_givens(1e300, 1e300);
        assert!(g.r.is_finite());
        assert!((g.c - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn row_application() {
        let g = make_givens(1.0, 1.0);
        let mut x = vec![1.0, 0.0];
        let mut y = vec![1.0, 2.0];
        g.apply_rows(&mut x, &mut y);
        assert!((x[0] - 2.0f64.sqrt()).abs() < 1e-14);
        assert!(y[0].abs() < 1e-14);
    }
}
