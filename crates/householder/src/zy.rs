//! ZY representation for two-sided symmetric updates (Equation 1).
//!
//! After a panel QR produces `Q = I − W Yᵀ`, the similarity transform of the
//! symmetric trailing matrix `A ← Qᵀ A Q` can be written as a rank-2k update
//!
//! ```text
//! Z  = A W − ½ Y (Wᵀ A W)
//! A ← A − Z Yᵀ − Y Zᵀ            (syr2k!)
//! ```
//!
//! which is the entire reason two-stage tridiagonalization is BLAS-3 rich.

use tg_blas::level3::symm_lower;
use tg_blas::{gemm, gemm_into, Op};
use tg_matrix::{Mat, MatRef};

/// Computes `Z = A W − ½ Y (Wᵀ A W)` where `A` is symmetric (lower triangle
/// referenced), `W`, `Y` are `n × k`.
pub fn compute_z(a: &MatRef<'_>, w: &MatRef<'_>, y: &MatRef<'_>) -> Mat {
    let n = a.nrows();
    let k = w.ncols();
    assert_eq!(a.ncols(), n);
    assert_eq!(w.nrows(), n);
    assert_eq!(y.nrows(), n);
    assert_eq!(y.ncols(), k);
    // U = A W
    let mut u = Mat::zeros(n, k);
    symm_lower(1.0, a, w, 0.0, &mut u.as_mut());
    // S = Wᵀ U (k × k, symmetric)
    let s = gemm_into(1.0, w, Op::Trans, &u.as_ref(), Op::NoTrans);
    // Z = U − ½ Y S
    gemm(
        -0.5,
        y,
        Op::NoTrans,
        &s.as_ref(),
        Op::NoTrans,
        1.0,
        &mut u.as_mut(),
    );
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_blas::syr2k_blocked;
    use tg_matrix::{gen, max_abs_diff};

    /// The contract of the ZY trick: `A − Z Yᵀ − Y Zᵀ == Qᵀ A Q` with
    /// `Q = I − W Yᵀ` orthogonal.
    #[test]
    fn zy_update_equals_two_sided_transform() {
        let n = 10;
        let k = 3;
        let a = gen::random_symmetric(n, 50);

        // build a genuine orthogonal Q = I − V T Vᵀ from a panel QR
        let mut panel = gen::random(n, k, 51);
        let pq = {
            let mut v = panel.as_mut();
            crate::panel::panel_qr(&mut v)
        };
        let yv = pq.block.v.clone();
        let w = pq.block.w();

        let z = compute_z(&a.as_ref(), &w.as_ref(), &yv.as_ref());

        // path 1: syr2k update of the lower triangle
        let mut a1 = a.clone();
        syr2k_blocked(-1.0, &z.as_ref(), &yv.as_ref(), 1.0, &mut a1.as_mut(), 4);
        a1.mirror_lower();

        // path 2: explicit Qᵀ A Q
        let q = pq.block.to_q();
        let aq = gemm_into(1.0, &a.as_ref(), Op::NoTrans, &q.as_ref(), Op::NoTrans);
        let a2 = gemm_into(1.0, &q.as_ref(), Op::Trans, &aq.as_ref(), Op::NoTrans);

        assert!(
            max_abs_diff(&a1, &a2) < 1e-11,
            "ZY update disagrees with explicit transform: {}",
            max_abs_diff(&a1, &a2)
        );
    }

    #[test]
    fn z_shape_and_symmetric_midterm() {
        let n = 8;
        let k = 2;
        let a = gen::random_symmetric(n, 60);
        let w = gen::random(n, k, 61);
        let y = gen::random(n, k, 62);
        let z = compute_z(&a.as_ref(), &w.as_ref(), &y.as_ref());
        assert_eq!(z.nrows(), n);
        assert_eq!(z.ncols(), k);
        // check against naive formula
        let full = a.clone();
        let u = gemm_into(1.0, &full.as_ref(), Op::NoTrans, &w.as_ref(), Op::NoTrans);
        let s = gemm_into(1.0, &w.as_ref(), Op::Trans, &u.as_ref(), Op::NoTrans);
        let mut expect = u.clone();
        gemm(
            -0.5,
            &y.as_ref(),
            Op::NoTrans,
            &s.as_ref(),
            Op::NoTrans,
            1.0,
            &mut expect.as_mut(),
        );
        assert!(max_abs_diff(&z, &expect) < 1e-11);
    }
}
