//! `W`-matrix accumulation for the back transformation (§4.3 / §5.3).
//!
//! The SBR back transformation needs
//! `Q = Q₁ · (I − W₁Y₁ᵀ)(I − W₂Y₂ᵀ) ⋯ (I − W_pY_pᵀ)`.
//! Applying each factor separately yields GEMMs whose inner dimension is
//! only the bandwidth `b`; the paper instead merges factors:
//!
//! ```text
//! (I − W₁Y₁ᵀ)(I − W₂Y₂ᵀ) = I − [W₁ | W₂ − W₁(Y₁ᵀW₂)] [Y₁ | Y₂]ᵀ
//! ```
//!
//! * [`compute_w_recursive`] is the literal **Algorithm 3** (binary
//!   recursion down to pairs).
//! * [`merge_to_width`] is the **Figure 13** production scheme: merge
//!   *levels* of pairs with batched GEMMs until each accumulated block
//!   reaches a target width `k`, then apply the few wide blocks.
//!
//! The `_ws` variants ([`merge_pair_ws`], [`merge_to_width_ws`],
//! [`WyPair::apply_left_ws`]) draw every temporary — the `S = Y₁ᵀW₂` merge
//! scratch, the concatenated wide `W`/`Y` storage, the `YᵀC` apply
//! intermediate — from a [`WorkspacePool`] instead of the allocator. Under
//! the pool's bitwise-zero contract they perform the identical
//! floating-point operations as the allocating versions. Every merge path
//! also tallies its arithmetic (4·rows·ka·kb flops per pair: two
//! `rows × ka × kb` GEMMs) against [`tg_trace::Counter::MergeFlops`], which
//! the gpu-sim model cross-check reconciles against the Algorithm-3 cost
//! model.

use crate::pool::WorkspacePool;
use tg_blas::batched::{gemm_batched, GemmJob};
use tg_blas::{gemm, gemm_into, Op};
use tg_matrix::{Mat, MatMut};

/// Tallies one pair merge (two `rows × ka × kb` GEMMs) against
/// [`tg_trace::Counter::MergeFlops`].
fn count_merge(rows: usize, ka: usize, kb: usize) {
    tg_trace::add(tg_trace::Counter::MergeFlops, 4 * (rows * ka * kb) as u64);
}

/// One `(W, Y)` factor pair representing `I − W Yᵀ`.
#[derive(Clone, Debug)]
pub struct WyPair {
    pub w: Mat,
    pub y: Mat,
}

impl WyPair {
    /// Width (number of accumulated reflectors).
    pub fn width(&self) -> usize {
        self.w.ncols()
    }

    /// Applies `I − W Yᵀ` from the **left**: `C ← C − W (Yᵀ C)`.
    pub fn apply_left(&self, c: &mut MatMut<'_>) {
        let x = gemm_into(1.0, &self.y.as_ref(), Op::Trans, &c.rb(), Op::NoTrans);
        gemm(
            -1.0,
            &self.w.as_ref(),
            Op::NoTrans,
            &x.as_ref(),
            Op::NoTrans,
            1.0,
            c,
        );
    }

    /// Like [`WyPair::apply_left`] but draws the `Yᵀ C` intermediate from
    /// `pool`. Bitwise-identical to the allocating version for any pool
    /// honoring the zero contract (the intermediate is consumed with
    /// `beta = 0`, exactly as `gemm_into` computes it).
    pub fn apply_left_ws(&self, c: &mut MatMut<'_>, pool: &mut dyn WorkspacePool) {
        let mut x = pool.acquire(self.y.ncols(), c.ncols());
        gemm(
            1.0,
            &self.y.as_ref(),
            Op::Trans,
            &c.rb(),
            Op::NoTrans,
            0.0,
            &mut x.as_mut(),
        );
        gemm(
            -1.0,
            &self.w.as_ref(),
            Op::NoTrans,
            &x.as_ref(),
            Op::NoTrans,
            1.0,
            c,
        );
        pool.release(x);
    }

    /// Applies `I − W Yᵀ` from the **right**: `C ← C − (C W) Yᵀ`.
    pub fn apply_right(&self, c: &mut MatMut<'_>) {
        let x = gemm_into(1.0, &c.rb(), Op::NoTrans, &self.w.as_ref(), Op::NoTrans);
        gemm(
            -1.0,
            &x.as_ref(),
            Op::NoTrans,
            &self.y.as_ref(),
            Op::Trans,
            1.0,
            c,
        );
    }

    /// Materializes `I − W Yᵀ` (test helper).
    pub fn to_dense(&self, n: usize) -> Mat {
        assert_eq!(self.w.nrows(), n);
        let mut q = Mat::identity(n);
        gemm(
            -1.0,
            &self.w.as_ref(),
            Op::NoTrans,
            &self.y.as_ref(),
            Op::Trans,
            1.0,
            &mut q.as_mut(),
        );
        q
    }
}

/// Merges two factors into one:
/// `(I − W₁Y₁ᵀ)(I − W₂Y₂ᵀ) = I − [W₁ | W₂ − W₁(Y₁ᵀW₂)][Y₁ | Y₂]ᵀ`.
pub fn merge_pair(a: &WyPair, b: &WyPair) -> WyPair {
    let n = a.w.nrows();
    assert_eq!(b.w.nrows(), n);
    let (ka, kb) = (a.width(), b.width());
    count_merge(n, ka, kb);
    // S = Y₁ᵀ W₂  (ka × kb)
    let s = gemm_into(1.0, &a.y.as_ref(), Op::Trans, &b.w.as_ref(), Op::NoTrans);
    // W₂' = W₂ − W₁ S
    let mut w2 = b.w.clone();
    gemm(
        -1.0,
        &a.w.as_ref(),
        Op::NoTrans,
        &s.as_ref(),
        Op::NoTrans,
        1.0,
        &mut w2.as_mut(),
    );
    let mut w = Mat::zeros(n, ka + kb);
    w.view_mut(0, 0, n, ka).copy_from(&a.w.as_ref());
    w.view_mut(0, ka, n, kb).copy_from(&w2.as_ref());
    let mut y = Mat::zeros(n, ka + kb);
    y.view_mut(0, 0, n, ka).copy_from(&a.y.as_ref());
    y.view_mut(0, ka, n, kb).copy_from(&b.y.as_ref());
    WyPair { w, y }
}

/// Like [`merge_pair`] but pool-backed: the `S` scratch and the merged
/// `W`/`Y` storage come from `pool`. The returned pair's matrices are
/// pool-acquired — the caller releases them (`pool.release(f.w)`,
/// `pool.release(f.y)`) when the factor is retired. The *inputs* are
/// borrowed and untouched; releasing them stays the caller's business.
pub fn merge_pair_ws(a: &WyPair, b: &WyPair, pool: &mut dyn WorkspacePool) -> WyPair {
    let n = a.w.nrows();
    assert_eq!(b.w.nrows(), n);
    let (ka, kb) = (a.width(), b.width());
    count_merge(n, ka, kb);
    // S = Y₁ᵀ W₂  (ka × kb)
    let mut s = pool.acquire(ka, kb);
    gemm(
        1.0,
        &a.y.as_ref(),
        Op::Trans,
        &b.w.as_ref(),
        Op::NoTrans,
        0.0,
        &mut s.as_mut(),
    );
    let mut w = pool.acquire(n, ka + kb);
    w.view_mut(0, 0, n, ka).copy_from(&a.w.as_ref());
    {
        // W₂' = W₂ − W₁ S, computed directly into the concatenation slot.
        let mut w2 = w.view_mut(0, ka, n, kb);
        w2.copy_from(&b.w.as_ref());
        gemm(
            -1.0,
            &a.w.as_ref(),
            Op::NoTrans,
            &s.as_ref(),
            Op::NoTrans,
            1.0,
            &mut w2,
        );
    }
    let mut y = pool.acquire(n, ka + kb);
    y.view_mut(0, 0, n, ka).copy_from(&a.y.as_ref());
    y.view_mut(0, ka, n, kb).copy_from(&b.y.as_ref());
    pool.release(s);
    WyPair { w, y }
}

/// **Algorithm 3**: recursively merges an ordered list of factors
/// (`I − W₁Y₁ᵀ` applied first) into a single `(W, Y)` pair.
pub fn compute_w_recursive(pairs: &[WyPair]) -> WyPair {
    assert!(!pairs.is_empty());
    match pairs.len() {
        1 => pairs[0].clone(),
        2 => merge_pair(&pairs[0], &pairs[1]),
        p => {
            let mid = p / 2;
            let left = compute_w_recursive(&pairs[..mid]);
            let right = compute_w_recursive(&pairs[mid..]);
            merge_pair(&left, &right)
        }
    }
}

/// **Figure 13**: merges adjacent pairs level by level — each level is one
/// batched GEMM wave — stopping once every block's width is ≥ `target_k`
/// (or only one block remains). Returns the ordered list of wide factors.
pub fn merge_to_width(mut pairs: Vec<WyPair>, target_k: usize) -> Vec<WyPair> {
    assert!(!pairs.is_empty());
    while pairs.len() > 1 && pairs[0].width() < target_k {
        let mut next = Vec::with_capacity(pairs.len().div_ceil(2));
        let mut iter = pairs.into_iter();
        let mut lefts: Vec<WyPair> = Vec::new();
        let mut rights: Vec<WyPair> = Vec::new();
        let mut odd: Option<WyPair> = None;
        loop {
            match (iter.next(), iter.next()) {
                (Some(a), Some(b)) => {
                    lefts.push(a);
                    rights.push(b);
                }
                (Some(a), None) => {
                    odd = Some(a);
                    break;
                }
                _ => break,
            }
        }
        // The per-level batched GEMM wave: S_i = Y₁ᵢᵀ W₂ᵢ for every pair at
        // once, then W₂ᵢ ← W₂ᵢ − W₁ᵢ Sᵢ for every pair at once.
        for (a, b) in lefts.iter().zip(&rights) {
            count_merge(a.w.nrows(), a.width(), b.width());
        }
        let mut s: Vec<Mat> = lefts
            .iter()
            .zip(&rights)
            .map(|(a, b)| Mat::zeros(a.width(), b.width()))
            .collect();
        {
            let jobs = lefts
                .iter()
                .zip(&rights)
                .zip(s.iter_mut())
                .map(|((a, b), si)| GemmJob {
                    alpha: 1.0,
                    a: &a.y,
                    op_a: Op::Trans,
                    b: &b.w,
                    op_b: Op::NoTrans,
                    beta: 0.0,
                    c: si,
                })
                .collect();
            gemm_batched(jobs);
        }
        {
            let jobs = lefts
                .iter()
                .zip(rights.iter_mut())
                .zip(s.iter())
                .map(|((a, b), si)| GemmJob {
                    alpha: -1.0,
                    a: &a.w,
                    op_a: Op::NoTrans,
                    b: si,
                    op_b: Op::NoTrans,
                    beta: 1.0,
                    c: &mut b.w,
                })
                .collect();
            gemm_batched(jobs);
        }
        for (a, b) in lefts.into_iter().zip(rights) {
            let n = a.w.nrows();
            let (ka, kb) = (a.width(), b.width());
            let mut w = Mat::zeros(n, ka + kb);
            w.view_mut(0, 0, n, ka).copy_from(&a.w.as_ref());
            w.view_mut(0, ka, n, kb).copy_from(&b.w.as_ref());
            let mut y = Mat::zeros(n, ka + kb);
            y.view_mut(0, 0, n, ka).copy_from(&a.y.as_ref());
            y.view_mut(0, ka, n, kb).copy_from(&b.y.as_ref());
            next.push(WyPair { w, y });
        }
        if let Some(o) = odd {
            next.push(o);
        }
        pairs = next;
    }
    pairs
}

/// Like [`merge_to_width`] but pool-backed. Every input pair's matrices
/// **must** be pool-acquired (see [`merge_pair_ws`]); consumed pairs are
/// released as they are merged away, and the returned wide pairs are
/// pool-acquired for the caller to release. The per-level arithmetic is
/// the same batched wave as the allocating version, so under the pool's
/// zero contract the merged factors are bitwise-identical to
/// [`merge_to_width`]'s.
pub fn merge_to_width_ws(
    mut pairs: Vec<WyPair>,
    target_k: usize,
    pool: &mut dyn WorkspacePool,
) -> Vec<WyPair> {
    assert!(!pairs.is_empty());
    while pairs.len() > 1 && pairs[0].width() < target_k {
        let mut next = Vec::with_capacity(pairs.len().div_ceil(2));
        let mut iter = pairs.into_iter();
        let mut lefts: Vec<WyPair> = Vec::new();
        let mut rights: Vec<WyPair> = Vec::new();
        let mut odd: Option<WyPair> = None;
        loop {
            match (iter.next(), iter.next()) {
                (Some(a), Some(b)) => {
                    lefts.push(a);
                    rights.push(b);
                }
                (Some(a), None) => {
                    odd = Some(a);
                    break;
                }
                _ => break,
            }
        }
        for (a, b) in lefts.iter().zip(&rights) {
            count_merge(a.w.nrows(), a.width(), b.width());
        }
        let mut s: Vec<Mat> = lefts
            .iter()
            .zip(&rights)
            .map(|(a, b)| pool.acquire(a.width(), b.width()))
            .collect();
        {
            let jobs = lefts
                .iter()
                .zip(&rights)
                .zip(s.iter_mut())
                .map(|((a, b), si)| GemmJob {
                    alpha: 1.0,
                    a: &a.y,
                    op_a: Op::Trans,
                    b: &b.w,
                    op_b: Op::NoTrans,
                    beta: 0.0,
                    c: si,
                })
                .collect();
            gemm_batched(jobs);
        }
        {
            let jobs = lefts
                .iter()
                .zip(rights.iter_mut())
                .zip(s.iter())
                .map(|((a, b), si)| GemmJob {
                    alpha: -1.0,
                    a: &a.w,
                    op_a: Op::NoTrans,
                    b: si,
                    op_b: Op::NoTrans,
                    beta: 1.0,
                    c: &mut b.w,
                })
                .collect();
            gemm_batched(jobs);
        }
        for si in s {
            pool.release(si);
        }
        for (a, b) in lefts.into_iter().zip(rights) {
            let n = a.w.nrows();
            let (ka, kb) = (a.width(), b.width());
            let mut w = pool.acquire(n, ka + kb);
            w.view_mut(0, 0, n, ka).copy_from(&a.w.as_ref());
            w.view_mut(0, ka, n, kb).copy_from(&b.w.as_ref());
            let mut y = pool.acquire(n, ka + kb);
            y.view_mut(0, 0, n, ka).copy_from(&a.y.as_ref());
            y.view_mut(0, ka, n, kb).copy_from(&b.y.as_ref());
            pool.release(a.w);
            pool.release(a.y);
            pool.release(b.w);
            pool.release(b.y);
            next.push(WyPair { w, y });
        }
        if let Some(o) = odd {
            next.push(o);
        }
        pairs = next;
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panel::panel_qr;
    use tg_matrix::{gen, max_abs_diff, orthogonality_residual, Mat};

    /// Random orthogonal factor from a panel QR (width k, order n).
    fn random_factor(n: usize, k: usize, seed: u64) -> WyPair {
        let mut panel = gen::random(n, k, seed);
        let pq = {
            let mut v = panel.as_mut();
            panel_qr(&mut v)
        };
        WyPair {
            w: pq.block.w(),
            y: pq.block.v.clone(),
        }
    }

    fn dense_product(factors: &[WyPair], n: usize) -> Mat {
        let mut q = Mat::identity(n);
        for f in factors {
            // Q ← Q (I − W Yᵀ)
            f.apply_right(&mut q.as_mut());
        }
        q
    }

    #[test]
    fn merge_pair_preserves_product() {
        let n = 12;
        let a = random_factor(n, 3, 1);
        let b = random_factor(n, 3, 2);
        let merged = merge_pair(&a, &b);
        let expect = dense_product(&[a, b], n);
        assert!(max_abs_diff(&merged.to_dense(n), &expect) < 1e-12);
        assert!(orthogonality_residual(&merged.to_dense(n)) < 1e-12);
    }

    #[test]
    fn recursive_matches_sequential_products() {
        let n = 16;
        for p in [1usize, 2, 3, 4, 5, 7] {
            let factors: Vec<WyPair> = (0..p).map(|i| random_factor(n, 2, 10 + i as u64)).collect();
            let merged = compute_w_recursive(&factors);
            let expect = dense_product(&factors, n);
            assert!(
                max_abs_diff(&merged.to_dense(n), &expect) < 1e-11,
                "p = {p}"
            );
            assert_eq!(merged.width(), 2 * p);
        }
    }

    #[test]
    fn merge_to_width_stops_at_target() {
        let n = 20;
        let factors: Vec<WyPair> = (0..8).map(|i| random_factor(n, 2, 30 + i)).collect();
        let wide = merge_to_width(factors.clone(), 8);
        assert_eq!(wide.len(), 2);
        assert!(wide.iter().all(|f| f.width() == 8));
        let expect = dense_product(&factors, n);
        let got = dense_product(&wide, n);
        assert!(max_abs_diff(&got, &expect) < 1e-11);
    }

    #[test]
    fn merge_to_width_handles_odd_counts() {
        let n = 14;
        let factors: Vec<WyPair> = (0..5).map(|i| random_factor(n, 2, 50 + i)).collect();
        let wide = merge_to_width(factors.clone(), 100);
        // widths double each level; odd trailing block carried through
        let expect = dense_product(&factors, n);
        let got = dense_product(&wide, n);
        assert!(max_abs_diff(&got, &expect) < 1e-11);
        let total: usize = wide.iter().map(|f| f.width()).sum();
        assert_eq!(total, 10);
    }

    /// Minimal conforming pool for the `_ws` tests (the production pools
    /// live upstack in `tridiag-core` / `tg-batch`).
    struct ZeroPool;
    impl crate::pool::WorkspacePool for ZeroPool {
        fn acquire(&mut self, rows: usize, cols: usize) -> Mat {
            Mat::zeros(rows, cols)
        }
        fn release(&mut self, _m: Mat) {}
    }

    #[test]
    fn merge_pair_ws_is_bitwise_identical() {
        let n = 12;
        let a = random_factor(n, 3, 81);
        let b = random_factor(n, 3, 82);
        let plain = merge_pair(&a, &b);
        let pooled = merge_pair_ws(&a, &b, &mut ZeroPool);
        assert_eq!(plain.w, pooled.w);
        assert_eq!(plain.y, pooled.y);
    }

    #[test]
    fn merge_to_width_ws_is_bitwise_identical() {
        let n = 20;
        for p in [3usize, 4, 5, 8] {
            let factors: Vec<WyPair> = (0..p).map(|i| random_factor(n, 2, 90 + i as u64)).collect();
            let plain = merge_to_width(factors.clone(), 8);
            let pooled = merge_to_width_ws(factors, 8, &mut ZeroPool);
            assert_eq!(plain.len(), pooled.len(), "p = {p}");
            for (a, b) in plain.iter().zip(&pooled) {
                assert_eq!(a.w, b.w, "p = {p}");
                assert_eq!(a.y, b.y, "p = {p}");
            }
        }
    }

    #[test]
    fn apply_left_ws_is_bitwise_identical() {
        let n = 16;
        let f = random_factor(n, 4, 99);
        let c0 = gen::random(n, 6, 100);
        let mut plain = c0.clone();
        f.apply_left(&mut plain.as_mut());
        let mut pooled = c0;
        f.apply_left_ws(&mut pooled.as_mut(), &mut ZeroPool);
        assert_eq!(plain, pooled);
    }

    #[test]
    fn merges_tally_merge_flops() {
        let n = 12;
        let a = random_factor(n, 3, 110);
        let b = random_factor(n, 2, 111);
        let session = tg_trace::TraceSession::begin();
        let _ = merge_pair(&a, &b);
        let trace = session.finish();
        assert_eq!(
            trace.total(tg_trace::Counter::MergeFlops),
            4 * (n * 3 * 2) as u64
        );
    }

    #[test]
    fn apply_left_right_consistency() {
        let n = 10;
        let f = random_factor(n, 3, 70);
        let qd = f.to_dense(n);
        let c0 = gen::random(n, n, 71);
        let mut left = c0.clone();
        f.apply_left(&mut left.as_mut());
        let mut expect = Mat::zeros(n, n);
        tg_blas::gemm(
            1.0,
            &qd.as_ref(),
            tg_blas::Op::NoTrans,
            &c0.as_ref(),
            tg_blas::Op::NoTrans,
            0.0,
            &mut expect.as_mut(),
        );
        assert!(max_abs_diff(&left, &expect) < 1e-11);
    }
}
