#![allow(clippy::needless_range_loop)] // triangular-matrix loops are clearer with indices
//! Compact-WY representation of a product of Householder reflectors
//! (Bischof & Van Loan \[3\]; LAPACK `dlarft`/`dlarfb`).
//!
//! `H₁ H₂ ⋯ H_k = I − V T Vᵀ` where `V` is `m × k` unit-lower-trapezoidal
//! and `T` is `k × k` upper triangular. The paper's `(W, Y)` notation maps
//! onto this as `Y = V`, `W = V T`, so that `I − W Yᵀ = I − V T Vᵀ`.

use tg_blas::{gemm, gemm_into, Op};
use tg_matrix::{Mat, MatMut, MatRef};

/// A block of `k` accumulated reflectors: `Q = H₁⋯H_k = I − V T Vᵀ`.
#[derive(Clone, Debug)]
pub struct WyBlock {
    /// `m × k` reflector matrix with explicit unit diagonal and zero upper
    /// triangle (stored explicitly for kernel simplicity).
    pub v: Mat,
    /// `k × k` upper-triangular factor.
    pub t: Mat,
}

impl WyBlock {
    /// Builds the `T` factor from explicit `V` and the per-reflector `τ`s
    /// (forward, column-wise `dlarft`).
    pub fn from_v_taus(v: Mat, taus: &[f64]) -> Self {
        let k = v.ncols();
        assert_eq!(taus.len(), k);
        let mut t = Mat::zeros(k, k);
        for j in 0..k {
            let tau = taus[j];
            t[(j, j)] = tau;
            if j > 0 && tau != 0.0 {
                // t_j = −τ_j · T(0..j,0..j) · V(:,0..j)ᵀ v_j
                let vj = v.view(0, j, v.nrows(), 1);
                let v0 = v.view(0, 0, v.nrows(), j);
                let mut w = gemm_into(-tau, &v0, Op::Trans, &vj, Op::NoTrans); // j×1
                                                                               // w ← T(0..j,0..j) · w  (upper-triangular in-place trmv)
                for i in 0..j {
                    let mut s = 0.0;
                    for l in i..j {
                        s += t[(i, l)] * w[(l, 0)];
                    }
                    w[(i, 0)] = s;
                }
                for i in 0..j {
                    t[(i, j)] = w[(i, 0)];
                }
            }
        }
        WyBlock { v, t }
    }

    /// Number of rows of `V`.
    pub fn m(&self) -> usize {
        self.v.nrows()
    }

    /// Number of reflectors.
    pub fn k(&self) -> usize {
        self.v.ncols()
    }

    /// The paper's `W = V T` (so `Q = I − W Yᵀ` with `Y = V`).
    pub fn w(&self) -> Mat {
        gemm_into(
            1.0,
            &self.v.as_ref(),
            Op::NoTrans,
            &self.t.as_ref(),
            Op::NoTrans,
        )
    }

    /// `C ← Q C` (`trans = false`) or `C ← Qᵀ C` (`trans = true`).
    pub fn apply_left(&self, c: &mut MatMut<'_>, trans: bool) {
        assert_eq!(c.nrows(), self.m());
        // X = Vᵀ C (k × n)
        let mut x = gemm_into(1.0, &self.v.as_ref(), Op::Trans, &c.rb(), Op::NoTrans);
        // X ← op(T) X
        self.trmm_left(&mut x, trans);
        // C ← C − V X
        gemm(
            -1.0,
            &self.v.as_ref(),
            Op::NoTrans,
            &x.as_ref(),
            Op::NoTrans,
            1.0,
            c,
        );
    }

    /// `C ← C Q` (`trans = false`) or `C ← C Qᵀ` (`trans = true`).
    pub fn apply_right(&self, c: &mut MatMut<'_>, trans: bool) {
        assert_eq!(c.ncols(), self.m());
        // X = C V (n × k)
        let mut x = gemm_into(1.0, &c.rb(), Op::NoTrans, &self.v.as_ref(), Op::NoTrans);
        // X ← X op(T): right-multiplication ⇒ transpose trick
        self.trmm_right(&mut x, trans);
        // C ← C − X Vᵀ
        gemm(
            -1.0,
            &x.as_ref(),
            Op::NoTrans,
            &self.v.as_ref(),
            Op::Trans,
            1.0,
            c,
        );
    }

    /// Materializes `Q = I − V T Vᵀ` (test/debug helper).
    pub fn to_q(&self) -> Mat {
        let m = self.m();
        let mut q = Mat::identity(m);
        self.apply_left(&mut q.as_mut(), false);
        q
    }

    /// `X ← op(T) X` with `T` upper triangular.
    fn trmm_left(&self, x: &mut Mat, trans: bool) {
        let k = self.k();
        let n = x.ncols();
        for j in 0..n {
            let col = x.col_mut(j);
            if !trans {
                // upper-tri times vector, forward
                for i in 0..k {
                    let mut s = 0.0;
                    for l in i..k {
                        s += self.t[(i, l)] * col[l];
                    }
                    col[i] = s;
                }
            } else {
                // Tᵀ (lower) times vector, backward
                for i in (0..k).rev() {
                    let mut s = 0.0;
                    for l in 0..=i {
                        s += self.t[(l, i)] * col[l];
                    }
                    col[i] = s;
                }
            }
        }
    }

    /// `X ← X op(T)` with `T` upper triangular.
    fn trmm_right(&self, x: &mut Mat, trans: bool) {
        let k = self.k();
        let m = x.nrows();
        if !trans {
            // X T: column j of result = Σ_{l ≤ j} X[:,l] T[l,j]; go right→left
            for j in (0..k).rev() {
                for i in 0..m {
                    let mut s = 0.0;
                    for l in 0..=j {
                        s += x[(i, l)] * self.t[(l, j)];
                    }
                    x[(i, j)] = s;
                }
            }
        } else {
            // X Tᵀ: column j = Σ_{l ≥ j} X[:,l] T[j,l]; go left→right
            for j in 0..k {
                for i in 0..m {
                    let mut s = 0.0;
                    for l in j..k {
                        s += x[(i, l)] * self.t[(j, l)];
                    }
                    x[(i, j)] = s;
                }
            }
        }
    }
}

/// Convenience for tests: `Q` from a sequence of blocks applied left-to-right
/// (`Q = B₁ B₂ ⋯ B_p`, each `B_i = I − V_i T_i V_iᵀ` acting on rows
/// `offset_i ..`).
pub fn accumulate_q(m: usize, blocks: &[(usize, &WyBlock)]) -> Mat {
    let mut q = Mat::identity(m);
    // Q = B₁ ⋯ B_p ⇒ apply from the right in order: start with I, multiply.
    for &(off, blk) in blocks.iter().rev() {
        let rows = blk.m();
        let mut sub = q.view_mut(off, 0, rows, m);
        blk.apply_left(&mut sub, false);
    }
    q
}

/// Verifies the block is unit-lower-trapezoidal within `tol` (debug aid).
pub fn is_unit_lower(v: &MatRef<'_>, tol: f64) -> bool {
    for j in 0..v.ncols() {
        if (v.at(j.min(v.nrows() - 1), j) - 1.0).abs() > tol && j < v.nrows() {
            return false;
        }
        for i in 0..j.min(v.nrows()) {
            if v.at(i, j).abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reflector::make_reflector;
    use tg_matrix::{gen, orthogonality_residual};

    /// Builds a WY block from random reflectors for testing.
    fn random_block(m: usize, k: usize, seed: u64) -> (WyBlock, Vec<(f64, Vec<f64>)>) {
        let base = gen::random(m, k, seed);
        let mut v = Mat::zeros(m, k);
        let mut taus = vec![0.0; k];
        let mut raw = Vec::new();
        for j in 0..k {
            let mut x: Vec<f64> = (j..m).map(|i| base[(i, j)]).collect();
            let r = make_reflector(&mut x);
            taus[j] = r.tau;
            v[(j, j)] = 1.0;
            for (off, &val) in x[1..].iter().enumerate() {
                v[(j + 1 + off, j)] = val;
            }
            raw.push((r.tau, x[1..].to_vec()));
        }
        (WyBlock::from_v_taus(v, &taus), raw)
    }

    fn explicit_product(m: usize, raw: &[(f64, Vec<f64>)]) -> Mat {
        // H₁ H₂ ⋯ H_k applied to identity, H_j acting on rows j..
        let mut q = Mat::identity(m);
        for (j, (tau, vt)) in raw.iter().enumerate().rev() {
            let mut sub = q.view_mut(j, 0, m - j, m);
            crate::reflector::apply_left(*tau, vt, &mut sub);
        }
        q
    }

    #[test]
    fn q_matches_explicit_reflector_product() {
        let (blk, raw) = random_block(8, 3, 1);
        let q = blk.to_q();
        let qe = explicit_product(8, &raw);
        assert!(tg_matrix::max_abs_diff(&q, &qe) < 1e-12);
    }

    #[test]
    fn q_is_orthogonal() {
        let (blk, _) = random_block(10, 4, 2);
        assert!(orthogonality_residual(&blk.to_q()) < 1e-13);
    }

    #[test]
    fn w_y_identity() {
        // Q = I − W Yᵀ with W = V T, Y = V
        let (blk, _) = random_block(7, 3, 3);
        let w = blk.w();
        let q = blk.to_q();
        let mut expect = Mat::identity(7);
        gemm(
            -1.0,
            &w.as_ref(),
            Op::NoTrans,
            &blk.v.as_ref(),
            Op::Trans,
            1.0,
            &mut expect.as_mut(),
        );
        assert!(tg_matrix::max_abs_diff(&q, &expect) < 1e-12);
    }

    #[test]
    fn apply_left_trans_inverts() {
        let (blk, _) = random_block(9, 4, 4);
        let c0 = gen::random(9, 5, 10);
        let mut c = c0.clone();
        blk.apply_left(&mut c.as_mut(), false);
        blk.apply_left(&mut c.as_mut(), true);
        assert!(tg_matrix::max_abs_diff(&c, &c0) < 1e-12);
    }

    #[test]
    fn apply_right_matches_left_of_transpose() {
        let (blk, _) = random_block(6, 2, 5);
        let c0 = gen::random(4, 6, 11);
        // (C Q)ᵀ = Qᵀ Cᵀ
        let mut right = c0.clone();
        blk.apply_right(&mut right.as_mut(), false);
        let mut left = c0.transpose();
        blk.apply_left(&mut left.as_mut(), true);
        assert!(tg_matrix::max_abs_diff(&right, &left.transpose()) < 1e-12);
    }

    #[test]
    fn apply_right_trans_inverts() {
        let (blk, _) = random_block(6, 3, 6);
        let c0 = gen::random(5, 6, 12);
        let mut c = c0.clone();
        blk.apply_right(&mut c.as_mut(), false);
        blk.apply_right(&mut c.as_mut(), true);
        assert!(tg_matrix::max_abs_diff(&c, &c0) < 1e-12);
    }

    #[test]
    fn single_reflector_block() {
        let (blk, raw) = random_block(5, 1, 7);
        assert_eq!(blk.t[(0, 0)], raw[0].0);
        let q = blk.to_q();
        assert!(orthogonality_residual(&q) < 1e-14);
    }
}
