//! # tg-householder
//!
//! Householder machinery shared by every reduction algorithm in the
//! workspace:
//!
//! * [`reflector`] — elementary reflectors (`dlarfg`/`dlarf` analogues),
//! * [`wy`] — compact-WY block representation (`dlarft`/`dlarfb`),
//! * [`panel`] — unblocked and blocked panel QR (`dgeqr2`/`dgeqrf`),
//! * [`zy`] — the ZY representation used in two-sided band-reduction
//!   updates (Equation 1 of the paper),
//! * [`wblock`] — `W`-matrix accumulation: the paper's recursive
//!   Algorithm 3 and the incremental batched merge of Figure 13,
//! * [`pool`] — the [`WorkspacePool`] scratch-injection trait consumed by
//!   the `_ws` kernel variants here and upstack (re-exported as
//!   `tridiag_core::WorkspacePool`).

pub mod givens;
pub mod panel;
pub mod pool;
pub mod reflector;
pub mod wblock;
pub mod wy;
pub mod zy;

pub use givens::{make_givens, Givens};
pub use panel::{panel_qr, PanelQr};
pub use pool::WorkspacePool;
pub use reflector::{apply_left, apply_right, apply_two_sided_lower, make_reflector, Reflector};
pub use wy::WyBlock;
