#![allow(clippy::needless_range_loop)] // index loops mirror the LAPACK formulations
//! Elementary Householder reflectors (LAPACK `dlarfg` / `dlarf` analogues).
//!
//! A reflector is `H = I − τ v vᵀ` with `v[0] = 1`; `H` is orthogonal and
//! symmetric, and is constructed so that `H x = β e₁` for a given `x`.

use tg_blas::level1::{axpy, dot, nrm2};
use tg_matrix::MatMut;

/// Result of [`make_reflector`]: `H = I − τ v vᵀ` maps the input to `β e₁`.
#[derive(Clone, Debug)]
pub struct Reflector {
    /// Scaling factor `τ` (0 means `H = I`).
    pub tau: f64,
    /// The value `β = (Hx)[0]` (i.e. `±‖x‖`).
    pub beta: f64,
}

/// Builds the reflector annihilating `x[1..]`, overwriting `x[1..]` with the
/// tail of `v` (with `v[0] = 1` implicit) — exactly like `dlarfg`.
///
/// On return `x[0]` is **unchanged** (callers usually overwrite it with
/// `beta` themselves, mirroring the in-place panel convention).
pub fn make_reflector(x: &mut [f64]) -> Reflector {
    let n = x.len();
    if n == 0 {
        return Reflector {
            tau: 0.0,
            beta: 0.0,
        };
    }
    let alpha = x[0];
    let xnorm = nrm2(&x[1..]);
    if xnorm == 0.0 {
        // already of the form β e₁
        return Reflector {
            tau: 0.0,
            beta: alpha,
        };
    }
    let beta = -alpha.signum() * (alpha * alpha + xnorm * xnorm).sqrt();
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for xi in &mut x[1..] {
        *xi *= scale;
    }
    Reflector { tau, beta }
}

/// Applies `H = I − τ v vᵀ` from the **left**: `C ← H C`.
///
/// `v` has implicit `v[0] = 1`; `v_tail` is `v[1..]` and `C` has
/// `v_tail.len() + 1` rows.
pub fn apply_left(tau: f64, v_tail: &[f64], c: &mut MatMut<'_>) {
    if tau == 0.0 {
        return;
    }
    let m = c.nrows();
    assert_eq!(v_tail.len() + 1, m);
    for j in 0..c.ncols() {
        let col = c.col_mut(j);
        // w = vᵀ c_j
        let w = col[0] + dot(v_tail, &col[1..]);
        // c_j ← c_j − τ w v
        col[0] -= tau * w;
        axpy(-tau * w, v_tail, &mut col[1..]);
    }
}

/// Applies `H` from the **right**: `C ← C H`.
///
/// `C` has `v_tail.len() + 1` columns.
pub fn apply_right(tau: f64, v_tail: &[f64], c: &mut MatMut<'_>) {
    if tau == 0.0 {
        return;
    }
    let n = c.ncols();
    assert_eq!(v_tail.len() + 1, n);
    let m = c.nrows();
    // w = C v  (length m)
    let mut w = c.col(0).to_vec();
    for j in 1..n {
        axpy(v_tail[j - 1], c.col(j), &mut w);
    }
    // C ← C − τ w vᵀ
    for i in 0..m {
        let t = tau * w[i];
        *c.at_mut(i, 0) -= t;
    }
    for j in 1..n {
        let s = tau * v_tail[j - 1];
        if s != 0.0 {
            let col = c.col_mut(j);
            for i in 0..m {
                col[i] -= s * w[i];
            }
        }
    }
}

/// Applies `H` two-sidedly to a **full dense symmetric** block: `A ← H A H`
/// (note `H` symmetric, so this is the similarity transform `Hᵀ A H`).
///
/// Uses the rank-2 form `A ← A − v wᵀ − w vᵀ` with
/// `w = τ(Av − (τ/2)(vᵀAv)v)`, touching only the lower triangle.
pub fn apply_two_sided_lower(tau: f64, v_tail: &[f64], a: &mut MatMut<'_>) {
    if tau == 0.0 {
        return;
    }
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    assert_eq!(v_tail.len() + 1, n);
    // v with the implicit leading 1
    let mut v = Vec::with_capacity(n);
    v.push(1.0);
    v.extend_from_slice(v_tail);
    // p = τ A v (symmetric, lower stored)
    let mut p = vec![0.0; n];
    tg_blas::level2::symv_lower(tau, &a.rb(), &v, 0.0, &mut p);
    // w = p − (τ/2)(pᵀv) v
    let c = 0.5 * tau * dot(&p, &v);
    let mut w = p;
    axpy(-c, &v, &mut w);
    // A ← A − v wᵀ − w vᵀ  (lower triangle)
    tg_blas::level2::syr2_lower(-1.0, &v, &w, a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_matrix::{gen, Mat};

    fn explicit_h(tau: f64, v_tail: &[f64]) -> Mat {
        let n = v_tail.len() + 1;
        let mut v = vec![1.0];
        v.extend_from_slice(v_tail);
        Mat::from_fn(n, n, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - tau * v[i] * v[j]
        })
    }

    #[test]
    fn reflector_annihilates() {
        let mut x = vec![3.0, 4.0, 0.0, 12.0];
        let orig = x.clone();
        let r = make_reflector(&mut x);
        // ‖x‖ = 13, β = −sign(3)·13 = −13
        assert!((r.beta + 13.0).abs() < 1e-12);
        // verify H x = β e₁ explicitly
        let h = explicit_h(r.tau, &x[1..]);
        for i in 0..4 {
            let mut s = 0.0;
            for j in 0..4 {
                s += h[(i, j)] * orig[j];
            }
            let expect = if i == 0 { r.beta } else { 0.0 };
            assert!((s - expect).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn reflector_is_orthogonal() {
        let mut x = vec![-1.0, 2.0, -3.0, 4.0, -5.0];
        let r = make_reflector(&mut x);
        let h = explicit_h(r.tau, &x[1..]);
        assert!(tg_matrix::orthogonality_residual(&h) < 1e-14);
    }

    #[test]
    fn zero_tail_gives_identity() {
        let mut x = vec![5.0, 0.0, 0.0];
        let r = make_reflector(&mut x);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.beta, 5.0);
    }

    #[test]
    fn apply_left_matches_explicit() {
        let mut x = vec![1.0, 0.5, -2.0];
        let r = make_reflector(&mut x);
        let v_tail = x[1..].to_vec();
        let h = explicit_h(r.tau, &v_tail);
        let c0 = gen::random(3, 4, 1);
        let mut c = c0.clone();
        apply_left(r.tau, &v_tail, &mut c.as_mut());
        for j in 0..4 {
            for i in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += h[(i, k)] * c0[(k, j)];
                }
                assert!((c[(i, j)] - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apply_right_matches_explicit() {
        let mut x = vec![2.0, -1.0, 1.0, 3.0];
        let r = make_reflector(&mut x);
        let v_tail = x[1..].to_vec();
        let h = explicit_h(r.tau, &v_tail);
        let c0 = gen::random(2, 4, 2);
        let mut c = c0.clone();
        apply_right(r.tau, &v_tail, &mut c.as_mut());
        for j in 0..4 {
            for i in 0..2 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += c0[(i, k)] * h[(k, j)];
                }
                assert!((c[(i, j)] - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_sided_matches_explicit() {
        let n = 6;
        let a0 = gen::random_symmetric(n, 3);
        let mut x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 0.3 - 1.0).collect();
        let r = make_reflector(&mut x);
        let v_tail = x[1..].to_vec();
        let h = explicit_h(r.tau, &v_tail);
        let mut a = a0.clone();
        apply_two_sided_lower(r.tau, &v_tail, &mut a.as_mut());
        a.mirror_lower();
        // expect H A H
        let mut ah = Mat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a0[(i, k)] * h[(k, j)];
                }
                ah[(i, j)] = s;
            }
        }
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += h[(i, k)] * ah[(k, j)];
                }
                assert!((a[(i, j)] - s).abs() < 1e-11, "({i},{j})");
            }
        }
    }
}
